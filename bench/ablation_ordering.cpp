// Ablation: BDD field-ordering heuristics (paper §3.2: "The choice of an
// order can significantly impact the size of a BDD... simple heuristics
// often work well in practice").
//
// Compares the declared (annotation) order against exact-first and
// selectivity-based orders on two workload shapes.
#include <cstdio>

#include "compiler/compile.hpp"
#include "spec/itch_spec.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "workload/itch_subs.hpp"
#include "workload/siena.hpp"

using namespace camus;

namespace {

const char* heuristic_name(bdd::OrderHeuristic h) {
  switch (h) {
    case bdd::OrderHeuristic::kDeclared: return "declared";
    case bdd::OrderHeuristic::kExactFirst: return "exact-first";
    case bdd::OrderHeuristic::kSelectivityAsc: return "selectivity-asc";
    case bdd::OrderHeuristic::kSelectivityDesc: return "selectivity-desc";
  }
  return "?";
}

void run(const char* label, const spec::Schema& schema,
         const std::vector<lang::BoundRule>& rules) {
  std::printf("%s (%zu rules):\n", label, rules.size());
  util::TextTable table({"heuristic", "bdd nodes", "table entries",
                         "tcam entries", "compile (s)"});
  for (auto h : {bdd::OrderHeuristic::kDeclared,
                 bdd::OrderHeuristic::kExactFirst,
                 bdd::OrderHeuristic::kSelectivityAsc,
                 bdd::OrderHeuristic::kSelectivityDesc}) {
    compiler::CompileOptions opts;
    opts.order = h;
    util::Timer t;
    auto c = compiler::compile_rules(schema, rules, opts);
    const double secs = t.seconds();
    if (!c.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   c.error().to_string().c_str());
      std::exit(1);
    }
    table.add_row({heuristic_name(h),
                   std::to_string(c.value().stats.bdd_after_prune.node_count),
                   std::to_string(c.value().stats.total_entries),
                   std::to_string(c.value().pipeline.resources().tcam_entries),
                   util::TextTable::fmt(secs, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Ablation: BDD field-ordering heuristics\n\n");

  {
    auto schema = spec::make_itch_schema();
    workload::ItchSubsParams p;
    p.seed = 3;
    p.n_subscriptions = 5000;
    p.n_symbols = 50;
    p.n_hosts = 100;
    auto subs = workload::generate_itch_subscriptions(schema, p);
    run("ITCH subscriptions (shared per-host thresholds)", schema,
        subs.rules);
  }
  {
    auto schema = spec::make_itch_schema();
    workload::ItchSubsParams p;
    p.seed = 4;
    p.n_subscriptions = 800;
    p.n_symbols = 20;
    p.n_hosts = 50;
    p.price_max = 500;
    p.per_host_threshold = false;
    auto subs = workload::generate_itch_subscriptions(schema, p);
    run("ITCH subscriptions (independent thresholds)", schema, subs.rules);
  }
  {
    workload::SienaParams p;
    p.seed = 5;
    p.n_subscriptions = 60;
    p.predicates_per_subscription = 3;
    p.n_string_attrs = 3;
    p.n_numeric_attrs = 4;
    auto w = workload::generate_siena(p);
    run("Siena mixed attributes", w.schema, w.rules);
  }
  return 0;
}
