// Figure 5b: switch table entries vs subscription selectiveness (number
// of predicates per conjunction).
//
// Paper observation: MORE predicates per subscription -> FEWER table
// entries, "because they result in fewer paths in the BDD" (a more
// selective conjunction constrains more fields, so fewer packets — and
// fewer table paths — satisfy it).
#include <cstdio>

#include "compiler/compile.hpp"
#include "util/stats.hpp"
#include "workload/siena.hpp"

using namespace camus;

int main() {
  std::printf(
      "Figure 5b: table entries vs #predicates per subscription (Siena)\n");
  std::printf("paper: entries decrease from ~5000 at k=2 to ~500 at k=8\n\n");

  util::TextTable table(
      {"#predicates", "table entries", "bdd nodes", "dnf terms"});
  for (std::size_t k = 2; k <= 8; ++k) {
    std::uint64_t entries = 0, nodes = 0, terms = 0;
    const int kSeeds = 5;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      workload::SienaParams p;
      p.seed = static_cast<std::uint64_t>(seed) * 1409 + k;
      p.n_subscriptions = 30;
      p.predicates_per_subscription = k;
      p.n_string_attrs = 3;
      p.n_numeric_attrs = 5;  // 8 attributes: k can reach 8
      p.n_symbols = 20;
      p.numeric_max = 100;  // coarser thresholds share BDD structure
      auto w = workload::generate_siena(p);
      auto c = compiler::compile_rules(w.schema, w.rules);
      if (!c.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     c.error().to_string().c_str());
        return 1;
      }
      entries += c.value().stats.total_entries;
      nodes += c.value().stats.bdd_after_prune.node_count;
      terms += c.value().stats.dnf_terms;
    }
    table.add_row({std::to_string(k), std::to_string(entries / kSeeds),
                   std::to_string(nodes / kSeeds),
                   std::to_string(terms / kSeeds)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
