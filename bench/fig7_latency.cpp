// Figure 7: end-to-end latency CDFs for in-network pub/sub vs host-side
// filtering, on two ITCH workloads.
//
//  (a) Nasdaq-replay trace (bursty, watched symbol GOOGL = 0.5% of
//      messages). Paper: with Camus all messages arrive within ~50us;
//      the baseline's tail stretches to ~300us.
//  (b) Synthetic feed (uniform arrivals, GOOGL = 5%). Paper: 99.5% of
//      messages within 20us with Camus vs 96.5% with the baseline.
//
// The testbed is simulated (see DESIGN.md §1): 25 Gb/s links, a constant
// ASIC pipeline latency, and a subscriber CPU whose per-message software
// filtering cost is the mechanism that builds the baseline's queueing
// tail. Absolute microseconds depend on that calibration; the reproduced
// claims are the CDF shapes and the Camus/baseline separation.
#include <cstdio>

#include "netsim/market_experiment.hpp"
#include "pubsub/controller.hpp"
#include "spec/itch_spec.hpp"
#include "util/stats.hpp"

using namespace camus;

namespace {

netsim::MarketExperimentParams testbed(netsim::FilterMode mode) {
  netsim::MarketExperimentParams mp;
  mp.mode = mode;
  mp.publisher_link_gbps = 25.0;
  mp.subscriber_link_gbps = 25.0;
  mp.link_propagation_us = 0.5;
  mp.switch_pipeline_us = 0.8;
  mp.host_filter_cost_us = 2.0;  // software filter over the full feed
  mp.deliver_cost_us = 0.8;      // DPDK rx + application hand-off
  return mp;
}

void run_workload(const char* label, const workload::Feed& feed) {
  std::printf("---- %s: %zu messages, %zu watched (%.2f%%) ----\n", label,
              feed.messages.size(), feed.watched_count,
              100.0 * static_cast<double>(feed.watched_count) /
                  static_cast<double>(feed.messages.size()));

  util::TextTable table({"config", "p50", "p90", "p99", "p99.5", "max",
                         "<20us", "<50us", "<300us"});
  auto schema = spec::make_itch_schema();
  for (int cfg = 0; cfg < 2; ++cfg) {
    switchsim::Switch sw = [&] {
      if (cfg == 0) {
        pubsub::Controller ctl(spec::make_itch_schema());
        auto ok = ctl.subscribe(1, "stock == GOOGL");
        if (!ok.ok()) std::exit(1);
        auto s = ctl.build_switch();
        if (!s.ok()) std::exit(1);
        return std::move(s).take();
      }
      return switchsim::Switch::make_broadcast(schema, {1});
    }();
    auto mp = testbed(cfg == 0 ? netsim::FilterMode::kSwitchFilter
                               : netsim::FilterMode::kHostFilter);
    const auto res = netsim::run_market_experiment(mp, sw, feed, "GOOGL");
    const auto& lat = res.latency_us;
    table.add_row(
        {cfg == 0 ? "Camus (switch filtering)" : "Baseline (host filtering)",
         util::TextTable::fmt(lat.quantile(0.50), 1),
         util::TextTable::fmt(lat.quantile(0.90), 1),
         util::TextTable::fmt(lat.quantile(0.99), 1),
         util::TextTable::fmt(lat.quantile(0.995), 1),
         util::TextTable::fmt(lat.max(), 1),
         util::TextTable::fmt(100 * lat.fraction_below(20), 1) + "%",
         util::TextTable::fmt(100 * lat.fraction_below(50), 1) + "%",
         util::TextTable::fmt(100 * lat.fraction_below(300), 1) + "%"});
  }
  // Third row: the baseline with a realistic bounded NIC/CPU queue — the
  // paper's "increases delay and the chances of packet drops", quantified.
  {
    auto sw = switchsim::Switch::make_broadcast(spec::make_itch_schema(),
                                                {1});
    auto mp = testbed(netsim::FilterMode::kHostFilter);
    mp.host_queue_limit = 128;
    const auto res = netsim::run_market_experiment(mp, sw, feed, "GOOGL");
    const auto& lat = res.latency_us;
    table.add_row(
        {"Baseline (128-msg queue)",
         util::TextTable::fmt(lat.quantile(0.50), 1),
         util::TextTable::fmt(lat.quantile(0.90), 1),
         util::TextTable::fmt(lat.quantile(0.99), 1),
         util::TextTable::fmt(lat.quantile(0.995), 1),
         util::TextTable::fmt(lat.max(), 1),
         util::TextTable::fmt(100 * lat.fraction_below(20), 1) + "%",
         util::TextTable::fmt(100 * lat.fraction_below(50), 1) + "%",
         std::to_string(res.host_drops) + " drops"});
  }
  std::printf("%s\n", table.to_string().c_str());

  // CDF series (quantile, latency) for plotting — both configs.
  std::printf("latency CDF points (us at cumulative probability):\n");
  for (int cfg = 0; cfg < 2; ++cfg) {
    switchsim::Switch sw = [&] {
      if (cfg == 0) {
        pubsub::Controller ctl(spec::make_itch_schema());
        (void)ctl.subscribe(1, "stock == GOOGL");
        auto s = ctl.build_switch();
        if (!s.ok()) std::exit(1);
        return std::move(s).take();
      }
      return switchsim::Switch::make_broadcast(schema, {1});
    }();
    const auto mp = testbed(cfg == 0 ? netsim::FilterMode::kSwitchFilter
                                     : netsim::FilterMode::kHostFilter);
    const auto res = netsim::run_market_experiment(mp, sw, feed, "GOOGL");
    std::printf("  %-8s", cfg == 0 ? "camus:" : "baseline:");
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.995, 1.0})
      std::printf(" %g@%.3f", res.latency_us.quantile(q), q);
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";
  const std::size_t n = quick ? 60000 : 300000;

  std::printf("Figure 7: ITCH end-to-end latency, Camus vs baseline\n\n");

  {
    // (a) Nasdaq replay: bursty open-auction arrivals, GOOGL at 0.5%.
    workload::FeedParams fp;
    fp.seed = 20170830;  // the paper's trace date
    fp.mode = workload::FeedMode::kNasdaqReplay;
    fp.n_messages = n;
    fp.watched_fraction = 0.005;
    fp.rate_msgs_per_sec = 150000;
    fp.burst_factor = 3.0;
    fp.burst_on_ms = 1.0;
    fp.burst_off_ms = 8.0;
    run_workload("(a) Nasdaq trace (replayed)", workload::generate_feed(fp));
  }
  {
    // (b) Synthetic feed: uniform arrivals near the baseline host's
    // capacity, GOOGL at 5%.
    workload::FeedParams fp;
    fp.seed = 7;
    fp.mode = workload::FeedMode::kSynthetic;
    fp.n_messages = n;
    fp.watched_fraction = 0.05;
    fp.rate_msgs_per_sec = 270000;
    run_workload("(b) Synthetic feed", workload::generate_feed(fp));
  }
  return 0;
}
