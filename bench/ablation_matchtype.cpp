// Ablation: the three TCAM-saving resource optimizations (paper §3.2,
// "Resource Optimizations"):
//   1. match-type guidance: the @query_field_exact annotation tells the
//      compiler a field never needs range lookups,
//   2. exact-match tables instead of range tables where the entries allow
//      it (SRAM instead of TCAM),
//   3. domain compression: map a range field onto a low-resolution code
//      domain through a shared mapping stage.
#include <cstdio>

#include "compiler/compile.hpp"
#include "spec/schema.hpp"
#include "util/stats.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

namespace {

// ITCH-like schema where the stock field's match hint is configurable —
// isolating the effect of the paper's annotation guidance (opt #1).
spec::Schema itch_schema_with_hint(spec::MatchHint stock_hint) {
  spec::Schema s;
  s.add_header("itch_add_order_t", "add_order");
  auto shares = s.add_field("shares", 32);
  auto stock = s.add_field("stock", 64, spec::FieldKind::kSymbol);
  auto price = s.add_field("price", 32);
  s.mark_queryable(stock, stock_hint);
  s.mark_queryable(shares, spec::MatchHint::kRange);
  s.mark_queryable(price, spec::MatchHint::kRange);
  return s;
}

void report(util::TextTable& table, const char* label,
            const spec::Schema& schema,
            const std::vector<lang::BoundRule>& rules,
            const compiler::CompileOptions& opts) {
  auto c = compiler::compile_rules(schema, rules, opts);
  if (!c.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 c.error().to_string().c_str());
    std::exit(1);
  }
  const auto res = c.value().pipeline.resources();
  table.add_row({label, std::to_string(res.logical_entries),
                 std::to_string(res.sram_entries),
                 std::to_string(res.tcam_entries),
                 std::to_string(res.stages)});
}

}  // namespace

int main() {
  std::printf("Ablation: match-type resource optimizations\n");
  std::printf(
      "workload: 2000 ITCH subscriptions, 32 symbols, independent price "
      "thresholds in (0,200); stock table first\n\n");

  const auto range_schema = itch_schema_with_hint(spec::MatchHint::kRange);
  const auto exact_schema = itch_schema_with_hint(spec::MatchHint::kExact);

  // Rules bind to field ids, which are identical in both schema variants.
  workload::ItchSubsParams p;
  p.seed = 9;
  p.n_subscriptions = 2000;
  p.n_symbols = 32;
  p.n_hosts = 16;
  p.price_max = 200;
  p.per_host_threshold = false;
  auto subs = workload::generate_itch_subscriptions(exact_schema, p);

  util::TextTable table(
      {"configuration", "entries", "sram", "tcam", "stages"});

  {
    compiler::CompileOptions o;
    o.exact_match_optimization = false;
    o.wildcard_fallback = false;
    report(table, "no optimizations (everything in TCAM)", range_schema,
           subs.rules, o);
  }
  {
    compiler::CompileOptions o;
    o.exact_match_optimization = false;
    report(table, "+ wildcard fallback entries", range_schema, subs.rules, o);
  }
  {
    compiler::CompileOptions o;
    report(table, "+ exact tables where possible (opt #2)", range_schema,
           subs.rules, o);
  }
  {
    compiler::CompileOptions o;
    report(table, "+ @query_field_exact hint (opt #1)", exact_schema,
           subs.rules, o);
  }
  {
    compiler::CompileOptions o;
    o.domain_compression = true;
    report(table, "+ domain compression (opt #3)", exact_schema, subs.rules,
           o);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nEach row adds one optimization; 'tcam' is the prefix-expanded "
      "entry count.\nNote: the stock field order is 'declared' here, so "
      "per-symbol price chains are\nmaterialized per state — the setting "
      "where compression pays off.\n\n");

  // Symbol-dominated workload: many symbols, shared per-host thresholds
  // (one global price chain). Here the stock table is the bulk of the
  // pipeline, isolating the SRAM-vs-TCAM effect of opts #1/#2.
  std::printf("symbol-dominated workload: 4000 subscriptions, 512 symbols, "
              "shared thresholds\n\n");
  workload::ItchSubsParams p2;
  p2.seed = 10;
  p2.n_subscriptions = 4000;
  p2.n_symbols = 512;
  p2.n_hosts = 16;
  auto subs2 = workload::generate_itch_subscriptions(exact_schema, p2);

  util::TextTable table2(
      {"configuration", "entries", "sram", "tcam", "stages"});
  {
    compiler::CompileOptions o;
    o.exact_match_optimization = false;
    o.wildcard_fallback = false;
    report(table2, "no optimizations (everything in TCAM)", range_schema,
           subs2.rules, o);
  }
  {
    compiler::CompileOptions o;
    report(table2, "+ exact tables where possible (opt #2)", range_schema,
           subs2.rules, o);
  }
  {
    compiler::CompileOptions o;
    report(table2, "+ @query_field_exact hint (opt #1)", exact_schema,
           subs2.rules, o);
  }
  std::printf("%s", table2.to_string().c_str());
  return 0;
}
