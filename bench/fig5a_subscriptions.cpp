// Figure 5a: switch table entries vs number of subscriptions.
//
// Paper setup: workloads from the Siena Synthetic Benchmark Generator;
// x-axis 10..45 subscriptions; the observation is a LOW GROWTH RATE of
// table entries as the workload grows ("Camus uses available space
// effectively"). Absolute counts depend on generator parameters; the
// shape (sub-linear-to-linear growth, no blowup) is the reproduced claim.
#include <cstdio>

#include "compiler/compile.hpp"
#include "util/stats.hpp"
#include "workload/siena.hpp"

using namespace camus;

int main() {
  std::printf("Figure 5a: table entries vs #subscriptions (Siena workloads)\n");
  std::printf("paper: entries grow slowly, ~3000 at 45 subscriptions\n\n");

  util::TextTable table({"#subscriptions", "table entries", "bdd nodes",
                         "mcast groups", "entries/sub"});
  for (std::size_t n = 10; n <= 45; n += 5) {
    // Average over seeds: single Siena draws are noisy at this scale.
    std::uint64_t entries = 0, nodes = 0, groups = 0;
    const int kSeeds = 5;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      workload::SienaParams p;
      p.seed = static_cast<std::uint64_t>(seed) * 977 + n;
      p.n_subscriptions = n;
      p.predicates_per_subscription = 4;
      p.n_string_attrs = 2;
      p.n_numeric_attrs = 3;
      p.n_symbols = 20;
      p.numeric_max = 100;
      auto w = workload::generate_siena(p);
      auto c = compiler::compile_rules(w.schema, w.rules);
      if (!c.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     c.error().to_string().c_str());
        return 1;
      }
      entries += c.value().stats.total_entries;
      nodes += c.value().stats.bdd_after_prune.node_count;
      groups += c.value().stats.multicast_groups;
    }
    entries /= kSeeds;
    nodes /= kSeeds;
    groups /= kSeeds;
    table.add_row({std::to_string(n), std::to_string(entries),
                   std::to_string(nodes), std::to_string(groups),
                   util::TextTable::fmt(
                       static_cast<double>(entries) / static_cast<double>(n),
                       1)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
