// Ablation: the BDD reductions (DESIGN.md §4.3).
//
// Reductions (i) node sharing and (ii) redundant-test elimination are
// structural invariants of the manager; reduction (iii) — domain-semantic
// pruning of predicates implied by ancestors — is what this ablation
// switches off. Without it, threshold-heavy workloads keep semantically
// impossible predicate combinations and the BDD grows exponentially, so
// the no-prune column is only run at small sizes.
#include <cstdio>

#include "compiler/compile.hpp"
#include "spec/itch_spec.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "workload/itch_subs.hpp"
#include "workload/siena.hpp"

using namespace camus;

namespace {

struct Row {
  bool ok = false;
  std::uint64_t nodes = 0;
  std::uint64_t entries = 0;
  double secs = 0;

  std::string nodes_str() const { return ok ? std::to_string(nodes) : "-"; }
  std::string entries_str() const {
    // The unpruned BDD can exceed Algorithm 1's path budget — that blowup
    // is the point of this ablation, so report it rather than abort.
    return ok ? std::to_string(entries) : "path budget exceeded";
  }
};

Row compile(const spec::Schema& schema,
            const std::vector<lang::BoundRule>& rules, bool prune) {
  compiler::CompileOptions opts;
  opts.semantic_prune = prune;
  util::Timer t;
  auto c = compiler::compile_rules(schema, rules, opts);
  Row r;
  r.secs = t.seconds();
  if (!c.ok()) return r;
  r.ok = true;
  r.nodes = c.value().stats.bdd_after_prune.node_count;
  r.entries = c.value().stats.total_entries;
  return r;
}

}  // namespace

int main() {
  std::printf("Ablation: semantic pruning (reduction iii) on/off\n\n");

  // Threshold-heavy ITCH workload: the pathological case for no-prune.
  {
    std::printf(
        "ITCH threshold workload (stock==S and price>P), exponential "
        "without pruning:\n");
    auto schema = spec::make_itch_schema();
    util::TextTable table({"#rules", "nodes (prune)", "entries (prune)",
                           "time (prune)", "nodes (no prune)",
                           "entries (no prune)", "time (no prune)"});
    for (std::size_t n : {4, 8, 12, 16}) {
      workload::ItchSubsParams p;
      p.seed = 11;
      p.n_subscriptions = n;
      p.n_symbols = 4;
      p.n_hosts = 16;
      p.per_host_threshold = false;  // distinct thresholds: worst case
      auto subs = workload::generate_itch_subscriptions(schema, p);
      const Row with = compile(schema, subs.rules, true);
      const Row without = compile(schema, subs.rules, false);
      table.add_row({std::to_string(n), with.nodes_str(), with.entries_str(),
                     util::TextTable::fmt(with.secs, 4), without.nodes_str(),
                     without.entries_str(),
                     util::TextTable::fmt(without.secs, 4)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Mixed Siena workload: pruning still wins, less dramatically.
  {
    std::printf("Siena mixed workload:\n");
    util::TextTable table({"#rules", "nodes (prune)", "entries (prune)",
                           "nodes (no prune)", "entries (no prune)"});
    // Small sizes: the unpruned BDD's path count grows exponentially and
    // quickly exhausts Algorithm 1's path budget (reported as such).
    for (std::size_t n : {4, 6, 8, 10}) {
      workload::SienaParams p;
      p.seed = 31337 + n;
      p.n_subscriptions = n;
      p.predicates_per_subscription = 3;
      p.n_string_attrs = 1;
      p.n_numeric_attrs = 2;
      p.numeric_max = 50;
      auto w = workload::generate_siena(p);
      const Row with = compile(w.schema, w.rules, true);
      const Row without = compile(w.schema, w.rules, false);
      table.add_row({std::to_string(n), with.nodes_str(), with.entries_str(),
                     without.nodes_str(), without.entries_str()});
    }
    std::printf("%s", table.to_string().c_str());
  }
  return 0;
}
