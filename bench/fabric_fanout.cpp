// Fabric fan-out: how many subscribers a spine–leaf fabric serves versus
// one switch, with the semantics proven, in one self-gating binary.
//
// Baseline: a single switch carrying N0 subscriptions (the Fig-5-style
// pinned ITCH workload). Fabric: 8 leaves x 2 spines carrying 10x / 30x /
// 100x that subscriber count (--quick stops at 10x). For every scale it
//   * derives the placement (partition_for_fabric) and compiles every
//     node program (compile_fabric) with the PR-8 partitioned per-leaf
//     path, plus the monolithic compile of the same rule set as the
//     single-switch comparison point;
//   * at 10x runs the camus::verify fabric equivalence proof (the four
//     obligations: recombination, per-leaf restriction, no-starvation,
//     spine program) so the bench proves the placement sound before
//     measuring it;
//   * replays seeded probe messages through the netsim fabric
//     (deliver_env) against the monolithic oracle and records the
//     matched fraction — the delivered_fraction the CI gate pins at 1.0.
//
// Gates (any violation exits non-zero, for CI):
//   * the 10x equivalence proof must complete and hold;
//   * delivered_fraction must be exactly 1.0 at every scale;
//   * max_leaf_entries < monolithic entries at every scale — each leaf
//     must fit strictly below the single-switch budget for the same set;
//   * the largest scale must serve >= 10x the baseline subscriber count.
//
// Compiles run with threads=1, so the emitted fabric_digest at 10x is
// deterministic and the committed BENCH_fabric.json pins the exact node
// programs a --quick CI run must reproduce.
//
// Flags: --quick, --json, --out FILE, --baseline N, --probes N.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bdd/order.hpp"
#include "compiler/compile.hpp"
#include "compiler/fabric.hpp"
#include "lang/bound.hpp"
#include "lang/parser.hpp"
#include "netsim/fabric.hpp"
#include "spec/itch_spec.hpp"
#include "util/intern.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "verify/fabric.hpp"

using namespace camus;

namespace {

constexpr std::size_t kSymbolPool = 1024;

std::string symbol_name(std::size_t k) { return "S" + std::to_string(k); }

// Deterministic pinned-heavy workload: rule i forwards to port i (the
// subscriber). Subscribers cluster on their leaf's slice of the symbol
// pool (a 10% stray tail crosses slices), so spine steering is selective
// rather than broadcast; leaf 0 additionally carries a small unpinned
// (shares-only) tail to keep the spine catch-all path honest. Range
// thresholds are drawn from quantized grids — per-rule distinct constants
// would cross-product the monolithic comparison table out of memory at
// 100x without changing what the bench measures. Ports stay < 60000 so
// 100x fits uint16.
std::vector<lang::BoundRule> make_rules(const spec::Schema& schema,
                                        const compiler::FabricSpec& spec,
                                        std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t slice = kSymbolPool / spec.leaves;
  std::vector<lang::BoundRule> rules;
  rules.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t port = static_cast<std::uint16_t>(i);
    const std::size_t leaf = spec.leaf_of(port);
    const std::size_t sym_k =
        rng.chance(0.10) ? rng.uniform(0, kSymbolPool - 1)
                         : leaf * slice + rng.uniform(0, slice - 1);
    const std::string sym = symbol_name(sym_k);
    std::string text;
    if (leaf == 0 && rng.chance(0.08)) {
      text = "shares > " + std::to_string(1000 * rng.uniform(5, 9));
    } else {
      const double roll = rng.uniform01();
      if (roll < 0.10) {
        text = "stock == " + sym;
      } else if (roll < 0.30) {
        text = "stock == " + sym +
               " and shares >= " + std::to_string(500 * rng.uniform(1, 10));
      } else {
        text = "stock == " + sym +
               " and price > " + std::to_string(100 * rng.uniform(1, 20));
      }
    }
    text += " : fwd(" + std::to_string(port) + ")";
    auto parsed = lang::parse_rule(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "fabric_fanout: bad generated rule: %s\n",
                   parsed.error().message.c_str());
      std::exit(2);
    }
    auto bound = lang::bind_rule(parsed.value(), schema);
    if (!bound.ok()) {
      std::fprintf(stderr, "fabric_fanout: bind failed: %s\n",
                   bound.error().message.c_str());
      std::exit(2);
    }
    rules.push_back(std::move(bound.value()));
  }
  return rules;
}

lang::Env make_probe(const spec::Schema& schema, util::Rng& rng) {
  lang::Env env;
  env.fields.resize(schema.fields().size(), 0);
  env.states.resize(schema.state_vars().size(), 0);
  env.fields[0] = rng.uniform(1, 10000);  // shares
  // 1-in-16 probes carry a symbol outside the subscribed pool so the
  // no-match path is exercised fabric-wide.
  const std::size_t k = rng.uniform(0, kSymbolPool + kSymbolPool / 16 - 1);
  env.fields[1] = util::encode_symbol(symbol_name(k));
  env.fields[2] = rng.uniform(1, 2500);  // price
  return env;
}

struct ScaleRow {
  std::size_t multiplier = 0;
  std::size_t subscribers = 0;
  double fabric_compile_s = 0;
  double mono_compile_s = 0;
  std::uint64_t spine_entries = 0;
  std::uint64_t max_leaf_entries = 0;
  std::uint64_t total_leaf_entries = 0;
  std::uint64_t mono_entries = 0;
  double leaf_over_mono = 0;
  std::size_t populated_leaves = 0;
  std::size_t probes = 0;
  std::size_t matched = 0;
  double delivered_fraction = 0;
  double avg_leaves_per_probe = 0;  // spine steering selectivity
  double classify_env_per_s = 0;
  std::uint64_t fabric_digest = 0;
  bool proof_ran = false;
  bool proven = false;
  bool budget_ok = false;
};

void print_row(const ScaleRow& r) {
  std::printf(
      "fabric_fanout %3zux  subs=%-6zu  fabric=%.2fs mono=%.2fs  "
      "spine=%llu max_leaf=%llu mono=%llu (leaf/mono=%.3f)  "
      "delivered=%zu/%zu  proof=%s  digest=%016llx\n",
      r.multiplier, r.subscribers, r.fabric_compile_s, r.mono_compile_s,
      static_cast<unsigned long long>(r.spine_entries),
      static_cast<unsigned long long>(r.max_leaf_entries),
      static_cast<unsigned long long>(r.mono_entries), r.leaf_over_mono,
      r.matched, r.probes,
      r.proof_ran ? (r.proven ? "proven" : "FAILED") : "skipped",
      static_cast<unsigned long long>(r.fabric_digest));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string out_path;
  std::size_t baseline_n = 600;
  std::size_t probes_per_scale = 400;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fabric_fanout: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--quick") {
      quick = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--out") {
      out_path = next("--out");
    } else if (a == "--baseline") {
      baseline_n = static_cast<std::size_t>(std::stoul(next("--baseline")));
    } else if (a == "--probes") {
      probes_per_scale =
          static_cast<std::size_t>(std::stoul(next("--probes")));
    } else {
      std::fprintf(stderr, "fabric_fanout: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const std::uint64_t seed = 20260808;
  const spec::Schema schema = spec::make_itch_schema();
  const compiler::FabricSpec spec{.leaves = 8, .spines = 2};

  compiler::CompileOptions copts;
  // The PR-8 scale layout (partition + interning) on every node: it is
  // both the realistic single-switch comparison point and the only
  // layout that compiles this symbol-heavy workload monolithically.
  copts.partition = compiler::PartitionMode::kForce;
  copts.intern_entries = true;
  copts.threads = 1;  // deterministic digests for the committed bench
  // Symbol-first variable order: matches the partitioned layout's
  // dispatch-first stage sequence (the equivalence co-traversal walks the
  // reference order) and keeps the union MTBDD symbol-partitioned instead
  // of exploding on per-rule shares/price thresholds.
  copts.order = bdd::OrderHeuristic::kExactFirst;

  // Single-switch baseline at N0.
  const auto base_rules = make_rules(schema, spec, baseline_n, seed);
  util::Timer t_base;
  auto base = compiler::compile_rules(schema, base_rules, copts);
  const double base_s = t_base.seconds();
  if (!base.ok()) {
    std::fprintf(stderr, "fabric_fanout: baseline compile failed: %s\n",
                 base.error().message.c_str());
    return 1;
  }
  const std::uint64_t base_entries = base.value().pipeline.total_entries();
  if (!json) {
    std::printf("fabric_fanout baseline  subs=%zu entries=%llu compile=%.3fs\n",
                baseline_n, static_cast<unsigned long long>(base_entries),
                base_s);
  }

  std::vector<std::size_t> multipliers = quick
                                             ? std::vector<std::size_t>{10}
                                             : std::vector<std::size_t>{10, 30,
                                                                        100};
  std::vector<ScaleRow> rows;
  bool all_ok = true;

  for (const std::size_t m : multipliers) {
    ScaleRow row;
    row.multiplier = m;
    row.subscribers = baseline_n * m;
    // Seed depends on the multiplier only, so --quick and the full run
    // generate the identical 10x rule set (and digest).
    const auto rules = make_rules(schema, spec, row.subscribers,
                                  seed ^ (0x9e3779b97f4a7c15ULL * m));

    auto placement = compiler::partition_for_fabric(schema, rules, spec, copts);
    if (!placement.ok()) {
      std::fprintf(stderr, "fabric_fanout: placement failed at %zux: %s\n", m,
                   placement.error().message.c_str());
      return 1;
    }
    util::Timer t_fab;
    auto program = compiler::compile_fabric(schema, placement.value(), copts);
    row.fabric_compile_s = t_fab.seconds();
    if (!program.ok()) {
      std::fprintf(stderr, "fabric_fanout: fabric compile failed at %zux: %s\n",
                   m, program.error().message.c_str());
      return 1;
    }
    util::Timer t_mono;
    auto mono = compiler::compile_rules(schema, rules, copts);
    row.mono_compile_s = t_mono.seconds();
    if (!mono.ok()) {
      std::fprintf(stderr, "fabric_fanout: mono compile failed at %zux: %s\n",
                   m, mono.error().message.c_str());
      return 1;
    }

    const auto& prog = program.value();
    row.spine_entries = prog.spine.total_entries();
    row.max_leaf_entries = prog.max_leaf_entries();
    row.total_leaf_entries = prog.total_leaf_entries();
    row.mono_entries = mono.value().pipeline.total_entries();
    row.leaf_over_mono =
        row.mono_entries == 0
            ? 0
            : static_cast<double>(row.max_leaf_entries) /
                  static_cast<double>(row.mono_entries);
    row.populated_leaves = placement.value().populated_leaves();
    row.fabric_digest = prog.fabric_digest;
    row.budget_ok = row.max_leaf_entries < row.mono_entries;

    // Symbolic proof at the 10x probe scale (every CI run covers it).
    if (m == 10) {
      row.proof_ran = true;
      verify::FabricCheckOptions vopts;
      vopts.order = copts.order;
      auto check = verify::check_fabric_equivalence(
          schema, rules, placement.value(), prog, vopts);
      row.proven = check.proven();
      if (!row.proven) {
        std::fprintf(stderr,
                     "fabric_fanout: equivalence proof FAILED (%s): %s\n",
                     check.failed_check.c_str(), check.detail.c_str());
      }
    }

    // Probe differential: netsim fabric vs the monolithic oracle.
    netsim::FabricTopologyOptions topo;
    topo.spec = spec;
    netsim::Fabric fabric(schema, topo);
    fabric.program(prog);
    util::Rng prng(seed * 977 + m);
    row.probes = probes_per_scale;
    std::size_t leaf_touches = 0;
    util::Timer t_cls;
    for (std::size_t p = 0; p < probes_per_scale; ++p) {
      const lang::Env env = make_probe(schema, prng);
      auto got = fabric.deliver_env(env.fields, 1000 + p);
      std::size_t distinct_leaves = 0;
      for (std::size_t g = 0; g < got.size(); ++g) {
        if (g == 0 || got[g].first != got[g - 1].first) ++distinct_leaves;
      }
      leaf_touches += distinct_leaves;
      const auto& acts = mono.value().pipeline.evaluate_actions(env);
      std::vector<std::pair<std::size_t, std::uint16_t>> want;
      want.reserve(acts.ports.size());
      for (const std::uint16_t port : acts.ports) {
        want.emplace_back(spec.leaf_of(port), port);
      }
      std::sort(want.begin(), want.end());
      want.erase(std::unique(want.begin(), want.end()), want.end());
      if (got == want) ++row.matched;
    }
    const double cls_s = t_cls.seconds();
    row.classify_env_per_s =
        cls_s > 0 ? static_cast<double>(probes_per_scale) / cls_s : 0;
    row.delivered_fraction =
        row.probes == 0
            ? 1.0
            : static_cast<double>(row.matched) / static_cast<double>(row.probes);
    row.avg_leaves_per_probe =
        row.probes == 0 ? 0
                        : static_cast<double>(leaf_touches) /
                              static_cast<double>(row.probes);

    if (!json) print_row(row);
    if (row.delivered_fraction != 1.0) {
      std::fprintf(stderr,
                   "fabric_fanout: GATE delivered_fraction %.4f != 1.0 at "
                   "%zux\n",
                   row.delivered_fraction, m);
      all_ok = false;
    }
    if (!row.budget_ok) {
      std::fprintf(stderr,
                   "fabric_fanout: GATE max_leaf_entries %llu !< mono %llu "
                   "at %zux\n",
                   static_cast<unsigned long long>(row.max_leaf_entries),
                   static_cast<unsigned long long>(row.mono_entries), m);
      all_ok = false;
    }
    if (row.proof_ran && !row.proven) all_ok = false;
    rows.push_back(row);
  }

  if (rows.empty() || rows.back().subscribers < 10 * baseline_n) {
    std::fprintf(stderr, "fabric_fanout: GATE largest scale below 10x\n");
    all_ok = false;
  }

  if (json || !out_path.empty()) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"workload\": \"fabric-fanout\",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"topology\": {\"leaves\": " << spec.leaves
       << ", \"spines\": " << spec.spines << "},\n";
    os << "  \"baseline\": {\"subscribers\": " << baseline_n
       << ", \"entries\": " << base_entries << ", \"compile_s\": "
       << util::json::format_double(base_s) << "},\n";
    os << "  \"proof_scale\": 10,\n";
    os << "  \"scales\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScaleRow& r = rows[i];
      os << "    {\"multiplier\": " << r.multiplier
         << ", \"subscribers\": " << r.subscribers
         << ", \"fabric_compile_s\": "
         << util::json::format_double(r.fabric_compile_s)
         << ", \"mono_compile_s\": "
         << util::json::format_double(r.mono_compile_s)
         << ",\n     \"spine_entries\": " << r.spine_entries
         << ", \"max_leaf_entries\": " << r.max_leaf_entries
         << ", \"total_leaf_entries\": " << r.total_leaf_entries
         << ", \"mono_entries\": " << r.mono_entries
         << ", \"leaf_over_mono\": "
         << util::json::format_double(r.leaf_over_mono)
         << ",\n     \"populated_leaves\": " << r.populated_leaves
         << ", \"probes\": " << r.probes << ", \"matched\": " << r.matched
         << ", \"delivered_fraction\": "
         << util::json::format_double(r.delivered_fraction)
         << ", \"avg_leaves_per_probe\": "
         << util::json::format_double(r.avg_leaves_per_probe)
         << ", \"classify_env_per_s\": "
         << util::json::format_double(r.classify_env_per_s)
         << ",\n     \"proof_ran\": " << (r.proof_ran ? "true" : "false")
         << ", \"proven\": " << (r.proven ? "true" : "false")
         << ", \"budget_ok\": " << (r.budget_ok ? "true" : "false")
         << ", \"fabric_digest\": \"" << std::hex << r.fabric_digest
         << std::dec << "\"}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"all_checks_pass\": " << (all_ok ? "true" : "false") << "\n";
    os << "}\n";
    if (json) std::fputs(os.str().c_str(), stdout);
    if (!out_path.empty()) {
      std::ofstream f(out_path);
      f << os.str();
    }
  }

  return all_ok ? 0 : 1;
}
