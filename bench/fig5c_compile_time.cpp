// Figure 5c: compiler runtime vs number of subscriptions, up to 100K.
//
// Paper setup: ITCH subscriptions "stock == S and price > P : fwd(H)" with
// S one of 100 symbols, P in (0, 1000), H one of 200 end hosts. Paper
// result: "Compiling 100K subscriptions resulted in 21,401 table entries
// and 198 multicast groups, which can easily fit in switch memory",
// taking ~1200s in the authors' OCaml prototype. Absolute times differ
// (this is a C++ implementation); the reproduced claims are the
// superlinear-but-tractable growth and the entry/group counts.
//
// Flags: --quick (small sizes), --threads N (parallel sharded compile;
// 0 = hardware concurrency), --json FILE (write one compile-stats JSON
// object per size, newline-delimited; "-" for stderr). The stdout table is
// unchanged by either flag so existing tooling keeps parsing it.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "compiler/compile.hpp"
#include "spec/itch_spec.hpp"
#include "table/table.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t threads = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads N] [--json FILE|-]\n",
                   argv[0]);
      return 2;
    }
  }

  std::FILE* json_out = nullptr;
  if (!json_path.empty()) {
    json_out = json_path == "-" ? stderr : std::fopen(json_path.c_str(), "w");
    if (!json_out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }

  std::printf(
      "Figure 5c: compile time vs #subscriptions (ITCH workload: stock==S "
      "and price>P)\n");
  std::printf(
      "paper @100K: 21401 entries, 198 mcast groups, ~1200s (OCaml "
      "prototype)\n\n");

  auto schema = spec::make_itch_schema();
  util::TextTable table({"#subscriptions", "compile time (s)",
                         "table entries", "mcast groups", "bdd nodes",
                         "fits switch"});
  std::vector<std::size_t> sizes = {1000, 5000, 10000, 25000, 50000, 100000};
  if (quick) sizes = {1000, 10000};

  for (std::size_t n : sizes) {
    workload::ItchSubsParams p;
    p.seed = 42;
    p.n_subscriptions = n;
    p.n_symbols = 100;
    p.n_hosts = 200;
    p.price_max = 1000;
    auto subs = workload::generate_itch_subscriptions(schema, p);

    compiler::CompileOptions opts;
    opts.threads = threads;
    util::Timer t;
    auto c = compiler::compile_rules(schema, subs.rules, opts);
    const double secs = t.seconds();
    if (!c.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   c.error().to_string().c_str());
      return 1;
    }
    const auto& stats = c.value().stats;
    const bool fits =
        table::ResourceBudget{}.fits(c.value().pipeline.resources());
    table.add_row({std::to_string(n), util::TextTable::fmt(secs, 3),
                   std::to_string(stats.total_entries),
                   std::to_string(stats.multicast_groups),
                   std::to_string(stats.bdd_after_prune.node_count),
                   fits ? "yes" : "NO"});
    if (json_out)
      std::fprintf(json_out, "%s\n", stats.to_json().c_str());
  }
  std::printf("%s", table.to_string().c_str());
  if (json_out && json_out != stderr) std::fclose(json_out);
  return 0;
}
