// Scaling experiment: tail latency vs number of subscriber hosts.
//
// Generalizes Figure 7 to the deployment the paper motivates ("Many
// financial companies subscribe to the Nasdaq feed and broadcast it to all
// of their servers"): N servers each interested in a 1/N slice of the
// symbol space. Under broadcast + host filtering every server pays the
// full feed rate regardless of N; with switch filtering each server only
// receives its slice, so per-server load FALLS as servers are added.
// Flags: --quick (shorter feed), --threads N (parallel sharded compile),
// --json FILE (one compile-stats JSON object per host count,
// newline-delimited; "-" for stderr). Stdout is unchanged by either flag.
#include <cstdio>
#include <cstdlib>

#include <map>
#include <string>

#include "netsim/market_experiment.hpp"
#include "pubsub/controller.hpp"
#include "spec/itch_spec.hpp"
#include "util/stats.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t threads = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads N] [--json FILE|-]\n",
                   argv[0]);
      return 2;
    }
  }
  std::FILE* json_out = nullptr;
  if (!json_path.empty()) {
    json_out = json_path == "-" ? stderr : std::fopen(json_path.c_str(), "w");
    if (!json_out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }
  const std::size_t n_msgs = quick ? 40000 : 150000;

  std::printf("Scaling: watched-message p99 latency vs #subscriber hosts\n");
  std::printf("(bursty feed; each host subscribed to 1/N of 100 symbols)\n\n");

  auto symbols = workload::itch_symbols(100);
  auto schema = spec::make_itch_schema();

  workload::FeedParams fp;
  fp.seed = 17;
  fp.mode = workload::FeedMode::kNasdaqReplay;
  fp.n_messages = n_msgs;
  fp.symbols = symbols;
  fp.watched_fraction = 0.01;
  fp.rate_msgs_per_sec = 150000;
  fp.burst_factor = 3.0;
  fp.burst_on_ms = 1.0;
  fp.burst_off_ms = 8.0;
  const auto feed = workload::generate_feed(fp);

  util::TextTable table({"#hosts", "baseline p99 (us)", "camus p99 (us)",
                         "baseline GB to hosts", "camus GB to hosts"});

  for (std::uint16_t n_hosts : {2, 4, 8, 16, 32}) {
    std::map<std::string, std::uint16_t> interest;
    compiler::CompileOptions copts;
    copts.threads = threads;
    pubsub::Controller ctl(spec::make_itch_schema(), copts);
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      const std::uint16_t port =
          static_cast<std::uint16_t>(1 + s % n_hosts);
      interest[symbols[s]] = port;
      auto ok = ctl.subscribe(port, "stock == " + symbols[s]);
      if (!ok.ok()) return 1;
    }

    netsim::MarketExperimentParams mp;
    mp.host_filter_cost_us = 2.0;
    mp.deliver_cost_us = 0.8;

    // Baseline: broadcast to every host; each filters in software.
    std::vector<std::uint16_t> all_ports;
    for (std::uint16_t p = 1; p <= n_hosts; ++p) all_ports.push_back(p);
    auto bcast = switchsim::Switch::make_broadcast(schema, all_ports);
    mp.mode = netsim::FilterMode::kHostFilter;
    const auto base =
        netsim::run_fanout_experiment(mp, bcast, feed, interest, n_hosts);

    // Camus: compiled per-host subscriptions.
    auto sw = ctl.build_switch();
    if (!sw.ok()) return 1;
    if (json_out)
      std::fprintf(json_out, "%s\n", ctl.compiled().value()->stats.to_json().c_str());
    mp.mode = netsim::FilterMode::kSwitchFilter;
    const auto camus = netsim::run_fanout_experiment(mp, sw.value(), feed,
                                                     interest, n_hosts);

    table.add_row(
        {std::to_string(n_hosts),
         util::TextTable::fmt(base.latency_us.quantile(0.99), 1),
         util::TextTable::fmt(camus.latency_us.quantile(0.99), 1),
         util::TextTable::fmt(
             static_cast<double>(base.bytes_to_hosts) / 1e9, 3),
         util::TextTable::fmt(
             static_cast<double>(camus.bytes_to_hosts) / 1e9, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nEvery broadcast host pays the full-feed filtering tail (~100x the "
      "Camus tail)\nno matter how the symbols are spread, and the bytes "
      "delivered grow linearly\nwith the host count; with in-network "
      "filtering both stay flat.\n");
  if (json_out && json_out != stderr) std::fclose(json_out);
  return 0;
}
