// Crash-recovery benchmark (ISSUE 9 satellite): quantifies the durable
// control plane's recovery story on a seeded churn history.
//
//   1. Recovery time vs history length: the journal of an N-commit churn
//      run is truncated at milestone fractions and a fresh
//      DurableController open()s each prefix (exact replay — every commit
//      boundary recompiled and digest-checked). The full-depth replay
//      must reproduce the pre-crash intended pipeline bit-identically.
//   2. Checkpoint recovery: the same history compacted to one snapshot
//      record, then reopened — O(live state) instead of O(history).
//   3. Repair delta vs full reprogram: a switch that missed exactly one
//      install is reconciled (entry ops; --gate-reuse exits non-zero when
//      entry reuse drops below the floor — the paper's re-use claim
//      carried over to crash repair), and a cold-rebooted switch is
//      reconciled (full re-image), with wire bytes for both.
//
// Hard assertions (exit status) regardless of flags: exact replay is
// digest-identical with zero mismatches, the missed-install repair ships
// as ops (not a re-image) and lands, and the cold reboot converges.
//
// CI runs this with --quick --gate-reuse 0.8 as the recovery-smoke job;
// the committed BENCH_recovery.json is the full run. Seeds are explicit.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/compile.hpp"
#include "fault/plan.hpp"
#include "pubsub/durable.hpp"
#include "pubsub/install.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "table/delta.hpp"
#include "util/journal.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace camus;

namespace {

constexpr std::uint64_t kChurnSeed = 20260808;
constexpr std::uint16_t kPorts = 8;

compiler::CompileOptions bench_opts() {
  // Exact-match field first: new-symbol churn then grows the automaton at
  // the edge, which is what makes one missed install repairable as a
  // sliver of the program (same choice as the churn bench's reuse gate).
  compiler::CompileOptions opts;
  opts.order = bdd::OrderHeuristic::kExactFirst;
  return opts;
}

std::string churn_rule(util::Rng& rng, int symbol) {
  return "stock == SYM" + std::to_string(symbol) + " and price > " +
         std::to_string(rng.uniform(1, 400) * 100);
}

struct MilestoneRow {
  double fraction = 0;
  std::size_t journal_bytes = 0;
  std::size_t records = 0;
  std::uint64_t commits = 0;
  std::size_t subscriptions = 0;
  double open_ms = 0;
};

// Opens a fresh controller over a byte-for-byte copy of `log` and times
// the replay.
struct ReplayProbe {
  util::MemStorage storage;
  pubsub::DurableController ctl;
  double open_ms = 0;
  bool ok = false;

  ReplayProbe(const spec::Schema& schema, const std::string& log)
      : ctl(schema, storage, bench_opts()) {
    storage.replace(log);
    util::Timer t;
    ok = ctl.open().ok();
    open_ms = t.seconds() * 1e3;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "BENCH_recovery.json";
  double gate_reuse = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick") quick = true;
    else if (a == "--json") json = true;
    else if (a == "--out" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--gate-reuse" && i + 1 < argc)
      gate_reuse = std::strtod(argv[++i], nullptr);
    else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json] [--out FILE] "
                   "[--gate-reuse F]\n",
                   argv[0]);
      return 2;
    }
  }
  const int n_commits = quick ? 40 : 150;

  auto schema = spec::make_itch_schema();
  util::MemStorage storage;
  pubsub::DurableController ctl(schema, storage, bench_opts());
  if (!ctl.open().ok()) {
    std::fprintf(stderr, "open failed\n");
    return 1;
  }
  switchsim::Switch sw(spec::make_itch_schema(), table::Pipeline{});
  pubsub::TwoPhaseInstaller installer(sw);

  // --- 1. Build the churn history, installing every commit but the last.
  util::Rng rng(kChurnSeed);
  int next_symbol = 0;
  std::vector<std::size_t> commit_offsets;  // journal bytes after commit i
  util::Timer wall;
  for (int c = 0; c < n_commits; ++c) {
    const bool last = c == n_commits - 1;
    const int adds = last ? 1 : 2;
    for (int k = 0; k < adds; ++k) {
      // A fresh symbol most of the time, so the history keeps growing at
      // the automaton's edge; occasional repeats tighten existing ones.
      const int sym = rng.chance(0.8) ? next_symbol++
                                      : rng.uniform(0, next_symbol);
      const auto port = static_cast<std::uint16_t>(1 + rng.uniform(0, kPorts - 1));
      if (!ctl.subscribe(port, churn_rule(rng, sym)).ok()) {
        std::fprintf(stderr, "subscribe failed at commit %d\n", c);
        return 1;
      }
    }
    if (!last && c > 0 && c % 7 == 0)
      ctl.unsubscribe(static_cast<std::uint16_t>(1 + rng.uniform(0, kPorts - 1)));
    auto delta = ctl.commit();
    if (!delta.ok()) {
      std::fprintf(stderr, "commit %d failed: %s\n", c,
                   delta.error().to_string().c_str());
      return 1;
    }
    if (!last) {
      auto rep = ctl.install(installer, delta.value());
      if (!rep.ok() || !rep.value().committed) {
        std::fprintf(stderr, "install %d failed\n", c);
        return 1;
      }
    } else {
      // The last install is eaten by a total partition: the commit is
      // journaled and intended, the switch never sees it.
      fault::FaultSpec dead;
      dead.drop = 1.0;
      const fault::Plan plan(dead, 2);
      auto rep = ctl.install(installer, delta.value(), &plan);
      if (!rep.ok() || rep.value().committed) {
        std::fprintf(stderr, "partitioned install unexpectedly landed\n");
        return 1;
      }
    }
    commit_offsets.push_back(storage.size());
  }
  const double history_s = wall.seconds();
  const std::string log = storage.load().value();
  const table::Pipeline intended = *ctl.intended().value();
  const std::uint64_t intended_digest = table::pipeline_digest(intended);
  const std::size_t total_entries = intended.total_entries();

  // --- 2. Exact-replay recovery time at milestone depths.
  std::vector<MilestoneRow> milestones;
  bool replay_ok = true;
  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(commit_offsets.size())) - 1;
    const std::string prefix = log.substr(0, commit_offsets[idx]);
    ReplayProbe probe(schema, prefix);
    MilestoneRow row;
    row.fraction = frac;
    row.journal_bytes = prefix.size();
    row.records = probe.ctl.recovery().records_replayed;
    row.commits = probe.ctl.recovery().commits_replayed;
    row.subscriptions = probe.ctl.subscription_count();
    row.open_ms = probe.open_ms;
    milestones.push_back(row);
    if (!probe.ok || probe.ctl.recovery().digest_mismatches != 0) {
      std::fprintf(stderr, "FAIL: exact replay at %.2f not clean\n", frac);
      replay_ok = false;
    }
    if (frac == 1.0) {
      auto recovered = probe.ctl.intended();
      if (!recovered.ok() ||
          table::pipeline_digest(*recovered.value()) != intended_digest) {
        std::fprintf(stderr, "FAIL: full replay is not digest-identical\n");
        replay_ok = false;
      }
    }
  }

  // --- 3. Checkpoint recovery: compact, then reopen from the snapshot.
  double checkpoint_open_ms = 0;
  std::size_t checkpoint_bytes = 0;
  std::size_t checkpoint_subs = 0;
  bool checkpoint_ok = true;
  {
    ReplayProbe full(schema, log);
    checkpoint_ok = full.ok && full.ctl.checkpoint().ok();
    const std::string compacted = full.storage.load().value();
    checkpoint_bytes = compacted.size();
    ReplayProbe snap(schema, compacted);
    checkpoint_open_ms = snap.open_ms;
    checkpoint_subs = snap.ctl.subscription_count();
    checkpoint_ok = checkpoint_ok && snap.ok &&
                    snap.ctl.recovery().from_snapshot &&
                    snap.ctl.subscription_count() == ctl.subscription_count();
    if (!checkpoint_ok) std::fprintf(stderr, "FAIL: checkpoint recovery\n");
  }

  // --- 4a. Repair delta: the switch missed exactly one install.
  const table::Pipeline have = sw.pipeline_snapshot();
  const table::PipelineDiff diff = table::diff_pipelines(&have, intended);
  const std::size_t delta_bytes = table::serialize_ops(diff.ops).size();
  const std::size_t full_bytes = table::serialize_pipeline(intended).size();
  util::Timer repair_t;
  auto rec = ctl.reconcile(installer);
  const double repair_ms = repair_t.seconds() * 1e3;
  bool repair_ok = rec.ok() && rec.value().repaired &&
                   !rec.value().full_reprogram &&
                   sw.program_digest() == intended_digest;
  if (!repair_ok) std::fprintf(stderr, "FAIL: missed-install repair\n");
  const double repair_reuse = rec.ok() ? rec.value().reuse_fraction() : 0;

  // --- 4b. Full reprogram: a cold-rebooted (blank) switch.
  switchsim::Switch cold_sw(spec::make_itch_schema(), table::Pipeline{});
  pubsub::TwoPhaseInstaller cold_installer(cold_sw);
  util::Timer cold_t;
  auto cold = ctl.reconcile(cold_installer);
  const double cold_ms = cold_t.seconds() * 1e3;
  const bool cold_ok = cold.ok() && cold.value().repaired &&
                       cold.value().full_reprogram &&
                       cold_sw.program_digest() == intended_digest;
  if (!cold_ok) std::fprintf(stderr, "FAIL: cold-reboot reprogram\n");

  std::printf("recovery_sweep: %d commits (%zu subs, %zu entries, %zu "
              "journal bytes) built in %.2fs\n",
              n_commits, ctl.subscription_count(), total_entries, log.size(),
              history_s);
  for (const auto& m : milestones)
    std::printf("  exact replay %3.0f%%: %6zu bytes, %4zu records, %3llu "
                "commits -> %.2f ms\n",
                m.fraction * 100, m.journal_bytes, m.records,
                static_cast<unsigned long long>(m.commits), m.open_ms);
  std::printf("  checkpoint: %zu bytes -> %.2f ms (%zu subs)\n",
              checkpoint_bytes, checkpoint_open_ms, checkpoint_subs);
  std::printf("  repair (1 missed install): %zu ops, reuse %.4f, %zu vs "
              "%zu wire bytes -> %.2f ms\n",
              rec.ok() ? rec.value().repair_ops : 0, repair_reuse,
              delta_bytes, full_bytes, repair_ms);
  std::printf("  cold reboot: full re-image, %zu entries -> %.2f ms\n",
              total_entries, cold_ms);

  if (json) {
    std::ofstream out(json_path);
    out << "{\n  \"workload\": \"durable-churn\",\n"
        << "  \"seed\": " << kChurnSeed << ",\n"
        << "  \"commits\": " << n_commits << ",\n"
        << "  \"subscriptions\": " << ctl.subscription_count() << ",\n"
        << "  \"entries\": " << total_entries << ",\n"
        << "  \"journal_bytes\": " << log.size() << ",\n"
        << "  \"exact_replay\": [\n";
    for (std::size_t i = 0; i < milestones.size(); ++i) {
      const auto& m = milestones[i];
      out << "    {\"fraction\": " << util::json::format_double(m.fraction)
          << ", \"journal_bytes\": " << m.journal_bytes
          << ", \"records\": " << m.records
          << ", \"commits\": " << m.commits
          << ", \"subscriptions\": " << m.subscriptions
          << ", \"open_ms\": " << util::json::format_double(m.open_ms)
          << "}" << (i + 1 < milestones.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"checkpoint\": {\"journal_bytes\": " << checkpoint_bytes
        << ", \"open_ms\": " << util::json::format_double(checkpoint_open_ms)
        << ", \"subscriptions\": " << checkpoint_subs << "},\n"
        << "  \"repair_missed_install\": {\"ops\": "
        << (rec.ok() ? rec.value().repair_ops : 0)
        << ", \"reuse_fraction\": " << util::json::format_double(repair_reuse)
        << ", \"delta_bytes\": " << delta_bytes
        << ", \"full_bytes\": " << full_bytes
        << ", \"ms\": " << util::json::format_double(repair_ms) << "},\n"
        << "  \"cold_reboot\": {\"entries\": " << total_entries
        << ", \"ms\": " << util::json::format_double(cold_ms) << "},\n"
        << "  \"all_checks_pass\": "
        << ((replay_ok && checkpoint_ok && repair_ok && cold_ok) ? "true"
                                                                 : "false")
        << "\n}\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }

  if (gate_reuse >= 0 && repair_reuse < gate_reuse) {
    std::fprintf(stderr,
                 "FAIL: missed-install repair reuse %.4f below gate %.2f\n",
                 repair_reuse, gate_reuse);
    return 1;
  }
  return (replay_ok && checkpoint_ok && repair_ok && cold_ok) ? 0 : 1;
}
