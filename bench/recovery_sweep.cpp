// Crash-recovery benchmark (ISSUE 9 satellite): quantifies the durable
// control plane's recovery story on a seeded churn history.
//
//   1. Recovery time vs history length: the journal of an N-commit churn
//      run is truncated at milestone fractions and a fresh
//      DurableController open()s each prefix (exact replay — every commit
//      boundary recompiled and digest-checked). The full-depth replay
//      must reproduce the pre-crash intended pipeline bit-identically.
//   2. Checkpoint recovery: the same history compacted to one snapshot
//      record, then reopened — O(live state) instead of O(history).
//   3. Repair delta vs full reprogram: a switch that missed exactly one
//      install is reconciled (entry ops; --gate-reuse exits non-zero when
//      entry reuse drops below the floor — the paper's re-use claim
//      carried over to crash repair), and a cold-rebooted switch is
//      reconciled (full re-image), with wire bytes for both.
//
// --storage selects the StableStorage backend: "mem" (default) runs on
// MemStorage as before, "file" runs the same history and probes on
// FileStorage (real write()+fsync per journal append — the durability
// cost a deployment actually pays), "both" runs mem and nests the file
// results under a "file" key so the two are directly comparable in one
// JSON document. The top-level JSON schema is unchanged from the mem-only
// version; CI's --gate-reuse path gates the top-level (mem) run.
//
// Hard assertions (exit status) regardless of flags: exact replay is
// digest-identical with zero mismatches, the missed-install repair ships
// as ops (not a re-image) and lands, and the cold reboot converges.
//
// CI runs this with --quick --gate-reuse 0.8 as the recovery-smoke job;
// the committed BENCH_recovery.json is the full run with --storage=both.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/compile.hpp"
#include "fault/plan.hpp"
#include "pubsub/durable.hpp"
#include "pubsub/install.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "table/delta.hpp"
#include "util/journal.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace camus;

namespace {

constexpr std::uint64_t kChurnSeed = 20260808;
constexpr std::uint16_t kPorts = 8;

compiler::CompileOptions bench_opts() {
  // Exact-match field first: new-symbol churn then grows the automaton at
  // the edge, which is what makes one missed install repairable as a
  // sliver of the program (same choice as the churn bench's reuse gate).
  compiler::CompileOptions opts;
  opts.order = bdd::OrderHeuristic::kExactFirst;
  return opts;
}

std::string churn_rule(util::Rng& rng, int symbol) {
  return "stock == SYM" + std::to_string(symbol) + " and price > " +
         std::to_string(rng.uniform(1, 400) * 100);
}

// Either backend behind the StableStorage interface, with a uniform way
// to read/replace the full journal image. File-backed boxes own a unique
// temp file and remove it on destruction.
struct StorageBox {
  StorageBox(bool file_backed, const std::string& tag) {
    if (file_backed) {
      static int counter = 0;
      path_ = "/tmp/camus_recovery_sweep_" + tag + "_" +
              std::to_string(counter++) + ".journal";
      file_ = std::make_unique<util::FileStorage>(path_);
      file_->replace("");
    } else {
      mem_ = std::make_unique<util::MemStorage>();
    }
  }
  ~StorageBox() {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  StorageBox(const StorageBox&) = delete;
  StorageBox& operator=(const StorageBox&) = delete;

  util::StableStorage& ref() {
    return file_ ? static_cast<util::StableStorage&>(*file_) : *mem_;
  }
  std::string contents() {
    auto loaded = ref().load();
    return loaded.ok() ? loaded.value() : std::string();
  }

 private:
  std::unique_ptr<util::MemStorage> mem_;
  std::unique_ptr<util::FileStorage> file_;
  std::string path_;
};

struct MilestoneRow {
  double fraction = 0;
  std::size_t journal_bytes = 0;
  std::size_t records = 0;
  std::uint64_t commits = 0;
  std::size_t subscriptions = 0;
  double open_ms = 0;
};

// Opens a fresh controller over a byte-for-byte copy of `log` on the
// requested backend and times the replay.
struct ReplayProbe {
  StorageBox box;
  pubsub::DurableController ctl;
  double open_ms = 0;
  bool ok = false;

  ReplayProbe(const spec::Schema& schema, const std::string& log,
              bool file_backed, const std::string& tag)
      : box(file_backed, tag), ctl(schema, box.ref(), bench_opts()) {
    box.ref().replace(log);
    util::Timer t;
    ok = ctl.open().ok();
    open_ms = t.seconds() * 1e3;
  }
};

// One full measurement pass — history build, milestone replays,
// checkpoint recovery, missed-install repair, cold reboot — on one
// storage backend.
struct ModeResult {
  std::string mode;  // "mem" | "file"
  int commits = 0;
  std::size_t subscriptions = 0;
  std::size_t entries = 0;
  std::size_t journal_bytes = 0;
  double history_s = 0;
  std::vector<MilestoneRow> milestones;
  std::size_t checkpoint_bytes = 0;
  double checkpoint_open_ms = 0;
  std::size_t checkpoint_subs = 0;
  std::size_t repair_ops = 0;
  double repair_reuse = 0;
  std::size_t delta_bytes = 0;
  std::size_t full_bytes = 0;
  double repair_ms = 0;
  double cold_ms = 0;
  bool ok = true;
};

bool run_mode(const spec::Schema& schema, bool file_backed, int n_commits,
              ModeResult& out) {
  out.mode = file_backed ? "file" : "mem";
  out.commits = n_commits;

  StorageBox storage(file_backed, out.mode + "_history");
  pubsub::DurableController ctl(schema, storage.ref(), bench_opts());
  if (!ctl.open().ok()) {
    std::fprintf(stderr, "[%s] open failed\n", out.mode.c_str());
    return false;
  }
  switchsim::Switch sw(spec::make_itch_schema(), table::Pipeline{});
  pubsub::TwoPhaseInstaller installer(sw);

  // --- 1. Build the churn history, installing every commit but the last.
  util::Rng rng(kChurnSeed);
  int next_symbol = 0;
  std::vector<std::size_t> commit_offsets;  // journal bytes after commit i
  util::Timer wall;
  for (int c = 0; c < n_commits; ++c) {
    const bool last = c == n_commits - 1;
    const int adds = last ? 1 : 2;
    for (int k = 0; k < adds; ++k) {
      // A fresh symbol most of the time, so the history keeps growing at
      // the automaton's edge; occasional repeats tighten existing ones.
      const int sym = rng.chance(0.8) ? next_symbol++
                                      : rng.uniform(0, next_symbol);
      const auto port =
          static_cast<std::uint16_t>(1 + rng.uniform(0, kPorts - 1));
      if (!ctl.subscribe(port, churn_rule(rng, sym)).ok()) {
        std::fprintf(stderr, "[%s] subscribe failed at commit %d\n",
                     out.mode.c_str(), c);
        return false;
      }
    }
    if (!last && c > 0 && c % 7 == 0)
      ctl.unsubscribe(
          static_cast<std::uint16_t>(1 + rng.uniform(0, kPorts - 1)));
    auto delta = ctl.commit();
    if (!delta.ok()) {
      std::fprintf(stderr, "[%s] commit %d failed: %s\n", out.mode.c_str(),
                   c, delta.error().to_string().c_str());
      return false;
    }
    if (!last) {
      auto rep = ctl.install(installer, delta.value());
      if (!rep.ok() || !rep.value().committed) {
        std::fprintf(stderr, "[%s] install %d failed\n", out.mode.c_str(),
                     c);
        return false;
      }
    } else {
      // The last install is eaten by a total partition: the commit is
      // journaled and intended, the switch never sees it.
      fault::FaultSpec dead;
      dead.drop = 1.0;
      const fault::Plan plan(dead, 2);
      auto rep = ctl.install(installer, delta.value(), &plan);
      if (!rep.ok() || rep.value().committed) {
        std::fprintf(stderr,
                     "[%s] partitioned install unexpectedly landed\n",
                     out.mode.c_str());
        return false;
      }
    }
    commit_offsets.push_back(storage.contents().size());
  }
  out.history_s = wall.seconds();
  const std::string log = storage.contents();
  const table::Pipeline intended = *ctl.intended().value();
  const std::uint64_t intended_digest = table::pipeline_digest(intended);
  out.journal_bytes = log.size();
  out.subscriptions = ctl.subscription_count();
  out.entries = intended.total_entries();

  // --- 2. Exact-replay recovery time at milestone depths.
  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(commit_offsets.size())) - 1;
    const std::string prefix = log.substr(0, commit_offsets[idx]);
    ReplayProbe probe(schema, prefix, file_backed, out.mode + "_replay");
    MilestoneRow row;
    row.fraction = frac;
    row.journal_bytes = prefix.size();
    row.records = probe.ctl.recovery().records_replayed;
    row.commits = probe.ctl.recovery().commits_replayed;
    row.subscriptions = probe.ctl.subscription_count();
    row.open_ms = probe.open_ms;
    out.milestones.push_back(row);
    if (!probe.ok || probe.ctl.recovery().digest_mismatches != 0) {
      std::fprintf(stderr, "[%s] FAIL: exact replay at %.2f not clean\n",
                   out.mode.c_str(), frac);
      out.ok = false;
    }
    if (frac == 1.0) {
      auto recovered = probe.ctl.intended();
      if (!recovered.ok() ||
          table::pipeline_digest(*recovered.value()) != intended_digest) {
        std::fprintf(stderr,
                     "[%s] FAIL: full replay is not digest-identical\n",
                     out.mode.c_str());
        out.ok = false;
      }
    }
  }

  // --- 3. Checkpoint recovery: compact, then reopen from the snapshot.
  {
    ReplayProbe full(schema, log, file_backed, out.mode + "_ckpt_full");
    bool checkpoint_ok = full.ok && full.ctl.checkpoint().ok();
    const std::string compacted = full.box.contents();
    out.checkpoint_bytes = compacted.size();
    ReplayProbe snap(schema, compacted, file_backed,
                     out.mode + "_ckpt_snap");
    out.checkpoint_open_ms = snap.open_ms;
    out.checkpoint_subs = snap.ctl.subscription_count();
    checkpoint_ok = checkpoint_ok && snap.ok &&
                    snap.ctl.recovery().from_snapshot &&
                    snap.ctl.subscription_count() == ctl.subscription_count();
    if (!checkpoint_ok) {
      std::fprintf(stderr, "[%s] FAIL: checkpoint recovery\n",
                   out.mode.c_str());
      out.ok = false;
    }
  }

  // --- 4a. Repair delta: the switch missed exactly one install.
  const table::Pipeline have = sw.pipeline_snapshot();
  const table::PipelineDiff diff = table::diff_pipelines(&have, intended);
  out.delta_bytes = table::serialize_ops(diff.ops).size();
  out.full_bytes = table::serialize_pipeline(intended).size();
  util::Timer repair_t;
  auto rec = ctl.reconcile(installer);
  out.repair_ms = repair_t.seconds() * 1e3;
  const bool repair_ok = rec.ok() && rec.value().repaired &&
                         !rec.value().full_reprogram &&
                         sw.program_digest() == intended_digest;
  if (!repair_ok) {
    std::fprintf(stderr, "[%s] FAIL: missed-install repair\n",
                 out.mode.c_str());
    out.ok = false;
  }
  out.repair_reuse = rec.ok() ? rec.value().reuse_fraction() : 0;
  out.repair_ops = rec.ok() ? rec.value().repair_ops : 0;

  // --- 4b. Full reprogram: a cold-rebooted (blank) switch.
  switchsim::Switch cold_sw(spec::make_itch_schema(), table::Pipeline{});
  pubsub::TwoPhaseInstaller cold_installer(cold_sw);
  util::Timer cold_t;
  auto cold = ctl.reconcile(cold_installer);
  out.cold_ms = cold_t.seconds() * 1e3;
  const bool cold_ok = cold.ok() && cold.value().repaired &&
                       cold.value().full_reprogram &&
                       cold_sw.program_digest() == intended_digest;
  if (!cold_ok) {
    std::fprintf(stderr, "[%s] FAIL: cold-reboot reprogram\n",
                 out.mode.c_str());
    out.ok = false;
  }

  std::printf("recovery_sweep[%s]: %d commits (%zu subs, %zu entries, %zu "
              "journal bytes) built in %.2fs\n",
              out.mode.c_str(), n_commits, out.subscriptions, out.entries,
              out.journal_bytes, out.history_s);
  for (const auto& m : out.milestones)
    std::printf("  exact replay %3.0f%%: %6zu bytes, %4zu records, %3llu "
                "commits -> %.2f ms\n",
                m.fraction * 100, m.journal_bytes, m.records,
                static_cast<unsigned long long>(m.commits), m.open_ms);
  std::printf("  checkpoint: %zu bytes -> %.2f ms (%zu subs)\n",
              out.checkpoint_bytes, out.checkpoint_open_ms,
              out.checkpoint_subs);
  std::printf("  repair (1 missed install): %zu ops, reuse %.4f, %zu vs "
              "%zu wire bytes -> %.2f ms\n",
              out.repair_ops, out.repair_reuse, out.delta_bytes,
              out.full_bytes, out.repair_ms);
  std::printf("  cold reboot: full re-image, %zu entries -> %.2f ms\n",
              out.entries, out.cold_ms);
  return true;
}

// Emits one mode's measurements as the body fields of a JSON object
// (caller wraps with braces and mode-independent keys).
void write_mode_json(std::ofstream& out, const ModeResult& r,
                     const std::string& indent) {
  out << indent << "\"commits\": " << r.commits << ",\n"
      << indent << "\"subscriptions\": " << r.subscriptions << ",\n"
      << indent << "\"entries\": " << r.entries << ",\n"
      << indent << "\"journal_bytes\": " << r.journal_bytes << ",\n"
      << indent << "\"history_seconds\": "
      << util::json::format_double(r.history_s) << ",\n"
      << indent << "\"exact_replay\": [\n";
  for (std::size_t i = 0; i < r.milestones.size(); ++i) {
    const auto& m = r.milestones[i];
    out << indent << "  {\"fraction\": "
        << util::json::format_double(m.fraction)
        << ", \"journal_bytes\": " << m.journal_bytes
        << ", \"records\": " << m.records
        << ", \"commits\": " << m.commits
        << ", \"subscriptions\": " << m.subscriptions
        << ", \"open_ms\": " << util::json::format_double(m.open_ms)
        << "}" << (i + 1 < r.milestones.size() ? "," : "") << "\n";
  }
  out << indent << "],\n"
      << indent << "\"checkpoint\": {\"journal_bytes\": "
      << r.checkpoint_bytes << ", \"open_ms\": "
      << util::json::format_double(r.checkpoint_open_ms)
      << ", \"subscriptions\": " << r.checkpoint_subs << "},\n"
      << indent << "\"repair_missed_install\": {\"ops\": " << r.repair_ops
      << ", \"reuse_fraction\": "
      << util::json::format_double(r.repair_reuse)
      << ", \"delta_bytes\": " << r.delta_bytes
      << ", \"full_bytes\": " << r.full_bytes
      << ", \"ms\": " << util::json::format_double(r.repair_ms) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "BENCH_recovery.json";
  std::string storage_mode = "mem";
  double gate_reuse = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick") quick = true;
    else if (a == "--json") json = true;
    else if (a == "--out" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--gate-reuse" && i + 1 < argc)
      gate_reuse = std::strtod(argv[++i], nullptr);
    else if (a.rfind("--storage=", 0) == 0)
      storage_mode = std::string(a.substr(10));
    else if (a == "--storage" && i + 1 < argc)
      storage_mode = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json] [--out FILE] "
                   "[--gate-reuse F] [--storage mem|file|both]\n",
                   argv[0]);
      return 2;
    }
  }
  if (storage_mode != "mem" && storage_mode != "file" &&
      storage_mode != "both") {
    std::fprintf(stderr, "unknown --storage '%s' (mem|file|both)\n",
                 storage_mode.c_str());
    return 2;
  }
  const int n_commits = quick ? 40 : 150;

  auto schema = spec::make_itch_schema();

  // The primary run keeps the original top-level JSON schema: mem unless
  // file-only was requested. --storage=both nests the file run.
  ModeResult primary;
  if (!run_mode(schema, storage_mode == "file", n_commits, primary))
    return 1;
  ModeResult file_extra;
  bool have_file_extra = false;
  if (storage_mode == "both") {
    if (!run_mode(schema, true, n_commits, file_extra)) return 1;
    have_file_extra = true;
  }

  const bool all_ok = primary.ok && (!have_file_extra || file_extra.ok);

  if (json) {
    std::ofstream out(json_path);
    out << "{\n  \"workload\": \"durable-churn\",\n"
        << "  \"seed\": " << kChurnSeed << ",\n"
        << "  \"storage\": \"" << primary.mode << "\",\n";
    write_mode_json(out, primary, "  ");
    out << ",\n  \"cold_reboot\": {\"entries\": " << primary.entries
        << ", \"ms\": " << util::json::format_double(primary.cold_ms)
        << "},\n";
    if (have_file_extra) {
      out << "  \"file\": {\n";
      write_mode_json(out, file_extra, "    ");
      out << ",\n    \"cold_reboot\": {\"entries\": " << file_extra.entries
          << ", \"ms\": " << util::json::format_double(file_extra.cold_ms)
          << "}\n  },\n";
    }
    out << "  \"all_checks_pass\": " << (all_ok ? "true" : "false")
        << "\n}\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }

  if (gate_reuse >= 0 && primary.repair_reuse < gate_reuse) {
    std::fprintf(stderr,
                 "FAIL: missed-install repair reuse %.4f below gate %.2f\n",
                 primary.repair_reuse, gate_reuse);
    return 1;
  }
  return all_ok ? 0 : 1;
}
