// Live-churn update benchmark (ISSUE 5 tentpole): a seeded stream of
// subscribe/unsubscribe operations is committed through the incremental
// compiler and installed as entry deltas (TwoPhaseInstaller::apply_delta
// -> Switch::apply_delta RCU patch). Measures, per commit:
//
//   - commit latency (incremental recompile + diff),
//   - delta install latency (serialize, stage, verify, patch, swap),
//   - control-plane ops per commit vs the installed entry count,
//   - entry reuse fraction (entries carried over unchanged).
//
// A dedicated single-subscription probe (one add commit, one remove
// commit) is reported separately — that is the paper's headline claim for
// incremental updates ("state updates can benefit from table entry
// re-use") and what CI gates on: --gate-reuse F exits non-zero when
// either probe's reuse fraction drops below F.
//
// CI runs this with --quick --gate-reuse 0.8; the committed
// BENCH_churn.json is the full run. Seeds are explicit and recorded.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <string_view>

#include "compiler/incremental.hpp"
#include "pubsub/install.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "workload/churn.hpp"

using namespace camus;

namespace {

constexpr std::uint64_t kChurnSeed = 20260806;

struct Summary {
  util::CdfSampler commit_ms;
  util::CdfSampler install_ms;
  util::CdfSampler ops_per_commit;
  util::CdfSampler reuse_fraction;
  double commit_ms_sum = 0;
  double ops_sum = 0;
  double entries_sum = 0;
};

std::string cdf_json(const util::CdfSampler& s, double sum) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"mean\": %.4f, \"p50\": %.4f, \"p99\": %.4f, "
                "\"max\": %.4f}",
                s.count() ? sum / static_cast<double>(s.count()) : 0.0,
                s.median(), s.p99(), s.max());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "BENCH_churn.json";
  double gate_reuse = -1;
  std::uint64_t seed = kChurnSeed;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick") quick = true;
    else if (a == "--json") json = true;
    else if (a == "--out" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--seed" && i + 1 < argc) seed = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--gate-reuse" && i + 1 < argc) gate_reuse = std::strtod(argv[++i], nullptr);
    else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json] [--out FILE] [--seed N] "
                   "[--gate-reuse F]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t n_base = quick ? 500 : 2000;
  const std::size_t n_ops = quick ? 60 : 500;

  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  // Exact-match field first keeps single-symbol changes local (see
  // EXPERIMENTS.md): the symbol stage absorbs the new predicate and the
  // suffix chains for untouched symbols keep their state ids.
  opts.order = bdd::OrderHeuristic::kExactFirst;

  workload::ChurnParams cp;
  cp.seed = seed;
  cp.subs.seed = seed ^ 0x5eedULL;
  cp.subs.n_subscriptions = n_base;
  cp.subs.n_symbols = 100;
  cp.subs.n_hosts = 200;
  workload::ChurnGenerator churn(schema, cp);

  // Base commit: cold start, every entry is an add.
  compiler::IncrementalCompiler inc(schema, opts);
  std::map<std::size_t, compiler::IncrementalCompiler::SubscriptionId> ids;
  {
    std::size_t slot = 0;
    for (const auto& r : churn.base()) ids[slot++] = inc.add(r);
  }
  util::Timer t0;
  auto first = inc.commit();
  if (!first.ok()) {
    std::fprintf(stderr, "initial commit failed: %s\n",
                 first.error().to_string().c_str());
    return 1;
  }
  const double initial_ms = t0.seconds() * 1e3;
  const std::size_t initial_entries = first.value().total_entries;

  switchsim::Switch sw(schema, *inc.pipeline().value());
  pubsub::TwoPhaseInstaller installer(sw);

  // Churn loop: one commit + delta install per op.
  Summary s;
  std::size_t commits = 0;
  for (std::size_t i = 0; i < n_ops; ++i) {
    auto op = churn.next();
    if (op.subscribe) {
      ids[op.slot] = inc.add(std::move(op.rule));
    } else {
      inc.remove(ids.at(op.slot));
      ids.erase(op.slot);
    }

    util::Timer tc;
    auto delta = inc.commit();
    if (!delta.ok()) {
      std::fprintf(stderr, "commit %zu failed: %s\n", i,
                   delta.error().to_string().c_str());
      return 1;
    }
    const double commit_ms = tc.seconds() * 1e3;

    util::Timer ti;
    auto report = installer.apply_delta(delta.value().ops);
    if (!report.committed) {
      std::fprintf(stderr, "delta install %zu failed: %s\n", i,
                   report.error.c_str());
      return 1;
    }
    const double install_ms = ti.seconds() * 1e3;

    ++commits;
    s.commit_ms.add(commit_ms);
    s.commit_ms_sum += commit_ms;
    s.install_ms.add(install_ms);
    s.ops_per_commit.add(static_cast<double>(delta.value().ops.size()));
    s.ops_sum += static_cast<double>(delta.value().ops.size());
    s.entries_sum += static_cast<double>(delta.value().total_entries);
    s.reuse_fraction.add(delta.value().reuse_fraction());
  }

  // Single-subscription probe: the headline reuse claim, measured on a
  // quiet pipeline (one add commit, then its removal).
  auto probe_rule = churn.next();
  while (!probe_rule.subscribe) probe_rule = churn.next();
  auto probe_id = inc.add(probe_rule.rule);
  auto add_delta = inc.commit();
  if (!add_delta.ok() ||
      !installer.apply_delta(add_delta.value().ops).committed)
    return 1;
  inc.remove(probe_id);
  auto del_delta = inc.commit();
  if (!del_delta.ok() ||
      !installer.apply_delta(del_delta.value().ops).committed)
    return 1;
  const double probe_add_reuse = add_delta.value().reuse_fraction();
  const double probe_del_reuse = del_delta.value().reuse_fraction();

  const double install_ms_sum = [&] {
    double t = 0;
    for (double v : s.install_ms.samples()) t += v;
    return t;
  }();

  std::printf("Live-churn updates: base=%zu subs, %zu churn ops (seed %llu)\n",
              n_base, n_ops,
              static_cast<unsigned long long>(seed));
  std::printf("  initial commit: %.1f ms, %zu entries\n", initial_ms,
              initial_entries);
  util::TextTable table({"metric", "mean", "p50", "p99", "max"});
  auto row = [&](const char* name, const util::CdfSampler& c, double sum) {
    table.add_row({name,
                   util::TextTable::fmt(
                       c.count() ? sum / static_cast<double>(c.count()) : 0, 3),
                   util::TextTable::fmt(c.median(), 3),
                   util::TextTable::fmt(c.p99(), 3),
                   util::TextTable::fmt(c.max(), 3)});
  };
  row("commit latency (ms)", s.commit_ms, s.commit_ms_sum);
  row("delta install (ms)", s.install_ms, install_ms_sum);
  row("ops per commit", s.ops_per_commit, s.ops_sum);
  std::printf("%s", table.to_string().c_str());
  std::printf("  entries (mean): %.0f   ops/entries: %.4f   reuse: mean %.4f "
              "min %.4f\n",
              s.entries_sum / static_cast<double>(commits),
              s.ops_sum / s.entries_sum,
              [&] {
                double t = 0;
                for (double v : s.reuse_fraction.samples()) t += v;
                return t / static_cast<double>(commits);
              }(),
              s.reuse_fraction.quantile(0.0));
  std::printf("  single-subscription probe: add reuse %.4f, remove reuse "
              "%.4f\n",
              probe_add_reuse, probe_del_reuse);
  std::printf("  switch program version: %llu (base + %zu deltas + probe)\n",
              static_cast<unsigned long long>(sw.program_version()), commits);

  if (json) {
    double reuse_sum = 0;
    for (double v : s.reuse_fraction.samples()) reuse_sum += v;
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"workload\": \"itch-churn\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"base_subscriptions\": " << n_base << ",\n"
        << "  \"churn_ops\": " << n_ops << ",\n"
        << "  \"p_subscribe\": " << cp.p_subscribe << ",\n"
        << "  \"initial\": {\"entries\": " << initial_entries
        << ", \"commit_ms\": " << util::json::format_double(initial_ms)
        << "},\n"
        << "  \"commit_ms\": " << cdf_json(s.commit_ms, s.commit_ms_sum)
        << ",\n"
        << "  \"install_ms\": " << cdf_json(s.install_ms, install_ms_sum)
        << ",\n"
        << "  \"ops_per_commit\": " << cdf_json(s.ops_per_commit, s.ops_sum)
        << ",\n"
        << "  \"entries_mean\": "
        << util::json::format_double(s.entries_sum /
                                     static_cast<double>(commits))
        << ",\n"
        << "  \"ops_vs_entries\": "
        << util::json::format_double(s.ops_sum / s.entries_sum) << ",\n"
        << "  \"reuse_fraction\": {\"mean\": "
        << util::json::format_double(reuse_sum /
                                     static_cast<double>(commits))
        << ", \"min\": "
        << util::json::format_double(s.reuse_fraction.quantile(0.0))
        << "},\n"
        << "  \"single_subscription_probe\": {\n"
        << "    \"add\": {\"ops\": " << add_delta.value().ops.size()
        << ", \"reuse_fraction\": "
        << util::json::format_double(probe_add_reuse) << "},\n"
        << "    \"remove\": {\"ops\": " << del_delta.value().ops.size()
        << ", \"reuse_fraction\": "
        << util::json::format_double(probe_del_reuse) << "}\n"
        << "  },\n"
        << "  \"final\": {\"subscriptions\": " << inc.subscription_count()
        << ", \"entries\": " << inc.pipeline().value()->total_entries()
        << ", \"switch_program_version\": " << sw.program_version()
        << "}\n"
        << "}\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }

  if (gate_reuse >= 0 &&
      (probe_add_reuse < gate_reuse || probe_del_reuse < gate_reuse)) {
    std::fprintf(stderr,
                 "REGRESSION: single-subscription reuse (add %.4f, remove "
                 "%.4f) below gate %.2f\n",
                 probe_add_reuse, probe_del_reuse, gate_reuse);
    return 1;
  }
  return 0;
}
