// Microbenchmarks (google-benchmark): the per-message and per-operation
// costs underlying the system-level results — compiled-pipeline
// classification vs the software matchers (the "software alternatives" of
// the paper's evaluation), wire codec costs, and compiler kernel costs.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "baseline/matcher.hpp"
#include "compiler/compile.hpp"
#include "proto/packet.hpp"
#include "spec/itch_spec.hpp"
#include "table/compiled.hpp"
#include "switchsim/switch.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

namespace {

struct Workbench {
  spec::Schema schema = spec::make_itch_schema();
  std::vector<lang::BoundRule> rules;
  std::vector<lang::FlatRule> flat;
  table::Pipeline pipeline;
  std::vector<lang::Env> envs;  // pre-extracted messages

  explicit Workbench(std::size_t n_rules) {
    workload::ItchSubsParams p;
    p.seed = 1;
    p.n_subscriptions = n_rules;
    p.n_symbols = 100;
    p.n_hosts = 200;
    auto subs = workload::generate_itch_subscriptions(schema, p);
    rules = std::move(subs.rules);
    flat = lang::flatten_rules(rules, schema).take();
    pipeline = compiler::compile_rules(schema, rules).take().pipeline;

    workload::FeedParams fp;
    fp.seed = 2;
    fp.n_messages = 4096;
    fp.symbols = subs.symbols;
    fp.price_min = 1;
    fp.price_max = 999;
    auto feed = workload::generate_feed(fp);
    for (const auto& fm : feed.messages) {
      lang::Env env;
      env.fields = {fm.msg.shares, util::encode_symbol(fm.msg.stock),
                    fm.msg.price};
      env.states = {0, 0};
      envs.push_back(std::move(env));
    }
  }
};

Workbench& bench_state(std::size_t n_rules) {
  static std::map<std::size_t, std::unique_ptr<Workbench>> cache;
  auto& slot = cache[n_rules];
  if (!slot) slot = std::make_unique<Workbench>(n_rules);
  return *slot;
}

void BM_PipelineClassify(benchmark::State& state) {
  auto& wb = bench_state(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wb.pipeline.evaluate_actions(wb.envs[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineClassify)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CompiledTraverse(benchmark::State& state) {
  auto& wb = bench_state(static_cast<std::size_t>(state.range(0)));
  table::CompiledPipeline cp(wb.pipeline);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& env = wb.envs[i++ & 4095];
    benchmark::DoNotOptimize(cp.traverse(env.fields, env.states));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CompiledTraverse)->Arg(100)->Arg(1000)->Arg(10000);

// The memo-hit path of the batched switch: prefix key extraction plus
// finish() from a memoized prefix state (run_prefix is skipped).
void BM_CompiledMemoHit(benchmark::State& state) {
  auto& wb = bench_state(1000);
  table::CompiledPipeline cp(wb.pipeline);
  const auto& env = wb.envs[0];
  const std::uint32_t memoized = cp.run_prefix(env.fields, env.states);
  std::uint64_t key[table::CompiledPipeline::kMaxPrefix];
  for (auto _ : state) {
    cp.prefix_key(env.fields, env.states, key);
    benchmark::DoNotOptimize(key[0]);
    benchmark::DoNotOptimize(cp.finish(memoized, env.fields, env.states));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CompiledMemoHit);

void BM_NaiveMatch(benchmark::State& state) {
  auto& wb = bench_state(static_cast<std::size_t>(state.range(0)));
  baseline::NaiveMatcher matcher(wb.flat);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(wb.envs[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NaiveMatch)->Arg(100)->Arg(1000);

void BM_CountingMatch(benchmark::State& state) {
  auto& wb = bench_state(static_cast<std::size_t>(state.range(0)));
  baseline::CountingMatcher matcher(wb.flat, wb.schema);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(wb.envs[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CountingMatch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SwitchProcessFrame(benchmark::State& state) {
  auto& wb = bench_state(1000);
  switchsim::Switch sw(wb.schema, wb.pipeline);
  proto::ItchAddOrder msg;
  msg.stock = "GOOGL";
  msg.shares = 100;
  msg.price = 500;
  proto::EthernetHeader eth;
  proto::MoldUdp64Header mold;
  const auto frame =
      proto::encode_market_data_packet(eth, 1, 2, mold, {msg});
  std::uint64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.process(frame, ++t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SwitchProcessFrame);

void BM_ItchEncode(benchmark::State& state) {
  proto::ItchAddOrder msg;
  msg.stock = "GOOGL";
  msg.shares = 100;
  msg.price = 500;
  proto::EthernetHeader eth;
  proto::MoldUdp64Header mold;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proto::encode_market_data_packet(eth, 1, 2, mold, {msg}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ItchEncode);

void BM_ItchDecode(benchmark::State& state) {
  proto::ItchAddOrder msg;
  msg.stock = "GOOGL";
  proto::EthernetHeader eth;
  proto::MoldUdp64Header mold;
  const auto frame =
      proto::encode_market_data_packet(eth, 1, 2, mold, {msg});
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::decode_market_data_packet(frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ItchDecode);

void BM_CompileRules(benchmark::State& state) {
  auto& wb = bench_state(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::compile_rules(wb.schema, wb.rules));
  }
}
BENCHMARK(BM_CompileRules)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_IntervalSetIntersect(benchmark::State& state) {
  util::Rng rng(5);
  util::IntervalSet a, b;
  for (int i = 0; i < 20; ++i) {
    const auto lo1 = rng.uniform(0, 1000000);
    a = a.unite(util::IntervalSet::range(lo1, lo1 + rng.uniform(0, 500)));
    const auto lo2 = rng.uniform(0, 1000000);
    b = b.unite(util::IntervalSet::range(lo2, lo2 + rng.uniform(0, 500)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_IntervalSetIntersect);

void BM_TcamRangeExpansion(benchmark::State& state) {
  std::uint64_t lo = 12345, hi = 9876543;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table::tcam_entries_for_range(lo, hi, 32));
    lo += 7;
    hi += 13;
  }
}
BENCHMARK(BM_TcamRangeExpansion);

}  // namespace

BENCHMARK_MAIN();
