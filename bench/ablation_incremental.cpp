// Ablation: incremental vs from-scratch compilation (the paper's §3
// sketch: "BDDs can leverage memoization, and state updates can benefit
// from table entry re-use").
//
// Base workload of N ITCH subscriptions, then a stream of single-rule
// adds/removes. Reports, per change: from-scratch recompile time,
// incremental commit time, and control-plane churn (entries added +
// removed vs total installed).
#include <cstdio>

#include "compiler/compile.hpp"
#include "compiler/incremental.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

int main() {
  std::printf("Ablation: incremental compilation (stable state ids + "
              "persistent BDD)\n\n");

  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  // Exact-match field first keeps single-symbol changes local (see
  // EXPERIMENTS.md); the declared order is also measured below.
  opts.order = bdd::OrderHeuristic::kExactFirst;

  for (std::size_t base : {1000, 10000, 50000}) {
    workload::ItchSubsParams p;
    p.seed = 77;
    p.n_subscriptions = base;
    p.n_symbols = 100;
    p.n_hosts = 200;
    auto subs = workload::generate_itch_subscriptions(schema, p);

    compiler::IncrementalCompiler inc(schema, opts);
    std::vector<lang::BoundRule> batch = subs.rules;
    for (auto& r : subs.rules) inc.add(std::move(r));
    util::Timer t0;
    auto first = inc.commit();
    if (!first.ok()) {
      std::fprintf(stderr, "commit failed: %s\n",
                   first.error().to_string().c_str());
      return 1;
    }
    const double initial_s = t0.seconds();

    // Ten single-subscription changes.
    double inc_total = 0, full_total = 0;
    std::size_t churn = 0;
    const std::size_t total_entries = first.value().total_entries;
    for (int i = 0; i < 10; ++i) {
      const std::string text = "stock == NEW" + std::to_string(i) +
                               " and price > " + std::to_string(37 + i) +
                               " : fwd(" + std::to_string(1 + i) + ")";
      auto id = inc.add_source(text);
      if (!id.ok()) return 1;
      util::Timer ti;
      auto delta = inc.commit();
      if (!delta.ok()) return 1;
      inc_total += ti.seconds();
      churn += delta.value().ops.size();

      // From-scratch comparison on the equivalent rule set.
      {
        auto parsed = lang::parse_rule(text);
        auto bound = lang::bind_rule(parsed.value(), schema);
        batch.push_back(std::move(bound).take());
        util::Timer tf;
        auto full = compiler::compile_rules(schema, batch, opts);
        if (!full.ok()) return 1;
        full_total += tf.seconds();
      }
    }

    std::printf("base=%zu subscriptions (initial commit %.3fs, %zu "
                "entries):\n",
                base, initial_s, total_entries);
    util::TextTable table({"metric", "from scratch", "incremental"});
    table.add_row({"avg time per change (ms)",
                   util::TextTable::fmt(full_total * 100, 2),
                   util::TextTable::fmt(inc_total * 100, 2)});
    table.add_row({"avg control-plane ops per change", "all entries",
                   util::TextTable::fmt(static_cast<double>(churn) / 10, 1)});
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
