// Throughput-regression harness for the data-plane fast path: replays a
// nasdaq-style feed through the per-frame reference path
// (process_messages), the batched fast path (process_batch), and — with
// --threads N — the multi-core front end (ParallelSwitch) at pool sizes
// 1,2,4,...,N. Asserts every path's output digest and counters are
// identical to the reference, and reports machine-readable throughput
// numbers. CI runs this with --quick --json and fails the build when the
// batched path regresses versus the committed BENCH_throughput.json.
//
// Latency percentiles are message-weighted (netsim::per_message_latency):
// each timed call contributes its per-message cost with weight equal to
// the messages it carried, so the trailing partial batch no longer skews
// p99 and single-thread vs multi-thread numbers are comparable.
//
// Allocation audit baked into this harness's hot loops (before -> after):
//  - workload::generate_feed reserved the "others" symbol index;
//  - extractor gained extract_into/extract_wire (no per-message vector);
//  - the batch path caches register snapshots (no per-message snapshot
//    vector) and reuses frame/offset/bucket scratch across batches.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "compiler/compile.hpp"
#include "netsim/replay.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/parallel.hpp"
#include "switchsim/switch.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

namespace {

constexpr std::size_t kMsgsPerFrame = 4;
constexpr std::size_t kBatchFrames = 64;
constexpr std::size_t kRules = 1000;

struct PathReport {
  double msgs_per_sec = 0;
  double ns_per_msg_p50 = 0;
  double ns_per_msg_p99 = 0;
};

PathReport summarize(const netsim::ReplayStats& st) {
  PathReport r;
  if (st.wall_ns > 0)
    r.msgs_per_sec = static_cast<double>(st.messages) * 1e9 /
                     static_cast<double>(st.wall_ns);
  const auto lat = netsim::per_message_latency(st);
  r.ns_per_msg_p50 = lat.p50_ns;
  r.ns_per_msg_p99 = lat.p99_ns;
  return r;
}

bool counters_equal(const switchsim::SwitchCounters& a,
                    const switchsim::SwitchCounters& b) {
  return a.rx_frames == b.rx_frames && a.parse_errors == b.parse_errors &&
         a.dropped == b.dropped && a.matched == b.matched &&
         a.tx_copies == b.tx_copies &&
         a.multicast_frames == b.multicast_frames &&
         a.state_updates == b.state_updates;
}

bool outputs_equal(const netsim::ReplayStats& a,
                   const netsim::ReplayStats& b) {
  return a.output_digest == b.output_digest && a.tx_packets == b.tx_packets &&
         a.tx_bytes == b.tx_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::size_t threads = 0;  // 0 = skip the multi-core sweep
  std::string json_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick") quick = true;
    else if (a == "--json") json = true;
    else if (a == "--out" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--threads" && i + 1 < argc)
      threads = static_cast<std::size_t>(std::stoul(argv[++i]));
  }
  const std::size_t n = quick ? 40000 : 400000;

  // Workload and pipeline: the Figure-7 nasdaq-replay shape (bursty
  // arrivals, Zipf symbol skew) against a 1000-subscription program.
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 1;
  sp.n_subscriptions = kRules;
  sp.n_symbols = 1000;
  sp.n_hosts = 200;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  // Exact-first ordering puts the symbol table ahead of the price ranges —
  // the layout the hot-key memo prefixes over.
  compiler::CompileOptions co;
  co.order = bdd::OrderHeuristic::kExactFirst;
  auto pipeline =
      compiler::compile_rules(schema, subs.rules, co).take().pipeline;

  workload::FeedParams fp;
  fp.seed = 20170830;
  fp.mode = workload::FeedMode::kNasdaqReplay;
  fp.n_messages = n;
  fp.symbols = subs.symbols;
  fp.watched_fraction = 0.005;
  fp.rate_msgs_per_sec = 150000;
  fp.zipf_s = 0.5;
  // Prices sit below most subscription thresholds, so the switch filters
  // most of the feed — the paper's selective-delivery regime. Matched
  // messages still fan out to every host whose threshold clears.
  fp.price_min = 1;
  fp.price_max = 300;
  auto feed = workload::generate_feed(fp);
  auto frames = pack_feed_frames(feed, kMsgsPerFrame);

  switchsim::Switch sw_ref(schema, pipeline);
  switchsim::Switch sw_fast(schema, pipeline);

  const auto ref = netsim::replay_per_frame(sw_ref, frames);
  const auto fast = netsim::replay_batched(sw_fast, frames, kBatchFrames);

  const bool outputs_match = outputs_equal(ref, fast) &&
                             counters_equal(sw_ref.counters(),
                                            sw_fast.counters());

  const auto rr = summarize(ref);
  const auto fr = summarize(fast);
  const double speedup =
      rr.msgs_per_sec > 0 ? fr.msgs_per_sec / rr.msgs_per_sec : 0;
  const auto& bs = sw_fast.batch_stats();
  const double hit_rate =
      bs.memo_probes > 0
          ? static_cast<double>(bs.memo_hits) /
                static_cast<double>(bs.memo_probes)
          : 0;
  const unsigned hw_cores = std::thread::hardware_concurrency();

  std::printf("throughput_pipeline: %zu msgs, %zu frames, %zu rules, "
              "batch=%zu frames, hw_cores=%u\n",
              n, frames.size(), kRules, kBatchFrames, hw_cores);
  std::printf("  per-frame: %12.0f msgs/s   ns/msg p50=%.0f p99=%.0f\n",
              rr.msgs_per_sec, rr.ns_per_msg_p50, rr.ns_per_msg_p99);
  std::printf("  batched:   %12.0f msgs/s   ns/msg p50=%.0f p99=%.0f\n",
              fr.msgs_per_sec, fr.ns_per_msg_p50, fr.ns_per_msg_p99);
  std::printf("  speedup: %.2fx   memo hit rate: %.1f%%   arena: %zu B   "
              "outputs %s\n",
              speedup, 100 * hit_rate, sw_fast.compiled().arena_bytes(),
              outputs_match ? "IDENTICAL" : "MISMATCH");

  // Multi-core sweep: pool sizes 1,2,4,...,threads. Every run gets a
  // fresh Switch so counters are differential-comparable with the
  // reference; the digest gate is what CI cares about.
  struct ThreadedRun {
    std::size_t threads = 0;
    PathReport report;
    bool match = false;
    double speedup_vs_batched = 0;
  };
  std::vector<ThreadedRun> sweep;
  bool threaded_match = true;
  if (threads > 0) {
    std::vector<std::size_t> sizes;
    for (std::size_t t = 1; t < threads; t *= 2) sizes.push_back(t);
    sizes.push_back(threads);
    for (std::size_t t : sizes) {
      switchsim::Switch sw_par(schema, pipeline);
      switchsim::ParallelSwitch pool(sw_par, t);
      const auto par = netsim::replay_batched_parallel(pool, frames,
                                                       kBatchFrames);
      ThreadedRun run;
      run.threads = t;
      run.report = summarize(par);
      run.match = outputs_equal(ref, par) &&
                  counters_equal(sw_ref.counters(), sw_par.counters());
      run.speedup_vs_batched =
          fr.msgs_per_sec > 0 ? run.report.msgs_per_sec / fr.msgs_per_sec
                              : 0;
      threaded_match = threaded_match && run.match;
      std::printf(
          "  threads=%-2zu %12.0f msgs/s   ns/msg p50=%.0f p99=%.0f   "
          "%.2fx vs batched   outputs %s\n",
          t, run.report.msgs_per_sec, run.report.ns_per_msg_p50,
          run.report.ns_per_msg_p99, run.speedup_vs_batched,
          run.match ? "IDENTICAL" : "MISMATCH");
      sweep.push_back(run);
    }
  }

  if (json) {
    std::ostringstream os;
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"workload\": \"nasdaq-replay\",\n"
        "  \"seeds\": {\"subscriptions\": 1, \"feed\": 20170830},\n"
        "  \"messages\": %zu,\n"
        "  \"frames\": %zu,\n"
        "  \"rules\": %zu,\n"
        "  \"msgs_per_frame\": %zu,\n"
        "  \"batch_frames\": %zu,\n"
        "  \"hw_cores\": %u,\n"
        "  \"output_digest\": \"%016llx\",\n"
        "  \"per_frame\": {\"msgs_per_sec\": %.0f, \"ns_per_msg_p50\": "
        "%.1f, \"ns_per_msg_p99\": %.1f},\n"
        "  \"batched\": {\"msgs_per_sec\": %.0f, \"ns_per_msg_p50\": %.1f, "
        "\"ns_per_msg_p99\": %.1f},\n"
        "  \"speedup\": %.3f,\n"
        "  \"memo_hit_rate\": %.4f,\n"
        "  \"arena_bytes\": %zu,\n"
        "  \"outputs_match\": %s",
        n, frames.size(), kRules, kMsgsPerFrame, kBatchFrames, hw_cores,
        static_cast<unsigned long long>(ref.output_digest),
        rr.msgs_per_sec, rr.ns_per_msg_p50, rr.ns_per_msg_p99,
        fr.msgs_per_sec, fr.ns_per_msg_p50, fr.ns_per_msg_p99, speedup,
        hit_rate, sw_fast.compiled().arena_bytes(),
        outputs_match ? "true" : "false");
    os << buf;
    if (!sweep.empty()) {
      os << ",\n  \"threaded\": [";
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const ThreadedRun& run = sweep[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"threads\": %zu, \"msgs_per_sec\": %.0f, "
                      "\"ns_per_msg_p50\": %.1f, \"ns_per_msg_p99\": %.1f, "
                      "\"speedup_vs_batched\": %.3f, \"outputs_match\": %s}",
                      i ? "," : "", run.threads, run.report.msgs_per_sec,
                      run.report.ns_per_msg_p50, run.report.ns_per_msg_p99,
                      run.speedup_vs_batched, run.match ? "true" : "false");
        os << buf;
      }
      os << "\n  ]";
    }
    os << "\n}\n";
    std::ofstream(json_path) << os.str();
    std::printf("%s", os.str().c_str());
  }
  return outputs_match && threaded_match ? 0 : 1;
}
