// Throughput-regression harness for the data-plane fast path: replays a
// nasdaq-style feed through the per-frame reference path
// (process_messages) and the batched fast path (process_batch), asserts
// the outputs are identical, and reports machine-readable throughput
// numbers. CI runs this with --quick --json and fails the build when the
// batched path regresses versus the committed BENCH_throughput.json.
//
// Allocation audit baked into this harness's hot loops (before -> after):
//  - workload::generate_feed reserved the "others" symbol index;
//  - extractor gained extract_into/extract_wire (no per-message vector);
//  - the batch path caches register snapshots (no per-message snapshot
//    vector) and reuses frame/offset/bucket scratch across batches.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/compile.hpp"
#include "netsim/replay.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

namespace {

constexpr std::size_t kMsgsPerFrame = 4;
constexpr std::size_t kBatchFrames = 64;
constexpr std::size_t kRules = 1000;

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct PathReport {
  double msgs_per_sec = 0;
  double ns_per_msg_p50 = 0;
  double ns_per_msg_p99 = 0;
};

// msgs_per_call[i] = messages covered by call_ns[i].
PathReport summarize(const netsim::ReplayStats& st,
                     const std::vector<std::size_t>& msgs_per_call,
                     std::size_t n_msgs) {
  PathReport r;
  if (st.wall_ns > 0)
    r.msgs_per_sec = static_cast<double>(n_msgs) * 1e9 /
                     static_cast<double>(st.wall_ns);
  std::vector<double> per_msg;
  per_msg.reserve(st.call_ns.size());
  for (std::size_t i = 0; i < st.call_ns.size(); ++i) {
    const double m = static_cast<double>(
        i < msgs_per_call.size() ? msgs_per_call[i] : 1);
    per_msg.push_back(static_cast<double>(st.call_ns[i]) / std::max(m, 1.0));
  }
  r.ns_per_msg_p50 = quantile(per_msg, 0.50);
  r.ns_per_msg_p99 = quantile(per_msg, 0.99);
  return r;
}

bool counters_equal(const switchsim::SwitchCounters& a,
                    const switchsim::SwitchCounters& b) {
  return a.rx_frames == b.rx_frames && a.parse_errors == b.parse_errors &&
         a.dropped == b.dropped && a.matched == b.matched &&
         a.tx_copies == b.tx_copies &&
         a.multicast_frames == b.multicast_frames &&
         a.state_updates == b.state_updates;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick") quick = true;
    else if (a == "--json") json = true;
    else if (a == "--out" && i + 1 < argc) json_path = argv[++i];
  }
  const std::size_t n = quick ? 40000 : 400000;

  // Workload and pipeline: the Figure-7 nasdaq-replay shape (bursty
  // arrivals, Zipf symbol skew) against a 1000-subscription program.
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 1;
  sp.n_subscriptions = kRules;
  sp.n_symbols = 1000;
  sp.n_hosts = 200;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  // Exact-first ordering puts the symbol table ahead of the price ranges —
  // the layout the hot-key memo prefixes over.
  compiler::CompileOptions co;
  co.order = bdd::OrderHeuristic::kExactFirst;
  auto pipeline =
      compiler::compile_rules(schema, subs.rules, co).take().pipeline;

  workload::FeedParams fp;
  fp.seed = 20170830;
  fp.mode = workload::FeedMode::kNasdaqReplay;
  fp.n_messages = n;
  fp.symbols = subs.symbols;
  fp.watched_fraction = 0.005;
  fp.rate_msgs_per_sec = 150000;
  fp.zipf_s = 0.5;
  // Prices sit below most subscription thresholds, so the switch filters
  // most of the feed — the paper's selective-delivery regime. Matched
  // messages still fan out to every host whose threshold clears.
  fp.price_min = 1;
  fp.price_max = 300;
  auto feed = workload::generate_feed(fp);
  auto frames = pack_feed_frames(feed, kMsgsPerFrame);

  std::vector<std::size_t> msgs_per_frame(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i)
    msgs_per_frame[i] =
        std::min(kMsgsPerFrame, n - i * kMsgsPerFrame);
  std::vector<std::size_t> msgs_per_batch;
  for (std::size_t i = 0; i < frames.size(); i += kBatchFrames) {
    std::size_t m = 0;
    for (std::size_t j = i; j < std::min(i + kBatchFrames, frames.size());
         ++j)
      m += msgs_per_frame[j];
    msgs_per_batch.push_back(m);
  }

  switchsim::Switch sw_ref(schema, pipeline);
  switchsim::Switch sw_fast(schema, pipeline);

  const auto ref = netsim::replay_per_frame(sw_ref, frames);
  const auto fast = netsim::replay_batched(sw_fast, frames, kBatchFrames);

  const bool outputs_match =
      ref.output_digest == fast.output_digest &&
      ref.tx_packets == fast.tx_packets && ref.tx_bytes == fast.tx_bytes &&
      counters_equal(sw_ref.counters(), sw_fast.counters());

  const auto rr = summarize(ref, msgs_per_frame, n);
  const auto fr = summarize(fast, msgs_per_batch, n);
  const double speedup =
      rr.msgs_per_sec > 0 ? fr.msgs_per_sec / rr.msgs_per_sec : 0;
  const auto& bs = sw_fast.batch_stats();
  const double hit_rate =
      bs.memo_probes > 0
          ? static_cast<double>(bs.memo_hits) /
                static_cast<double>(bs.memo_probes)
          : 0;

  std::printf("throughput_pipeline: %zu msgs, %zu frames, %zu rules, "
              "batch=%zu frames\n",
              n, frames.size(), kRules, kBatchFrames);
  std::printf("  per-frame: %12.0f msgs/s   ns/msg p50=%.0f p99=%.0f\n",
              rr.msgs_per_sec, rr.ns_per_msg_p50, rr.ns_per_msg_p99);
  std::printf("  batched:   %12.0f msgs/s   ns/msg p50=%.0f p99=%.0f\n",
              fr.msgs_per_sec, fr.ns_per_msg_p50, fr.ns_per_msg_p99);
  std::printf("  speedup: %.2fx   memo hit rate: %.1f%%   arena: %zu B   "
              "outputs %s\n",
              speedup, 100 * hit_rate, sw_fast.compiled().arena_bytes(),
              outputs_match ? "IDENTICAL" : "MISMATCH");

  if (json) {
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"workload\": \"nasdaq-replay\",\n"
        "  \"seeds\": {\"subscriptions\": 1, \"feed\": 20170830},\n"
        "  \"messages\": %zu,\n"
        "  \"frames\": %zu,\n"
        "  \"rules\": %zu,\n"
        "  \"msgs_per_frame\": %zu,\n"
        "  \"batch_frames\": %zu,\n"
        "  \"per_frame\": {\"msgs_per_sec\": %.0f, \"ns_per_msg_p50\": "
        "%.1f, \"ns_per_msg_p99\": %.1f},\n"
        "  \"batched\": {\"msgs_per_sec\": %.0f, \"ns_per_msg_p50\": %.1f, "
        "\"ns_per_msg_p99\": %.1f},\n"
        "  \"speedup\": %.3f,\n"
        "  \"memo_hit_rate\": %.4f,\n"
        "  \"arena_bytes\": %zu,\n"
        "  \"outputs_match\": %s\n"
        "}\n",
        n, frames.size(), kRules, kMsgsPerFrame, kBatchFrames,
        rr.msgs_per_sec, rr.ns_per_msg_p50, rr.ns_per_msg_p99,
        fr.msgs_per_sec, fr.ns_per_msg_p50, fr.ns_per_msg_p99, speedup,
        hit_rate, sw_fast.compiled().arena_bytes(),
        outputs_match ? "true" : "false");
    std::ofstream(json_path) << buf;
    std::printf("%s", buf);
  }
  return outputs_match ? 0 : 1;
}
