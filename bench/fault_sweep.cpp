// Loss-rate sweep over the fault-injected pub/sub path (ISSUE 4 tentpole
// benchmark): for each loss rate in 0..10% the same seeded feed is driven
// through the same programmed switch twice — once with MoldUDP64 gap
// recovery enabled at both recovery points, once raw — and compared
// against a fault-free baseline run.
//
// The hard assertion (exit status): with recovery enabled, every per-port
// delivery digest is bit-identical to the fault-free baseline at every
// loss rate — exactly-once, in-order delivery of 100% of the switch's
// output despite drop + duplicate + reorder on every link. The raw runs
// quantify what the faults would otherwise cost.
//
// Corruption is probed separately and NOT digest-asserted: the UDP
// checksum turns corruption into loss (recovered like any drop), but a
// 16-bit one's-complement sum provably misses the rare multi-bit flip
// whose column sums cancel, so undetected corruption is a property of the
// modeled wire protocol, not of the recovery machinery. The probe reports
// the detection rate instead.
//
// CI runs this with --quick --json as the fault-smoke job; the committed
// BENCH_fault.json is the full sweep. All seeds are explicit and recorded
// in the JSON so any row can be replayed bit-for-bit.
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/compile.hpp"
#include "netsim/fault_experiment.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

namespace {

constexpr std::uint64_t kSubsSeed = 1;
constexpr std::uint64_t kFeedSeed = 20170830;
constexpr std::uint64_t kFaultSeed = 4242;
constexpr std::uint16_t kPorts = 8;
constexpr std::size_t kRules = 200;

struct SweepRow {
  double loss_rate = 0;
  netsim::FaultExperimentResult with_recovery;
  netsim::FaultExperimentResult raw;
  bool digests_match = false;  // with_recovery vs fault-free baseline
};

std::uint64_t total_delivered(const netsim::FaultExperimentResult& r) {
  std::uint64_t n = 0;
  for (const auto& [port, count] : r.delivered) n += count;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "BENCH_fault.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick") quick = true;
    else if (a == "--json") json = true;
    else if (a == "--out" && i + 1 < argc) json_path = argv[++i];
  }
  const std::size_t n = quick ? 20000 : 120000;

  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = kSubsSeed;
  sp.n_subscriptions = kRules;
  sp.n_symbols = 100;
  sp.n_hosts = kPorts;  // forwarding ports 1..kPorts, all observed
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  auto pipeline =
      compiler::compile_rules(schema, subs.rules).take().pipeline;

  workload::FeedParams fp;
  fp.seed = kFeedSeed;
  fp.mode = workload::FeedMode::kNasdaqReplay;
  fp.n_messages = n;
  fp.symbols = subs.symbols;
  fp.watched_fraction = 0.05;
  fp.rate_msgs_per_sec = 150000;
  fp.price_min = 1;
  fp.price_max = 1500;
  auto feed = workload::generate_feed(fp);

  netsim::FaultExperimentParams base;
  base.seed = kFaultSeed;
  base.n_ports = kPorts;
  base.msgs_per_frame = 4;
  // The publisher appends the whole feed to its store up front, so
  // retention must cover the run; gaps are requested within ~1ms anyway.
  base.retransmit_capacity = n + 1;
  base.recovery.gap_timeout_us = 100;
  base.recovery.retry_backoff_us = 500;
  base.recovery.backoff_factor = 2.0;
  // With 10% loss on the request AND reply channels a recovery round
  // fails with P ~ 0.19; ten retries push per-gap give-up below 1e-7.
  base.recovery.max_retries = 10;

  // Fault-free baseline: the ground-truth per-port digests.
  netsim::FaultExperimentParams clean = base;
  clean.link_faults = fault::FaultSpec{};  // all rates zero
  switchsim::Switch sw0(schema, pipeline);
  const auto baseline = run_fault_experiment(clean, sw0, feed);

  const std::vector<double> rates =
      quick ? std::vector<double>{0.01, 0.05, 0.10}
            : std::vector<double>{0.005, 0.01, 0.02, 0.05, 0.10};

  std::vector<SweepRow> rows;
  bool all_match = true;
  for (const double rate : rates) {
    SweepRow row;
    row.loss_rate = rate;

    netsim::FaultExperimentParams p = base;
    p.link_faults.drop = rate;
    p.link_faults.duplicate = rate / 2;
    p.link_faults.reorder = rate / 2;

    switchsim::Switch sw_rec(schema, pipeline);
    row.with_recovery = run_fault_experiment(p, sw_rec, feed);

    netsim::FaultExperimentParams praw = p;
    praw.recovery_enabled = false;
    switchsim::Switch sw_raw(schema, pipeline);
    row.raw = run_fault_experiment(praw, sw_raw, feed);

    row.digests_match = row.with_recovery.digest == baseline.digest &&
                        row.with_recovery.delivered == baseline.delivered;
    all_match = all_match && row.digests_match;
    rows.push_back(std::move(row));
  }

  // Corruption probe: bit-flips on top of 5% drop. The checksum converts
  // detected corruption into recoverable loss; report how much it caught.
  netsim::FaultExperimentParams pc = base;
  pc.link_faults.drop = 0.05;
  pc.link_faults.corrupt = 0.025;
  switchsim::Switch sw_cor(schema, pipeline);
  const auto corr = run_fault_experiment(pc, sw_cor, feed);
  // Informational only: an undetected-corrupt message at switch ingress can
  // legitimately change filtering decisions, so this is not asserted.
  const bool corr_counts_full =
      total_delivered(corr) == total_delivered(baseline);

  const std::uint64_t base_total = total_delivered(baseline);
  std::printf("fault_sweep: %zu msgs, %zu rules, %u ports, baseline "
              "delivered=%llu (seeds: subs=%llu feed=%llu fault=%llu)\n",
              n, kRules, kPorts,
              static_cast<unsigned long long>(base_total),
              static_cast<unsigned long long>(kSubsSeed),
              static_cast<unsigned long long>(kFeedSeed),
              static_cast<unsigned long long>(kFaultSeed));
  std::printf("  %-6s %-10s %-10s %-9s %-9s %-9s %-8s %s\n", "loss", "recov",
              "raw", "lat_p50", "lat_p99", "lat_max", "retx", "digest");
  for (const auto& row : rows) {
    const auto& wr = row.with_recovery;
    const double recov_frac =
        base_total ? static_cast<double>(total_delivered(wr)) /
                         static_cast<double>(base_total)
                   : 0;
    const double raw_frac =
        base_total ? static_cast<double>(total_delivered(row.raw)) /
                         static_cast<double>(base_total)
                   : 0;
    const double overhead =
        wr.data_bytes
            ? static_cast<double>(wr.request_bytes + wr.retransmit_bytes) /
                  static_cast<double>(wr.data_bytes)
            : 0;
    std::printf("  %-6.3f %-10.4f %-10.4f %-9.1f %-9.1f %-9.1f %-8.4f %s\n",
                row.loss_rate, recov_frac, raw_frac,
                wr.recovery_latency_us.median(),
                wr.recovery_latency_us.p99(), wr.recovery_latency_us.max(),
                overhead, row.digests_match ? "MATCH" : "MISMATCH");
  }
  const double det_rate =
      corr.channel.corrupted
          ? static_cast<double>(corr.checksum_rejects) /
                static_cast<double>(corr.channel.corrupted)
          : 1.0;
  std::printf("  corruption probe (5%% drop + 2.5%% corrupt): %llu corrupted, "
              "%llu rejected (%.1f%%), delivery count %s\n",
              static_cast<unsigned long long>(corr.channel.corrupted),
              static_cast<unsigned long long>(corr.checksum_rejects),
              100 * det_rate, corr_counts_full ? "complete" : "incomplete");
  std::printf("  exactly-once recovery at every loss rate: %s\n",
              all_match ? "PASS" : "FAIL");

  if (json) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"workload\": \"nasdaq-replay\",\n"
        << "  \"messages\": " << n << ",\n"
        << "  \"rules\": " << kRules << ",\n"
        << "  \"ports\": " << kPorts << ",\n"
        << "  \"seeds\": {\"subscriptions\": " << kSubsSeed
        << ", \"feed\": " << kFeedSeed << ", \"fault\": " << kFaultSeed
        << "},\n"
        << "  \"recovery_params\": {\"gap_timeout_us\": "
        << base.recovery.gap_timeout_us
        << ", \"retry_backoff_us\": " << base.recovery.retry_backoff_us
        << ", \"backoff_factor\": " << base.recovery.backoff_factor
        << ", \"max_retries\": " << base.recovery.max_retries << "},\n"
        << "  \"baseline_delivered\": " << base_total << ",\n"
        << "  \"all_digests_match\": " << (all_match ? "true" : "false")
        << ",\n"
        << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      const auto& wr = row.with_recovery;
      char buf[1024];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"loss_rate\": %.4f,\n"
          "     \"recovery\": {\"delivered\": %llu, \"delivered_fraction\": "
          "%.6f, \"digests_match\": %s,\n"
          "       \"latency_us\": {\"p50\": %.2f, \"p90\": %.2f, \"p99\": "
          "%.2f, \"max\": %.2f, \"gaps\": %llu},\n"
          "       \"requests\": %llu, \"retries\": %llu, "
          "\"messages_recovered\": %llu, \"messages_lost\": %llu,\n"
          "       \"data_bytes\": %llu, \"request_bytes\": %llu, "
          "\"retransmit_bytes\": %llu, \"overhead_fraction\": %.6f,\n"
          "       \"checksum_rejects\": %llu, \"duplicates_dropped\": "
          "%llu},\n"
          "     \"raw\": {\"delivered\": %llu, \"delivered_fraction\": "
          "%.6f},\n"
          "     \"channel\": {\"offered\": %llu, \"dropped\": %llu, "
          "\"duplicated\": %llu, \"reordered\": %llu, \"corrupted\": "
          "%llu}}%s\n",
          row.loss_rate,
          static_cast<unsigned long long>(total_delivered(wr)),
          base_total ? static_cast<double>(total_delivered(wr)) /
                           static_cast<double>(base_total)
                     : 0.0,
          row.digests_match ? "true" : "false",
          wr.recovery_latency_us.median(),
          wr.recovery_latency_us.quantile(0.90),
          wr.recovery_latency_us.p99(), wr.recovery_latency_us.max(),
          static_cast<unsigned long long>(
              wr.uplink_recovery.gaps_detected +
              wr.subscriber_recovery.gaps_detected),
          static_cast<unsigned long long>(wr.uplink_recovery.requests_sent +
                                          wr.subscriber_recovery.requests_sent),
          static_cast<unsigned long long>(wr.uplink_recovery.retries +
                                          wr.subscriber_recovery.retries),
          static_cast<unsigned long long>(
              wr.uplink_recovery.messages_recovered +
              wr.subscriber_recovery.messages_recovered),
          static_cast<unsigned long long>(wr.uplink_recovery.messages_lost +
                                          wr.subscriber_recovery.messages_lost),
          static_cast<unsigned long long>(wr.data_bytes),
          static_cast<unsigned long long>(wr.request_bytes),
          static_cast<unsigned long long>(wr.retransmit_bytes),
          wr.data_bytes ? static_cast<double>(wr.request_bytes +
                                              wr.retransmit_bytes) /
                              static_cast<double>(wr.data_bytes)
                        : 0.0,
          static_cast<unsigned long long>(wr.checksum_rejects),
          static_cast<unsigned long long>(
              wr.uplink_recovery.duplicates_dropped +
              wr.subscriber_recovery.duplicates_dropped),
          static_cast<unsigned long long>(total_delivered(row.raw)),
          base_total ? static_cast<double>(total_delivered(row.raw)) /
                           static_cast<double>(base_total)
                     : 0.0,
          static_cast<unsigned long long>(wr.channel.offered),
          static_cast<unsigned long long>(wr.channel.dropped),
          static_cast<unsigned long long>(wr.channel.duplicated),
          static_cast<unsigned long long>(wr.channel.reordered),
          static_cast<unsigned long long>(wr.channel.corrupted),
          i + 1 == rows.size() ? "" : ",");
      out << buf;
    }
    out << "  ],\n";
    char cbuf[512];
    std::snprintf(
        cbuf, sizeof(cbuf),
        "  \"corruption_probe\": {\"drop\": 0.05, \"corrupt\": 0.025,\n"
        "    \"frames_corrupted\": %llu, \"checksum_rejects\": %llu, "
        "\"detection_rate\": %.4f,\n"
        "    \"delivered\": %llu, \"delivery_count_complete\": %s}\n",
        static_cast<unsigned long long>(corr.channel.corrupted),
        static_cast<unsigned long long>(corr.checksum_rejects), det_rate,
        static_cast<unsigned long long>(total_delivered(corr)),
        corr_counts_full ? "true" : "false");
    out << cbuf << "}\n";
  }
  return all_match ? 0 : 1;
}
