// Bandwidth-waste experiment (the paper's motivation, §4: "Many financial
// companies subscribe to the Nasdaq feed and broadcast it to all of their
// servers... Typically, each server is only interested in a very small
// subset of stocks. Therefore, broadcasting the feed wastes resources.").
//
// N trading servers each subscribe to a slice of the symbol universe. We
// measure the bytes delivered to servers under (a) broadcast + host
// filtering and (b) Camus switch filtering, at both packet granularity and
// message granularity (the message-splitting mode of the switch).
#include <cstdio>

#include <map>

#include "pubsub/controller.hpp"
#include "pubsub/endpoints.hpp"
#include "spec/itch_spec.hpp"
#include "util/stats.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

int main() {
  std::printf("Bandwidth waste: broadcast vs in-network filtering\n");
  std::printf("16 servers, each subscribed to ~6 of 100 symbols\n\n");

  const std::size_t kServers = 16;
  auto symbols = workload::itch_symbols(100);

  pubsub::Controller ctl(spec::make_itch_schema());
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const std::uint16_t server = static_cast<std::uint16_t>(1 + s % kServers);
    auto ok = ctl.subscribe(server, "stock == " + symbols[s]);
    if (!ok.ok()) {
      std::fprintf(stderr, "%s\n", ok.error().to_string().c_str());
      return 1;
    }
  }
  auto sw = ctl.build_switch();
  if (!sw.ok()) {
    std::fprintf(stderr, "%s\n", sw.error().to_string().c_str());
    return 1;
  }

  workload::FeedParams fp;
  fp.seed = 99;
  fp.n_messages = 100000;
  fp.symbols = symbols;
  fp.watched_fraction = 0.01;
  auto feed = workload::generate_feed(fp);

  pubsub::Publisher pub;
  std::uint64_t feed_bytes = 0;
  std::uint64_t broadcast_bytes = 0;
  std::uint64_t camus_pkt_bytes = 0;   // packet-level filtering
  std::uint64_t camus_msg_bytes = 0;   // message-level splitting
  std::uint64_t camus_pkt_copies = 0, camus_msg_copies = 0;

  // Ground truth: which server wants each symbol.
  std::map<std::string, std::uint16_t> server_of;
  for (std::size_t s = 0; s < symbols.size(); ++s)
    server_of[symbols[s]] = static_cast<std::uint16_t>(1 + s % kServers);

  std::uint64_t total_matches = 0;     // (message, interested server) pairs
  std::uint64_t pkt_delivered = 0;     // pairs delivered, packet mode
  std::uint64_t msg_delivered = 0;     // pairs delivered, splitting mode
  std::uint64_t bcast_packets = 0;

  // Batch several messages per packet: the publisher's natural framing,
  // and the case that separates the two switch modes.
  const std::size_t kBatch = 4;
  for (std::size_t i = 0; i + kBatch <= feed.messages.size(); i += kBatch) {
    std::vector<proto::ItchAddOrder> msgs;
    for (std::size_t k = 0; k < kBatch; ++k)
      msgs.push_back(feed.messages[i + k].msg);
    const auto frame = pub.publish_batch(msgs);
    const std::uint64_t t = feed.messages[i].t_us;
    feed_bytes += frame.size();
    broadcast_bytes += frame.size() * kServers;
    bcast_packets += kServers;
    total_matches += kBatch;  // every symbol has exactly one subscriber

    // Packet granularity: the prototype's parser classifies a packet by
    // its first message; whole-packet copies go to that message's ports.
    for (const auto& copy : sw.value().process(frame, t)) {
      camus_pkt_bytes += frame.size();
      ++camus_pkt_copies;
      for (const auto& m : msgs)
        if (server_of[m.stock] == copy.port) ++pkt_delivered;
    }
    // Message splitting: each server receives exactly its messages.
    for (const auto& tx : sw.value().process_messages(frame, t)) {
      camus_msg_bytes += tx.frame.size();
      ++camus_msg_copies;
      auto pkt = proto::decode_market_data_packet(tx.frame);
      if (pkt) msg_delivered += pkt->itch.add_orders.size();
    }
  }

  util::TextTable table({"delivery mode", "bytes to servers", "packets",
                         "vs broadcast", "coverage"});
  auto row = [&](const char* label, std::uint64_t bytes,
                 std::uint64_t copies, std::uint64_t delivered) {
    table.add_row({label, std::to_string(bytes), std::to_string(copies),
                   util::TextTable::fmt(
                       100.0 * static_cast<double>(bytes) /
                           static_cast<double>(broadcast_bytes),
                       1) +
                       "%",
                   util::TextTable::fmt(100.0 *
                                            static_cast<double>(delivered) /
                                            static_cast<double>(total_matches),
                                        1) +
                       "%"});
  };
  row("broadcast to all servers", broadcast_bytes, bcast_packets,
      total_matches);
  row("Camus, packet granularity", camus_pkt_bytes, camus_pkt_copies,
      pkt_delivered);
  row("Camus, message splitting", camus_msg_bytes, camus_msg_copies,
      msg_delivered);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\n'coverage' = interested-(server,message) pairs actually "
      "delivered.\nPacket-granularity filtering (the workshop prototype's "
      "first-message parser)\nremoves the broadcast waste but misses "
      "matches deeper in batched packets;\nmessage splitting delivers "
      "exactly the subscribed content.\n");
  return 0;
}
