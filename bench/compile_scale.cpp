// Compile-at-scale smoke: the 10^5-subscription regime the partitioned
// compiler exists for, in one self-gating binary.
//
// For each size it compiles the Figure-5c ITCH workload twice — the
// monolithic baseline and the scale layout (partition kForce + entry
// interning) — and records compile seconds, pipeline entries,
// entries-per-subscription, peak RSS, and the largest per-shard BDD
// arena. At the smallest size it additionally keeps the monolithic
// reference MTBDD and runs the camus::verify equivalence checker over
// the stitched pipeline, so the bench itself proves the scale layout
// sound before timing it.
//
// Gates (any violation exits non-zero, for CI):
//   * equivalence must be proven at the probe size;
//   * sublinear entry growth — entries-per-subscription of the scale
//     layout at the largest size must be <= --gate-ratio (default 0.5)
//     times the ratio at the smallest size;
//   * --gate-seconds S: scale-layout compile time cap at every size;
//   * --gate-rss-mb M: peak-RSS cap recorded right after the largest
//     scale-layout compile (the monolithic baseline runs *after* it at
//     each size, so the cap measures the partitioned path, not the
//     baseline's union BDD).
//
// The emitted JSON carries an FNV-1a digest of the serialized scale
// pipeline per size. The compile is deterministic at any thread count
// (canonical shard stitch order), so the committed BENCH_compile.json
// digest pins the exact table layout CI must reproduce.
//
// Flags: --quick (2K/20K), --full (adds 10^6), --threads N (0 = hw),
// --json, --out FILE, --gate-seconds S, --gate-rss-mb M, --gate-ratio R.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/compile.hpp"
#include "spec/itch_spec.hpp"
#include "table/serialize.hpp"
#include "table/table.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "verify/equivalence.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Row {
  std::size_t n = 0;
  bool has_mono = false;
  double mono_seconds = 0;
  std::uint64_t mono_entries = 0;
  double scale_seconds = 0;
  std::uint64_t scale_entries = 0;
  double scale_ratio = 0;  // entries per subscription
  std::size_t partition_groups = 0;
  std::size_t peak_rss_mb = 0;
  std::size_t shard_bdd_mb = 0;
  std::uint64_t digest = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, full = false, want_json = false;
  std::size_t threads = 0;
  double gate_seconds = 0, gate_ratio = 0.5;
  std::size_t gate_rss_mb = 0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--full") {
      full = true;
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
      want_json = true;
    } else if (arg == "--gate-seconds" && i + 1 < argc) {
      gate_seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--gate-rss-mb" && i + 1 < argc) {
      gate_rss_mb =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--gate-ratio" && i + 1 < argc) {
      gate_ratio = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--full] [--threads N] [--json] "
                   "[--out FILE]\n          [--gate-seconds S] "
                   "[--gate-rss-mb M] [--gate-ratio R]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<std::size_t> sizes = {2000, 100000};
  if (quick) sizes = {2000, 20000};
  if (full) sizes.push_back(1000000);
  // The monolithic baseline is informative, not load-bearing; skip it
  // where its union BDD would dominate the wall clock (10^6 takes ~7min
  // vs ~45s partitioned).
  const std::size_t mono_cap = 200000;

  auto schema = spec::make_itch_schema();
  std::printf("compile-at-scale: fig5c ITCH workload, scale layout = "
              "partition(force) + intern, threads=%zu\n\n",
              threads);
  util::TextTable table({"#subs", "mono (s)", "mono entries", "scale (s)",
                         "scale entries", "entries/sub", "shards",
                         "peak rss (MB)", "shard bdd (MB)"});

  std::vector<Row> rows;
  bool equivalence_verified = false;
  std::string failure;

  for (std::size_t n : sizes) {
    workload::ItchSubsParams p;
    p.seed = 42;
    p.n_subscriptions = n;
    p.n_symbols = 100;
    p.n_hosts = 200;
    p.price_max = 1000;
    auto subs = workload::generate_itch_subscriptions(schema, p);

    Row row;
    row.n = n;

    compiler::CompileOptions sopts;
    sopts.threads = threads;
    sopts.partition = compiler::PartitionMode::kForce;
    sopts.partition_min_rules = 0;
    sopts.intern_entries = true;
    // Smallest size doubles as the soundness probe: keep the monolithic
    // reference MTBDD and prove the stitched pipeline equivalent.
    const bool probe = n == sizes.front();
    sopts.partition_reference = probe;

    util::Timer ts;
    auto sc = compiler::compile_rules(schema, subs.rules, sopts);
    row.scale_seconds = ts.seconds();
    if (!sc.ok()) {
      std::fprintf(stderr, "scale compile failed at %zu: %s\n", n,
                   sc.error().to_string().c_str());
      return 1;
    }
    const auto& sstats = sc.value().stats;
    row.scale_entries = sstats.total_entries;
    row.scale_ratio =
        static_cast<double>(sstats.total_entries) / static_cast<double>(n);
    row.partition_groups = sstats.partition_groups;
    row.peak_rss_mb = sstats.mem.peak_rss >> 20;
    row.shard_bdd_mb = sstats.mem.bdd_bytes >> 20;
    row.digest = fnv1a(table::serialize_pipeline(sc.value().pipeline));

    if (probe) {
      const auto eq = verify::check_equivalence(
          *sc.value().manager, sc.value().root, sc.value().pipeline, schema);
      equivalence_verified = eq.proven_equivalent();
      if (!equivalence_verified)
        failure = "equivalence not proven at n=" + std::to_string(n) + ": " +
                  eq.detail;
    }

    if (n <= mono_cap) {
      util::Timer tm;
      auto mc = compiler::compile_rules(schema, subs.rules, {});
      row.mono_seconds = tm.seconds();
      if (!mc.ok()) {
        std::fprintf(stderr, "monolithic compile failed at %zu: %s\n", n,
                     mc.error().to_string().c_str());
        return 1;
      }
      row.has_mono = true;
      row.mono_entries = mc.value().stats.total_entries;
    }

    table.add_row({std::to_string(n),
                   row.has_mono ? util::TextTable::fmt(row.mono_seconds, 2)
                                : "-",
                   row.has_mono ? std::to_string(row.mono_entries) : "-",
                   util::TextTable::fmt(row.scale_seconds, 2),
                   std::to_string(row.scale_entries),
                   util::TextTable::fmt(row.scale_ratio, 4),
                   std::to_string(row.partition_groups),
                   std::to_string(row.peak_rss_mb),
                   std::to_string(row.shard_bdd_mb)});
    rows.push_back(row);

    if (gate_seconds > 0 && row.scale_seconds > gate_seconds && failure.empty())
      failure = "scale compile at n=" + std::to_string(n) + " took " +
                std::to_string(row.scale_seconds) + "s > gate " +
                std::to_string(gate_seconds) + "s";
  }
  std::printf("%s", table.to_string().c_str());

  const Row& small = rows.front();
  const Row& large = rows.back();
  const bool sublinear =
      large.scale_ratio <= gate_ratio * small.scale_ratio;
  std::printf("\nentries/sub: %0.4f @ %zu -> %0.4f @ %zu (gate: <= %0.2fx)\n",
              small.scale_ratio, small.n, large.scale_ratio, large.n,
              gate_ratio);
  std::printf("equivalence @ %zu: %s\n", small.n,
              equivalence_verified ? "proven" : "NOT PROVEN");
  if (!sublinear && failure.empty())
    failure = "entry growth not sublinear: " +
              std::to_string(large.scale_ratio) + " > " +
              std::to_string(gate_ratio) + " * " +
              std::to_string(small.scale_ratio);
  if (gate_rss_mb > 0 && large.peak_rss_mb > gate_rss_mb && failure.empty())
    failure = "peak RSS " + std::to_string(large.peak_rss_mb) + " MB > gate " +
              std::to_string(gate_rss_mb) + " MB";

  if (want_json) {
    std::FILE* out =
        out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"workload\": \"itch-fig5c\",\n  \"seed\": 42,\n"
                 "  \"threads\": %zu,\n  \"equivalence_verified\": %s,\n"
                 "  \"gate_ratio\": %g,\n  \"sublinear_ok\": %s,\n"
                 "  \"sizes\": [\n",
                 threads, equivalence_verified ? "true" : "false", gate_ratio,
                 sublinear ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "    {\"n\": %zu, \"scale_seconds\": %.4f, "
                   "\"scale_entries\": %" PRIu64
                   ", \"entries_per_sub\": %.6f, \"partition_groups\": %zu, "
                   "\"peak_rss_mb\": %zu, \"shard_bdd_mb\": %zu, "
                   "\"digest\": \"%016" PRIx64 "\"",
                   r.n, r.scale_seconds, r.scale_entries, r.scale_ratio,
                   r.partition_groups, r.peak_rss_mb, r.shard_bdd_mb,
                   r.digest);
      if (r.has_mono)
        std::fprintf(out,
                     ", \"mono_seconds\": %.4f, \"mono_entries\": %" PRIu64,
                     r.mono_seconds, r.mono_entries);
      std::fprintf(out, "}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout) std::fclose(out);
  }

  if (!failure.empty()) {
    std::fprintf(stderr, "\nGATE FAILED: %s\n", failure.c_str());
    return 1;
  }
  return 0;
}
