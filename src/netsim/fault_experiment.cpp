#include "netsim/fault_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <utility>

#include "netsim/sim.hpp"
#include "proto/packet.hpp"
#include "pubsub/endpoints.hpp"

namespace camus::netsim {

namespace {

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

std::uint64_t fnv_fold(std::uint64_t h, std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}

// Re-arms a clock-free recovery entity (FeedHandler / subscriber) on the
// simulator: after every interaction, arm() schedules one event at the
// entity's next deadline. Redundant events are harmless — on_timer no-ops
// when fired early — so a moved deadline just costs one extra callback.
struct TimerPump {
  Simulator* sim = nullptr;
  std::function<double()> deadline;
  std::function<void(double)> fire;
  double armed = std::numeric_limits<double>::infinity();

  void arm() {
    const double d = deadline();
    if (!std::isfinite(d) || d >= armed) return;
    armed = d;
    sim->at(std::max(d, sim->now_us()), [this] {
      armed = std::numeric_limits<double>::infinity();
      fire(sim->now_us());
      arm();
    });
  }
};

proto::EthernetHeader reverse_eth() {
  proto::EthernetHeader eth;
  eth.dst = 0x0200c0ffee01ULL;  // back toward the feed source
  eth.src = 0x0200ab1e0001ULL;
  return eth;
}

void accumulate(fault::LinkFaults::Stats& into,
                const fault::LinkFaults::Stats& s) {
  into.offered += s.offered;
  into.delivered += s.delivered;
  into.dropped += s.dropped;
  into.duplicated += s.duplicated;
  into.reordered += s.reordered;
  into.corrupted += s.corrupted;
}

void accumulate(pubsub::RecoveryStats& into, const pubsub::RecoveryStats& s) {
  into.frames_accepted += s.frames_accepted;
  into.messages_delivered += s.messages_delivered;
  into.duplicates_dropped += s.duplicates_dropped;
  into.overflow_dropped += s.overflow_dropped;
  into.seq_jump_rejects += s.seq_jump_rejects;
  into.gaps_detected += s.gaps_detected;
  into.requests_sent += s.requests_sent;
  into.retries += s.retries;
  into.messages_recovered += s.messages_recovered;
  into.messages_lost += s.messages_lost;
}

enum class FrameKind { kData, kRetransmit, kHeartbeat };

}  // namespace

FaultExperimentResult run_fault_experiment(const FaultExperimentParams& params,
                                           switchsim::Switch& sw,
                                           const workload::Feed& feed) {
  FaultExperimentResult result;
  result.feed_messages = feed.messages.size();

  Simulator sim;

  // Each channel derives its own decision stream from (seed, channel id):
  // 0 = uplink, 1 = uplink reverse (requests to the publisher),
  // 2p = downlink of port p, 2p+1 = its reverse (requests to the switch).
  const auto channel_faults = [&](std::uint64_t id) {
    return fault::LinkFaults(fault::Plan(
        params.link_faults,
        params.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))));
  };
  fault::LinkFaults up_faults = channel_faults(0);
  fault::LinkFaults up_req_faults = channel_faults(1);
  std::deque<fault::LinkFaults> down_faults, down_req_faults;

  Link up(params.link_gbps, params.propagation_us);
  Link up_rev(params.link_gbps, params.propagation_us);
  std::deque<Link> down, down_rev;
  for (std::uint16_t p = 1; p <= params.n_ports; ++p) {
    down.emplace_back(params.link_gbps, params.propagation_us);
    down_rev.emplace_back(params.link_gbps, params.propagation_us);
    down_faults.push_back(channel_faults(2ULL * p));
    down_req_faults.push_back(channel_faults(2ULL * p + 1));
    result.delivered[p] = 0;
    result.digest[p] = kFnvBasis;
  }

  pubsub::Publisher pub("CAMUS00001", params.retransmit_capacity);
  pubsub::FeedSequencer sequencer(params.retransmit_capacity);

  const auto fold_message = [&](std::uint16_t port,
                                const proto::ItchAddOrder& msg) {
    result.digest[port] = fnv_fold(result.digest[port],
                                   proto::encode_itch_message(msg));
    ++result.delivered[port];
  };

  // --- Downlink: switch egress -> subscriber, with per-port faults.
  std::vector<std::unique_ptr<pubsub::RecoveringSubscriber>> subs;
  std::deque<TimerPump> sub_pumps;

  std::function<void(std::uint16_t, std::vector<std::uint8_t>, FrameKind)>
      send_down = [&](std::uint16_t port, std::vector<std::uint8_t> frame,
                      FrameKind kind) {
        if (port == 0 || port > params.n_ports) return;
        if (kind == FrameKind::kRetransmit) {
          ++result.retransmit_frames;
          result.retransmit_bytes += frame.size();
        } else if (kind == FrameKind::kHeartbeat) {
          ++result.heartbeat_frames;
          result.heartbeat_bytes += frame.size();
        } else {
          ++result.data_frames;
          result.data_bytes += frame.size();
        }
        const std::size_t i = port - 1u;
        const double t_nic =
            down[i].transmit(sim.now_us() + params.switch_pipeline_us,
                             frame.size());
        for (auto& a : down_faults[i].offer(t_nic, frame)) {
          sim.at(a.t_us, [&, port, bytes = std::move(a.bytes)] {
            const std::size_t k = port - 1u;
            if (params.recovery_enabled) {
              subs[k]->deliver(sim.now_us(), bytes);
              sub_pumps[k].arm();
              return;
            }
            // Raw mode: count whatever arrives, in arrival order.
            const auto pkt = proto::decode_market_data_packet(bytes);
            if (!pkt) {
              ++result.malformed;
              return;
            }
            for (const auto& m : pkt->itch.add_orders) fold_message(port, m);
          });
        }
      };

  // --- Switch: logical clock = the frame's first MoldUDP sequence, so
  // stateful windows are a function of the message stream, not of how long
  // recovery delayed a frame.
  const auto switch_process = [&](std::uint64_t first_seq,
                                  std::span<const std::uint8_t> frame) {
    auto txs = sw.process_messages(frame, first_seq);
    for (auto& tx : txs) {
      if (params.recovery_enabled) sequencer.seal(tx.port, tx.frame);
      send_down(tx.port, std::move(tx.frame), FrameKind::kData);
    }
  };

  // Subscriber retransmission requests travel the reverse downlink to the
  // sequencer; replies re-enter the (faulted) forward downlink.
  for (std::uint16_t p = 1; p <= params.n_ports; ++p) {
    subs.push_back(std::make_unique<pubsub::RecoveringSubscriber>(
        p, params.recovery,
        [&, p](std::uint64_t, const proto::ItchAddOrder& msg) {
          fold_message(p, msg);
        },
        [&, p](const proto::MoldUdp64Request& req) {
          auto rf = proto::encode_retransmit_request(
              reverse_eth(), 0x0a0000ffu + p, 0x0a000002u, req);
          ++result.request_frames;
          result.request_bytes += rf.size();
          const std::size_t i = p - 1u;
          const double t = down_rev[i].transmit(sim.now_us(), rf.size());
          for (auto& a : down_req_faults[i].offer(t, rf)) {
            sim.at(a.t_us, [&, p, bytes = std::move(a.bytes)] {
              if (!proto::verify_udp_checksum(bytes)) return;
              const auto r = proto::decode_retransmit_request(bytes);
              if (!r) return;
              for (auto& f :
                   sequencer.retransmit(p, r->sequence, r->count))
                send_down(p, std::move(f), FrameKind::kRetransmit);
            });
          }
        }));
    sub_pumps.push_back(TimerPump{
        &sim, [&, p] { return subs[p - 1u]->next_deadline(); },
        [&, p](double now) {
          subs[p - 1u]->on_timer(now);
        }});
  }

  // --- Uplink: publisher -> FeedHandler (switch ingress), with recovery
  // requests traveling the reverse uplink to the publisher's store.
  std::function<void(std::vector<std::uint8_t>)> uplink_deliver;

  pubsub::FeedHandler fh(
      params.recovery,
      [&](std::uint64_t first_seq, std::vector<std::uint8_t> frame) {
        switch_process(first_seq, frame);
      },
      [&](const proto::MoldUdp64Request& req) {
        auto rf = proto::encode_retransmit_request(reverse_eth(), 0x0a000002u,
                                                   0x0a000001u, req);
        ++result.request_frames;
        result.request_bytes += rf.size();
        const double t = up_rev.transmit(sim.now_us(), rf.size());
        for (auto& a : up_req_faults.offer(t, rf)) {
          sim.at(a.t_us, [&, bytes = std::move(a.bytes)] {
            if (!proto::verify_udp_checksum(bytes)) return;
            const auto r = proto::decode_retransmit_request(bytes);
            if (!r) return;
            for (auto& f : pub.retransmit(*r)) {
              ++result.retransmit_frames;
              result.retransmit_bytes += f.size();
              const double t2 = up.transmit(sim.now_us(), f.size());
              for (auto& a2 : up_faults.offer(t2, f)) {
                sim.at(a2.t_us, [&, bytes2 = std::move(a2.bytes)]() mutable {
                  uplink_deliver(std::move(bytes2));
                });
              }
            }
          });
        }
      },
      std::max<std::size_t>(params.msgs_per_frame, 1));
  TimerPump fh_pump{&sim, [&] { return fh.next_deadline(); },
                    [&](double now) { fh.on_timer(now); }};

  uplink_deliver = [&](std::vector<std::uint8_t> bytes) {
    if (params.recovery_enabled) {
      fh.deliver(sim.now_us(), bytes);
      fh_pump.arm();
      return;
    }
    // Raw mode: whatever parses goes straight to the switch, in arrival
    // order, corrupted or not.
    proto::MarketDataView view;
    std::vector<std::uint32_t> offsets;
    if (!proto::scan_market_data_packet(bytes, view, offsets)) {
      ++result.malformed;
      return;
    }
    switch_process(view.mold.sequence, bytes);
  };

  // --- Publish the feed: batch messages into frames, stamp each frame's
  // departure with the feed timestamp of its last message.
  std::vector<proto::ItchAddOrder> batch;
  const std::size_t per_frame = std::max<std::size_t>(params.msgs_per_frame, 1);
  batch.reserve(per_frame);
  double t_last = 0;
  for (std::size_t i = 0; i < feed.messages.size(); ++i) {
    batch.push_back(feed.messages[i].msg);
    if (batch.size() < per_frame && i + 1 != feed.messages.size()) continue;
    std::vector<std::uint8_t> frame = pub.publish_batch(batch);
    batch.clear();
    ++result.frames_published;
    ++result.data_frames;
    result.data_bytes += frame.size();
    const double t_pub = static_cast<double>(feed.messages[i].t_us);
    const double t = up.transmit(t_pub, frame.size());
    t_last = std::max(t_last, t);
    for (auto& a : up_faults.offer(t, frame)) {
      sim.at(a.t_us, [&, bytes = std::move(a.bytes)]() mutable {
        uplink_deliver(std::move(bytes));
      });
    }
  }

  // --- Heartbeats after the feed ends: the uplink one advertises the
  // publisher horizon, the per-port ones the sequencer horizon, so the
  // reassemblers can detect loss of the stream's tail. Heartbeats travel
  // the same faulted channels; a lost one is covered by the next.
  const auto schedule_port_heartbeats = [&](double t0) {
    for (std::size_t j = 1; j <= params.heartbeats; ++j) {
      const double t_hb = t0 + static_cast<double>(j) * params.heartbeat_us;
      for (std::uint16_t p = 1; p <= params.n_ports; ++p) {
        sim.at(t_hb, [&, p] {
          auto f = sequencer.heartbeat(p);
          if (!f.empty()) send_down(p, std::move(f), FrameKind::kHeartbeat);
        });
      }
    }
  };
  if (params.recovery_enabled) {
    for (std::size_t j = 1; j <= params.heartbeats; ++j) {
      const double t_hb =
          t_last + static_cast<double>(j) * params.heartbeat_us;
      sim.at(t_hb, [&] {
        auto f = pub.heartbeat();
        ++result.heartbeat_frames;
        result.heartbeat_bytes += f.size();
        const double t = up.transmit(sim.now_us(), f.size());
        for (auto& a : up_faults.offer(t, f)) {
          sim.at(a.t_us, [&, bytes = std::move(a.bytes)]() mutable {
            uplink_deliver(std::move(bytes));
          });
        }
      });
    }
    schedule_port_heartbeats(t_last);
  }

  sim.run();

  // A trailing partial publisher group (feed size not divisible by the
  // batch size) is held by the FeedHandler until end of session; release
  // it now and cover its egress with one more heartbeat window.
  if (params.recovery_enabled && fh.flush_residual()) {
    schedule_port_heartbeats(sim.now_us());
    sim.run();
  }

  // --- Collect.
  result.uplink_recovery = fh.stats();
  result.checksum_rejects += fh.checksum_rejects();
  result.malformed += fh.malformed();
  for (const double s : fh.stats().gap_block_us.samples())
    result.recovery_latency_us.add(s);
  for (const auto& sub : subs) {
    accumulate(result.subscriber_recovery, sub->stats());
    result.checksum_rejects += sub->checksum_rejects();
    result.malformed += sub->malformed();
    for (const double s : sub->stats().gap_block_us.samples())
      result.recovery_latency_us.add(s);
  }
  accumulate(result.channel, up_faults.stats());
  accumulate(result.channel, up_req_faults.stats());
  for (const auto& lf : down_faults) accumulate(result.channel, lf.stats());
  for (const auto& lf : down_req_faults)
    accumulate(result.channel, lf.stats());
  result.duration_us = sim.now_us();
  return result;
}

}  // namespace camus::netsim
