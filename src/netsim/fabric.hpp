// Multi-switch spine–leaf topology: every node is a full
// switchsim::Switch, spine→leaf downlinks run through the seeded
// fault::LinkFaults channel with per-hop latency, and each node carries
// its own TwoPhaseInstaller so the pubsub::FabricController can program
// the whole fabric transactionally (targets()).
//
// Data path of one ingress frame:
//   ingress ──ECMP (flow hash % spines)──▶ spine ──per-(spine,leaf) faulty
//   link──▶ leaf ──▶ subscriber ports
// The spine classifies and replicates the frame onto the downlinks its
// steering rules select (TxCopy.port == leaf index by the FabricSpec
// downlink convention); each selected leaf classifies independently and
// delivers to its local subscriber ports. Every spine runs the same
// steering program, so ECMP spraying cannot change delivery semantics —
// only timing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "compiler/fabric.hpp"
#include "fault/plan.hpp"
#include "pubsub/fabric.hpp"
#include "pubsub/install.hpp"
#include "spec/schema.hpp"
#include "switchsim/switch.hpp"

namespace camus::netsim {

struct FabricTopologyOptions {
  compiler::FabricSpec spec;
  // Fault model of every spine→leaf downlink; each link derives a private
  // deterministic plan from (fault_seed, spine, leaf).
  fault::FaultSpec downlink_faults;
  std::uint64_t fault_seed = 1;
  double spine_latency_us = 1.0;     // ingress → spine
  double downlink_latency_us = 2.0;  // spine → leaf
};

// One frame copy that reached a subscriber port.
struct FabricDelivery {
  std::size_t leaf = 0;
  std::uint16_t port = 0;
  double t_us = 0;

  friend auto operator<=>(const FabricDelivery&,
                          const FabricDelivery&) = default;
};

class Fabric {
 public:
  Fabric(spec::Schema schema, FabricTopologyOptions opts);

  std::size_t spines() const noexcept { return spine_.size(); }
  std::size_t leaves() const noexcept { return leaf_.size(); }
  const compiler::FabricSpec& spec() const noexcept { return opts_.spec; }

  switchsim::Switch& spine(std::size_t i) { return *spine_[i].sw; }
  switchsim::Switch& leaf(std::size_t i) { return *leaf_[i].sw; }
  pubsub::TwoPhaseInstaller& spine_installer(std::size_t i) {
    return *spine_[i].installer;
  }
  pubsub::TwoPhaseInstaller& leaf_installer(std::size_t i) {
    return *leaf_[i].installer;
  }

  // Installer handles in topology order for the FabricController.
  pubsub::FabricTargets targets();

  // Directly reprograms every switch (no control channel) — benches and
  // tests that do not exercise the install path.
  void program(const compiler::FabricProgram& program);

  // Injects one wire frame at t_us: ECMP spine choice, spine
  // classification, per-downlink faults+latency, leaf classification.
  // Returns the (leaf, port, arrival time) deliveries, sorted.
  std::vector<FabricDelivery> inject(std::span<const std::uint8_t> frame,
                                     double t_us);

  // Fault-free classification of pre-extracted field values through
  // spine 0 and the selected leaves — the delivery SET the fabric
  // computes, independent of link faults and timing. The differential
  // suites compare this against the monolithic oracle's port set.
  std::vector<std::pair<std::size_t, std::uint16_t>> deliver_env(
      const std::vector<std::uint64_t>& fields, std::uint64_t now_us = 0);

  // Replaces a node with a factory-blank switch (empty program, fence 0)
  // and a fresh installer — a power-cycle that lost the program. The
  // controller's reconcile() must re-image it.
  void reboot_leaf(std::size_t i);
  void reboot_spine(std::size_t i);

  const fault::LinkFaults::Stats& downlink_stats(std::size_t spine,
                                                 std::size_t leaf) const {
    return links_[spine * leaf_.size() + leaf].stats();
  }

 private:
  struct Node {
    std::unique_ptr<switchsim::Switch> sw;
    std::unique_ptr<pubsub::TwoPhaseInstaller> installer;
  };

  Node make_node() const;
  fault::LinkFaults& link(std::size_t spine, std::size_t leaf) {
    return links_[spine * leaf_.size() + leaf];
  }

  spec::Schema schema_;
  FabricTopologyOptions opts_;
  std::vector<Node> spine_;
  std::vector<Node> leaf_;
  std::vector<fault::LinkFaults> links_;  // [spine * leaves + leaf]
  std::uint64_t flows_ = 0;
};

}  // namespace camus::netsim
