#include "netsim/market_experiment.hpp"

#include "proto/packet.hpp"

namespace camus::netsim {

MarketExperimentResult run_market_experiment(
    const MarketExperimentParams& params, switchsim::Switch& sw,
    const workload::Feed& feed, const std::string& watched_symbol) {
  MarketExperimentResult result;
  result.latency_us.reserve(feed.watched_count);
  result.watched_expected = feed.watched_count;

  Simulator sim;
  Link up(params.publisher_link_gbps, params.link_propagation_us);
  Link down(params.subscriber_link_gbps, params.link_propagation_us);
  const double per_msg_cpu_us =
      (params.mode == FilterMode::kHostFilter ? params.host_filter_cost_us
                                              : 0.0) +
      params.deliver_cost_us;
  FifoServer cpu(per_msg_cpu_us, params.host_queue_limit);

  proto::EthernetHeader eth;
  eth.dst = 0x01005e000001ULL;  // feed multicast group MAC
  eth.src = 0x0200deadbeefULL;

  std::uint64_t seq = 1;
  for (const auto& fm : feed.messages) {
    proto::MoldUdp64Header mold;
    mold.sequence = seq++;
    std::vector<std::uint8_t> frame = proto::encode_market_data_packet(
        eth, /*ip_src=*/0x0a000001, /*ip_dst=*/0xe8010101, mold, {fm.msg});
    const bool watched = fm.msg.stock == watched_symbol;
    const double t_pub = static_cast<double>(fm.t_us);
    ++result.published;

    // Publisher NIC -> switch.
    const double t_at_switch = up.transmit(t_pub, frame.size());
    sim.at(t_at_switch, [&, frame = std::move(frame), watched, t_pub] {
      const auto copies = sw.process(
          frame, static_cast<std::uint64_t>(sim.now_us()));
      for (const auto& copy : copies) {
        if (copy.port != params.subscriber_port) continue;
        ++result.delivered_to_host;
        // Switch pipeline + downlink serialization.
        const double t_nic = down.transmit(
            sim.now_us() + params.switch_pipeline_us, frame.size());
        sim.at(t_nic, [&, watched, t_pub] {
          // Subscriber CPU: filter (baseline) and/or consume.
          const double t_done = cpu.serve(sim.now_us());
          if (t_done < 0) return;  // queue overflow: message dropped
          if (!watched) return;
          sim.at(t_done, [&, t_pub] {
            ++result.watched_received;
            result.latency_us.add(sim.now_us() - t_pub);
          });
        });
      }
    });
  }

  sim.run();
  result.host_drops = cpu.dropped();
  result.duration_us =
      feed.messages.empty() ? 0 : static_cast<double>(feed.messages.back().t_us);
  return result;
}

FanoutResult run_fanout_experiment(
    const MarketExperimentParams& params, switchsim::Switch& sw,
    const workload::Feed& feed,
    const std::map<std::string, std::uint16_t>& interest,
    std::uint16_t n_ports) {
  FanoutResult result;

  Simulator sim;
  Link up(params.publisher_link_gbps, params.link_propagation_us);
  std::vector<Link> down;
  std::vector<FifoServer> cpu;
  const double per_msg_cpu_us =
      (params.mode == FilterMode::kHostFilter ? params.host_filter_cost_us
                                              : 0.0) +
      params.deliver_cost_us;
  for (std::uint16_t p = 0; p < n_ports; ++p) {
    down.emplace_back(params.subscriber_link_gbps,
                      params.link_propagation_us);
    cpu.emplace_back(per_msg_cpu_us);
  }

  proto::EthernetHeader eth;
  eth.dst = 0x01005e000001ULL;
  eth.src = 0x0200deadbeefULL;

  std::uint64_t seq = 1;
  for (const auto& fm : feed.messages) {
    proto::MoldUdp64Header mold;
    mold.sequence = seq++;
    std::vector<std::uint8_t> frame = proto::encode_market_data_packet(
        eth, 0x0a000001, 0xe8010101, mold, {fm.msg});
    const auto it = interest.find(fm.msg.stock);
    const std::uint16_t interested_port =
        it != interest.end() ? it->second : 0;
    if (interested_port != 0) ++result.interested_expected;
    const double t_pub = static_cast<double>(fm.t_us);
    ++result.published;

    const std::size_t frame_size = frame.size();
    const double t_at_switch = up.transmit(t_pub, frame_size);
    sim.at(t_at_switch, [&, frame = std::move(frame), interested_port,
                         t_pub, frame_size] {
      const auto copies =
          sw.process(frame, static_cast<std::uint64_t>(sim.now_us()));
      for (const auto& copy : copies) {
        if (copy.port == 0 || copy.port > n_ports) continue;
        const std::size_t host = copy.port - 1u;
        ++result.frames_to_hosts;
        result.bytes_to_hosts += frame_size;
        const double t_nic = down[host].transmit(
            sim.now_us() + params.switch_pipeline_us, frame_size);
        const bool is_interested = copy.port == interested_port;
        sim.at(t_nic, [&, host, is_interested, t_pub] {
          const double t_done = cpu[host].serve(sim.now_us());
          if (!is_interested) return;
          sim.at(t_done, [&, t_pub] {
            ++result.interested_received;
            result.latency_us.add(sim.now_us() - t_pub);
          });
        });
      }
    });
  }
  sim.run();
  return result;
}

}  // namespace camus::netsim
