// The Figure 7 end-to-end experiment: publisher -> switch -> subscriber,
// measuring the latency of watched-symbol messages under two
// configurations:
//
//  - kHostFilter (the paper's "Baseline"): the switch broadcasts the whole
//    feed to the subscriber; the subscriber's CPU filters every message.
//  - kSwitchFilter ("Camus"): the compiled subscription pipeline on the
//    switch forwards only matching messages.
//
// The mechanism that separates the two in the paper — queueing at the
// subscriber when the full feed is delivered under bursts — is reproduced
// by the FIFO CPU server; link serialization and switch pipeline latency
// are charged explicitly. The publisher and subscriber are "collocated for
// accurate timestamping" as in the paper: one clock.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "netsim/sim.hpp"
#include "spec/schema.hpp"
#include "switchsim/switch.hpp"
#include "util/stats.hpp"
#include "workload/feed.hpp"

namespace camus::netsim {

enum class FilterMode : std::uint8_t { kSwitchFilter, kHostFilter };

struct MarketExperimentParams {
  FilterMode mode = FilterMode::kSwitchFilter;
  std::uint16_t subscriber_port = 1;

  double publisher_link_gbps = 25.0;   // publisher NIC -> switch
  double subscriber_link_gbps = 25.0;  // switch -> subscriber NIC
  double link_propagation_us = 0.5;    // cable + transceivers each way
  double switch_pipeline_us = 0.8;     // ASIC ingress->egress latency

  // Per-message subscriber CPU cost. kHostFilter charges filter_cost_us
  // for every delivered message; both modes charge deliver_cost_us for
  // messages the application consumes.
  double host_filter_cost_us = 0.7;
  double deliver_cost_us = 0.3;

  // Maximum messages queued at a subscriber CPU; 0 = unbounded. When the
  // queue is full, arriving messages are dropped (counted in the result).
  std::size_t host_queue_limit = 0;
};

struct MarketExperimentResult {
  util::CdfSampler latency_us;     // watched messages, publish -> consumed
  std::uint64_t published = 0;
  std::uint64_t delivered_to_host = 0;  // frames reaching the subscriber
  std::uint64_t watched_received = 0;
  std::uint64_t watched_expected = 0;
  std::uint64_t host_drops = 0;  // messages dropped at the full CPU queue
  double duration_us = 0;
};

// Runs the feed through the topology. `sw` must be configured either with
// a compiled subscription pipeline (kSwitchFilter) or as a broadcast
// switch (kHostFilter); in host-filter mode the subscriber filters on
// `watched_symbol`.
MarketExperimentResult run_market_experiment(
    const MarketExperimentParams& params, switchsim::Switch& sw,
    const workload::Feed& feed, const std::string& watched_symbol);

// Fan-out variant: N subscriber hosts, each on its own downlink and CPU,
// each interested in a slice of the symbol space (`interest` maps symbol ->
// subscriber port; ports are 1..n_ports). In kHostFilter mode `sw` should
// broadcast to all ports; in kSwitchFilter mode it carries the compiled
// per-port subscriptions. The latency CDF aggregates the
// (message, interested host) pairs across all hosts.
struct FanoutResult {
  util::CdfSampler latency_us;
  std::uint64_t published = 0;
  std::uint64_t frames_to_hosts = 0;   // total deliveries to any host
  std::uint64_t bytes_to_hosts = 0;
  std::uint64_t interested_received = 0;
  std::uint64_t interested_expected = 0;
};

FanoutResult run_fanout_experiment(
    const MarketExperimentParams& params, switchsim::Switch& sw,
    const workload::Feed& feed,
    const std::map<std::string, std::uint16_t>& interest,
    std::uint16_t n_ports);

}  // namespace camus::netsim
