// Discrete-event simulation core for the end-to-end latency experiments
// (Figure 7). Time is in microseconds (double): the latencies of interest
// span ~1us (switch pipeline) to ~100s of us (host queueing), well within
// double precision over experiment horizons of seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace camus::netsim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  double now_us() const noexcept { return now_; }

  // Schedules a callback at absolute time t_us (>= now).
  void at(double t_us, Callback cb);
  // Schedules after a delay from now.
  void after(double delay_us, Callback cb) { at(now_ + delay_us, cb); }

  // Runs until the event queue is empty or now exceeds until_us.
  void run(double until_us = 1e18);

  std::size_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    double t;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// A point-to-point link: serialization at a fixed bandwidth plus constant
// propagation delay, FIFO. transmit() returns the arrival time at the far
// end and advances the link's busy horizon.
class Link {
 public:
  Link(double gbps, double propagation_us)
      : bits_per_us_(gbps * 1e3), prop_us_(propagation_us) {}

  double transmit(double t_ready_us, std::size_t frame_bytes) {
    const double start = t_ready_us > busy_until_ ? t_ready_us : busy_until_;
    const double ser_us = static_cast<double>(frame_bytes) * 8 / bits_per_us_;
    busy_until_ = start + ser_us;
    return busy_until_ + prop_us_;
  }

  void reset() { busy_until_ = 0; }

 private:
  double bits_per_us_;
  double prop_us_;
  double busy_until_ = 0;
};

// A single FIFO server with deterministic per-item service time — models
// the subscriber CPU processing (filtering) incoming messages serially.
// With a finite queue limit, items arriving when the backlog already holds
// `queue_limit` waiting items are dropped (the paper's "broadcasting all
// packets to servers builds queues at switches and servers, which
// increases delay and the chances of packet drops").
class FifoServer {
 public:
  explicit FifoServer(double service_us, std::size_t queue_limit = 0)
      : service_us_(service_us), queue_limit_(queue_limit) {}

  // Returns the completion time of an item arriving at t_us, or a negative
  // value if the queue is full and the item is dropped.
  double serve(double t_us) {
    const double start = t_us > busy_until_ ? t_us : busy_until_;
    if (queue_limit_ != 0 && service_us_ > 0) {
      const double backlog = start - t_us;
      const auto queued =
          static_cast<std::size_t>(backlog / service_us_ + 0.5);
      if (queued > queue_limit_) {
        ++dropped_;
        return -1;
      }
    }
    busy_until_ = start + service_us_;
    return busy_until_;
  }

  double backlog_us(double t_us) const {
    return busy_until_ > t_us ? busy_until_ - t_us : 0;
  }

  std::uint64_t dropped() const noexcept { return dropped_; }

  void reset() {
    busy_until_ = 0;
    dropped_ = 0;
  }

 private:
  double service_us_;
  std::size_t queue_limit_;
  double busy_until_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace camus::netsim
