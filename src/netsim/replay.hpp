// Trace-replay harness for the data-plane fast path: drives packed
// market-data frames through a switch via the per-frame reference path
// (process_messages), the batched path (process_batch), or the multi-core
// front end (ParallelSwitch::process_batch), timing only the switch work.
// All paths fold their outputs into an order-sensitive digest so bench
// harnesses can assert output equivalence without keeping every egress
// frame alive.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "switchsim/parallel.hpp"
#include "switchsim/switch.hpp"
#include "workload/feed.hpp"

namespace camus::netsim {

struct ReplayStats {
  std::size_t frames = 0;      // ingress frames offered
  std::size_t messages = 0;    // ingress messages offered (sum of n_msgs)
  std::size_t tx_packets = 0;  // egress packets produced
  std::uint64_t tx_bytes = 0;
  std::uint64_t wall_ns = 0;  // sum of the timed process calls
  // Elapsed ns of each process call (one per frame for the per-frame
  // path, one per batch for the batched path) for tail percentiles.
  // call_msgs[i] is the number of ingress messages call i carried —
  // weight percentiles by it, because the per-call series mixes full and
  // partial batches (the trace tail) whose raw timings are not
  // comparable per message.
  std::vector<std::uint64_t> call_ns;
  std::vector<std::uint32_t> call_msgs;
  // FNV-1a over every egress (port, frame bytes) in emission order.
  std::uint64_t output_digest = 0;
};

// Message-normalized latency distribution of a replay: each timed call
// contributes its per-message cost (call_ns / call_msgs) with weight
// call_msgs, so a 3-frame trailing batch no longer reads as "3x faster"
// than the full batches and p99 reflects what a message actually
// experienced. Percentiles are weighted order statistics over the
// normalized series; max_ns is the worst normalized call.
struct LatencySummary {
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;
};
LatencySummary per_message_latency(const ReplayStats& st);

// Reference path: one process_messages call per frame.
ReplayStats replay_per_frame(switchsim::Switch& sw,
                             std::span<const workload::PackedFrame> frames);

// Fast path: process_batch over batch_size-frame slices.
ReplayStats replay_batched(switchsim::Switch& sw,
                           std::span<const workload::PackedFrame> frames,
                           std::size_t batch_size);

// Multi-core fast path: ParallelSwitch::process_batch over the same
// slices — digest-comparable with both paths above.
ReplayStats replay_batched_parallel(
    switchsim::ParallelSwitch& psw,
    std::span<const workload::PackedFrame> frames, std::size_t batch_size);

}  // namespace camus::netsim
