// Trace-replay harness for the data-plane fast path: drives packed
// market-data frames through a switch via either the per-frame reference
// path (process_messages) or the batched path (process_batch), timing
// only the switch work. Both paths fold their outputs into an
// order-sensitive digest so bench harnesses can assert output equivalence
// without keeping every egress frame alive.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "switchsim/switch.hpp"
#include "workload/feed.hpp"

namespace camus::netsim {

struct ReplayStats {
  std::size_t frames = 0;      // ingress frames offered
  std::size_t tx_packets = 0;  // egress packets produced
  std::uint64_t tx_bytes = 0;
  std::uint64_t wall_ns = 0;  // sum of the timed process calls
  // Elapsed ns of each process call (one per frame for the per-frame
  // path, one per batch for the batched path) for tail percentiles.
  std::vector<std::uint64_t> call_ns;
  // FNV-1a over every egress (port, frame bytes) in emission order.
  std::uint64_t output_digest = 0;
};

// Reference path: one process_messages call per frame.
ReplayStats replay_per_frame(switchsim::Switch& sw,
                             std::span<const workload::PackedFrame> frames);

// Fast path: process_batch over batch_size-frame slices.
ReplayStats replay_batched(switchsim::Switch& sw,
                           std::span<const workload::PackedFrame> frames,
                           std::size_t batch_size);

}  // namespace camus::netsim
