// End-to-end fault-injection experiment: the full pub/sub path over lossy
// links, with MoldUDP64 gap recovery at both recovery points.
//
//   publisher --uplink*--> FeedHandler -> switch -> FeedSequencer
//       --downlink_p*--> RecoveringSubscriber   (one per egress port)
//
// Links marked * apply a seeded fault::Plan (drop / duplicate / reorder /
// corrupt). Retransmission requests travel reverse channels with the same
// fault spec; replies take the forward channels again, so recovery traffic
// is itself unreliable and the bounded-retry backoff machinery is
// genuinely exercised.
//
// Determinism: every random decision derives from (seed, link id, packet
// index) — no ambient RNG — and the switch is clocked with LOGICAL time
// (the frame's first MoldUDP sequence number) rather than simulated
// wall-clock, so stateful window aggregates see the same boundaries
// whether or not recovery delayed a frame. A clean run and a faulted
// run with recovery therefore produce bit-identical per-port delivery
// digests.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fault/plan.hpp"
#include "pubsub/recovery.hpp"
#include "switchsim/switch.hpp"
#include "util/stats.hpp"
#include "workload/feed.hpp"

namespace camus::netsim {

struct FaultExperimentParams {
  // Applied to the uplink, every downlink, and the reverse (request)
  // channels; each channel gets its own stream derived from `seed`.
  fault::FaultSpec link_faults;
  std::uint64_t seed = 1;

  bool recovery_enabled = true;
  pubsub::RecoveryParams recovery;

  std::uint16_t n_ports = 4;          // subscribers on ports 1..n_ports
  std::size_t msgs_per_frame = 4;     // publisher batching
  std::size_t retransmit_capacity = 65536;

  // MoldUDP-style heartbeats (count-0 frames advertising the next
  // sequence) sent after the feed ends, on the uplink and every downlink.
  // They make tail loss detectable; once a gap is armed the reassembler's
  // own retry timers sustain recovery, so the span only needs to cover
  // detection. Only used when recovery is enabled.
  double heartbeat_us = 250.0;
  std::size_t heartbeats = 2000;

  double link_gbps = 25.0;
  double propagation_us = 0.5;
  double switch_pipeline_us = 0.8;
};

struct FaultExperimentResult {
  std::uint64_t feed_messages = 0;
  std::uint64_t frames_published = 0;

  // Per-port exactly-once delivery: message count and an FNV-1a digest
  // over the delivered 36-byte message blocks in delivery order.
  std::map<std::uint16_t, std::uint64_t> delivered;
  std::map<std::uint16_t, std::uint64_t> digest;

  // Recovery behaviour at the two recovery points.
  pubsub::RecoveryStats uplink_recovery;     // FeedHandler (switch ingress)
  pubsub::RecoveryStats subscriber_recovery; // merged over all subscribers
  util::CdfSampler recovery_latency_us;      // merged gap-block samples
  std::uint64_t checksum_rejects = 0;        // both points combined
  std::uint64_t malformed = 0;

  // Channel-level tallies summed over every faulted link.
  fault::LinkFaults::Stats channel;

  // Overhead accounting: first-transmission payload vs recovery traffic.
  std::uint64_t data_frames = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t request_frames = 0;
  std::uint64_t request_bytes = 0;
  std::uint64_t retransmit_frames = 0;
  std::uint64_t retransmit_bytes = 0;
  std::uint64_t heartbeat_frames = 0;
  std::uint64_t heartbeat_bytes = 0;

  double duration_us = 0;
};

// Drives `feed` through `sw` (already programmed with the subscription
// pipeline). With params.recovery_enabled the result's per-port digests
// are independent of the fault spec — that is the recovery guarantee,
// asserted differentially in tests/test_fault.cpp and bench/fault_sweep.
FaultExperimentResult run_fault_experiment(const FaultExperimentParams& params,
                                           switchsim::Switch& sw,
                                           const workload::Feed& feed);

}  // namespace camus::netsim
