#include "netsim/replay.hpp"

#include <algorithm>
#include <chrono>

namespace camus::netsim {

namespace {

using Clock = std::chrono::steady_clock;

inline std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p,
                           std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void fold_output(ReplayStats& st,
                 const std::vector<switchsim::Switch::TxPacket>& out) {
  for (const auto& tx : out) {
    ++st.tx_packets;
    st.tx_bytes += tx.frame.size();
    const std::uint8_t port_bytes[2] = {
        static_cast<std::uint8_t>(tx.port >> 8),
        static_cast<std::uint8_t>(tx.port & 0xff)};
    st.output_digest = fnv1a(st.output_digest, port_bytes, 2);
    st.output_digest = fnv1a(st.output_digest, tx.frame.data(),
                             tx.frame.size());
  }
}

void record_call(ReplayStats& st, std::uint64_t ns, std::uint32_t msgs) {
  st.wall_ns += ns;
  st.call_ns.push_back(ns);
  st.call_msgs.push_back(msgs);
  st.messages += msgs;
}

// Shared batched-replay loop, parameterized over the process_batch
// implementation so the single-threaded and multi-core drivers cannot
// drift in how they slice, time, or fold.
template <typename ProcessBatch>
ReplayStats replay_batched_impl(std::span<const workload::PackedFrame> frames,
                                std::size_t batch_size,
                                ProcessBatch&& process) {
  ReplayStats st;
  st.output_digest = 0xcbf29ce484222325ULL;
  st.frames = frames.size();
  const std::size_t bs = std::max<std::size_t>(batch_size, 1);
  st.call_ns.reserve(frames.size() / bs + 1);
  st.call_msgs.reserve(frames.size() / bs + 1);
  std::vector<switchsim::Switch::Frame> batch;
  batch.reserve(bs);
  for (std::size_t i = 0; i < frames.size(); i += bs) {
    const std::size_t end = std::min(i + bs, frames.size());
    batch.clear();
    std::uint32_t msgs = 0;
    for (std::size_t j = i; j < end; ++j) {
      batch.push_back({frames[j].bytes, frames[j].t_us});
      msgs += frames[j].n_msgs;
    }
    const auto t0 = Clock::now();
    auto out = process(batch);
    const auto t1 = Clock::now();
    record_call(st,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0)
                        .count()),
                msgs);
    fold_output(st, out);
  }
  return st;
}

}  // namespace

LatencySummary per_message_latency(const ReplayStats& st) {
  LatencySummary s;
  if (st.call_ns.empty() || st.messages == 0) return s;
  // Normalize each call to per-message cost, then take weighted order
  // statistics: a call carrying w messages contributes w observations of
  // its normalized latency.
  struct Obs {
    double ns;
    std::uint64_t w;
  };
  std::vector<Obs> obs;
  obs.reserve(st.call_ns.size());
  for (std::size_t i = 0; i < st.call_ns.size(); ++i) {
    const std::uint32_t w = i < st.call_msgs.size() ? st.call_msgs[i] : 1;
    if (w == 0) continue;  // unparseable-only call: no messages to charge
    obs.push_back({static_cast<double>(st.call_ns[i]) / w, w});
  }
  if (obs.empty()) return s;
  std::sort(obs.begin(), obs.end(),
            [](const Obs& a, const Obs& b) { return a.ns < b.ns; });
  std::uint64_t total = 0;
  for (const Obs& o : obs) total += o.w;
  auto weighted_q = [&](double q) {
    const auto target = static_cast<std::uint64_t>(q * (total - 1));
    std::uint64_t cum = 0;
    for (const Obs& o : obs) {
      cum += o.w;
      if (cum > target) return o.ns;
    }
    return obs.back().ns;
  };
  s.p50_ns = weighted_q(0.50);
  s.p90_ns = weighted_q(0.90);
  s.p99_ns = weighted_q(0.99);
  s.max_ns = obs.back().ns;
  return s;
}

ReplayStats replay_per_frame(switchsim::Switch& sw,
                             std::span<const workload::PackedFrame> frames) {
  ReplayStats st;
  st.output_digest = 0xcbf29ce484222325ULL;
  st.frames = frames.size();
  st.call_ns.reserve(frames.size());
  st.call_msgs.reserve(frames.size());
  for (const auto& pf : frames) {
    const auto t0 = Clock::now();
    auto out = sw.process_messages(pf.bytes, pf.t_us);
    const auto t1 = Clock::now();
    record_call(st,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0)
                        .count()),
                pf.n_msgs);
    fold_output(st, out);
  }
  return st;
}

ReplayStats replay_batched(switchsim::Switch& sw,
                           std::span<const workload::PackedFrame> frames,
                           std::size_t batch_size) {
  return replay_batched_impl(
      frames, batch_size,
      [&](std::span<const switchsim::Switch::Frame> b) {
        return sw.process_batch(b);
      });
}

ReplayStats replay_batched_parallel(
    switchsim::ParallelSwitch& psw,
    std::span<const workload::PackedFrame> frames, std::size_t batch_size) {
  return replay_batched_impl(
      frames, batch_size,
      [&](std::span<const switchsim::Switch::Frame> b) {
        return psw.process_batch(b);
      });
}

}  // namespace camus::netsim
