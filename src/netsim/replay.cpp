#include "netsim/replay.hpp"

#include <algorithm>
#include <chrono>

namespace camus::netsim {

namespace {

using Clock = std::chrono::steady_clock;

inline std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p,
                           std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void fold_output(ReplayStats& st,
                 const std::vector<switchsim::Switch::TxPacket>& out) {
  for (const auto& tx : out) {
    ++st.tx_packets;
    st.tx_bytes += tx.frame.size();
    const std::uint8_t port_bytes[2] = {
        static_cast<std::uint8_t>(tx.port >> 8),
        static_cast<std::uint8_t>(tx.port & 0xff)};
    st.output_digest = fnv1a(st.output_digest, port_bytes, 2);
    st.output_digest = fnv1a(st.output_digest, tx.frame.data(),
                             tx.frame.size());
  }
}

}  // namespace

ReplayStats replay_per_frame(switchsim::Switch& sw,
                             std::span<const workload::PackedFrame> frames) {
  ReplayStats st;
  st.output_digest = 0xcbf29ce484222325ULL;
  st.frames = frames.size();
  st.call_ns.reserve(frames.size());
  for (const auto& pf : frames) {
    const auto t0 = Clock::now();
    auto out = sw.process_messages(pf.bytes, pf.t_us);
    const auto t1 = Clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    st.wall_ns += ns;
    st.call_ns.push_back(ns);
    fold_output(st, out);
  }
  return st;
}

ReplayStats replay_batched(switchsim::Switch& sw,
                           std::span<const workload::PackedFrame> frames,
                           std::size_t batch_size) {
  ReplayStats st;
  st.output_digest = 0xcbf29ce484222325ULL;
  st.frames = frames.size();
  const std::size_t bs = std::max<std::size_t>(batch_size, 1);
  st.call_ns.reserve(frames.size() / bs + 1);
  std::vector<switchsim::Switch::Frame> batch;
  batch.reserve(bs);
  for (std::size_t i = 0; i < frames.size(); i += bs) {
    const std::size_t end = std::min(i + bs, frames.size());
    batch.clear();
    for (std::size_t j = i; j < end; ++j)
      batch.push_back({frames[j].bytes, frames[j].t_us});
    const auto t0 = Clock::now();
    auto out = sw.process_batch(batch);
    const auto t1 = Clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    st.wall_ns += ns;
    st.call_ns.push_back(ns);
    fold_output(st, out);
  }
  return st;
}

}  // namespace camus::netsim
