#include "netsim/fabric.hpp"

#include <algorithm>

namespace camus::netsim {

namespace {

// Flow hash for ECMP spine selection: FNV-1a over the frame bytes. Pure
// function of the frame, so a flow (identical header bytes) always takes
// the same spine — and with every spine running the same steering program,
// the choice affects only the link a copy crosses.
std::uint64_t flow_hash(std::span<const std::uint8_t> frame) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : frame) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}

}  // namespace

Fabric::Node Fabric::make_node() const {
  Node n;
  n.sw = std::make_unique<switchsim::Switch>(schema_, table::Pipeline{});
  n.installer = std::make_unique<pubsub::TwoPhaseInstaller>(*n.sw);
  return n;
}

Fabric::Fabric(spec::Schema schema, FabricTopologyOptions opts)
    : schema_(std::move(schema)), opts_(opts) {
  spine_.reserve(opts_.spec.spines);
  leaf_.reserve(opts_.spec.leaves);
  for (std::size_t s = 0; s < opts_.spec.spines; ++s)
    spine_.push_back(make_node());
  for (std::size_t l = 0; l < opts_.spec.leaves; ++l)
    leaf_.push_back(make_node());
  links_.reserve(opts_.spec.spines * opts_.spec.leaves);
  for (std::size_t s = 0; s < opts_.spec.spines; ++s)
    for (std::size_t l = 0; l < opts_.spec.leaves; ++l) {
      // Private deterministic stream per link: seed mixes (spine, leaf) so
      // rerouting around one lossy link never perturbs another's decisions.
      const std::uint64_t seed =
          opts_.fault_seed ^ (s * 0x9e3779b97f4a7c15ULL) ^
          (l * 0xc2b2ae3d27d4eb4fULL);
      links_.emplace_back(fault::Plan(opts_.downlink_faults, seed));
    }
}

pubsub::FabricTargets Fabric::targets() {
  pubsub::FabricTargets t;
  t.spines.reserve(spine_.size());
  t.leaves.reserve(leaf_.size());
  for (Node& n : spine_) t.spines.push_back(n.installer.get());
  for (Node& n : leaf_) t.leaves.push_back(n.installer.get());
  return t;
}

void Fabric::program(const compiler::FabricProgram& program) {
  for (Node& n : spine_) {
    n.sw->reprogram(table::Pipeline(program.spine));
    n.installer->resync_from_switch();
  }
  for (std::size_t l = 0; l < leaf_.size(); ++l) {
    leaf_[l].sw->reprogram(table::Pipeline(program.leaves[l]));
    leaf_[l].installer->resync_from_switch();
  }
}

std::vector<FabricDelivery> Fabric::inject(std::span<const std::uint8_t> frame,
                                           double t_us) {
  std::vector<FabricDelivery> out;
  const std::size_t s = flow_hash(frame) % spine_.size();
  const double t_spine = t_us + opts_.spine_latency_us;
  const auto copies = spine_[s].sw->process(
      frame, static_cast<std::uint64_t>(t_spine));
  for (const auto& copy : copies) {
    const std::size_t l = copy.port;  // downlink convention: port == leaf
    if (l >= leaf_.size()) continue;  // not a downlink (foreign program)
    for (auto& arrival : link(s, l).offer(t_spine + opts_.downlink_latency_us,
                                          frame)) {
      const auto tx = leaf_[l].sw->process(
          arrival.bytes, static_cast<std::uint64_t>(arrival.t_us));
      for (const auto& egress : tx)
        out.push_back(FabricDelivery{l, egress.port, arrival.t_us});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::size_t, std::uint16_t>> Fabric::deliver_env(
    const std::vector<std::uint64_t>& fields, std::uint64_t now_us) {
  std::vector<std::pair<std::size_t, std::uint16_t>> out;
  const lang::ActionSet& steer = spine_[0].sw->classify(fields, now_us);
  for (const std::uint16_t downlink : steer.ports) {
    if (downlink >= leaf_.size()) continue;
    const lang::ActionSet& acts =
        leaf_[downlink].sw->classify(fields, now_us);
    for (const std::uint16_t port : acts.ports) out.emplace_back(downlink, port);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Fabric::reboot_leaf(std::size_t i) { leaf_[i] = make_node(); }
void Fabric::reboot_spine(std::size_t i) { spine_[i] = make_node(); }

}  // namespace camus::netsim
