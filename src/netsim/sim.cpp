#include "netsim/sim.hpp"

#include <stdexcept>

namespace camus::netsim {

void Simulator::at(double t_us, Callback cb) {
  if (t_us < now_)
    throw std::invalid_argument("Simulator::at: scheduling in the past");
  queue_.push(Event{t_us, next_seq_++, std::move(cb)});
}

void Simulator::run(double until_us) {
  while (!queue_.empty()) {
    if (queue_.top().t > until_us) break;
    // Moving the callback out before popping keeps it alive while it runs
    // (the callback may schedule further events).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ev.cb();
    ++processed_;
  }
}

}  // namespace camus::netsim
