// Multi-terminal binary decision diagram (MTBDD) over atomic packet
// predicates — the compiler's primary internal data structure (paper §3.2).
//
// Non-terminal nodes test one atomic predicate; the hi edge is taken when
// the predicate is true, the lo edge when false. Terminal nodes carry an
// ActionSet — the union of the actions of every subscription the packet
// satisfies. Terminal 0 is the empty set (drop).
//
// The manager implements the paper's three reductions:
//   (i)  isomorphic-node sharing via a hash-consing unique table,
//   (ii) redundant-test elimination (lo == hi) inside mk(),
//   (iii) domain-semantic pruning: a node whose predicate is implied
//         true/false by its ancestors on the same field collapses to the
//         corresponding branch (prune()).
// Reductions (i)/(ii) are applied eagerly during construction and union;
// reduction (iii) runs as a rewrite pass carrying the residual value domain
// of the current field.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/order.hpp"
#include "lang/bound.hpp"
#include "lang/dnf.hpp"
#include "util/flat_map.hpp"
#include "util/interval.hpp"

namespace camus::bdd {

using lang::ActionSet;

// Reference to a BDD node or terminal. 32-bit: the top bit distinguishes
// terminals.
class NodeRef {
 public:
  NodeRef() = default;

  static NodeRef terminal(std::uint32_t id) { return NodeRef(id | kTermBit); }
  static NodeRef node(std::uint32_t id) { return NodeRef(id); }

  bool is_terminal() const noexcept { return (bits_ & kTermBit) != 0; }
  std::uint32_t index() const noexcept { return bits_ & ~kTermBit; }
  std::uint32_t raw() const noexcept { return bits_; }

  friend bool operator==(NodeRef, NodeRef) = default;

 private:
  explicit NodeRef(std::uint32_t bits) : bits_(bits) {}
  static constexpr std::uint32_t kTermBit = 0x80000000u;
  std::uint32_t bits_ = kTermBit;  // default: terminal 0 (drop)
};

struct Node {
  std::uint32_t var = 0;  // index into the manager's variable table
  NodeRef lo;             // predicate false
  NodeRef hi;             // predicate true
};

// Aggregate statistics used by the experiments and ablations.
struct BddStats {
  std::size_t node_count = 0;         // reachable non-terminal nodes
  std::size_t terminal_count = 0;     // distinct reachable terminals
  std::size_t var_count = 0;          // distinct variables used
  std::map<Subject, std::size_t> nodes_per_subject;
};

// Unique-table and memo-cache telemetry (compile-phase profiling). Probes
// and hits are lifetime totals; accumulate() folds worker-manager stats
// into the master's for the sharded parallel compile path.
struct CacheStats {
  std::size_t unique_nodes = 0;   // hash-consed node table size
  std::size_t terminals = 0;      // distinct terminal ActionSets
  std::size_t vars = 0;           // distinct atomic predicates
  std::uint64_t unite_probes = 0;      // syntactic union memo
  std::uint64_t unite_hits = 0;
  std::uint64_t unite_res_probes = 0;  // semantic union memo
  std::uint64_t unite_res_hits = 0;
  std::uint64_t split_probes = 0;      // residual split memo
  std::uint64_t split_hits = 0;

  void accumulate(const CacheStats& other);

  // Hit rate over both union memos (the compile hot path); 0 when unused.
  double memo_hit_rate() const noexcept;
};

class BddManager {
 public:
  BddManager(VarOrder order, DomainMap domains);

  const VarOrder& order() const noexcept { return order_; }
  const DomainMap& domains() const noexcept { return domains_; }

  // --- variables -------------------------------------------------------
  std::uint32_t var_for(const BoundPredicate& p);
  const BoundPredicate& var_pred(std::uint32_t var) const {
    return vars_.at(var);
  }
  std::size_t var_count() const noexcept { return vars_.size(); }

  // --- terminals -------------------------------------------------------
  NodeRef terminal(const ActionSet& actions);
  NodeRef drop() const { return NodeRef::terminal(0); }
  const ActionSet& terminal_actions(NodeRef t) const;
  std::size_t terminal_count() const noexcept { return terminals_.size(); }

  // --- nodes -----------------------------------------------------------
  // Reduced, hash-consed constructor. Enforces the variable order:
  // children's top variables must come strictly after `var`.
  NodeRef mk(std::uint32_t var, NodeRef lo, NodeRef hi);
  const Node& node(NodeRef r) const { return nodes_.at(r.index()); }
  std::size_t node_table_size() const noexcept { return nodes_.size(); }

  // Top variable's subject; precondition: !r.is_terminal().
  Subject subject_of(NodeRef r) const {
    return var_pred(node(r).var).subject;
  }

  // --- construction ----------------------------------------------------
  // BDD for a single DNF conjunction: packets satisfying every constraint
  // reach terminal(actions); all others reach drop().
  NodeRef build_conjunction(const lang::Conjunction& conj,
                            const ActionSet& actions);

  // BDD for a whole flat rule (union over its DNF terms).
  NodeRef build_rule(const lang::FlatRule& rule);

  // --- operations ------------------------------------------------------
  // Pointwise union: resulting terminals are the merged ActionSets.
  //
  // With semantic=true (the paper's construction), the union carries the
  // residual value domain of the current field and never materializes a
  // node whose predicate is implied true/false by its ancestors —
  // reduction (iii) applied during construction. This is essential at
  // scale: the purely syntactic union of rules with many thresholds on one
  // field keeps semantically impossible combinations ("price > 50 false
  // but price > 80 true") and blows up exponentially.
  NodeRef unite(NodeRef a, NodeRef b, bool semantic = true);

  // Balanced divide-and-conquer union of many roots. Far cheaper than a
  // sequential left fold for large rule sets (Figure 5c's 100K rules).
  NodeRef unite_all(std::vector<NodeRef> roots, bool semantic = true);

  // Reduction (iii) as a standalone rewrite: removes nodes implied by
  // ancestor constraints on the same subject. Equivalent to unite(drop(),
  // root, semantic=true). Used directly by the ablation benchmarks.
  NodeRef prune(NodeRef root);

  // Copies the subgraph rooted at `root` in `src` into this manager,
  // re-interning variables and terminals (hash-consing deduplicates
  // against existing nodes). Both managers must use the same subject
  // order; this is how the parallel compiler merges per-thread shard BDDs
  // into the master manager.
  NodeRef import(const BddManager& src, NodeRef root);

  // --- queries ---------------------------------------------------------
  const ActionSet& evaluate(NodeRef root, const lang::Env& env) const;

  // Domain-exact co-traversal of two roots (the verifier's workhorse):
  // searches for a packet environment on which pred(actions(a), actions(b))
  // holds and returns the first one found, or nullopt when no packet
  // satisfies the predicate. Exact with respect to field-domain semantics:
  // a combined path never assumes "price > 80" true while "price > 50" is
  // false, even across the two operands — the traversal carries the
  // residual value domain of the current field exactly like the semantic
  // union does. Unconstrained subjects are left at their env_template
  // value (missing slots are grown and zero-filled).
  std::optional<lang::Env> find_witness(
      NodeRef a, NodeRef b,
      const std::function<bool(const ActionSet&, const ActionSet&)>& pred,
      const lang::Env& env_template = {}) const;

  // Every packet matched (non-drop) under a is also matched under b.
  bool implies(NodeRef a, NodeRef b) const;

  // Some packet is matched (non-drop) under both a and b.
  bool intersects(NodeRef a, NodeRef b) const;

  // a and b compute the same ActionSet for every packet.
  bool equivalent(NodeRef a, NodeRef b) const;

  BddStats stats(NodeRef root) const;

  // Unique-table size and memo probe/hit totals (compile telemetry).
  CacheStats cache_stats() const;

  // Heap footprint of the manager's arenas (node table, unique table,
  // union/split memos, residual-set pool) in bytes. This is the quantity
  // the partitioned compile bounds per shard: the memory-ceiling gate in
  // bench/compile_scale compares it against peak RSS.
  std::size_t memory_bytes() const;

  // GraphViz rendering of the reachable subgraph (for docs and debugging).
  std::string to_dot(NodeRef root, const spec::Schema* schema = nullptr) const;

  // Clears operation caches (memo tables), keeping nodes and terminals.
  // Useful between unrelated compilations sharing a manager.
  void clear_caches();

 private:
  // The set of subject values that send a packet to the hi edge of `var`.
  util::IntervalSet true_values(std::uint32_t var) const;

  // Residual-set interning: semantic union memoizes on (a, b, residual id).
  std::uint32_t intern_set(const util::IntervalSet& s);
  std::uint32_t full_set_id(std::size_t rank);

  NodeRef unite_rec(NodeRef a, NodeRef b);
  NodeRef unite_res(NodeRef a, NodeRef b, std::size_t rank_in,
                    std::uint32_t residual_id);

  VarOrder order_;
  DomainMap domains_;

  std::vector<BoundPredicate> vars_;
  std::map<BoundPredicate, std::uint32_t> var_ids_;

  std::vector<ActionSet> terminals_;
  std::map<ActionSet, std::uint32_t> terminal_ids_;

  std::vector<Node> nodes_;

  // Composite integer keys for the flat memo tables.
  struct Key96 {
    std::uint64_t a = 0;
    std::uint32_t b = 0;
    friend bool operator==(const Key96&, const Key96&) = default;
  };
  struct Key96Hash {
    std::size_t operator()(const Key96& k) const noexcept {
      return static_cast<std::size_t>(
          util::mix64(k.a ^ (static_cast<std::uint64_t>(k.b) << 17 | k.b)));
    }
  };
  struct U64Hash {
    std::size_t operator()(std::uint64_t k) const noexcept {
      return static_cast<std::size_t>(util::mix64(k));
    }
  };

  // Unique table: (var, lo, hi) -> node id (reduction (i)).
  util::FlatMap<Key96, std::uint32_t, Key96Hash> unique_{16};

  // Syntactic union memo: (min ref, max ref) -> result.
  util::FlatMap<std::uint64_t, NodeRef, U64Hash> unite_cache_{12};

  // Interned residual domains.
  struct SetHash {
    std::size_t operator()(const util::IntervalSet& s) const {
      return s.hash();
    }
  };
  std::vector<util::IntervalSet> sets_;
  std::unordered_map<util::IntervalSet, std::uint32_t, SetHash> set_ids_;
  std::vector<std::uint32_t> full_set_by_rank_;  // cache of all-domain ids

  // Semantic union memo: (min ref, max ref, residual id) -> result.
  util::FlatMap<Key96, NodeRef, Key96Hash> unite_res_cache_{16};

  // Residual split memo: (var, residual id) -> (hi-set id, lo-set id).
  // The split of a residual domain by a predicate does not depend on the
  // node pair, so caching it here removes almost all IntervalSet work from
  // the union hot path.
  util::FlatMap<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>,
                U64Hash>
      split_cache_{14};
};

}  // namespace camus::bdd
