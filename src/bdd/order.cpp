#include "bdd/order.hpp"

namespace camus::bdd {

VarOrder::VarOrder(std::vector<Subject> subjects)
    : subjects_(std::move(subjects)) {
  for (std::size_t i = 0; i < subjects_.size(); ++i) {
    const Subject s = subjects_[i];
    auto& table =
        s.kind == Subject::Kind::kField ? field_rank_ : state_rank_;
    if (table.size() <= s.id) table.resize(s.id + 1, kAbsent);
    if (table[s.id] != kAbsent)
      throw std::invalid_argument("duplicate subject in variable order");
    table[s.id] = i;
  }
}

std::size_t VarOrder::rank(Subject s) const {
  const auto& table =
      s.kind == Subject::Kind::kField ? field_rank_ : state_rank_;
  if (s.id >= table.size() || table[s.id] == kAbsent)
    throw std::out_of_range("subject not present in variable order");
  return table[s.id];
}

bool VarOrder::contains(Subject s) const noexcept {
  const auto& table =
      s.kind == Subject::Kind::kField ? field_rank_ : state_rank_;
  return s.id < table.size() && table[s.id] != kAbsent;
}

bool VarOrder::less(const BoundPredicate& a, const BoundPredicate& b) const {
  const std::size_t ra = rank(a.subject);
  const std::size_t rb = rank(b.subject);
  if (ra != rb) return ra < rb;
  if (a.value != b.value) return a.value < b.value;
  return op_rank(a.op) < op_rank(b.op);
}

DomainMap::DomainMap(const spec::Schema& schema) {
  field_umax_.reserve(schema.fields().size());
  for (const auto& f : schema.fields()) field_umax_.push_back(f.umax());
  state_umax_.reserve(schema.state_vars().size());
  for (const auto& v : schema.state_vars()) state_umax_.push_back(v.umax());
}

std::uint64_t DomainMap::umax(Subject s) const {
  return s.kind == Subject::Kind::kField ? field_umax_.at(s.id)
                                         : state_umax_.at(s.id);
}

}  // namespace camus::bdd
