#include "bdd/bdd.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace camus::bdd {

using lang::Conjunction;
using lang::FlatRule;
using util::IntervalSet;

void CacheStats::accumulate(const CacheStats& other) {
  unique_nodes += other.unique_nodes;
  terminals += other.terminals;
  vars += other.vars;
  unite_probes += other.unite_probes;
  unite_hits += other.unite_hits;
  unite_res_probes += other.unite_res_probes;
  unite_res_hits += other.unite_res_hits;
  split_probes += other.split_probes;
  split_hits += other.split_hits;
}

double CacheStats::memo_hit_rate() const noexcept {
  const std::uint64_t probes = unite_probes + unite_res_probes;
  if (probes == 0) return 0;
  return static_cast<double>(unite_hits + unite_res_hits) /
         static_cast<double>(probes);
}

BddManager::BddManager(VarOrder order, DomainMap domains)
    : order_(std::move(order)), domains_(std::move(domains)) {
  // Terminal 0 is always the empty ActionSet (drop).
  terminals_.emplace_back();
  terminal_ids_.emplace(ActionSet{}, 0u);
}

std::uint32_t BddManager::var_for(const BoundPredicate& p) {
  if (!order_.contains(p.subject))
    throw std::invalid_argument("predicate subject not in variable order");
  auto it = var_ids_.find(p);
  if (it != var_ids_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(vars_.size());
  vars_.push_back(p);
  var_ids_.emplace(p, id);
  return id;
}

NodeRef BddManager::terminal(const ActionSet& actions) {
  auto it = terminal_ids_.find(actions);
  if (it != terminal_ids_.end()) return NodeRef::terminal(it->second);
  const std::uint32_t id = static_cast<std::uint32_t>(terminals_.size());
  terminals_.push_back(actions);
  terminal_ids_.emplace(actions, id);
  return NodeRef::terminal(id);
}

const ActionSet& BddManager::terminal_actions(NodeRef t) const {
  if (!t.is_terminal())
    throw std::invalid_argument("terminal_actions on a non-terminal ref");
  return terminals_.at(t.index());
}

NodeRef BddManager::mk(std::uint32_t var, NodeRef lo, NodeRef hi) {
  if (lo == hi) return lo;  // reduction (ii): redundant test
  // Enforce the variable order invariant.
  const BoundPredicate& p = vars_.at(var);
  for (NodeRef child : {lo, hi}) {
    if (!child.is_terminal() && !order_.less(p, vars_[node(child).var]))
      throw std::logic_error("BDD variable order violated in mk()");
  }
  const Key96 key{(static_cast<std::uint64_t>(var) << 32) | lo.raw(),
                  hi.raw()};
  if (const std::uint32_t* found = unique_.find(key))
    return NodeRef::node(*found);  // reduction (i)
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.insert(key, id);
  return NodeRef::node(id);
}

IntervalSet BddManager::true_values(std::uint32_t var) const {
  const BoundPredicate& p = vars_.at(var);
  return lang::predicate_values(p.op, p.value, /*positive=*/true,
                                domains_.umax(p.subject));
}

NodeRef BddManager::build_conjunction(const Conjunction& conj,
                                      const ActionSet& actions) {
  NodeRef cont = terminal(actions);
  const NodeRef rej = drop();

  // Encode subjects from the back of the order so each encoded component
  // sits above the ones already built.
  std::vector<std::pair<std::size_t, const IntervalSet*>> by_rank;
  by_rank.reserve(conj.constraints.size());
  for (const auto& [subj, set] : conj.constraints)
    by_rank.emplace_back(order_.rank(subj), &set);
  std::sort(by_rank.begin(), by_rank.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [rank, set] : by_rank) {
    const Subject subj = order_.subjects()[rank];
    const std::uint64_t umax = domains_.umax(subj);
    if (set->is_empty()) return rej;
    if (set->is_all(umax)) continue;

    // Build the interval test chain for this subject. Intervals are sorted
    // ascending; encode() handles the suffix starting at interval i under
    // the invariant that the value is known not to lie in any earlier
    // interval.
    const auto& ivs = set->intervals();
    std::function<NodeRef(std::size_t)> encode =
        [&](std::size_t i) -> NodeRef {
      if (i == ivs.size()) return rej;
      const auto [l, h] = ivs[i];
      if (l == h) {
        // Point: value == l -> cont, else try later intervals (values below
        // l fall through the remaining chain to rej).
        return mk(var_for({subj, lang::RelOp::kEq, l}), encode(i + 1), cont);
      }
      // Interval [l, h]: reject v < l, accept l <= v <= h, recurse v > h.
      NodeRef inner =
          h == umax
              ? cont
              : mk(var_for({subj, lang::RelOp::kGt, h}), cont, encode(i + 1));
      if (l == 0) return inner;
      return mk(var_for({subj, lang::RelOp::kLt, l}), inner, rej);
    };
    cont = encode(0);
  }
  return cont;
}

NodeRef BddManager::build_rule(const FlatRule& rule) {
  std::vector<NodeRef> roots;
  roots.reserve(rule.terms.size());
  for (const auto& term : rule.terms)
    roots.push_back(build_conjunction(term, rule.actions));
  return unite_all(std::move(roots));
}

std::uint32_t BddManager::intern_set(const util::IntervalSet& s) {
  auto it = set_ids_.find(s);
  if (it != set_ids_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(sets_.size());
  sets_.push_back(s);
  set_ids_.emplace(s, id);
  return id;
}

std::uint32_t BddManager::full_set_id(std::size_t rank) {
  if (full_set_by_rank_.size() <= rank)
    full_set_by_rank_.resize(rank + 1, 0xffffffffu);
  if (full_set_by_rank_[rank] == 0xffffffffu) {
    full_set_by_rank_[rank] = intern_set(
        util::IntervalSet::all(domains_.umax(order_.subjects()[rank])));
  }
  return full_set_by_rank_[rank];
}

NodeRef BddManager::unite(NodeRef a, NodeRef b, bool semantic) {
  if (!semantic) return unite_rec(a, b);
  NodeRef top = a.is_terminal() ? b : a;
  if (!a.is_terminal() && !b.is_terminal() &&
      order_.less(vars_[node(b).var], vars_[node(a).var]))
    top = b;
  if (top.is_terminal()) {
    // Both terminal: plain merge.
    return unite_rec(a, b);
  }
  const std::size_t rank = order_.rank(subject_of(top));
  return unite_res(a, b, rank, full_set_id(rank));
}

NodeRef BddManager::unite_rec(NodeRef a, NodeRef b) {
  if (a == b) return a;
  if (a == drop()) return b;
  if (b == drop()) return a;
  if (a.is_terminal() && b.is_terminal()) {
    ActionSet merged = terminal_actions(a);
    merged.merge(terminal_actions(b));
    return terminal(merged);
  }
  // Union is commutative: canonicalize the cache key.
  if (a.raw() > b.raw()) std::swap(a, b);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a.raw()) << 32) | b.raw();
  if (const NodeRef* found = unite_cache_.find(key)) return *found;

  NodeRef res;
  if (a.is_terminal()) {
    const Node nb = node(b);
    res = mk(nb.var, unite_rec(a, nb.lo), unite_rec(a, nb.hi));
  } else if (b.is_terminal()) {
    const Node na = node(a);
    res = mk(na.var, unite_rec(na.lo, b), unite_rec(na.hi, b));
  } else {
    const Node na = node(a);
    const Node nb = node(b);
    if (na.var == nb.var) {
      res = mk(na.var, unite_rec(na.lo, nb.lo), unite_rec(na.hi, nb.hi));
    } else if (order_.less(vars_[na.var], vars_[nb.var])) {
      res = mk(na.var, unite_rec(na.lo, b), unite_rec(na.hi, b));
    } else {
      res = mk(nb.var, unite_rec(a, nb.lo), unite_rec(a, nb.hi));
    }
  }
  unite_cache_.insert(key, res);
  return res;
}

NodeRef BddManager::unite_res(NodeRef a, NodeRef b, std::size_t rank_in,
                              std::uint32_t residual_id) {
  if (a.is_terminal() && b.is_terminal()) {
    if (a == b) return a;
    ActionSet merged = terminal_actions(a);
    merged.merge(terminal_actions(b));
    return terminal(merged);
  }
  // Union is commutative: canonicalize the memo key.
  if (a.raw() > b.raw()) std::swap(a, b);

  // Copy node contents: nodes_ may reallocate inside recursive mk() calls.
  const bool a_node = !a.is_terminal();
  const bool b_node = !b.is_terminal();
  const Node na = a_node ? node(a) : Node{};
  const Node nb = b_node ? node(b) : Node{};
  std::uint32_t v;
  if (a_node && b_node) {
    v = order_.less(vars_[na.var], vars_[nb.var]) ? na.var : nb.var;
  } else {
    v = a_node ? na.var : nb.var;
  }
  const std::size_t rank = order_.rank(vars_[v].subject);
  // Residual constraints only travel within one field's component
  // (ancestors on preceding fields cannot constrain this field).
  if (rank != rank_in) residual_id = full_set_id(rank);

  const Key96 key{(static_cast<std::uint64_t>(a.raw()) << 32) | b.raw(),
                  residual_id};
  if (const NodeRef* found = unite_res_cache_.find(key)) return *found;

  // Split the residual domain by this predicate (cached per (var,
  // residual): the split is independent of the node pair).
  const std::uint64_t skey =
      (static_cast<std::uint64_t>(v) << 32) | residual_id;
  std::uint32_t hi_id, lo_id;
  if (const auto* split = split_cache_.find(skey)) {
    hi_id = split->first;
    lo_id = split->second;
  } else {
    const IntervalSet tv = true_values(v);
    const IntervalSet& residual = sets_[residual_id];
    hi_id = intern_set(residual.intersect(tv));
    lo_id = intern_set(sets_[residual_id].subtract(tv));
    split_cache_.insert(skey, {hi_id, lo_id});
  }

  auto cof = [&](NodeRef r, bool is_node, const Node& n, bool hi) {
    return (is_node && n.var == v) ? (hi ? n.hi : n.lo) : r;
  };
  const NodeRef a_lo = cof(a, a_node, na, false);
  const NodeRef a_hi = cof(a, a_node, na, true);
  const NodeRef b_lo = cof(b, b_node, nb, false);
  const NodeRef b_hi = cof(b, b_node, nb, true);

  NodeRef res;
  if (sets_[hi_id].is_empty()) {
    // Predicate implied false by ancestors: reduction (iii), skip node.
    res = unite_res(a_lo, b_lo, rank, lo_id);
  } else if (sets_[lo_id].is_empty()) {
    // Predicate implied true: reduction (iii), skip node.
    res = unite_res(a_hi, b_hi, rank, hi_id);
  } else {
    const NodeRef lo = unite_res(a_lo, b_lo, rank, lo_id);
    const NodeRef hi = unite_res(a_hi, b_hi, rank, hi_id);
    res = mk(v, lo, hi);
  }
  unite_res_cache_.insert(key, res);
  return res;
}

NodeRef BddManager::unite_all(std::vector<NodeRef> roots, bool semantic) {
  if (roots.empty()) return drop();
  while (roots.size() > 1) {
    std::vector<NodeRef> next;
    next.reserve((roots.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < roots.size(); i += 2)
      next.push_back(unite(roots[i], roots[i + 1], semantic));
    if (roots.size() % 2) next.push_back(roots.back());
    roots = std::move(next);
  }
  return roots[0];
}

NodeRef BddManager::prune(NodeRef root) {
  if (root.is_terminal()) return root;
  const std::size_t rank = order_.rank(subject_of(root));
  return unite_res(drop(), root, rank, full_set_id(rank));
}

NodeRef BddManager::import(const BddManager& src, NodeRef root) {
  if (this == &src) return root;
  // Iterative post-order copy: a node is emitted once both its children
  // have destination refs. Memoized on the source ref, so shared subgraphs
  // are copied once and DAG size (not path count) bounds the work.
  std::unordered_map<std::uint32_t, NodeRef> memo;  // src raw -> dst ref
  std::vector<NodeRef> stack{root};
  while (!stack.empty()) {
    const NodeRef r = stack.back();
    if (memo.count(r.raw())) {
      stack.pop_back();
      continue;
    }
    if (r.is_terminal()) {
      memo.emplace(r.raw(), terminal(src.terminal_actions(r)));
      stack.pop_back();
      continue;
    }
    const Node& n = src.node(r);
    const auto lo_it = memo.find(n.lo.raw());
    const auto hi_it = memo.find(n.hi.raw());
    if (lo_it != memo.end() && hi_it != memo.end()) {
      memo.emplace(r.raw(), mk(var_for(src.var_pred(n.var)), lo_it->second,
                               hi_it->second));
      stack.pop_back();
    } else {
      if (hi_it == memo.end()) stack.push_back(n.hi);
      if (lo_it == memo.end()) stack.push_back(n.lo);
    }
  }
  return memo.at(root.raw());
}

const ActionSet& BddManager::evaluate(NodeRef root,
                                      const lang::Env& env) const {
  NodeRef cur = root;
  while (!cur.is_terminal()) {
    const Node& n = node(cur);
    cur = lang::eval_pred(vars_[n.var], env) ? n.hi : n.lo;
  }
  return terminal_actions(cur);
}

std::optional<lang::Env> BddManager::find_witness(
    NodeRef a, NodeRef b,
    const std::function<bool(const ActionSet&, const ActionSet&)>& pred,
    const lang::Env& env_template) const {
  constexpr std::size_t kNoRank = static_cast<std::size_t>(-1);

  // Local residual-set interning: this is a const query, so the manager's
  // own interning tables are left untouched (and the method stays safe to
  // call from concurrent readers).
  std::vector<IntervalSet> sets;
  std::unordered_map<IntervalSet, std::uint32_t, SetHash> set_ids;
  auto intern = [&](const IntervalSet& s) -> std::uint32_t {
    auto it = set_ids.find(s);
    if (it != set_ids.end()) return it->second;
    const std::uint32_t id = static_cast<std::uint32_t>(sets.size());
    sets.push_back(s);
    set_ids.emplace(s, id);
    return id;
  };

  // Visited (a, b, residual) triples: a subtree's outcome depends only on
  // this triple, so an unsuccessful subtree never needs re-exploration.
  struct TripleHash {
    std::size_t operator()(const Key96& k) const noexcept {
      return Key96Hash{}(k);
    }
  };
  std::unordered_set<Key96, TripleHash> visited;

  // Residual constraints of completed subjects along the current path.
  std::vector<std::pair<std::size_t, std::uint32_t>> path;
  std::optional<lang::Env> witness;

  std::function<bool(NodeRef, NodeRef, std::size_t, std::uint32_t)> walk =
      [&](NodeRef x, NodeRef y, std::size_t rank,
          std::uint32_t res) -> bool {
    if (x.is_terminal() && y.is_terminal()) {
      if (!pred(terminal_actions(x), terminal_actions(y))) return false;
      lang::Env env = env_template;
      auto set_value = [&](std::size_t r, std::uint32_t rid) {
        const Subject s = order_.subjects()[r];
        auto& slot =
            s.kind == Subject::Kind::kField ? env.fields : env.states;
        if (slot.size() <= s.id) slot.resize(s.id + 1, 0);
        slot[s.id] = sets[rid].min();
      };
      for (const auto& [r, rid] : path) set_value(r, rid);
      if (rank != kNoRank) set_value(rank, res);
      witness = std::move(env);
      return true;
    }

    const bool xn = !x.is_terminal();
    const bool yn = !y.is_terminal();
    const Node nx = xn ? node(x) : Node{};
    const Node ny = yn ? node(y) : Node{};
    std::uint32_t v;
    if (xn && yn) {
      v = order_.less(vars_[nx.var], vars_[ny.var]) ? nx.var : ny.var;
    } else {
      v = xn ? nx.var : ny.var;
    }
    const std::size_t vrank = order_.rank(vars_[v].subject);
    if (vrank != rank) {
      // Crossing into a new field: the finished subject's residual joins
      // the path; the new subject starts from its full domain.
      if (rank != kNoRank) path.emplace_back(rank, res);
      const std::uint32_t full = intern(
          IntervalSet::all(domains_.umax(order_.subjects()[vrank])));
      const bool hit = walk(x, y, vrank, full);
      if (rank != kNoRank) path.pop_back();
      return hit;
    }

    const Key96 key{
        (static_cast<std::uint64_t>(x.raw()) << 32) | y.raw(), res};
    if (!visited.insert(key).second) return false;

    const IntervalSet tv = true_values(v);
    const IntervalSet hi_set = sets[res].intersect(tv);
    const IntervalSet lo_set = sets[res].subtract(tv);
    auto cof = [&](NodeRef r, bool is_node, const Node& n, bool hi) {
      return (is_node && n.var == v) ? (hi ? n.hi : n.lo) : r;
    };
    if (!hi_set.is_empty() &&
        walk(cof(x, xn, nx, true), cof(y, yn, ny, true), rank,
             intern(hi_set)))
      return true;
    if (!lo_set.is_empty() &&
        walk(cof(x, xn, nx, false), cof(y, yn, ny, false), rank,
             intern(lo_set)))
      return true;
    return false;
  };

  walk(a, b, kNoRank, 0);
  return witness;
}

bool BddManager::implies(NodeRef a, NodeRef b) const {
  return !find_witness(a, b,
                       [](const ActionSet& x, const ActionSet& y) {
                         return !x.is_drop() && y.is_drop();
                       })
              .has_value();
}

bool BddManager::intersects(NodeRef a, NodeRef b) const {
  return find_witness(a, b,
                      [](const ActionSet& x, const ActionSet& y) {
                        return !x.is_drop() && !y.is_drop();
                      })
      .has_value();
}

bool BddManager::equivalent(NodeRef a, NodeRef b) const {
  return !find_witness(a, b,
                       [](const ActionSet& x, const ActionSet& y) {
                         return x != y;
                       })
              .has_value();
}

BddStats BddManager::stats(NodeRef root) const {
  BddStats s;
  std::unordered_set<std::uint32_t> seen_nodes;
  std::unordered_set<std::uint32_t> seen_terms;
  std::unordered_set<std::uint32_t> seen_vars;
  std::vector<NodeRef> stack{root};
  while (!stack.empty()) {
    const NodeRef r = stack.back();
    stack.pop_back();
    if (r.is_terminal()) {
      seen_terms.insert(r.index());
      continue;
    }
    if (!seen_nodes.insert(r.index()).second) continue;
    const Node& n = node(r);
    seen_vars.insert(n.var);
    ++s.nodes_per_subject[vars_[n.var].subject];
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  s.node_count = seen_nodes.size();
  s.terminal_count = seen_terms.size();
  s.var_count = seen_vars.size();
  return s;
}

CacheStats BddManager::cache_stats() const {
  CacheStats s;
  s.unique_nodes = nodes_.size();
  s.terminals = terminals_.size();
  s.vars = vars_.size();
  s.unite_probes = unite_cache_.probes();
  s.unite_hits = unite_cache_.hits();
  s.unite_res_probes = unite_res_cache_.probes();
  s.unite_res_hits = unite_res_cache_.hits();
  s.split_probes = split_cache_.probes();
  s.split_hits = split_cache_.hits();
  return s;
}

std::size_t BddManager::memory_bytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(Node);
  bytes += vars_.capacity() * sizeof(BoundPredicate);
  bytes += terminals_.capacity() * sizeof(ActionSet);
  for (const ActionSet& t : terminals_)
    bytes += t.ports.capacity() * sizeof(t.ports[0]) +
             t.state_updates.capacity() * sizeof(t.state_updates[0]);
  bytes += unique_.memory_bytes();
  bytes += unite_cache_.memory_bytes();
  bytes += unite_res_cache_.memory_bytes();
  bytes += split_cache_.memory_bytes();
  for (const util::IntervalSet& s : sets_)
    bytes += s.intervals().capacity() * sizeof(s.intervals()[0]);
  bytes += sets_.capacity() * sizeof(util::IntervalSet);
  return bytes;
}

std::string BddManager::to_dot(NodeRef root,
                               const spec::Schema* schema) const {
  auto subj_name = [&](Subject s) -> std::string {
    if (schema) {
      return s.kind == Subject::Kind::kField ? schema->field(s.id).name
                                             : schema->state_var(s.id).name;
    }
    return (s.kind == Subject::Kind::kField ? "f" : "v") + std::to_string(s.id);
  };

  std::ostringstream os;
  os << "digraph bdd {\n  rankdir=TB;\n";
  std::unordered_set<std::uint32_t> seen_nodes, seen_terms;
  std::function<void(NodeRef)> walk = [&](NodeRef r) {
    if (r.is_terminal()) {
      if (!seen_terms.insert(r.index()).second) return;
      os << "  t" << r.index() << " [shape=box,label=\""
         << terminal_actions(r).to_string() << "\"];\n";
      return;
    }
    if (!seen_nodes.insert(r.index()).second) return;
    const Node& n = node(r);
    const BoundPredicate& p = vars_[n.var];
    os << "  n" << r.index() << " [shape=ellipse,label=\""
       << subj_name(p.subject) << " " << lang::to_string(p.op) << " "
       << p.value << "\"];\n";
    auto edge = [&](NodeRef child, bool solid) {
      os << "  n" << r.index() << " -> "
         << (child.is_terminal() ? "t" : "n") << child.index()
         << (solid ? " [style=solid];\n" : " [style=dashed];\n");
    };
    edge(n.hi, true);
    edge(n.lo, false);
    walk(n.lo);
    walk(n.hi);
  };
  walk(root);
  os << "}\n";
  return os.str();
}

void BddManager::clear_caches() {
  unite_cache_.clear();
  unite_res_cache_.clear();
  split_cache_.clear();
}

}  // namespace camus::bdd
