// Variable ordering and value domains for the BDD.
//
// As in the paper, BDD variables are atomic predicates (field OP constant),
// arranged in a fixed total order such that all predicates on one subject
// are contiguous and subject groups follow a chosen field order. This is
// the property Algorithm 1 relies on to slice the BDD into per-field
// components.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "lang/bound.hpp"
#include "spec/schema.hpp"

namespace camus::bdd {

using lang::BoundPredicate;
using lang::RelOp;
using lang::Subject;

// Total order over subjects (the BDD "field order"). Predicates compare by
// (subject rank, constant value, operator), giving the contiguous-per-field
// layout with threshold chains sorted by value.
class VarOrder {
 public:
  explicit VarOrder(std::vector<Subject> subjects);

  // Rank of a subject in the order. Throws std::out_of_range for subjects
  // not in the order — the compiler must enumerate the full subject set
  // before building the BDD.
  std::size_t rank(Subject s) const;

  bool contains(Subject s) const noexcept;

  bool less(const BoundPredicate& a, const BoundPredicate& b) const;

  const std::vector<Subject>& subjects() const noexcept { return subjects_; }

 private:
  static int op_rank(RelOp op) noexcept {
    switch (op) {
      case RelOp::kLt: return 0;
      case RelOp::kEq: return 1;
      case RelOp::kGt: return 2;
    }
    return 3;
  }

  std::vector<Subject> subjects_;
  // Dense rank lookup: per-kind vectors indexed by id.
  std::vector<std::size_t> field_rank_;
  std::vector<std::size_t> state_rank_;
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
};

// Value domain ([0, umax]) of each subject, derived from field/register
// widths in the schema.
class DomainMap {
 public:
  explicit DomainMap(const spec::Schema& schema);

  std::uint64_t umax(Subject s) const;

 private:
  std::vector<std::uint64_t> field_umax_;
  std::vector<std::uint64_t> state_umax_;
};

// The compiler's field-ordering heuristics (ablation: bench/ablation_ordering).
enum class OrderHeuristic : std::uint8_t {
  kDeclared,         // annotation order from the spec (paper default)
  kExactFirst,       // exact-match (symbol) fields first, then declared order
  kSelectivityAsc,   // fewest distinct predicate constants first
  kSelectivityDesc,  // most distinct predicate constants first
};

}  // namespace camus::bdd
