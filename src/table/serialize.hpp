// Pipeline serialization: a complete, versioned text format for compiled
// pipelines. This is the controller -> switch exchange artifact: the
// dynamic compiler runs once centrally, and every switch (simulator)
// deserializes the same bytes. Unlike the human-oriented control-plane
// dump (p4gen), this format round-trips everything — table kinds, key
// widths, subjects, wildcard entries, leaf actions, multicast groups.
#pragma once

#include <string>
#include <string_view>

#include "table/pipeline.hpp"
#include "util/result.hpp"

namespace camus::table {

// Current format version; parse rejects other versions.
inline constexpr int kPipelineFormatVersion = 1;

std::string serialize_pipeline(const Pipeline& pipeline);

// Parses and finalizes a pipeline. Fails with a line-numbered error on any
// malformed input.
util::Result<Pipeline> deserialize_pipeline(std::string_view text);

}  // namespace camus::table
