// Flattened data-plane lookup structure: a Pipeline lowered into dense,
// state-indexed contiguous arrays for the simulator's fast path.
//
//  - exact entries -> one open-addressed flat table per stage keyed by
//    (state, value), linear probing, load factor <= 0.5;
//  - range entries -> one sorted array per stage with per-state offset
//    slices and a branchless upper-bound scan;
//  - wildcard entries -> a dense per-state fallback array;
//  - leaf entries -> a dense state -> leaf-index array with the distinct
//    ActionSets interned and referenced by index.
//
// Every array lives in a single arena allocation, so a full traversal
// touches a handful of cache lines and performs zero heap allocation.
//
// Semantics are bit-identical to Pipeline::evaluate (exact beats range
// beats wildcard; a miss keeps the state; value-map misses code to 0;
// duplicate exact entries resolve last-wins and duplicate leaf states
// first-wins, mirroring Table::finalize / LeafTable::add_entry). The
// per-frame Pipeline path stays the semantic reference; this structure is
// differential-tested against it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "table/pipeline.hpp"
#include "util/arena.hpp"

namespace camus::table {

class CompiledPipeline {
 public:
  // Leaf-index sentinel for "no leaf entry" (drop).
  static constexpr std::uint32_t kMiss = 0xffffffffu;
  // Longest hot-key memo prefix (stages / key words).
  static constexpr std::size_t kMaxPrefix = 4;
  // Messages per run_prefix_block() call: 8 keys per probe round, so the
  // hashes and prefetches of a whole block issue before any probe's
  // dependent load resolves.
  static constexpr std::size_t kBlockWidth = 8;

  CompiledPipeline() = default;

  // Lowers a pipeline. The source pipeline is only read; it does not need
  // to be finalized. Degenerate inputs (sparse gigantic state ids, more
  // value maps than the traversal's stack buffer) leave the structure
  // invalid; callers fall back to Pipeline::evaluate.
  explicit CompiledPipeline(const Pipeline& pipe);

  bool valid() const noexcept { return valid_; }

  // Full traversal. `fields` / `states` are indexed by field id / state
  // variable id (the lang::Env layout). Returns the leaf entry index (the
  // position in the source LeafTable's entry order) or kMiss for drop.
  std::uint32_t traverse(std::span<const std::uint64_t> fields,
                         std::span<const std::uint64_t> states) const noexcept;

  // --- hot-key memo support ------------------------------------------
  // The memo prefix is the leading run of exact-match, non-value-mapped
  // table stages (for ITCH: the symbol stage). Their traversal outcome is
  // a pure function of the prefix subjects' input values, so callers can
  // memoize (key values) -> run_prefix() and then finish().
  std::size_t prefix_stages() const noexcept { return prefix_stages_; }
  // Writes prefix_stages() raw key values into out (size >= kMaxPrefix).
  void prefix_key(std::span<const std::uint64_t> fields,
                  std::span<const std::uint64_t> states,
                  std::uint64_t* out) const noexcept;
  // State after the prefix stages, starting from the initial state.
  std::uint32_t run_prefix(
      std::span<const std::uint64_t> fields,
      std::span<const std::uint64_t> states) const noexcept;
  // Value maps + remaining stages + leaf lookup, from a prefix state.
  std::uint32_t finish(std::uint32_t state,
                       std::span<const std::uint64_t> fields,
                       std::span<const std::uint64_t> states) const noexcept;

  // --- block probing (batched / SIMD exact lookup) --------------------
  // Runs the memo prefix for n <= kBlockWidth messages in lockstep.
  // `keys` holds n rows of kMaxPrefix words in prefix_key() layout (row i,
  // word s = raw input of prefix stage s for message i); out_states[i] ==
  // run_prefix(fields_i, states_i) for the fields/states the keys were
  // extracted from — bit-identical, differential-tested. Per stage, all n
  // hashes are computed and their open-addressed slots prefetched before
  // any probe resolves, and the probe itself compares slot keys 4 at a
  // time with AVX2 when the CPU has it (runtime-dispatched; the scalar
  // path is the semantic reference).
  void run_prefix_block(const std::uint64_t* keys, std::size_t n,
                        std::uint32_t* out_states) const noexcept;

  // Issues a prefetch for the interned ActionSet a leaf index resolves
  // to, so callers can overlap the actions() load of message i with the
  // finish() of message i+1. No-op for kMiss.
  void prefetch_leaf(std::uint32_t leaf_idx) const noexcept {
    if (leaf_idx != kMiss) {
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(&action_sets_[leaf_action_idx_[leaf_idx]]);
#endif
    }
  }

  // --- leaf access ----------------------------------------------------
  const LeafEntry& leaf_entry(std::uint32_t leaf_idx) const {
    return leaf_entries_[leaf_idx];
  }
  // Interned ActionSet for a leaf index (nullptr for kMiss).
  const lang::ActionSet* actions(std::uint32_t leaf_idx) const noexcept {
    return leaf_idx == kMiss ? nullptr
                             : &action_sets_[leaf_action_idx_[leaf_idx]];
  }

  // Fingerprint of the memo prefix: hashes the prefix stages' flattened
  // tables plus the initial state. Equal signatures mean every prefix key
  // classifies to the same post-prefix state in both pipelines, so a
  // hot-key memo built against one remains valid for the other — the RCU
  // swap in switchsim::Switch keeps its memo warm across a reprogram that
  // leaves the prefix stages untouched. 0 for an invalid pipeline.
  std::uint64_t prefix_signature() const noexcept;

  // --- layout telemetry ----------------------------------------------
  std::size_t arena_bytes() const noexcept { return arena_.bytes(); }
  std::size_t stage_count() const noexcept {
    return maps_.size() + stages_.size();
  }
  std::uint32_t n_states() const noexcept { return n_states_; }
  std::size_t action_set_count() const noexcept { return action_sets_.size(); }

 private:
  struct ExactSlot {
    std::uint64_t value = 0;
    StateId state = kEmptyState;
    StateId next = 0;
  };
  struct RangeEnt {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    StateId state = 0;  // build-time sort key; unused after
    StateId next = 0;
  };
  // Empty-slot marker for the open-addressed exact tables. Dense state ids
  // are capped far below this by kMaxDenseStates.
  static constexpr StateId kEmptyState = 0xffffffffu;
  static constexpr std::uint32_t kMaxDenseStates = 1u << 24;
  static constexpr std::size_t kMaxValueMaps = 32;

  struct FlatTable {
    std::span<ExactSlot> exact;  // power-of-two capacity, or empty
    std::uint64_t exact_mask = 0;
    std::span<RangeEnt> ranges;             // sorted by (state, lo)
    std::span<std::uint32_t> range_off;     // states + 1 offsets, or empty
    std::span<std::uint32_t> any_next;      // per-state wildcard, or empty
    std::uint32_t states = 0;               // dense state-domain size
  };
  struct Stage {
    FlatTable flat;
    lang::Subject subject;
    std::int32_t code_idx = -1;  // >= 0: input is value-map code [idx]
  };
  struct MapStage {
    FlatTable flat;
    lang::Subject subject;
    std::int32_t input_code_idx = -1;  // duplicate-subject map chains
  };

  // Structure-of-arrays mirror of a prefix stage's open-addressed exact
  // table: same capacity, same hash, same slot order as FlatTable::exact,
  // so probe sequences are identical — but keys sit contiguously, which
  // is what the 4-wide SIMD compare in run_prefix_block wants. Built only
  // for the prefix stages (the per-message hot loop); the scalar AoS
  // table stays the reference for everything else.
  struct ProbeTable {
    std::vector<std::uint64_t> key;   // slot value
    std::vector<StateId> state;       // slot state, kEmptyState = empty
    std::vector<StateId> next;        // next-state payload
    std::uint64_t mask = 0;           // capacity - 1, or 0 when empty
  };

  static std::uint32_t flat_lookup(const FlatTable& t, StateId state,
                                   std::uint64_t value) noexcept;
  // Range/wildcard tail of flat_lookup, used when a block probe's exact
  // lookup misses (prefix stages compiled from rules are pure-exact, but
  // hand-built pipelines may mix kinds in one table).
  static std::uint32_t flat_lookup_tail(const FlatTable& t, StateId state,
                                        std::uint64_t value) noexcept;
  std::uint64_t input_value(
      const Stage& s, std::span<const std::uint64_t> fields,
      std::span<const std::uint64_t> states,
      const std::uint64_t* codes) const noexcept;

  util::Arena arena_;
  std::vector<MapStage> maps_;
  std::vector<Stage> stages_;
  std::vector<ProbeTable> probe_;  // one per prefix stage
  std::span<std::uint32_t> leaf_state_to_idx_;  // dense; kMiss = no entry
  std::vector<LeafEntry> leaf_entries_;         // source LeafTable order
  std::vector<std::uint32_t> leaf_action_idx_;  // leaf idx -> interned set
  std::vector<lang::ActionSet> action_sets_;    // distinct ActionSets
  StateId initial_state_ = kInitialState;
  std::uint32_t n_states_ = 0;
  std::size_t prefix_stages_ = 0;
  bool valid_ = false;
};

}  // namespace camus::table
