#include "table/pipeline.hpp"

#include <sstream>

#include "util/intern.hpp"
#include "util/stats.hpp"

namespace camus::table {

namespace {
const lang::ActionSet kDropActions{};
}  // namespace

ResourceUsage Table::resources() const {
  ResourceUsage u;
  u.logical_entries = entries_.size();
  for (const Entry& e : entries_) {
    switch (e.match.kind) {
      case ValueMatch::Kind::kExact:
        if (kind_ == MatchKind::kExact)
          ++u.sram_entries;
        else
          ++u.tcam_entries;  // a point is one TCAM entry
        break;
      case ValueMatch::Kind::kRange:
        u.tcam_entries +=
            tcam_entries_for_range(e.match.lo, e.match.hi, width_bits_);
        break;
      case ValueMatch::Kind::kAny:
        // Per-state wildcard fallback: one TCAM entry regardless of the
        // table's primary match kind.
        ++u.tcam_entries;
        break;
    }
  }
  return u;
}

void Pipeline::finalize() {
  for (auto& t : value_maps) t.finalize();
  for (auto& t : tables) t.finalize();
}

Table* Pipeline::find_table(std::string_view name) {
  for (auto& t : value_maps)
    if (t.name() == name) return &t;
  for (auto& t : tables)
    if (t.name() == name) return &t;
  return nullptr;
}

const Table* Pipeline::find_table(std::string_view name) const {
  return const_cast<Pipeline*>(this)->find_table(name);
}

util::Result<bool> Pipeline::validate() const {
  for (const auto& t : value_maps)
    if (auto r = t.validate(); !r.ok()) return r;
  for (const auto& t : tables)
    if (auto r = t.validate(); !r.ok()) return r;
  for (const auto& e : leaf.entries()) {
    if (e.mcast_group && *e.mcast_group >= mcast.size())
      return util::Error{"leaf entry for state " + std::to_string(e.state) +
                         " references unknown multicast group " +
                         std::to_string(*e.mcast_group)};
  }
  return true;
}

const LeafEntry* Pipeline::evaluate(const lang::Env& env) const {
  if (value_maps.empty()) return evaluate_mapped(env);
  lang::Env mapped = env;
  for (const auto& m : value_maps) {
    const lang::Subject s = m.subject();
    const std::uint64_t raw = mapped.get(s);
    // The mapping stage partitions the whole domain, so a miss indicates a
    // compiler bug rather than a valid packet; map to code 0 defensively.
    const std::uint64_t code = m.lookup(kInitialState, raw).value_or(0);
    auto& slot = s.kind == lang::Subject::Kind::kField
                     ? mapped.fields.at(s.id)
                     : mapped.states.at(s.id);
    slot = code;
  }
  return evaluate_mapped(mapped);
}

const LeafEntry* Pipeline::evaluate_mapped(const lang::Env& env) const {
  StateId state = initial_state;
  for (const auto& t : tables) {
    const std::uint64_t value = env.get(t.subject());
    if (auto next = t.lookup(state, value)) state = *next;
    // Miss: keep the current state (pass-through).
  }
  return leaf.lookup(state);
}

const lang::ActionSet& Pipeline::evaluate_actions(const lang::Env& env) const {
  const LeafEntry* e = evaluate(env);
  return e ? e->actions : kDropActions;
}

ResourceUsage Pipeline::resources() const {
  ResourceUsage u;
  for (const auto& t : value_maps) u.accumulate(t.resources());
  for (const auto& t : tables) u.accumulate(t.resources());
  u.logical_entries += leaf.entries().size();
  u.sram_entries += leaf.entries().size();  // leaf matches state exactly
  u.stages = value_maps.size() + tables.size() + 1;
  u.multicast_groups = mcast.size();
  return u;
}

std::uint64_t Pipeline::total_entries() const {
  std::uint64_t n = leaf.entries().size();
  for (const auto& t : value_maps) n += t.entries().size();
  for (const auto& t : tables) n += t.entries().size();
  return n;
}

std::string Pipeline::to_dot() const {
  std::ostringstream os;
  os << "digraph pipeline {\n  rankdir=LR;\n  node [shape=circle];\n";
  // States that terminate in the leaf table render as boxes with actions.
  for (const auto& e : leaf.entries()) {
    os << "  s" << e.state << " [shape=box,label=\"" << e.state << "\\n"
       << e.actions.to_string() << "\"];\n";
  }
  std::size_t cluster = 0;
  auto emit_table = [&](const Table& t) {
    os << "  subgraph cluster_" << cluster++ << " {\n    label=\""
       << t.name() << " (" << table::to_string(t.kind()) << ")\";\n";
    os << "  }\n";
    for (const auto& e : t.entries()) {
      std::string label = e.match.to_string();
      if (t.is_symbol() && e.match.kind == ValueMatch::Kind::kExact)
        label = util::decode_symbol(e.match.lo);
      os << "  s" << e.state << " -> s" << e.next_state << " [label=\""
         << t.name() << ": " << label << "\"];\n";
    }
  };
  for (const auto& t : tables) emit_table(t);
  os << "}\n";
  return os.str();
}

Pipeline::Trace Pipeline::explain(const lang::Env& env) const {
  Trace trace;
  lang::Env mapped = env;
  for (const auto& m : value_maps) {
    TraceStep step;
    step.table = m.name();
    const lang::Subject s = m.subject();
    step.input_value = mapped.get(s);
    step.state_before = kInitialState;
    const auto code = m.lookup(kInitialState, step.input_value);
    step.hit = code.has_value();
    step.state_after = code.value_or(0);
    if (step.hit) step.match = "code " + std::to_string(*code);
    auto& slot = s.kind == lang::Subject::Kind::kField
                     ? mapped.fields.at(s.id)
                     : mapped.states.at(s.id);
    slot = code.value_or(0);
    trace.steps.push_back(std::move(step));
  }

  StateId state = initial_state;
  for (const auto& t : tables) {
    TraceStep step;
    step.table = t.name();
    step.input_value = mapped.get(t.subject());
    step.state_before = state;
    const auto next = t.lookup(state, step.input_value);
    step.hit = next.has_value();
    if (next) {
      state = *next;
      // Recover the matched entry's match text for the trace.
      for (const auto& e : t.entries()) {
        if (e.state == step.state_before && e.next_state == *next &&
            e.match.matches(step.input_value)) {
          step.match = e.match.to_string();
          if (t.is_symbol() && e.match.kind == ValueMatch::Kind::kExact)
            step.match = util::decode_symbol(e.match.lo);
          break;
        }
      }
    }
    step.state_after = state;
    trace.steps.push_back(std::move(step));
  }
  trace.final_state = state;
  const LeafEntry* leaf_entry = leaf.lookup(state);
  trace.leaf_hit = leaf_entry != nullptr;
  if (leaf_entry) trace.actions = leaf_entry->actions;
  return trace;
}

std::string Pipeline::Trace::to_string() const {
  std::ostringstream os;
  for (const auto& s : steps) {
    os << "  " << s.table << ": value=" << s.input_value << " state "
       << s.state_before << " -> ";
    if (s.hit)
      os << s.state_after << " (matched " << s.match << ")";
    else
      os << s.state_after << " (miss, pass-through)";
    os << "\n";
  }
  os << "  leaf: state " << final_state << " -> "
     << (leaf_hit ? actions.to_string() : std::string("miss -> drop()"))
     << "\n";
  return os.str();
}

std::string Pipeline::to_string() const {
  std::ostringstream os;
  for (const auto& t : value_maps) {
    os << t.name() << " ValueMap (" << table::to_string(t.kind()) << ", "
       << t.width_bits() << "b)\n";
    util::TextTable tt({"match", "code"});
    for (const auto& e : t.entries())
      tt.add_row({e.match.to_string(), std::to_string(e.next_state)});
    os << tt.to_string() << "\n";
  }
  for (const auto& t : tables) {
    os << t.name() << " Table (" << table::to_string(t.kind()) << ", "
       << t.width_bits() << "b)\n";
    util::TextTable tt({"state", "match", "action"});
    for (const auto& e : t.entries()) {
      std::string match = e.match.to_string();
      if (t.is_symbol() && e.match.kind == ValueMatch::Kind::kExact)
        match = util::decode_symbol(e.match.lo);
      tt.add_row({std::to_string(e.state), std::move(match),
                  "state <- " + std::to_string(e.next_state)});
    }
    os << tt.to_string() << "\n";
  }
  os << "Leaf Table\n";
  util::TextTable tt({"state", "action"});
  for (const auto& e : leaf.entries()) {
    std::string action = e.actions.to_string();
    if (e.mcast_group) action += "  [mcast group " +
                                 std::to_string(*e.mcast_group) + "]";
    tt.add_row({std::to_string(e.state), action});
  }
  os << tt.to_string();
  return os.str();
}

}  // namespace camus::table
