#include "table/delta.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace camus::table {

using util::Error;
using util::Result;

namespace {

const char* kind_name(EntryOp::Kind k) {
  switch (k) {
    case EntryOp::Kind::kAdd: return "add";
    case EntryOp::Kind::kRemove: return "del";
    case EntryOp::Kind::kModify: return "mod";
  }
  return "?";
}

const char* value_kind_name(ValueMatch::Kind k) {
  switch (k) {
    case ValueMatch::Kind::kAny: return "any";
    case ValueMatch::Kind::kExact: return "exact";
    case ValueMatch::Kind::kRange: return "range";
  }
  return "?";
}

Error err(std::string code, std::string msg) {
  return Error{std::move(msg), 0, 0, std::move(code)};
}

Result<ApplyStats> apply_one(Pipeline& pipe, const EntryOp& op,
                             ApplyStats& stats) {
  if (op.is_leaf()) {
    const LeafEntry* existing = pipe.leaf.lookup(op.state);
    switch (op.kind) {
      case EntryOp::Kind::kRemove:
        if (!existing || !(existing->actions == op.actions))
          return err("U005", "leaf remove: state " + std::to_string(op.state) +
                                 (existing ? " actions mismatch (have " +
                                                 existing->actions.to_string() +
                                                 ", delta says " +
                                                 op.actions.to_string() + ")"
                                           : " has no entry"));
        pipe.leaf.remove_entry(op.state);
        ++stats.removes;
        return stats;
      case EntryOp::Kind::kModify: {
        if (!existing)
          return err("U005", "leaf modify: state " + std::to_string(op.state) +
                                 " has no entry");
        LeafEntry e;
        e.state = op.state;
        e.actions = op.actions;
        if (e.actions.ports.size() > 1)
          e.mcast_group = pipe.mcast.intern(e.actions.ports);
        pipe.leaf.replace_entry(op.state, std::move(e));
        ++stats.modifies;
        return stats;
      }
      case EntryOp::Kind::kAdd: {
        if (existing)
          return err("U006", "leaf add: state " + std::to_string(op.state) +
                                 " already has an entry");
        LeafEntry e;
        e.state = op.state;
        e.actions = op.actions;
        if (e.actions.ports.size() > 1)
          e.mcast_group = pipe.mcast.intern(e.actions.ports);
        pipe.leaf.add_entry(std::move(e));
        ++stats.adds;
        return stats;
      }
    }
    return err("U004", "leaf op with unknown kind");
  }

  Table* t = pipe.find_table(op.table);
  if (!t)
    return err("U001", "delta op targets unknown table '" + op.table + "'");
  const Entry e{op.state, op.match, op.next_state};
  switch (op.kind) {
    case EntryOp::Kind::kRemove:
      if (!t->remove_matching(e))
        return err("U002", "remove: no entry in '" + op.table + "' matches " +
                               op.to_string());
      ++stats.removes;
      return stats;
    case EntryOp::Kind::kAdd:
      if (!t->insert_entry(e))
        return err("U003", "add: entry already present in '" + op.table +
                               "': " + op.to_string());
      ++stats.adds;
      return stats;
    case EntryOp::Kind::kModify:
      return err("U004",
                 "modify is leaf-only (field entry changes are remove+add): " +
                     op.to_string());
  }
  return err("U004", "field op with unknown kind");
}

}  // namespace

std::string EntryOp::to_string() const {
  std::string s = kind_name(kind);
  s += " ";
  s += table + " state=" + std::to_string(state);
  if (is_leaf()) {
    s += " => " + actions.to_string();
  } else {
    s += " match=" + match.to_string() +
         " => next=" + std::to_string(next_state);
  }
  return s;
}

Result<ApplyStats> apply_ops(Pipeline& pipe, std::span<const EntryOp> ops) {
  ApplyStats stats;
  // Removes first, then modifies, then adds: a remove+add pair over the
  // same value region never transiently overlaps, and re-adding a just-
  // removed leaf state is legal within one delta.
  for (auto pass : {EntryOp::Kind::kRemove, EntryOp::Kind::kModify,
                    EntryOp::Kind::kAdd}) {
    for (const EntryOp& op : ops) {
      if (op.kind != pass) continue;
      if (auto r = apply_one(pipe, op, stats); !r.ok()) return r.error();
    }
  }
  // Rebuild lookup indices for the touched tables (idempotent: untouched
  // tables keep their index) and re-check structural soundness before the
  // patch counts as committed.
  pipe.finalize();
  if (auto valid = pipe.validate(); !valid.ok())
    return err("U007",
               "patched pipeline failed validation: " + valid.error().message);
  return stats;
}

std::string serialize_ops(std::span<const EntryOp> ops) {
  std::ostringstream os;
  os << "camus-delta v" << kDeltaFormatVersion << "\n";
  for (const EntryOp& op : ops) {
    os << "op " << kind_name(op.kind) << " " << op.table << " " << op.state;
    if (op.is_leaf()) {
      os << " ports=";
      if (op.actions.ports.empty()) {
        os << "-";
      } else {
        for (std::size_t i = 0; i < op.actions.ports.size(); ++i)
          os << (i ? "," : "") << op.actions.ports[i];
      }
      os << " updates=";
      if (op.actions.state_updates.empty()) {
        os << "-";
      } else {
        for (std::size_t i = 0; i < op.actions.state_updates.size(); ++i)
          os << (i ? "," : "") << op.actions.state_updates[i];
      }
    } else {
      os << " " << value_kind_name(op.match.kind) << " " << op.match.lo << " "
         << op.match.hi << " " << op.next_state;
    }
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

Result<std::vector<EntryOp>> deserialize_ops(std::string_view text) {
  std::vector<EntryOp> ops;
  std::size_t pos = 0;
  int line_no = 0;

  auto next_line = [&]() -> std::vector<std::string_view> {
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string_view::npos) eol = text.size();
      std::string_view line = text.substr(pos, eol - pos);
      pos = eol + 1;
      ++line_no;
      std::vector<std::string_view> toks;
      std::size_t i = 0;
      while (i < line.size()) {
        while (i < line.size() && line[i] == ' ') ++i;
        std::size_t j = i;
        while (j < line.size() && line[j] != ' ') ++j;
        if (j > i) toks.push_back(line.substr(i, j - i));
        i = j;
      }
      if (!toks.empty()) return toks;
    }
    return {};
  };
  auto fail = [&](std::string msg) { return Error{std::move(msg), line_no}; };
  auto parse_u64 = [](std::string_view s, std::uint64_t* out) {
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
    return ec == std::errc() && p == s.data() + s.size();
  };
  auto parse_list = [&](std::string_view v,
                        std::vector<std::uint64_t>* out) -> bool {
    if (v == "-") return true;
    std::size_t i = 0;
    while (i < v.size()) {
      std::size_t j = v.find(',', i);
      if (j == std::string_view::npos) j = v.size();
      std::uint64_t x = 0;
      if (!parse_u64(v.substr(i, j - i), &x)) return false;
      out->push_back(x);
      i = j + 1;
    }
    return true;
  };
  auto kv = [](std::string_view tok, std::string_view key) -> std::string_view {
    if (tok.size() <= key.size() + 1) return {};
    if (tok.substr(0, key.size()) != key || tok[key.size()] != '=') return {};
    return tok.substr(key.size() + 1);
  };

  auto toks = next_line();
  if (toks.size() != 2 || toks[0] != "camus-delta" ||
      toks[1] != "v" + std::to_string(kDeltaFormatVersion))
    return fail("bad header (expected 'camus-delta v1')");

  bool done = false;
  for (toks = next_line(); !toks.empty(); toks = next_line()) {
    if (toks[0] == "end") {
      done = true;
      break;
    }
    if (toks[0] != "op") return fail("expected 'op' or 'end'");
    if (toks.size() < 4) return fail("truncated op line");
    EntryOp op;
    if (toks[1] == "add") op.kind = EntryOp::Kind::kAdd;
    else if (toks[1] == "del") op.kind = EntryOp::Kind::kRemove;
    else if (toks[1] == "mod") op.kind = EntryOp::Kind::kModify;
    else return fail("bad op kind '" + std::string(toks[1]) + "'");
    op.table = std::string(toks[2]);
    std::uint64_t state = 0;
    if (!parse_u64(toks[3], &state)) return fail("bad op state");
    op.state = static_cast<StateId>(state);
    if (op.is_leaf()) {
      if (toks.size() != 6) return fail("bad leaf op line");
      std::vector<std::uint64_t> ports, updates;
      if (!parse_list(kv(toks[4], "ports"), &ports))
        return fail("bad leaf op ports");
      if (!parse_list(kv(toks[5], "updates"), &updates))
        return fail("bad leaf op updates");
      for (auto p : ports) {
        if (p > 0xffff) return fail("leaf op port out of range");
        op.actions.add_port(static_cast<std::uint16_t>(p));
      }
      for (auto u : updates)
        op.actions.add_update(static_cast<std::uint32_t>(u));
    } else {
      if (toks.size() != 8) return fail("bad field op line");
      std::uint64_t lo = 0, hi = 0, next = 0;
      if (!parse_u64(toks[5], &lo) || !parse_u64(toks[6], &hi) ||
          !parse_u64(toks[7], &next))
        return fail("bad field op numbers");
      if (toks[4] == "any") op.match = ValueMatch::any();
      else if (toks[4] == "exact") op.match = ValueMatch::exact(lo);
      else if (toks[4] == "range") {
        if (lo > hi) return fail("inverted range in field op");
        op.match = ValueMatch::range(lo, hi);
      } else {
        return fail("bad field op match kind");
      }
      op.next_state = static_cast<StateId>(next);
    }
    ops.push_back(std::move(op));
  }
  if (!done) return fail("missing 'end'");
  return ops;
}

// --- pipeline diffing & digests ------------------------------------------

namespace {

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xff)) * 0x100000001b3ULL;
    v >>= 8;
  }
  return h;
}

constexpr std::uint64_t kFnvSeed = 0xcbf29ce484222325ULL;

// Canonical field-entry key: (table, state, match kind, lo, hi, next).
// Sorted-set semantics make digests and diffs independent of entry order.
using FieldKey = std::tuple<std::string, StateId, std::uint8_t, std::uint64_t,
                            std::uint64_t, StateId>;
using LeafMap = std::map<StateId, lang::ActionSet>;

std::set<FieldKey> field_keys(const Pipeline& pipe) {
  std::set<FieldKey> keys;
  auto collect = [&](const Table& t) {
    for (const auto& e : t.entries())
      keys.emplace(t.name(), e.state,
                   static_cast<std::uint8_t>(e.match.kind), e.match.lo,
                   e.match.hi, e.next_state);
  };
  for (const auto& t : pipe.value_maps) collect(t);
  for (const auto& t : pipe.tables) collect(t);
  return keys;
}

LeafMap leaf_map(const Pipeline& pipe) {
  LeafMap m;
  // Multicast group ids are renumbered per compilation; keying on the
  // action set keeps renumbering from showing up as divergence.
  for (const auto& e : pipe.leaf.entries()) m.emplace(e.state, e.actions);
  return m;
}

std::uint64_t digest_table(const Table& t) {
  // Sort canonical entry tuples so insertion order cannot matter.
  std::vector<std::tuple<StateId, std::uint8_t, std::uint64_t, std::uint64_t,
                         StateId>>
      keys;
  keys.reserve(t.entries().size());
  for (const auto& e : t.entries())
    keys.emplace_back(e.state, static_cast<std::uint8_t>(e.match.kind),
                      e.match.lo, e.match.hi, e.next_state);
  std::sort(keys.begin(), keys.end());
  std::uint64_t h = kFnvSeed;
  for (const auto& [state, kind, lo, hi, next] : keys) {
    h = fnv1a_mix(h, state);
    h = fnv1a_mix(h, kind);
    h = fnv1a_mix(h, lo);
    h = fnv1a_mix(h, hi);
    h = fnv1a_mix(h, next);
  }
  return h;
}

std::uint64_t digest_leaf(const LeafTable& leaf) {
  const LeafMap m = [&] {
    LeafMap out;
    for (const auto& e : leaf.entries()) out.emplace(e.state, e.actions);
    return out;
  }();
  std::uint64_t h = kFnvSeed;
  for (const auto& [state, actions] : m) {
    h = fnv1a_mix(h, state);
    h = fnv1a_mix(h, 0x1eafULL);
    for (const auto p : actions.ports) h = fnv1a_mix(h, p);
    h = fnv1a_mix(h, 0x5ca1eULL);
    for (const auto u : actions.state_updates) h = fnv1a_mix(h, u);
  }
  return h;
}

}  // namespace

std::vector<StageDigest> stage_digests(const Pipeline& pipe) {
  std::vector<StageDigest> out;
  out.reserve(pipe.value_maps.size() + pipe.tables.size() + 1);
  auto add = [&](const Table& t) {
    out.push_back({t.name(), digest_table(t), t.entries().size()});
  };
  for (const auto& t : pipe.value_maps) add(t);
  for (const auto& t : pipe.tables) add(t);
  out.push_back({std::string(kLeafTableName), digest_leaf(pipe.leaf),
                 pipe.leaf.entries().size()});
  return out;
}

std::uint64_t pipeline_digest(const Pipeline& pipe) {
  // The initial state is as load-bearing as any entry: a program whose
  // entries all match but whose walk starts elsewhere classifies nothing.
  std::uint64_t h = fnv1a_mix(kFnvSeed, pipe.initial_state);
  for (const auto& s : stage_digests(pipe)) {
    for (const char c : s.table)
      h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    h = fnv1a_mix(h, s.digest);
  }
  return h;
}

PipelineDiff diff_pipelines(const Pipeline* have, const Pipeline& want) {
  PipelineDiff diff;

  const std::set<FieldKey> new_field = field_keys(want);
  const LeafMap new_leaf = leaf_map(want);
  const std::set<FieldKey> old_field =
      have ? field_keys(*have) : std::set<FieldKey>{};
  const LeafMap old_leaf = have ? leaf_map(*have) : LeafMap{};

  auto field_op = [](EntryOp::Kind kind, const FieldKey& k) {
    EntryOp op;
    op.kind = kind;
    op.table = std::get<0>(k);
    op.state = std::get<1>(k);
    op.match.kind = static_cast<ValueMatch::Kind>(std::get<2>(k));
    op.match.lo = std::get<3>(k);
    op.match.hi = std::get<4>(k);
    op.next_state = std::get<5>(k);
    return op;
  };
  for (const auto& k : new_field) {
    if (!old_field.count(k))
      diff.ops.push_back(field_op(EntryOp::Kind::kAdd, k));
    else
      ++diff.reused_entries;
  }
  for (const auto& k : old_field) {
    if (!new_field.count(k))
      diff.ops.push_back(field_op(EntryOp::Kind::kRemove, k));
  }

  auto leaf_op = [](EntryOp::Kind kind, StateId state,
                    const lang::ActionSet& actions) {
    EntryOp op;
    op.kind = kind;
    op.table = std::string(kLeafTableName);
    op.state = state;
    op.actions = actions;
    return op;
  };
  // Leaf diff by state: a surviving state whose ActionSet changed is one
  // kModify op (one control-plane write), not a remove+add pair.
  for (const auto& [state, actions] : new_leaf) {
    auto old_it = old_leaf.find(state);
    if (old_it == old_leaf.end())
      diff.ops.push_back(leaf_op(EntryOp::Kind::kAdd, state, actions));
    else if (!(old_it->second == actions))
      diff.ops.push_back(leaf_op(EntryOp::Kind::kModify, state, actions));
    else
      ++diff.reused_entries;
  }
  for (const auto& [state, actions] : old_leaf) {
    if (!new_leaf.count(state))
      diff.ops.push_back(leaf_op(EntryOp::Kind::kRemove, state, actions));
  }

  diff.total_entries = new_field.size() + new_leaf.size();

  // Structural applicability against `have` (= what the switch runs):
  // entry ops can only patch a program whose stage layout already equals
  // the target's. Stage materialization keeps the layouts identical across
  // plain incremental commits; anything else — a cold start (no program to
  // patch), a stage appearing or retiring, a value-map change, or even an
  // EMPTY stage present on one side only — must ship the full image, or
  // the patched program would never digest-converge with the intended one
  // (an empty stage has no entries to diff, but it is still a stage).
  if (!have) {
    diff.requires_reprogram = true;
  } else {
    auto stage_names = [](const Pipeline& p) {
      std::vector<std::string> names;
      names.reserve(p.value_maps.size() + p.tables.size());
      for (const auto& m : p.value_maps) names.push_back(m.name());
      for (const auto& t : p.tables) names.push_back(t.name());
      return names;
    };
    if (stage_names(*have) != stage_names(want) ||
        have->initial_state != want.initial_state)
      diff.requires_reprogram = true;
  }
  return diff;
}

}  // namespace camus::table
