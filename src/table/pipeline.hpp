// A compiled packet-processing pipeline: the fixed-length sequence of
// per-field match-action tables plus the leaf table and multicast groups
// (paper Figure 4). Pure state-machine evaluation lives here; the switch
// simulator adds packet parsing, registers, and port replication on top.
#pragma once

#include <string>
#include <vector>

#include "table/table.hpp"

namespace camus::table {

class Pipeline {
 public:
  // Optional value-mapping stages produced by the domain-compression
  // optimization: each maps one subject's raw value onto a narrow code
  // domain via range entries (the Entry::state key is unused and fixed to
  // kInitialState). The subject's main table then matches codes.
  std::vector<Table> value_maps;
  std::vector<Table> tables;  // in BDD field order
  LeafTable leaf;
  MulticastGroups mcast;
  StateId initial_state = kInitialState;

  // Builds lookup indices for every table. Idempotent and never throws;
  // evaluate() also triggers it lazily per table, so a pipeline that was
  // never explicitly finalized still evaluates instead of aborting.
  void finalize();

  // Structural soundness of every stage (disjoint range entries). The
  // compiler runs this after table generation and the deserializer after
  // loading, so malformed pipelines are rejected at install time, not
  // mid-simulation.
  util::Result<bool> validate() const;

  // Looks a stage up by name across value_maps and tables (the delta
  // apply path addresses tables by name). nullptr when absent.
  Table* find_table(std::string_view name);
  const Table* find_table(std::string_view name) const;

  // Runs the state machine over the given field/state values. Returns the
  // matched leaf entry, or nullptr for drop.
  const LeafEntry* evaluate(const lang::Env& env) const;

  // Convenience: the merged ActionSet for the packet (empty set == drop).
  const lang::ActionSet& evaluate_actions(const lang::Env& env) const;

  ResourceUsage resources() const;

  // Total logical entries across field tables and the leaf table — the
  // quantity plotted in Figures 5a/5b and reported for Figure 5c.
  std::uint64_t total_entries() const;

  // Figure 4-style rendering of every table.
  std::string to_string() const;

  // GraphViz rendering of the pipeline as a state machine: one cluster per
  // stage, edges labelled with the value match that takes them.
  std::string to_dot() const;

  // --- debugging -----------------------------------------------------
  // One stage of an explained evaluation.
  struct TraceStep {
    std::string table;
    std::uint64_t input_value = 0;   // field value presented to the stage
    StateId state_before = 0;
    bool hit = false;                // miss = state passes through
    std::string match;               // matched entry's match, if hit
    StateId state_after = 0;
  };
  struct Trace {
    std::vector<TraceStep> steps;
    StateId final_state = 0;
    bool leaf_hit = false;
    lang::ActionSet actions;  // empty = drop

    std::string to_string() const;
  };

  // evaluate() with a step-by-step record — the debugging view of the
  // state machine walk (value-map stages included).
  Trace explain(const lang::Env& env) const;

 private:
  const LeafEntry* evaluate_mapped(const lang::Env& env) const;
};

}  // namespace camus::table
