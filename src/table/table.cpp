#include "table/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace camus::table {

std::string to_string(MatchKind k) {
  switch (k) {
    case MatchKind::kExact: return "exact";
    case MatchKind::kRange: return "range";
    case MatchKind::kTernary: return "ternary";
  }
  return "?";
}

std::string ValueMatch::to_string() const {
  switch (kind) {
    case Kind::kAny:
      return "*";
    case Kind::kExact:
      return std::to_string(lo);
    case Kind::kRange:
      return "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  }
  return "?";
}

bool Table::insert_entry(const Entry& e) {
  if (std::find(entries_.begin(), entries_.end(), e) != entries_.end())
    return false;
  entries_.push_back(e);
  indexed_ = false;
  return true;
}

bool Table::remove_matching(const Entry& e) {
  auto it = std::find(entries_.begin(), entries_.end(), e);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  indexed_ = false;
  return true;
}

void Table::finalize() const {
  if (indexed_) return;
  index_.clear();
  for (const Entry& e : entries_) {
    StateIndex& si = index_[e.state];
    switch (e.match.kind) {
      case ValueMatch::Kind::kExact:
        si.exact[e.match.lo] = e.next_state;
        break;
      case ValueMatch::Kind::kRange:
        si.ranges.push_back(e);
        break;
      case ValueMatch::Kind::kAny:
        si.any = e.next_state;
        break;
    }
  }
  for (auto& [state, si] : index_) {
    std::sort(si.ranges.begin(), si.ranges.end(),
              [](const Entry& a, const Entry& b) {
                return a.match.lo < b.match.lo;
              });
  }
  indexed_ = true;
}

util::Result<bool> Table::validate() const {
  // Sort a private copy of the ranges per state: validation must not
  // depend on (or disturb) the lookup index.
  std::unordered_map<StateId, std::vector<ValueMatch>> ranges;
  for (const Entry& e : entries_)
    if (e.match.kind == ValueMatch::Kind::kRange)
      ranges[e.state].push_back(e.match);
  for (auto& [state, rs] : ranges) {
    std::sort(rs.begin(), rs.end(),
              [](const ValueMatch& a, const ValueMatch& b) {
                return a.lo < b.lo;
              });
    for (std::size_t i = 1; i < rs.size(); ++i) {
      if (rs[i].lo <= rs[i - 1].hi)
        return util::Error{"overlapping range entries in table '" + name_ +
                           "' state " + std::to_string(state) + ": " +
                           rs[i - 1].to_string() + " vs " +
                           rs[i].to_string()};
    }
  }
  return true;
}

std::optional<StateId> Table::lookup(StateId state,
                                     std::uint64_t value) const {
  if (!indexed_) finalize();
  auto it = index_.find(state);
  if (it == index_.end()) return std::nullopt;
  const StateIndex& si = it->second;
  if (auto e = si.exact.find(value); e != si.exact.end()) return e->second;
  if (!si.ranges.empty()) {
    // Last range with lo <= value.
    auto r = std::upper_bound(si.ranges.begin(), si.ranges.end(), value,
                              [](std::uint64_t v, const Entry& e) {
                                return v < e.match.lo;
                              });
    if (r != si.ranges.begin()) {
      --r;
      if (r->match.matches(value)) return r->next_state;
    }
  }
  return si.any;  // wildcard fallback, or miss
}

std::uint32_t MulticastGroups::intern(
    const std::vector<std::uint16_t>& ports) {
  std::string key;
  key.reserve(ports.size() * 2);
  for (std::uint16_t p : ports) {
    key.push_back(static_cast<char>(p & 0xff));
    key.push_back(static_cast<char>(p >> 8));
  }
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(groups_.size());
  groups_.push_back(ports);
  ids_.emplace(std::move(key), id);
  return id;
}

void LeafTable::add_entry(LeafEntry e) {
  index_.emplace(e.state, entries_.size());
  entries_.push_back(std::move(e));
}

const LeafEntry* LeafTable::lookup(StateId state) const {
  auto it = index_.find(state);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

void LeafTable::reindex() {
  index_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i)
    index_.emplace(entries_[i].state, i);  // emplace keeps first-wins
}

bool LeafTable::remove_entry(StateId state) {
  auto it = index_.find(state);
  if (it == index_.end()) return false;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(it->second));
  reindex();
  return true;
}

bool LeafTable::replace_entry(StateId state, LeafEntry e) {
  auto it = index_.find(state);
  if (it == index_.end() || e.state != state) return false;
  entries_[it->second] = std::move(e);
  return true;
}

void ResourceUsage::accumulate(const ResourceUsage& other) {
  sram_entries += other.sram_entries;
  tcam_entries += other.tcam_entries;
  logical_entries += other.logical_entries;
  stages += other.stages;
  multicast_groups += other.multicast_groups;
}

std::string ResourceUsage::to_string() const {
  std::ostringstream os;
  os << "entries=" << logical_entries << " (sram=" << sram_entries
     << ", tcam=" << tcam_entries << "), stages=" << stages
     << ", mcast_groups=" << multicast_groups;
  return os.str();
}

bool ResourceBudget::fits(const ResourceUsage& u) const {
  return u.stages <= max_stages &&
         u.sram_entries <= sram_entries_per_stage * max_stages &&
         u.tcam_entries <= tcam_entries_per_stage * max_stages &&
         u.multicast_groups <= max_multicast_groups;
}

std::uint64_t tcam_entries_for_range(std::uint64_t lo, std::uint64_t hi,
                                     std::uint32_t width_bits) {
  if (lo > hi) return 0;
  const std::uint64_t umax =
      width_bits >= 64 ? ~0ULL : ((1ULL << width_bits) - 1);
  hi = std::min(hi, umax);
  if (lo > hi) return 0;
  // Full domain: a single wildcard entry (the 2^64 block size would
  // overflow the doubling loop below).
  if (lo == 0 && hi == umax) return 1;

  // Greedy minimal prefix cover: repeatedly take the largest power-of-two
  // aligned block starting at lo that fits within [lo, hi].
  std::uint64_t count = 0;
  while (true) {
    std::uint64_t block = 1;
    // Largest block size that is aligned at lo and fits in the range.
    while (block <= hi - lo) {
      const std::uint64_t next = block << 1;
      if (next == 0) break;                 // 2^64 overflow
      if ((lo & (next - 1)) != 0) break;    // alignment
      if (next - 1 > hi - lo) break;        // size
      block = next;
    }
    ++count;
    const std::uint64_t end = lo + (block - 1);
    if (end >= hi) break;
    lo = end + 1;
  }
  return count;
}

}  // namespace camus::table
