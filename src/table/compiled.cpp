#include "table/compiled.hpp"

#include <algorithm>
#include <map>

#include "util/flat_map.hpp"

namespace camus::table {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t exact_hash(StateId state, std::uint64_t value) noexcept {
  return util::mix64(value ^ (0x9e3779b97f4a7c15ULL * (state + 1)));
}

// Per-table layout computed in the sizing pass and replayed in the fill
// pass (the arena requires reserve/take calls to mirror each other).
struct TableCounts {
  std::size_t exact_cap = 0;  // power-of-two slot count, 0 = no exact
  std::size_t n_ranges = 0;
  std::uint32_t states = 0;   // dense state-domain size (max state + 1)
  bool has_any = false;
};

TableCounts count_table(const Table& t) {
  TableCounts c;
  std::size_t n_exact = 0;
  std::uint32_t max_state = 0;
  for (const Entry& e : t.entries()) {
    max_state = std::max(max_state, e.state);
    switch (e.match.kind) {
      case ValueMatch::Kind::kExact: ++n_exact; break;
      case ValueMatch::Kind::kRange: ++c.n_ranges; break;
      case ValueMatch::Kind::kAny: c.has_any = true; break;
    }
  }
  if (!t.entries().empty()) c.states = max_state + 1;
  if (n_exact > 0) c.exact_cap = next_pow2(std::max<std::size_t>(8, n_exact * 2));
  return c;
}

}  // namespace

CompiledPipeline::CompiledPipeline(const Pipeline& pipe) {
  initial_state_ = pipe.initial_state;

  // ---- sizing pass ---------------------------------------------------
  // Pipeline-wide dense state domain: every state a traversal can reach
  // (initial, any table's next_state) plus every leaf state.
  std::uint32_t max_state = pipe.initial_state;
  for (const Table& t : pipe.tables)
    for (const Entry& e : t.entries())
      max_state = std::max({max_state, e.state, e.next_state});
  for (const LeafEntry& e : pipe.leaf.entries())
    max_state = std::max(max_state, e.state);
  n_states_ = max_state + 1;
  if (n_states_ > kMaxDenseStates || n_states_ == 0) return;
  if (pipe.value_maps.size() > kMaxValueMaps) return;

  std::vector<TableCounts> map_counts, table_counts;
  map_counts.reserve(pipe.value_maps.size());
  table_counts.reserve(pipe.tables.size());
  for (const Table& t : pipe.value_maps) map_counts.push_back(count_table(t));
  for (const Table& t : pipe.tables) table_counts.push_back(count_table(t));
  for (const TableCounts& c : map_counts)
    if (c.states > kMaxDenseStates) return;

  auto reserve_table = [&](const TableCounts& c) {
    arena_.reserve<ExactSlot>(c.exact_cap);
    arena_.reserve<RangeEnt>(c.n_ranges);
    arena_.reserve<std::uint32_t>(c.n_ranges ? c.states + 1 : 0);
    arena_.reserve<std::uint32_t>(c.has_any ? c.states : 0);
  };
  for (const TableCounts& c : map_counts) reserve_table(c);
  for (const TableCounts& c : table_counts) reserve_table(c);
  arena_.reserve<std::uint32_t>(n_states_);  // leaf state -> entry index
  arena_.commit();

  // ---- fill pass -----------------------------------------------------
  auto fill_table = [&](const Table& t, const TableCounts& c) {
    FlatTable flat;
    flat.states = c.states;
    flat.exact = arena_.take<ExactSlot>(c.exact_cap);
    flat.exact_mask = c.exact_cap ? c.exact_cap - 1 : 0;
    for (ExactSlot& s : flat.exact) s.state = kEmptyState;
    flat.ranges = arena_.take<RangeEnt>(c.n_ranges);
    flat.range_off = arena_.take<std::uint32_t>(c.n_ranges ? c.states + 1 : 0);
    flat.any_next = arena_.take<std::uint32_t>(c.has_any ? c.states : 0);
    for (std::uint32_t& v : flat.any_next) v = kMiss;

    std::size_t n_ranges = 0;
    for (const Entry& e : t.entries()) {
      switch (e.match.kind) {
        case ValueMatch::Kind::kExact: {
          // Last entry wins for duplicate (state, value), mirroring
          // Table::finalize's map assignment.
          std::size_t i = exact_hash(e.state, e.match.lo) & flat.exact_mask;
          while (flat.exact[i].state != kEmptyState &&
                 !(flat.exact[i].state == e.state &&
                   flat.exact[i].value == e.match.lo))
            i = (i + 1) & flat.exact_mask;
          flat.exact[i] = {e.match.lo, e.state, e.next_state};
          break;
        }
        case ValueMatch::Kind::kRange:
          flat.ranges[n_ranges++] = {e.match.lo, e.match.hi, e.state,
                                     e.next_state};
          break;
        case ValueMatch::Kind::kAny:
          flat.any_next[e.state] = e.next_state;
          break;
      }
    }
    if (!flat.ranges.empty()) {
      std::stable_sort(flat.ranges.begin(), flat.ranges.end(),
                       [](const RangeEnt& a, const RangeEnt& b) {
                         return a.state != b.state ? a.state < b.state
                                                   : a.lo < b.lo;
                       });
      // Per-state slices as prefix sums over the sorted array.
      std::uint32_t pos = 0;
      for (std::uint32_t s = 0; s < c.states; ++s) {
        flat.range_off[s] = pos;
        while (pos < flat.ranges.size() && flat.ranges[pos].state == s) ++pos;
      }
      flat.range_off[c.states] = pos;
    }
    return flat;
  };

  maps_.reserve(pipe.value_maps.size());
  for (std::size_t i = 0; i < pipe.value_maps.size(); ++i) {
    MapStage m;
    m.flat = fill_table(pipe.value_maps[i], map_counts[i]);
    m.subject = pipe.value_maps[i].subject();
    // A map whose subject an earlier map already wrote reads that map's
    // code, mirroring Pipeline::evaluate's progressive env update.
    for (std::size_t j = i; j-- > 0;) {
      if (pipe.value_maps[j].subject() == m.subject) {
        m.input_code_idx = static_cast<std::int32_t>(j);
        break;
      }
    }
    maps_.push_back(m);
  }

  stages_.reserve(pipe.tables.size());
  prefix_stages_ = 0;
  bool in_prefix = true;
  for (std::size_t i = 0; i < pipe.tables.size(); ++i) {
    Stage s;
    s.flat = fill_table(pipe.tables[i], table_counts[i]);
    s.subject = pipe.tables[i].subject();
    // The table reads the last value map for its subject, if any.
    for (std::size_t j = pipe.value_maps.size(); j-- > 0;) {
      if (pipe.value_maps[j].subject() == s.subject) {
        s.code_idx = static_cast<std::int32_t>(j);
        break;
      }
    }
    // Hot-key memo prefix: leading exact-match stages on raw (unmapped)
    // subjects — low-cardinality keys like the ITCH symbol stage.
    if (in_prefix && pipe.tables[i].kind() == MatchKind::kExact &&
        s.code_idx < 0 && prefix_stages_ < kMaxPrefix) {
      ++prefix_stages_;
    } else {
      in_prefix = false;
    }
    stages_.push_back(s);
  }

  leaf_state_to_idx_ = arena_.take<std::uint32_t>(n_states_);
  for (std::uint32_t& v : leaf_state_to_idx_) v = kMiss;
  leaf_entries_.reserve(pipe.leaf.entries().size());
  leaf_action_idx_.reserve(pipe.leaf.entries().size());
  std::map<lang::ActionSet, std::uint32_t> interned;
  for (const LeafEntry& e : pipe.leaf.entries()) {
    const auto idx = static_cast<std::uint32_t>(leaf_entries_.size());
    // First entry wins for duplicate states (LeafTable::add_entry uses
    // emplace, which keeps the existing mapping).
    if (leaf_state_to_idx_[e.state] == kMiss) leaf_state_to_idx_[e.state] = idx;
    auto [it, inserted] = interned.emplace(
        e.actions, static_cast<std::uint32_t>(action_sets_.size()));
    if (inserted) action_sets_.push_back(e.actions);
    leaf_action_idx_.push_back(it->second);
    leaf_entries_.push_back(e);
  }
  valid_ = true;
}

std::uint32_t CompiledPipeline::flat_lookup(const FlatTable& t, StateId state,
                                            std::uint64_t value) noexcept {
  if (!t.exact.empty()) {
    std::size_t i = exact_hash(state, value) & t.exact_mask;
    while (t.exact[i].state != kEmptyState) {
      if (t.exact[i].state == state && t.exact[i].value == value)
        return t.exact[i].next;
      i = (i + 1) & t.exact_mask;
    }
  }
  if (!t.ranges.empty() && state < t.states) {
    const std::uint32_t begin = t.range_off[state];
    const std::uint32_t end = t.range_off[state + 1];
    // Branchless upper bound on lo over the state's slice: index of the
    // first range with lo > value (cmov-friendly loop).
    std::uint32_t idx = begin;
    std::uint32_t n = end - begin;
    while (n > 0) {
      const std::uint32_t half = n >> 1;
      const bool le = t.ranges[idx + half].lo <= value;
      idx = le ? idx + half + 1 : idx;
      n = le ? n - half - 1 : half;
    }
    if (idx > begin && value <= t.ranges[idx - 1].hi)
      return t.ranges[idx - 1].next;
  }
  if (state < t.any_next.size()) return t.any_next[state];
  return kMiss;
}

std::uint64_t CompiledPipeline::input_value(
    const Stage& s, std::span<const std::uint64_t> fields,
    std::span<const std::uint64_t> states,
    const std::uint64_t* codes) const noexcept {
  if (s.code_idx >= 0) return codes[s.code_idx];
  const auto& src = s.subject.kind == lang::Subject::Kind::kField ? fields
                                                                  : states;
  return s.subject.id < src.size() ? src[s.subject.id] : 0;
}

std::uint32_t CompiledPipeline::traverse(
    std::span<const std::uint64_t> fields,
    std::span<const std::uint64_t> states) const noexcept {
  return finish(run_prefix(fields, states), fields, states);
}

std::uint64_t CompiledPipeline::prefix_signature() const noexcept {
  if (!valid_) return 0;
  std::uint64_t h = util::mix64(0x9e3779b97f4a7c15ULL ^ initial_state_);
  h = util::mix64(h ^ prefix_stages_);
  for (std::size_t i = 0; i < prefix_stages_; ++i) {
    const Stage& s = stages_[i];
    h = util::mix64(h ^ (static_cast<std::uint64_t>(s.subject.id) << 1 ^
                         static_cast<std::uint64_t>(s.subject.kind)));
    h = util::mix64(h ^ s.flat.states);
    // Empty slots hash too: identical entry sets in identical order give
    // identical open-addressed layouts, which is the case this signature
    // distinguishes (prefix untouched vs. patched by a delta).
    for (const ExactSlot& slot : s.flat.exact)
      h = util::mix64(h ^ slot.value ^ exact_hash(slot.state, slot.next));
    for (const RangeEnt& r : s.flat.ranges)
      h = util::mix64(h ^ r.lo ^ util::mix64(r.hi ^ r.next));
    for (const std::uint32_t off : s.flat.range_off) h = util::mix64(h ^ off);
    for (const std::uint32_t next : s.flat.any_next) h = util::mix64(h ^ next);
  }
  return h == 0 ? 1 : h;
}

void CompiledPipeline::prefix_key(std::span<const std::uint64_t> fields,
                                  std::span<const std::uint64_t> states,
                                  std::uint64_t* out) const noexcept {
  for (std::size_t i = 0; i < prefix_stages_; ++i) {
    const Stage& s = stages_[i];
    const auto& src = s.subject.kind == lang::Subject::Kind::kField ? fields
                                                                    : states;
    out[i] = s.subject.id < src.size() ? src[s.subject.id] : 0;
  }
}

std::uint32_t CompiledPipeline::run_prefix(
    std::span<const std::uint64_t> fields,
    std::span<const std::uint64_t> states) const noexcept {
  std::uint32_t state = initial_state_;
  // Prefix stages are never value-mapped, so no codes are needed here.
  for (std::size_t i = 0; i < prefix_stages_; ++i) {
    const std::uint32_t next =
        flat_lookup(stages_[i].flat, state,
                    input_value(stages_[i], fields, states, nullptr));
    if (next != kMiss) state = next;
  }
  return state;
}

std::uint32_t CompiledPipeline::finish(
    std::uint32_t state, std::span<const std::uint64_t> fields,
    std::span<const std::uint64_t> states) const noexcept {
  std::uint64_t codes[kMaxValueMaps];
  for (std::size_t i = 0; i < maps_.size(); ++i) {
    const MapStage& m = maps_[i];
    std::uint64_t raw;
    if (m.input_code_idx >= 0) {
      raw = codes[m.input_code_idx];
    } else {
      const auto& src =
          m.subject.kind == lang::Subject::Kind::kField ? fields : states;
      raw = m.subject.id < src.size() ? src[m.subject.id] : 0;
    }
    const std::uint32_t code = flat_lookup(m.flat, kInitialState, raw);
    // The mapping stage partitions the domain; a miss maps to code 0
    // defensively, as in Pipeline::evaluate.
    codes[i] = code == kMiss ? 0 : code;
  }
  for (std::size_t i = prefix_stages_; i < stages_.size(); ++i) {
    const std::uint32_t next = flat_lookup(
        stages_[i].flat, state, input_value(stages_[i], fields, states, codes));
    if (next != kMiss) state = next;
  }
  return state < n_states_ ? leaf_state_to_idx_[state] : kMiss;
}

}  // namespace camus::table
