#include "table/compiled.hpp"

#include <algorithm>
#include <map>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define CAMUS_HAVE_X86_DISPATCH 1
#endif

#include "util/flat_map.hpp"

namespace camus::table {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t exact_hash(StateId state, std::uint64_t value) noexcept {
  return util::mix64(value ^ (0x9e3779b97f4a7c15ULL * (state + 1)));
}

// Per-table layout computed in the sizing pass and replayed in the fill
// pass (the arena requires reserve/take calls to mirror each other).
struct TableCounts {
  std::size_t exact_cap = 0;  // power-of-two slot count, 0 = no exact
  std::size_t n_ranges = 0;
  std::uint32_t states = 0;   // dense state-domain size (max state + 1)
  bool has_any = false;
};

TableCounts count_table(const Table& t) {
  TableCounts c;
  std::size_t n_exact = 0;
  std::uint32_t max_state = 0;
  for (const Entry& e : t.entries()) {
    max_state = std::max(max_state, e.state);
    switch (e.match.kind) {
      case ValueMatch::Kind::kExact: ++n_exact; break;
      case ValueMatch::Kind::kRange: ++c.n_ranges; break;
      case ValueMatch::Kind::kAny: c.has_any = true; break;
    }
  }
  if (!t.entries().empty()) c.states = max_state + 1;
  if (n_exact > 0) c.exact_cap = next_pow2(std::max<std::size_t>(8, n_exact * 2));
  return c;
}

}  // namespace

CompiledPipeline::CompiledPipeline(const Pipeline& pipe) {
  initial_state_ = pipe.initial_state;

  // ---- sizing pass ---------------------------------------------------
  // Pipeline-wide dense state domain: every state a traversal can reach
  // (initial, any table's next_state) plus every leaf state.
  std::uint32_t max_state = pipe.initial_state;
  for (const Table& t : pipe.tables)
    for (const Entry& e : t.entries())
      max_state = std::max({max_state, e.state, e.next_state});
  for (const LeafEntry& e : pipe.leaf.entries())
    max_state = std::max(max_state, e.state);
  n_states_ = max_state + 1;
  if (n_states_ > kMaxDenseStates || n_states_ == 0) return;
  if (pipe.value_maps.size() > kMaxValueMaps) return;

  std::vector<TableCounts> map_counts, table_counts;
  map_counts.reserve(pipe.value_maps.size());
  table_counts.reserve(pipe.tables.size());
  for (const Table& t : pipe.value_maps) map_counts.push_back(count_table(t));
  for (const Table& t : pipe.tables) table_counts.push_back(count_table(t));
  for (const TableCounts& c : map_counts)
    if (c.states > kMaxDenseStates) return;

  auto reserve_table = [&](const TableCounts& c) {
    arena_.reserve<ExactSlot>(c.exact_cap);
    arena_.reserve<RangeEnt>(c.n_ranges);
    arena_.reserve<std::uint32_t>(c.n_ranges ? c.states + 1 : 0);
    arena_.reserve<std::uint32_t>(c.has_any ? c.states : 0);
  };
  for (const TableCounts& c : map_counts) reserve_table(c);
  for (const TableCounts& c : table_counts) reserve_table(c);
  arena_.reserve<std::uint32_t>(n_states_);  // leaf state -> entry index
  arena_.commit();

  // ---- fill pass -----------------------------------------------------
  auto fill_table = [&](const Table& t, const TableCounts& c) {
    FlatTable flat;
    flat.states = c.states;
    flat.exact = arena_.take<ExactSlot>(c.exact_cap);
    flat.exact_mask = c.exact_cap ? c.exact_cap - 1 : 0;
    for (ExactSlot& s : flat.exact) s.state = kEmptyState;
    flat.ranges = arena_.take<RangeEnt>(c.n_ranges);
    flat.range_off = arena_.take<std::uint32_t>(c.n_ranges ? c.states + 1 : 0);
    flat.any_next = arena_.take<std::uint32_t>(c.has_any ? c.states : 0);
    for (std::uint32_t& v : flat.any_next) v = kMiss;

    std::size_t n_ranges = 0;
    for (const Entry& e : t.entries()) {
      switch (e.match.kind) {
        case ValueMatch::Kind::kExact: {
          // Last entry wins for duplicate (state, value), mirroring
          // Table::finalize's map assignment.
          std::size_t i = exact_hash(e.state, e.match.lo) & flat.exact_mask;
          while (flat.exact[i].state != kEmptyState &&
                 !(flat.exact[i].state == e.state &&
                   flat.exact[i].value == e.match.lo))
            i = (i + 1) & flat.exact_mask;
          flat.exact[i] = {e.match.lo, e.state, e.next_state};
          break;
        }
        case ValueMatch::Kind::kRange:
          flat.ranges[n_ranges++] = {e.match.lo, e.match.hi, e.state,
                                     e.next_state};
          break;
        case ValueMatch::Kind::kAny:
          flat.any_next[e.state] = e.next_state;
          break;
      }
    }
    if (!flat.ranges.empty()) {
      std::stable_sort(flat.ranges.begin(), flat.ranges.end(),
                       [](const RangeEnt& a, const RangeEnt& b) {
                         return a.state != b.state ? a.state < b.state
                                                   : a.lo < b.lo;
                       });
      // Per-state slices as prefix sums over the sorted array.
      std::uint32_t pos = 0;
      for (std::uint32_t s = 0; s < c.states; ++s) {
        flat.range_off[s] = pos;
        while (pos < flat.ranges.size() && flat.ranges[pos].state == s) ++pos;
      }
      flat.range_off[c.states] = pos;
    }
    return flat;
  };

  maps_.reserve(pipe.value_maps.size());
  for (std::size_t i = 0; i < pipe.value_maps.size(); ++i) {
    MapStage m;
    m.flat = fill_table(pipe.value_maps[i], map_counts[i]);
    m.subject = pipe.value_maps[i].subject();
    // A map whose subject an earlier map already wrote reads that map's
    // code, mirroring Pipeline::evaluate's progressive env update.
    for (std::size_t j = i; j-- > 0;) {
      if (pipe.value_maps[j].subject() == m.subject) {
        m.input_code_idx = static_cast<std::int32_t>(j);
        break;
      }
    }
    maps_.push_back(m);
  }

  stages_.reserve(pipe.tables.size());
  prefix_stages_ = 0;
  bool in_prefix = true;
  for (std::size_t i = 0; i < pipe.tables.size(); ++i) {
    Stage s;
    s.flat = fill_table(pipe.tables[i], table_counts[i]);
    s.subject = pipe.tables[i].subject();
    // The table reads the last value map for its subject, if any.
    for (std::size_t j = pipe.value_maps.size(); j-- > 0;) {
      if (pipe.value_maps[j].subject() == s.subject) {
        s.code_idx = static_cast<std::int32_t>(j);
        break;
      }
    }
    // Hot-key memo prefix: leading exact-match stages on raw (unmapped)
    // subjects — low-cardinality keys like the ITCH symbol stage.
    if (in_prefix && pipe.tables[i].kind() == MatchKind::kExact &&
        s.code_idx < 0 && prefix_stages_ < kMaxPrefix) {
      ++prefix_stages_;
    } else {
      in_prefix = false;
    }
    stages_.push_back(s);
  }

  // SoA probe mirrors for the prefix stages: copy the filled AoS slots
  // verbatim (same capacity, same positions) so every probe sequence —
  // start index, cluster walk, stop-at-empty — is identical by
  // construction.
  probe_.clear();
  probe_.reserve(prefix_stages_);
  for (std::size_t i = 0; i < prefix_stages_; ++i) {
    const FlatTable& flat = stages_[i].flat;
    ProbeTable pt;
    pt.mask = flat.exact_mask;
    pt.key.resize(flat.exact.size());
    pt.state.resize(flat.exact.size());
    pt.next.resize(flat.exact.size());
    for (std::size_t s = 0; s < flat.exact.size(); ++s) {
      pt.key[s] = flat.exact[s].value;
      pt.state[s] = flat.exact[s].state;
      pt.next[s] = flat.exact[s].next;
    }
    probe_.push_back(std::move(pt));
  }

  leaf_state_to_idx_ = arena_.take<std::uint32_t>(n_states_);
  for (std::uint32_t& v : leaf_state_to_idx_) v = kMiss;
  leaf_entries_.reserve(pipe.leaf.entries().size());
  leaf_action_idx_.reserve(pipe.leaf.entries().size());
  std::map<lang::ActionSet, std::uint32_t> interned;
  for (const LeafEntry& e : pipe.leaf.entries()) {
    const auto idx = static_cast<std::uint32_t>(leaf_entries_.size());
    // First entry wins for duplicate states (LeafTable::add_entry uses
    // emplace, which keeps the existing mapping).
    if (leaf_state_to_idx_[e.state] == kMiss) leaf_state_to_idx_[e.state] = idx;
    auto [it, inserted] = interned.emplace(
        e.actions, static_cast<std::uint32_t>(action_sets_.size()));
    if (inserted) action_sets_.push_back(e.actions);
    leaf_action_idx_.push_back(it->second);
    leaf_entries_.push_back(e);
  }
  valid_ = true;
}

std::uint32_t CompiledPipeline::flat_lookup(const FlatTable& t, StateId state,
                                            std::uint64_t value) noexcept {
  if (!t.exact.empty()) {
    std::size_t i = exact_hash(state, value) & t.exact_mask;
    while (t.exact[i].state != kEmptyState) {
      if (t.exact[i].state == state && t.exact[i].value == value)
        return t.exact[i].next;
      i = (i + 1) & t.exact_mask;
    }
  }
  return flat_lookup_tail(t, state, value);
}

std::uint32_t CompiledPipeline::flat_lookup_tail(const FlatTable& t,
                                                 StateId state,
                                                 std::uint64_t value) noexcept {
  if (!t.ranges.empty() && state < t.states) {
    const std::uint32_t begin = t.range_off[state];
    const std::uint32_t end = t.range_off[state + 1];
    // Branchless upper bound on lo over the state's slice: index of the
    // first range with lo > value (cmov-friendly loop).
    std::uint32_t idx = begin;
    std::uint32_t n = end - begin;
    while (n > 0) {
      const std::uint32_t half = n >> 1;
      const bool le = t.ranges[idx + half].lo <= value;
      idx = le ? idx + half + 1 : idx;
      n = le ? n - half - 1 : half;
    }
    if (idx > begin && value <= t.ranges[idx - 1].hi)
      return t.ranges[idx - 1].next;
  }
  if (state < t.any_next.size()) return t.any_next[state];
  return kMiss;
}

namespace {

// One open-addressed probe over the SoA mirror, starting at `start`
// (already hash & mask). Same walk as the AoS loop in flat_lookup: stop
// on the first empty slot (miss) or the first (state, value) match (hit).
// Returns the next-state payload or CompiledPipeline::kMiss == 0xffffffff
// (never a legal payload: dense states are capped far below it).
std::uint32_t probe_slots_scalar(const std::uint64_t* key,
                                 const std::uint32_t* st,
                                 const std::uint32_t* nx, std::uint64_t mask,
                                 std::uint32_t state, std::uint64_t value,
                                 std::size_t start,
                                 std::uint32_t empty) noexcept {
  std::size_t i = start;
  while (st[i] != empty) {
    if (st[i] == state && key[i] == value) return nx[i];
    i = (i + 1) & mask;
  }
  return 0xffffffffu;
}

#if defined(CAMUS_HAVE_X86_DISPATCH)
// SIMD variant: compares 4 slot keys and 4 slot states per round. The
// first hit lane beats the first empty lane exactly when the scalar walk
// would have returned it (probe order within a round is ascending), so
// the result is bit-identical. Clusters are short (load factor <= 0.5),
// so one round usually settles the probe.
__attribute__((target("avx2"))) std::uint32_t probe_slots_avx2(
    const std::uint64_t* key, const std::uint32_t* st,
    const std::uint32_t* nx, std::uint64_t mask, std::uint32_t state,
    std::uint64_t value, std::size_t start, std::uint32_t empty) noexcept {
  const std::size_t cap = mask + 1;
  const __m256i vval =
      _mm256_set1_epi64x(static_cast<long long>(value));
  const __m128i vstate = _mm_set1_epi32(static_cast<int>(state));
  const __m128i vempty = _mm_set1_epi32(static_cast<int>(empty));
  std::size_t i = start;
  for (;;) {
    if (i + 4 <= cap) {
      const __m256i k = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(key + i));
      const __m128i s = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(st + i));
      const int mk = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(k, vval)));
      const int ms =
          _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(s, vstate)));
      const int me =
          _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(s, vempty)));
      const int hit = mk & ms;
      const int hit_pos = hit ? __builtin_ctz(hit) : 4;
      const int empty_pos = me ? __builtin_ctz(me) : 4;
      if (hit_pos < empty_pos) return nx[i + static_cast<std::size_t>(hit_pos)];
      if (empty_pos < 4) return 0xffffffffu;
      i = (i + 4) & mask;
    } else {
      // The round would wrap past the end of the array: finish the tail
      // scalar (same probe order), then continue from slot 0.
      while (i < cap) {
        if (st[i] == empty) return 0xffffffffu;
        if (st[i] == state && key[i] == value) return nx[i];
        ++i;
      }
      i = 0;
    }
  }
}
#endif  // CAMUS_HAVE_X86_DISPATCH

using ProbeFn = std::uint32_t (*)(const std::uint64_t*, const std::uint32_t*,
                                  const std::uint32_t*, std::uint64_t,
                                  std::uint32_t, std::uint64_t, std::size_t,
                                  std::uint32_t) noexcept;

ProbeFn pick_probe() noexcept {
#if defined(CAMUS_HAVE_X86_DISPATCH)
  if (__builtin_cpu_supports("avx2")) return &probe_slots_avx2;
#endif
  return &probe_slots_scalar;
}

// Resolved once at startup; read-only afterwards (thread-safe).
const ProbeFn g_probe = pick_probe();

}  // namespace

void CompiledPipeline::run_prefix_block(const std::uint64_t* keys,
                                        std::size_t n,
                                        std::uint32_t* out_states)
    const noexcept {
  std::uint32_t state[kBlockWidth];
  for (std::size_t j = 0; j < n; ++j) state[j] = initial_state_;
  for (std::size_t s = 0; s < prefix_stages_; ++s) {
    const ProbeTable& pt = probe_[s];
    const FlatTable& flat = stages_[s].flat;
    std::size_t start[kBlockWidth];
    if (!pt.key.empty()) {
      // Hash + prefetch pass: every slot address in the block is known
      // before any probe resolves, so the (likely) cache misses overlap.
      for (std::size_t j = 0; j < n; ++j) {
        start[j] = exact_hash(state[j], keys[j * kMaxPrefix + s]) & pt.mask;
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(pt.key.data() + start[j]);
        __builtin_prefetch(pt.state.data() + start[j]);
#endif
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t v = keys[j * kMaxPrefix + s];
      std::uint32_t next = kMiss;
      if (!pt.key.empty())
        next = g_probe(pt.key.data(), pt.state.data(), pt.next.data(),
                       pt.mask, state[j], v, start[j], kEmptyState);
      // A missed exact probe falls through to the range/wildcard tail,
      // exactly like flat_lookup (prefix stages compiled from rules are
      // pure-exact; hand-built ones may not be).
      if (next == kMiss) next = flat_lookup_tail(flat, state[j], v);
      if (next != kMiss) state[j] = next;
    }
  }
  for (std::size_t j = 0; j < n; ++j) out_states[j] = state[j];
}

std::uint64_t CompiledPipeline::input_value(
    const Stage& s, std::span<const std::uint64_t> fields,
    std::span<const std::uint64_t> states,
    const std::uint64_t* codes) const noexcept {
  if (s.code_idx >= 0) return codes[s.code_idx];
  const auto& src = s.subject.kind == lang::Subject::Kind::kField ? fields
                                                                  : states;
  return s.subject.id < src.size() ? src[s.subject.id] : 0;
}

std::uint32_t CompiledPipeline::traverse(
    std::span<const std::uint64_t> fields,
    std::span<const std::uint64_t> states) const noexcept {
  return finish(run_prefix(fields, states), fields, states);
}

std::uint64_t CompiledPipeline::prefix_signature() const noexcept {
  if (!valid_) return 0;
  std::uint64_t h = util::mix64(0x9e3779b97f4a7c15ULL ^ initial_state_);
  h = util::mix64(h ^ prefix_stages_);
  for (std::size_t i = 0; i < prefix_stages_; ++i) {
    const Stage& s = stages_[i];
    h = util::mix64(h ^ (static_cast<std::uint64_t>(s.subject.id) << 1 ^
                         static_cast<std::uint64_t>(s.subject.kind)));
    h = util::mix64(h ^ s.flat.states);
    // Empty slots hash too: identical entry sets in identical order give
    // identical open-addressed layouts, which is the case this signature
    // distinguishes (prefix untouched vs. patched by a delta).
    for (const ExactSlot& slot : s.flat.exact)
      h = util::mix64(h ^ slot.value ^ exact_hash(slot.state, slot.next));
    for (const RangeEnt& r : s.flat.ranges)
      h = util::mix64(h ^ r.lo ^ util::mix64(r.hi ^ r.next));
    for (const std::uint32_t off : s.flat.range_off) h = util::mix64(h ^ off);
    for (const std::uint32_t next : s.flat.any_next) h = util::mix64(h ^ next);
  }
  return h == 0 ? 1 : h;
}

void CompiledPipeline::prefix_key(std::span<const std::uint64_t> fields,
                                  std::span<const std::uint64_t> states,
                                  std::uint64_t* out) const noexcept {
  for (std::size_t i = 0; i < prefix_stages_; ++i) {
    const Stage& s = stages_[i];
    const auto& src = s.subject.kind == lang::Subject::Kind::kField ? fields
                                                                    : states;
    out[i] = s.subject.id < src.size() ? src[s.subject.id] : 0;
  }
}

std::uint32_t CompiledPipeline::run_prefix(
    std::span<const std::uint64_t> fields,
    std::span<const std::uint64_t> states) const noexcept {
  std::uint32_t state = initial_state_;
  // Prefix stages are never value-mapped, so no codes are needed here.
  for (std::size_t i = 0; i < prefix_stages_; ++i) {
    const std::uint32_t next =
        flat_lookup(stages_[i].flat, state,
                    input_value(stages_[i], fields, states, nullptr));
    if (next != kMiss) state = next;
  }
  return state;
}

std::uint32_t CompiledPipeline::finish(
    std::uint32_t state, std::span<const std::uint64_t> fields,
    std::span<const std::uint64_t> states) const noexcept {
  std::uint64_t codes[kMaxValueMaps];
  for (std::size_t i = 0; i < maps_.size(); ++i) {
    const MapStage& m = maps_[i];
    std::uint64_t raw;
    if (m.input_code_idx >= 0) {
      raw = codes[m.input_code_idx];
    } else {
      const auto& src =
          m.subject.kind == lang::Subject::Kind::kField ? fields : states;
      raw = m.subject.id < src.size() ? src[m.subject.id] : 0;
    }
    const std::uint32_t code = flat_lookup(m.flat, kInitialState, raw);
    // The mapping stage partitions the domain; a miss maps to code 0
    // defensively, as in Pipeline::evaluate.
    codes[i] = code == kMiss ? 0 : code;
  }
  for (std::size_t i = prefix_stages_; i < stages_.size(); ++i) {
    const std::uint32_t next = flat_lookup(
        stages_[i].flat, state, input_value(stages_[i], fields, states, codes));
    if (next != kMiss) state = next;
  }
  return state < n_states_ ? leaf_state_to_idx_[state] : kMiss;
}

}  // namespace camus::table
