// Control-plane entry deltas: the minimal-update currency of the live
// subscription churn path (paper §3: "state updates can benefit from
// table entry re-use"). One EntryOp is one control-plane operation on a
// programmed switch — install, delete, or (leaf only) modify a single
// entry. The incremental compiler emits them, the installer ships them
// over the (possibly faulty) control channel, and apply_ops() patches a
// running Pipeline in place — the software analogue of a Tofino taking
// table updates from its driver while forwarding at line rate.
//
// Ordering and priority: match priority inside a table is structural
// (exact beats range beats wildcard, ranges are disjoint), not positional,
// so a patched table is behaviourally identical to a freshly generated one
// regardless of entry order. apply_ops() applies removes before modifies
// before adds so that a remove+add pair touching the same value region
// never transiently violates range disjointness, then re-finalizes only
// the touched tables (Table::finalize is idempotent) and re-validates the
// whole pipeline before the patch is considered committed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "table/pipeline.hpp"
#include "util/result.hpp"

namespace camus::table {

// Current delta wire-format version; deserialize_ops rejects others.
inline constexpr int kDeltaFormatVersion = 1;

// The leaf table's reserved name in EntryOp::table. Field tables are
// compiler-named ("tbl_<field>", "map_<field>") and never collide.
inline constexpr std::string_view kLeafTableName = "leaf";

// One control-plane operation: install, delete, or modify one entry.
struct EntryOp {
  enum class Kind : std::uint8_t { kAdd, kRemove, kModify };
  Kind kind = Kind::kAdd;
  std::string table;  // field/value-map table name, or kLeafTableName
  StateId state = 0;
  ValueMatch match;        // field ops only
  StateId next_state = 0;  // field ops only
  lang::ActionSet actions;  // leaf ops only; kModify is leaf-only

  bool is_leaf() const noexcept { return table == kLeafTableName; }

  std::string to_string() const;

  friend bool operator==(const EntryOp&, const EntryOp&) = default;
};

// Outcome summary of one apply_ops() call.
struct ApplyStats {
  std::size_t adds = 0;
  std::size_t removes = 0;
  std::size_t modifies = 0;
};

// Applies a delta to a pipeline in place. Strict: every op must land
// exactly (U0xx diagnostics otherwise), so a desynchronized controller
// and switch are detected instead of silently diverging:
//   U001  op names a table the pipeline does not have
//   U002  remove: no entry matches (state, match, next_state)
//   U003  add: an identical entry already exists
//   U004  modify on a field table (modify is leaf-only)
//   U005  leaf remove/modify: state absent, or actions mismatch on remove
//   U006  leaf add: state already has an entry
//   U007  patched pipeline failed structural validation
// On error the pipeline may hold a partial patch: callers apply to a
// scratch copy and swap (see TwoPhaseInstaller::apply_delta), never to a
// pipeline readers can observe. Leaf adds/modifies intern multicast
// groups locally, so deltas are independent of group renumbering.
util::Result<ApplyStats> apply_ops(Pipeline& pipe,
                                   std::span<const EntryOp> ops);

// Wire format for shipping a delta over the control channel (same
// line-oriented style as serialize_pipeline; digest protection is the
// installer's job).
std::string serialize_ops(std::span<const EntryOp> ops);
util::Result<std::vector<EntryOp>> deserialize_ops(std::string_view text);

// --- pipeline diffing & digests (reconciliation currency) ----------------
//
// The incremental compiler, the controller's warm-boot anti-entropy pass,
// and the recovery tests all need the same two primitives: a canonical
// order-independent digest of what a pipeline's stages contain, and the
// minimal EntryOp delta that turns one pipeline into another. Both
// deliberately ignore multicast group *ids* (renumbered per compilation;
// leaf ops re-intern locally) and entry order (match priority is
// structural), so two semantically identical programs produced by
// different histories compare equal.

// Digest of one stage's contents. `entries` is the logical entry count.
struct StageDigest {
  std::string table;  // value-map/table name, or kLeafTableName
  std::uint64_t digest = 0;
  std::size_t entries = 0;

  friend bool operator==(const StageDigest&, const StageDigest&) = default;
};

// Per-stage digests in pipeline order (value maps, field tables, leaf).
// This is what a switch reports during the warm-boot handshake: the
// controller compares it against the intended pipeline's digests to find
// diverged stages without reading any entries.
std::vector<StageDigest> stage_digests(const Pipeline& pipe);

// Order-independent digest of the whole program (folds stage_digests).
std::uint64_t pipeline_digest(const Pipeline& pipe);

// The minimal entry delta turning `have` into `want`, plus reuse
// accounting. `have == nullptr` is a cold start: every entry is an add,
// and requires_reprogram is set — with no base there is no program whose
// stages the ops could target, so the full image must ship.
struct PipelineDiff {
  std::vector<EntryOp> ops;
  std::size_t reused_entries = 0;  // entries of `want` already in `have`
  std::size_t total_entries = 0;   // entries in `want`
  // True when the delta cannot ship as ops against `have`: there is no
  // `have` (cold start), the stage layouts differ (even by an empty
  // stage — entry ops cannot create or retire stages), or the initial
  // state moved (a wholesale renumbering; entry ops cannot re-aim the
  // walk's entry point). Install the full `want` image instead.
  bool requires_reprogram = false;

  double reuse_fraction() const noexcept {
    return total_entries == 0 ? 1.0
                              : static_cast<double>(reused_entries) /
                                    static_cast<double>(total_entries);
  }
};

PipelineDiff diff_pipelines(const Pipeline* have, const Pipeline& want);

}  // namespace camus::table
