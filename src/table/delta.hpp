// Control-plane entry deltas: the minimal-update currency of the live
// subscription churn path (paper §3: "state updates can benefit from
// table entry re-use"). One EntryOp is one control-plane operation on a
// programmed switch — install, delete, or (leaf only) modify a single
// entry. The incremental compiler emits them, the installer ships them
// over the (possibly faulty) control channel, and apply_ops() patches a
// running Pipeline in place — the software analogue of a Tofino taking
// table updates from its driver while forwarding at line rate.
//
// Ordering and priority: match priority inside a table is structural
// (exact beats range beats wildcard, ranges are disjoint), not positional,
// so a patched table is behaviourally identical to a freshly generated one
// regardless of entry order. apply_ops() applies removes before modifies
// before adds so that a remove+add pair touching the same value region
// never transiently violates range disjointness, then re-finalizes only
// the touched tables (Table::finalize is idempotent) and re-validates the
// whole pipeline before the patch is considered committed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "table/pipeline.hpp"
#include "util/result.hpp"

namespace camus::table {

// Current delta wire-format version; deserialize_ops rejects others.
inline constexpr int kDeltaFormatVersion = 1;

// The leaf table's reserved name in EntryOp::table. Field tables are
// compiler-named ("tbl_<field>", "map_<field>") and never collide.
inline constexpr std::string_view kLeafTableName = "leaf";

// One control-plane operation: install, delete, or modify one entry.
struct EntryOp {
  enum class Kind : std::uint8_t { kAdd, kRemove, kModify };
  Kind kind = Kind::kAdd;
  std::string table;  // field/value-map table name, or kLeafTableName
  StateId state = 0;
  ValueMatch match;        // field ops only
  StateId next_state = 0;  // field ops only
  lang::ActionSet actions;  // leaf ops only; kModify is leaf-only

  bool is_leaf() const noexcept { return table == kLeafTableName; }

  std::string to_string() const;

  friend bool operator==(const EntryOp&, const EntryOp&) = default;
};

// Outcome summary of one apply_ops() call.
struct ApplyStats {
  std::size_t adds = 0;
  std::size_t removes = 0;
  std::size_t modifies = 0;
};

// Applies a delta to a pipeline in place. Strict: every op must land
// exactly (U0xx diagnostics otherwise), so a desynchronized controller
// and switch are detected instead of silently diverging:
//   U001  op names a table the pipeline does not have
//   U002  remove: no entry matches (state, match, next_state)
//   U003  add: an identical entry already exists
//   U004  modify on a field table (modify is leaf-only)
//   U005  leaf remove/modify: state absent, or actions mismatch on remove
//   U006  leaf add: state already has an entry
//   U007  patched pipeline failed structural validation
// On error the pipeline may hold a partial patch: callers apply to a
// scratch copy and swap (see TwoPhaseInstaller::apply_delta), never to a
// pipeline readers can observe. Leaf adds/modifies intern multicast
// groups locally, so deltas are independent of group renumbering.
util::Result<ApplyStats> apply_ops(Pipeline& pipe,
                                   std::span<const EntryOp> ops);

// Wire format for shipping a delta over the control channel (same
// line-oriented style as serialize_pipeline; digest protection is the
// installer's job).
std::string serialize_ops(std::span<const EntryOp> ops);
util::Result<std::vector<EntryOp>> deserialize_ops(std::string_view text);

}  // namespace camus::table
