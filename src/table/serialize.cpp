#include "table/serialize.hpp"

#include <charconv>
#include <sstream>
#include <vector>

namespace camus::table {

using util::Error;
using util::Result;

namespace {

const char* match_kind_name(MatchKind k) {
  switch (k) {
    case MatchKind::kExact: return "exact";
    case MatchKind::kRange: return "range";
    case MatchKind::kTernary: return "ternary";
  }
  return "?";
}

const char* value_kind_name(ValueMatch::Kind k) {
  switch (k) {
    case ValueMatch::Kind::kAny: return "any";
    case ValueMatch::Kind::kExact: return "exact";
    case ValueMatch::Kind::kRange: return "range";
  }
  return "?";
}

void write_table(std::ostringstream& os, const char* tag, const Table& t) {
  os << tag << " " << t.name() << " subject="
     << (t.subject().kind == lang::Subject::Kind::kField ? "f" : "s")
     << t.subject().id << " kind=" << match_kind_name(t.kind())
     << " width=" << t.width_bits() << " symbol=" << (t.is_symbol() ? 1 : 0)
     << "\n";
  for (const auto& e : t.entries()) {
    os << "entry " << e.state << " " << value_kind_name(e.match.kind) << " "
       << e.match.lo << " " << e.match.hi << " " << e.next_state << "\n";
  }
}

// Tokenizing line parser.
struct LineParser {
  std::string_view text;
  std::size_t pos = 0;
  int line_no = 0;

  // Returns the next non-empty line split into whitespace tokens; empty
  // vector at end of input.
  std::vector<std::string_view> next_line() {
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string_view::npos) eol = text.size();
      std::string_view line = text.substr(pos, eol - pos);
      pos = eol + 1;
      ++line_no;
      std::vector<std::string_view> toks;
      std::size_t i = 0;
      while (i < line.size()) {
        while (i < line.size() && line[i] == ' ') ++i;
        std::size_t j = i;
        while (j < line.size() && line[j] != ' ') ++j;
        if (j > i) toks.push_back(line.substr(i, j - i));
        i = j;
      }
      if (!toks.empty()) return toks;
    }
    return {};
  }

  Error err(std::string msg) const { return Error{std::move(msg), line_no}; }
};

bool parse_u64(std::string_view s, std::uint64_t* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

// Parses "key=value" returning the value part, or empty on mismatch.
std::string_view kv(std::string_view tok, std::string_view key) {
  if (tok.size() <= key.size() + 1) return {};
  if (tok.substr(0, key.size()) != key || tok[key.size()] != '=') return {};
  return tok.substr(key.size() + 1);
}

Result<lang::Subject> parse_subject(std::string_view v) {
  if (v.empty()) return Error{"bad subject"};
  std::uint64_t id = 0;
  if (!parse_u64(v.substr(1), &id)) return Error{"bad subject id"};
  if (v[0] == 'f')
    return lang::Subject::field(static_cast<std::uint32_t>(id));
  if (v[0] == 's')
    return lang::Subject::state(static_cast<std::uint32_t>(id));
  return Error{"bad subject kind"};
}

// Parses a comma-separated u64 list ("1,2,3" or "-").
Result<std::vector<std::uint64_t>> parse_list(std::string_view v) {
  std::vector<std::uint64_t> out;
  if (v == "-") return out;
  std::size_t i = 0;
  while (i < v.size()) {
    std::size_t j = v.find(',', i);
    if (j == std::string_view::npos) j = v.size();
    std::uint64_t x = 0;
    if (!parse_u64(v.substr(i, j - i), &x)) return Error{"bad list value"};
    out.push_back(x);
    i = j + 1;
  }
  return out;
}

}  // namespace

std::string serialize_pipeline(const Pipeline& pipeline) {
  std::ostringstream os;
  os << "camus-pipeline v" << kPipelineFormatVersion << "\n";
  os << "initial_state " << pipeline.initial_state << "\n";
  for (const auto& t : pipeline.value_maps) write_table(os, "value_map", t);
  for (const auto& t : pipeline.tables) write_table(os, "table", t);
  os << "leaf\n";
  for (const auto& e : pipeline.leaf.entries()) {
    os << "entry " << e.state << " ports=";
    if (e.actions.ports.empty()) {
      os << "-";
    } else {
      for (std::size_t i = 0; i < e.actions.ports.size(); ++i)
        os << (i ? "," : "") << e.actions.ports[i];
    }
    os << " updates=";
    if (e.actions.state_updates.empty()) {
      os << "-";
    } else {
      for (std::size_t i = 0; i < e.actions.state_updates.size(); ++i)
        os << (i ? "," : "") << e.actions.state_updates[i];
    }
    os << " mcast=" << (e.mcast_group ? std::to_string(*e.mcast_group) : "-")
       << "\n";
  }
  for (std::uint32_t g = 0; g < pipeline.mcast.size(); ++g) {
    os << "mcast " << g << " ports=";
    const auto& ports = pipeline.mcast.ports(g);
    for (std::size_t i = 0; i < ports.size(); ++i)
      os << (i ? "," : "") << ports[i];
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

Result<Pipeline> deserialize_pipeline(std::string_view text) {
  LineParser lp{text};
  Pipeline pipe;

  auto toks = lp.next_line();
  if (toks.size() != 2 || toks[0] != "camus-pipeline" ||
      toks[1] != "v" + std::to_string(kPipelineFormatVersion))
    return lp.err("bad header (expected 'camus-pipeline v1')");

  toks = lp.next_line();
  std::uint64_t init = 0;
  if (toks.size() != 2 || toks[0] != "initial_state" ||
      !parse_u64(toks[1], &init))
    return lp.err("bad initial_state line");
  pipe.initial_state = static_cast<StateId>(init);

  Table* current = nullptr;  // table receiving 'entry' lines
  bool in_leaf = false;
  bool done = false;

  for (toks = lp.next_line(); !toks.empty(); toks = lp.next_line()) {
    if (toks[0] == "end") {
      done = true;
      break;
    }
    if (toks[0] == "table" || toks[0] == "value_map") {
      if (toks.size() != 6) return lp.err("bad table line");
      auto subj = parse_subject(kv(toks[2], "subject"));
      if (!subj.ok()) return lp.err(subj.error().message);
      const std::string_view kind_v = kv(toks[3], "kind");
      MatchKind kind;
      if (kind_v == "exact") kind = MatchKind::kExact;
      else if (kind_v == "range") kind = MatchKind::kRange;
      else if (kind_v == "ternary") kind = MatchKind::kTernary;
      else return lp.err("bad table kind");
      std::uint64_t width = 0, symbol = 0;
      if (!parse_u64(kv(toks[4], "width"), &width) || width == 0 ||
          width > 64)
        return lp.err("bad table width");
      if (!parse_u64(kv(toks[5], "symbol"), &symbol) || symbol > 1)
        return lp.err("bad symbol flag");
      auto& vec = toks[0] == "table" ? pipe.tables : pipe.value_maps;
      vec.emplace_back(std::string(toks[1]), subj.value(), kind,
                       static_cast<std::uint32_t>(width));
      vec.back().set_symbol(symbol == 1);
      current = &vec.back();
      in_leaf = false;
      continue;
    }
    if (toks[0] == "leaf") {
      in_leaf = true;
      current = nullptr;
      continue;
    }
    if (toks[0] == "mcast") {
      if (toks.size() != 3) return lp.err("bad mcast line");
      auto ports = parse_list(kv(toks[2], "ports"));
      if (!ports.ok() || ports.value().empty())
        return lp.err("bad mcast ports");
      std::vector<std::uint16_t> p16;
      for (auto p : ports.value()) {
        if (p > 0xffff) return lp.err("mcast port out of range");
        p16.push_back(static_cast<std::uint16_t>(p));
      }
      std::uint64_t gid = 0;
      if (!parse_u64(toks[1], &gid)) return lp.err("bad mcast id");
      if (pipe.mcast.intern(p16) != gid)
        return lp.err("non-sequential multicast group id");
      continue;
    }
    if (toks[0] == "entry") {
      if (in_leaf) {
        if (toks.size() != 5) return lp.err("bad leaf entry");
        std::uint64_t state = 0;
        if (!parse_u64(toks[1], &state)) return lp.err("bad leaf state");
        LeafEntry e;
        e.state = static_cast<StateId>(state);
        auto ports = parse_list(kv(toks[2], "ports"));
        if (!ports.ok()) return lp.err("bad leaf ports");
        for (auto p : ports.value()) {
          if (p > 0xffff) return lp.err("leaf port out of range");
          e.actions.add_port(static_cast<std::uint16_t>(p));
        }
        auto updates = parse_list(kv(toks[3], "updates"));
        if (!updates.ok()) return lp.err("bad leaf updates");
        for (auto u : updates.value())
          e.actions.add_update(static_cast<std::uint32_t>(u));
        const std::string_view mc = kv(toks[4], "mcast");
        if (mc != "-") {
          std::uint64_t gid = 0;
          if (!parse_u64(mc, &gid)) return lp.err("bad leaf mcast id");
          e.mcast_group = static_cast<std::uint32_t>(gid);
        }
        pipe.leaf.add_entry(std::move(e));
        continue;
      }
      if (!current) return lp.err("entry outside any table");
      if (toks.size() != 6) return lp.err("bad table entry");
      std::uint64_t state = 0, lo = 0, hi = 0, next = 0;
      if (!parse_u64(toks[1], &state) || !parse_u64(toks[3], &lo) ||
          !parse_u64(toks[4], &hi) || !parse_u64(toks[5], &next))
        return lp.err("bad entry numbers");
      Entry e;
      e.state = static_cast<StateId>(state);
      e.next_state = static_cast<StateId>(next);
      if (toks[2] == "any") e.match = ValueMatch::any();
      else if (toks[2] == "exact") e.match = ValueMatch::exact(lo);
      else if (toks[2] == "range") {
        if (lo > hi) return lp.err("inverted range");
        e.match = ValueMatch::range(lo, hi);
      } else {
        return lp.err("bad entry match kind");
      }
      current->add_entry(e);
      continue;
    }
    return lp.err("unknown directive '" + std::string(toks[0]) + "'");
  }
  if (!done) return lp.err("missing 'end'");

  // Structural soundness (disjoint ranges, multicast referential
  // integrity) is checked before the pipeline is handed out.
  if (auto valid = pipe.validate(); !valid.ok())
    return Error{"invalid pipeline: " + valid.error().message};
  pipe.finalize();
  return pipe;
}

}  // namespace camus::table
