// Match-action table intermediate representation — the compiler's output
// and the switch simulator's input. Mirrors the paper's Figure 4: one table
// per field matching (entry state, field value) -> next state, plus a leaf
// table mapping the final state to the merged ActionSet / multicast group.
//
// Miss semantics: a lookup miss leaves the state metadata unchanged. This
// is how packets "pass through" tables for fields their current BDD path
// does not predicate on; a packet whose state survives to the leaf table
// without a leaf entry is dropped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/bound.hpp"
#include "util/result.hpp"

namespace camus::table {

using StateId = std::uint32_t;
inline constexpr StateId kInitialState = 0;

struct ResourceUsage;

// Declared match capability of a table (drives resource accounting:
// exact -> SRAM, range/ternary -> TCAM).
enum class MatchKind : std::uint8_t { kExact, kRange, kTernary };

std::string to_string(MatchKind k);

// Per-entry match on the field value.
struct ValueMatch {
  enum class Kind : std::uint8_t { kAny, kExact, kRange };
  Kind kind = Kind::kAny;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  // inclusive; kExact has lo == hi

  static ValueMatch any() { return {}; }
  static ValueMatch exact(std::uint64_t v) {
    return {Kind::kExact, v, v};
  }
  static ValueMatch range(std::uint64_t lo, std::uint64_t hi) {
    return {Kind::kRange, lo, hi};
  }

  bool matches(std::uint64_t v) const noexcept {
    return kind == Kind::kAny || (v >= lo && v <= hi);
  }

  std::string to_string() const;

  friend bool operator==(const ValueMatch&, const ValueMatch&) = default;
};

struct Entry {
  StateId state = kInitialState;
  ValueMatch match;
  StateId next_state = kInitialState;

  friend bool operator==(const Entry&, const Entry&) = default;
};

// A single match-action stage. After populating `entries`, call finalize()
// to build the lookup index used by the simulator.
class Table {
 public:
  Table() = default;
  Table(std::string name, lang::Subject subject, MatchKind kind,
        std::uint32_t width_bits)
      : name_(std::move(name)),
        subject_(subject),
        kind_(kind),
        width_bits_(width_bits) {}

  const std::string& name() const noexcept { return name_; }
  lang::Subject subject() const noexcept { return subject_; }
  MatchKind kind() const noexcept { return kind_; }
  std::uint32_t width_bits() const noexcept { return width_bits_; }

  // Symbol-valued key: exact match values render as decoded tickers.
  bool is_symbol() const noexcept { return symbol_; }
  void set_symbol(bool v) noexcept { symbol_ = v; }

  // SRAM/TCAM cost of this table's entries under its match kind.
  ResourceUsage resources() const;

  void add_entry(Entry e) { entries_.push_back(e); indexed_ = false; }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  // Replaces entry i in place, invalidating the lookup index (rebuilt
  // lazily). Used by fault-injection tests and the lint mutation check to
  // corrupt a compiled pipeline deliberately.
  void set_entry(std::size_t i, Entry e) {
    entries_.at(i) = e;
    indexed_ = false;
  }

  // Removes entry i, invalidating the lookup index. The fault::Injector
  // eviction experiments use this to model control-plane entries lost to
  // SRAM/TCAM faults.
  void remove_entry(std::size_t i) {
    entries_.at(i);  // same bounds behaviour as set_entry
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    indexed_ = false;
  }

  // --- runtime control-plane updates (live churn path) ----------------
  // Installs one entry unless an identical one is already present
  // (idempotent; returns false on the duplicate). Invalidates the index.
  bool insert_entry(const Entry& e);
  // Removes the first entry identical to e; false when absent. Match
  // priority is structural (exact > range > wildcard; ranges disjoint),
  // so removal position never changes lookup semantics.
  bool remove_matching(const Entry& e);

  // Builds per-state indices: hash lookup for exact entries, binary search
  // over sorted disjoint ranges, wildcard fallback. Specific entries win
  // over the per-state wildcard. Idempotent; never throws. lookup() calls
  // it lazily, so an un-finalized table degrades to a slower first lookup
  // rather than aborting a simulation. (Lazy indexing is not synchronized:
  // finalize eagerly before sharing a table across threads.)
  void finalize() const;
  bool finalized() const noexcept { return indexed_; }

  // Structural soundness check: range entries for one state must be
  // disjoint (overlaps indicate a compiler bug or a corrupt serialized
  // pipeline). Expected-failure path, so util::Result rather than a throw.
  util::Result<bool> validate() const;

  // Returns the next state, or nullopt on miss (caller keeps the state).
  std::optional<StateId> lookup(StateId state, std::uint64_t value) const;

 private:
  struct StateIndex {
    std::unordered_map<std::uint64_t, StateId> exact;
    std::vector<Entry> ranges;  // sorted by lo; disjoint by construction
    std::optional<StateId> any;
  };

  std::string name_;
  lang::Subject subject_{};
  MatchKind kind_ = MatchKind::kRange;
  std::uint32_t width_bits_ = 64;
  bool symbol_ = false;
  std::vector<Entry> entries_;
  // Mutable: the index is a cache of entries_, (re)built on demand.
  mutable std::unordered_map<StateId, StateIndex> index_;
  mutable bool indexed_ = false;
};

// Multicast group table: one group per distinct multi-port set. Unicast
// actions do not consume a group (matching how the paper counts "198
// multicast groups" separately from unicast forwards).
class MulticastGroups {
 public:
  // Interns a port set (must be sorted unique). Returns the group id.
  std::uint32_t intern(const std::vector<std::uint16_t>& ports);

  const std::vector<std::uint16_t>& ports(std::uint32_t group) const {
    return groups_.at(group);
  }
  std::size_t size() const noexcept { return groups_.size(); }

 private:
  std::vector<std::vector<std::uint16_t>> groups_;
  std::unordered_map<std::string, std::uint32_t> ids_;  // key: packed ports
};

struct LeafEntry {
  StateId state = kInitialState;
  lang::ActionSet actions;
  // Multicast group id when actions.ports.size() > 1; otherwise unused.
  std::optional<std::uint32_t> mcast_group;
};

class LeafTable {
 public:
  void add_entry(LeafEntry e);
  const std::vector<LeafEntry>& entries() const noexcept { return entries_; }

  // Miss -> nullptr (drop).
  const LeafEntry* lookup(StateId state) const;

  // --- runtime control-plane updates (live churn path) ----------------
  // Removes the entry for `state`; false when absent. First-wins duplicate
  // semantics are preserved: if a shadowed duplicate for the same state
  // exists it becomes visible, exactly as a freshly built table would
  // resolve.
  bool remove_entry(StateId state);
  // Replaces the entry for `state` in place (ActionSet-only modify);
  // false when absent.
  bool replace_entry(StateId state, LeafEntry e);

 private:
  void reindex();

  std::vector<LeafEntry> entries_;
  std::unordered_map<StateId, std::size_t> index_;
};

// Resource accounting for one pipeline (paper §3.2, "Resource
// Optimizations"). Exact entries live in SRAM; range entries expand to
// O(#bits) TCAM entries via prefix expansion; wildcard entries cost one
// TCAM entry.
struct ResourceUsage {
  std::uint64_t sram_entries = 0;
  std::uint64_t tcam_entries = 0;
  std::uint64_t logical_entries = 0;  // raw entry count across all tables
  std::uint64_t stages = 0;           // tables + leaf
  std::uint64_t multicast_groups = 0;

  void accumulate(const ResourceUsage& other);
  std::string to_string() const;
};

// Tofino-like per-device budget. The defaults are order-of-magnitude
// approximations of a 12-stage switching ASIC; they gate the "fits in
// switch memory" check, not any semantic behaviour.
struct ResourceBudget {
  std::uint64_t max_stages = 12;
  std::uint64_t sram_entries_per_stage = 100000;
  std::uint64_t tcam_entries_per_stage = 12000;
  std::uint64_t max_multicast_groups = 65536;

  bool fits(const ResourceUsage& u) const;
};

// Number of TCAM (prefix) entries needed to cover [lo, hi] on a
// width_bits-wide key. Exact minimal prefix cover.
std::uint64_t tcam_entries_for_range(std::uint64_t lo, std::uint64_t hi,
                                     std::uint32_t width_bits);

}  // namespace camus::table
