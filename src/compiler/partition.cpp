#include "compiler/partition.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "compiler/compress.hpp"
#include "compiler/field_order.hpp"
#include "compiler/parallel.hpp"
#include "util/mem.hpp"
#include "util/timer.hpp"

namespace camus::compiler {

using bdd::NodeRef;
using lang::Conjunction;
using lang::FlatRule;
using lang::Subject;
using table::Entry;
using table::StateId;
using table::Table;
using table::ValueMatch;

std::optional<std::uint64_t> point_constrained_value(const FlatRule& r,
                                                     Subject s) {
  if (r.terms.empty()) return std::nullopt;
  std::optional<std::uint64_t> v;
  for (const auto& term : r.terms) {
    const auto it = term.constraints.find(s);
    if (it == term.constraints.end()) return std::nullopt;
    const auto& ivs = it->second.intervals();
    if (ivs.size() != 1 || ivs[0].lo != ivs[0].hi) return std::nullopt;
    if (v && *v != ivs[0].lo) return std::nullopt;
    v = ivs[0].lo;
  }
  return v;
}

std::size_t rule_work(const FlatRule& r) {
  std::size_t w = 0;
  for (const auto& term : r.terms) w += 1 + term.constraints.size();
  return w;
}

namespace {

// Restricts a rule that does not pin `subject` to the slice subject == v:
// terms whose constraint excludes v are dropped; terms admitting v lose
// the constraint (the dispatch hit already established subject == v).
// Returns a rule with no terms when the slice is empty.
FlatRule specialize(const FlatRule& r, Subject subject, std::uint64_t v) {
  FlatRule out;
  out.actions = r.actions;
  for (const Conjunction& term : r.terms) {
    const auto it = term.constraints.find(subject);
    if (it == term.constraints.end()) {
      out.terms.push_back(term);
      continue;
    }
    if (!it->second.contains(v)) continue;
    Conjunction t = term;
    t.constraints.erase(subject);
    out.terms.push_back(std::move(t));
  }
  return out;
}

// Strips the pinned subject constraint from every term.
FlatRule strip(const FlatRule& r, Subject subject) {
  FlatRule out;
  out.actions = r.actions;
  for (const Conjunction& term : r.terms) {
    Conjunction t = term;
    t.constraints.erase(subject);
    out.terms.push_back(std::move(t));
  }
  return out;
}

// Display name, width, and symbol flag for the dispatch table.
struct DispatchInfo {
  std::string name;
  std::uint32_t width_bits = 64;
  bool symbol = false;
};

DispatchInfo dispatch_info(Subject s, const spec::Schema& schema) {
  DispatchInfo info;
  if (s.kind == Subject::Kind::kField) {
    const auto& f = schema.field(s.id);
    info.name = f.path();
    info.width_bits = f.width_bits;
    info.symbol = f.kind == spec::FieldKind::kSymbol;
  } else {
    const auto& v = schema.state_var(s.id);
    info.name = v.name;
    info.width_bits = v.width_bits;
  }
  return info;
}

// Highest pipeline state id used anywhere in a shard pipeline. Shard
// state ranges [base, base + max + 1) are packed back to back, so the
// stitched state space stays dense.
StateId max_state(const table::Pipeline& p) {
  StateId m = p.initial_state;
  for (const Table& t : p.tables) {
    for (const Entry& e : t.entries()) {
      m = std::max({m, e.state, e.next_state});
    }
  }
  for (const auto& e : p.leaf.entries()) m = std::max(m, e.state);
  return m;
}

}  // namespace

PartitionPlan plan_partition(const std::vector<FlatRule>& rules,
                             const bdd::VarOrder& order) {
  PartitionPlan plan;
  if (rules.empty()) return plan;

  // The dispatch attribute: the highest-ranked subject pinned by at least
  // half the rules (same dominance criterion as plan_shards).
  for (Subject s : order.subjects()) {
    std::size_t covered = 0;
    for (const auto& r : rules)
      if (point_constrained_value(r, s)) ++covered;
    if (covered * 2 >= rules.size()) {
      plan.subject = s;
      plan.pinned_rules = covered;
      break;
    }
  }
  if (!plan.subject) return plan;

  std::map<std::uint64_t, std::vector<FlatRule>> by_value;
  for (const auto& r : rules) {
    if (auto v = point_constrained_value(r, *plan.subject))
      by_value[*v].push_back(strip(r, *plan.subject));
    else
      plan.catch_all.push_back(r);
  }
  if (by_value.size() < 2) {
    plan.subject.reset();
    plan.catch_all.clear();
    plan.pinned_rules = 0;
    return plan;
  }

  for (auto& [v, group] : by_value) {
    // Catch-all rules apply to every slice they intersect; the dispatch
    // wildcard cannot reach them for packets that hit a value entry, so
    // they are replicated (specialized) into each value shard.
    for (const FlatRule& r : plan.catch_all) {
      FlatRule sp = specialize(r, *plan.subject, v);
      if (!sp.terms.empty()) group.push_back(std::move(sp));
    }
    plan.values.push_back(v);
    plan.groups.push_back(std::move(group));
  }
  return plan;
}

bool partition_applies(const PartitionPlan& plan, const CompileOptions& opts,
                       std::size_t n_rules) {
  if (!plan.subject) return false;
  switch (opts.partition) {
    case PartitionMode::kOff: return false;
    case PartitionMode::kForce: return true;
    case PartitionMode::kAuto: return n_rules >= opts.partition_min_rules;
  }
  return false;
}

util::Result<Compiled> compile_partitioned(const spec::Schema& schema,
                                           const std::vector<FlatRule>& flat,
                                           const PartitionPlan& plan,
                                           const CompileOptions& opts) {
  util::Timer total;
  Compiled out;
  out.stats.rule_count = flat.size();
  for (const auto& r : flat) out.stats.dnf_terms += r.terms.size();
  out.stats.mem.rss_before = util::current_rss_bytes();

  // One total order for every shard and the reference: the base heuristic
  // order with the partition attribute moved to the front, so the
  // dispatch stage (rank 0) plus the stitched stages follow it.
  bdd::VarOrder base = choose_order(schema, flat, opts.order);
  std::vector<Subject> subjects{*plan.subject};
  for (Subject s : base.subjects())
    if (!(s == *plan.subject)) subjects.push_back(s);
  const bdd::VarOrder porder(std::move(subjects));
  const bdd::DomainMap domains(schema);

  // Shard task list in canonical order: value groups ascending, default
  // last. Stitch output is a pure function of this order, so it is
  // identical at every thread count.
  struct ShardTask {
    const std::vector<FlatRule>* rules;
    table::Pipeline pipeline;
    ShardStats stats;
    std::size_t components = 0, in_nodes = 0, paths = 0;
    std::string error;
  };
  std::vector<ShardTask> tasks(plan.groups.size() +
                               (plan.catch_all.empty() ? 0 : 1));
  for (std::size_t i = 0; i < plan.groups.size(); ++i)
    tasks[i].rules = &plan.groups[i];
  if (!plan.catch_all.empty()) tasks.back().rules = &plan.catch_all;

  CompileOptions shard_opts = opts;
  shard_opts.threads = 1;                    // no nested sharding
  shard_opts.domain_compression = false;     // runs post-stitch, globally
  shard_opts.partition = PartitionMode::kOff;

  std::atomic<std::size_t> next{0};
  util::Timer build_timer;
  auto work = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      ShardTask& task = tasks[i];
      util::Timer t;
      try {
        bdd::BddManager mgr(porder, domains);
        std::vector<NodeRef> roots;
        roots.reserve(task.rules->size());
        for (const FlatRule& r : *task.rules) roots.push_back(mgr.build_rule(r));
        NodeRef root = mgr.unite_all(std::move(roots), opts.semantic_prune);
        if (opts.semantic_prune) root = mgr.prune(root);
        auto gen = bdd_to_tables(mgr, root, schema, shard_opts);
        if (!gen.ok()) {
          task.error = gen.error().message;
          continue;
        }
        task.pipeline = std::move(gen.value().pipeline);
        task.components = gen.value().stats.components;
        task.in_nodes = gen.value().stats.in_nodes;
        task.paths = gen.value().stats.paths_enumerated;
        task.stats.rules = task.rules->size();
        task.stats.bdd_nodes = mgr.node_table_size();
        task.stats.manager_bytes = mgr.memory_bytes();
      } catch (const std::exception& e) {
        task.error = e.what();
        continue;
      }
      task.stats.t_seconds = t.seconds();
    }
  };
  const std::size_t n_workers =
      std::min(resolve_threads(opts.threads), tasks.size());
  std::vector<std::thread> pool;
  pool.reserve(n_workers > 0 ? n_workers - 1 : 0);
  for (std::size_t i = 1; i < n_workers; ++i) pool.emplace_back(work);
  work();
  for (auto& th : pool) th.join();
  out.stats.t_build = build_timer.seconds();
  out.stats.mem.rss_after_build = util::current_rss_bytes();

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!tasks[i].error.empty())
      return util::Error{"partition shard " + std::to_string(i) + ": " +
                         tasks[i].error};
  }

  // --- stitch -----------------------------------------------------------
  util::Timer stitch_timer;
  table::Pipeline& merged = out.pipeline;
  merged.initial_state = table::kInitialState;  // reserved dispatch state

  const DispatchInfo dinfo = dispatch_info(*plan.subject, schema);
  Table dispatch(dinfo.name + "_dispatch", *plan.subject,
                 table::MatchKind::kExact, dinfo.width_bits);
  dispatch.set_symbol(dinfo.symbol);

  // Merged per-subject tables keyed by pipeline rank under porder. Shard
  // entries can never collide across shards: their state ranges are
  // disjoint and a miss passes the state through untouched.
  std::map<std::size_t, Table> by_rank;
  StateId state_base = 1;  // state 0 is the dispatch state
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    table::Pipeline& sp = tasks[i].pipeline;
    const StateId base = state_base;
    state_base += max_state(sp) + 1;

    const bool is_default = !plan.catch_all.empty() && i + 1 == tasks.size();
    Entry d;
    d.state = table::kInitialState;
    d.match = is_default ? ValueMatch::any() : ValueMatch::exact(plan.values[i]);
    d.next_state = base + sp.initial_state;
    dispatch.add_entry(d);

    for (Table& t : sp.tables) {
      const std::size_t rank = porder.rank(t.subject());
      auto it = by_rank.find(rank);
      if (it == by_rank.end()) {
        Table nt(t.name(), t.subject(), t.kind(), t.width_bits());
        nt.set_symbol(t.is_symbol());
        it = by_rank.emplace(rank, std::move(nt)).first;
      } else if (it->second.kind() != t.kind()) {
        // Shards may disagree on exact-vs-range; range admits both.
        Table nt(it->second.name(), it->second.subject(),
                 table::MatchKind::kRange, it->second.width_bits());
        nt.set_symbol(it->second.is_symbol());
        for (const Entry& e : it->second.entries()) nt.add_entry(e);
        it->second = std::move(nt);
      }
      for (const Entry& e : t.entries()) {
        Entry ne = e;
        ne.state += base;
        ne.next_state += base;
        it->second.add_entry(ne);
      }
    }
    for (const auto& le : sp.leaf.entries()) {
      table::LeafEntry ne;
      ne.state = le.state + base;
      ne.actions = le.actions;
      if (ne.actions.ports.size() > 1)
        ne.mcast_group = merged.mcast.intern(ne.actions.ports);
      merged.leaf.add_entry(std::move(ne));
    }
    sp = table::Pipeline{};  // release shard storage as we go
  }

  merged.tables.push_back(std::move(dispatch));
  for (auto& [rank, t] : by_rank) merged.tables.push_back(std::move(t));
  merged.finalize();
  out.stats.t_stitch = stitch_timer.seconds();

  // --- post-stitch rewrites --------------------------------------------
  util::Timer tables_timer;
  if (opts.intern_entries) {
    out.stats.intern = intern_entries(merged);
    out.stats.interned = true;
  }
  if (opts.domain_compression) compress_domains(merged, opts);
  out.stats.t_tables = tables_timer.seconds();
  out.stats.mem.rss_after_tables = util::current_rss_bytes();

  // --- optional monolithic reference (equivalence-checker anchor) -------
  if (opts.partition_reference) {
    util::Timer ref_timer;
    out.manager = std::make_shared<bdd::BddManager>(porder, domains);
    std::vector<NodeRef> roots;
    roots.reserve(flat.size());
    for (const FlatRule& r : flat) roots.push_back(out.manager->build_rule(r));
    out.root = out.manager->unite_all(std::move(roots), opts.semantic_prune);
    if (opts.semantic_prune) out.root = out.manager->prune(out.root);
    out.stats.t_union = ref_timer.seconds();
    out.stats.bdd_before_prune = out.manager->stats(out.root);
    out.stats.bdd_after_prune = out.stats.bdd_before_prune;
    out.stats.cache.accumulate(out.manager->cache_stats());
  }

  // --- telemetry --------------------------------------------------------
  out.stats.threads_used = n_workers;
  out.stats.partition_groups = tasks.size();
  out.stats.partition_subject = dinfo.name;
  for (const ShardTask& task : tasks) {
    out.stats.shards.push_back(task.stats);
    out.stats.tablegen.components += task.components;
    out.stats.tablegen.in_nodes += task.in_nodes;
    out.stats.tablegen.paths_enumerated += task.paths;
    out.stats.mem.bdd_bytes =
        std::max<std::uint64_t>(out.stats.mem.bdd_bytes,
                                task.stats.manager_bytes);
  }
  for (const Table& t : merged.tables)
    out.stats.tablegen.stage_entries.push_back(
        {t.name(), t.entries().size()});
  out.stats.tablegen.leaf_entries = merged.leaf.entries().size();
  out.stats.total_entries = merged.total_entries();
  out.stats.multicast_groups = merged.mcast.size();
  out.stats.mem.peak_rss = util::peak_rss_bytes();
  out.stats.t_total = total.seconds();
  return out;
}

}  // namespace camus::compiler
