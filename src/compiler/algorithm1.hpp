// Algorithm 1 from the paper: translating the BDD into per-field
// match-action tables.
//
// For each field f (in BDD order), the subgraph of nodes predicating on f
// forms a component C_f. Nodes entered from outside C_f are its In nodes;
// nodes outside C_f reached from within are its Out nodes. For every path
// from an In node u through C_f to an Out node v, the entry
// (state(u), range) -> state(v) is added to f's table, where range is the
// intersection of the (possibly negated) predicates along the path.
//
// Extensions beyond the paper's pseudocode, both entry-count optimizations
// visible in its Figure 4:
//  - ranges for all paths u -> v are unioned before emission, so contiguous
//    value regions with the same successor collapse into one entry;
//  - per In state, the successor with the most intervals may be encoded as
//    a wildcard fallback entry ('*' rows) when that is cheaper.
#pragma once

#include "bdd/bdd.hpp"
#include "compiler/options.hpp"
#include "spec/schema.hpp"
#include "table/pipeline.hpp"
#include "util/result.hpp"

namespace camus::compiler {

struct TableGenStats {
  std::size_t components = 0;         // non-empty field components
  std::size_t in_nodes = 0;           // total In nodes across components
  std::size_t paths_enumerated = 0;   // DFS path segments walked

  // Per-stage telemetry: entries emitted for each field table, in pipeline
  // order, plus the leaf table (the CompileStats JSON "stages" array).
  struct StageEntries {
    std::string table;
    std::size_t entries = 0;
  };
  std::vector<StageEntries> stage_entries;
  std::size_t leaf_entries = 0;
};

struct TableGenResult {
  table::Pipeline pipeline;
  TableGenStats stats;
};

// Persistent BDD-node -> pipeline-state mapping. Hash-consed BDD nodes are
// stable across recompilations within one manager, so sharing an allocator
// between commits keeps state ids — and therefore unchanged table
// entries — identical. This is what makes the incremental compiler's
// table-entry re-use work (paper §3: "state updates can benefit from
// table entry re-use").
struct StateAllocator {
  std::unordered_map<std::uint32_t, table::StateId> ids;  // by NodeRef raw
  table::StateId next = table::kInitialState;
};

// Translates the BDD rooted at `root` into a finalized pipeline.
// Diagnostics (never throws — E1xx convention, so controller recovery
// paths stay exception-free):
//   E130  path enumeration exceeded opts.max_paths_per_component
//         (pathological, unreduced BDDs)
//   E131  generated pipeline failed structural validation (compiler bug)
// With a null `states`, state ids are numbered fresh per call (compact,
// Figure 4-style); passing a persistent allocator keeps them stable.
util::Result<TableGenResult> bdd_to_tables(const bdd::BddManager& mgr,
                                           bdd::NodeRef root,
                                           const spec::Schema& schema,
                                           const CompileOptions& opts,
                                           StateAllocator* states = nullptr);

// Structural stability for entry-level deltas: inserts an empty table for
// every order subject that has none, keeping rank order. An empty stage is
// semantically neutral — a lookup miss passes the state through — but its
// presence guarantees that a later commit whose function starts depending
// on the subject can ship entries to a stage the switch already has,
// instead of targeting an unknown table (U001). The incremental compiler
// calls this on every commit; the batch compiler does not, so Figure-4
// pipelines stay minimal.
void materialize_stages(table::Pipeline& pipe, const bdd::BddManager& mgr,
                        const spec::Schema& schema);

}  // namespace camus::compiler
