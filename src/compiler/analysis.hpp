// Static analysis of a subscription set, run by the controller before
// compilation: flags unsatisfiable and duplicate rules, reports which
// subjects each rule constrains, and estimates selectivity (the expected
// fraction of uniform-random packets a rule matches). Operators use this
// to catch dead subscriptions and to predict table pressure before
// touching the switch.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/bound.hpp"
#include "lang/dnf.hpp"
#include "spec/schema.hpp"
#include "util/result.hpp"

namespace camus::compiler {

struct RuleReport {
  std::size_t index = 0;            // position in the input rule set
  bool satisfiable = true;          // false: can never match any packet
  std::size_t dnf_terms = 0;
  std::vector<lang::Subject> subjects;  // constrained subjects, ordered
  // Expected match fraction under independent uniform field values;
  // union bound over DNF terms, clamped to 1.
  double selectivity = 0.0;
  // Index of an earlier rule with identical condition AND actions.
  std::optional<std::size_t> duplicate_of;
  // Index of an earlier rule with identical condition, different actions
  // (legal — actions merge — but often a subscription mistake).
  std::optional<std::size_t> same_condition_as;
};

struct RuleSetReport {
  std::vector<RuleReport> rules;
  std::size_t unsatisfiable_count = 0;
  std::size_t duplicate_count = 0;
  std::size_t total_dnf_terms = 0;

  // The flattened (DNF) form of every rule, index-aligned with `rules`.
  // Populated only when analyze_rules is called with keep_flat=true — the
  // verifier's BDD-exact passes reuse it instead of re-flattening.
  std::vector<lang::FlatRule> flat;

  // Output is ordered by rule index and built from canonical DNF text, so
  // it is identical across platforms and standard libraries.
  std::string to_string(const spec::Schema& schema) const;
};

// Canonical text of a flattened condition: per-term canonical constraint
// strings, sorted bytewise. Two rules have equal keys iff their DNF forms
// are identical up to term order — the basis for duplicate detection and
// for the verifier's fingerprint cache.
std::string condition_key(const lang::FlatRule& r);

// FNV-1a over a canonical key (the hashed duplicate-detection index).
std::uint64_t canonical_hash(std::string_view key);

util::Result<RuleSetReport> analyze_rules(
    const spec::Schema& schema, const std::vector<lang::BoundRule>& rules,
    std::size_t max_dnf_terms = 1 << 16, bool keep_flat = false);

}  // namespace camus::compiler
