// Cost-model design-space exploration (the Kugelblitz-inspired pass): the
// ablation benches measure every layout knob — variable-order heuristic,
// partitioned vs monolithic output, entry interning, domain compression —
// but a human had to read the plots. explore() closes the loop: compile a
// deterministic sample of the rule set under each candidate layout, score
// the result against a resource model (SRAM entries, TCAM entries,
// stages, projected compile time, hard budget feasibility), and return
// the CompileOptions the full compile should use.
//
// Two-phase greedy search keeps the candidate count bounded: first the
// four order heuristics are raced with all rewrites off (the order
// decides BDD sharing, which dominates everything downstream), then the
// layout knobs are enumerated under the winning order. Sampling is a
// fixed stride over the rule list — no RNG, so two runs over the same
// rule set pick the same layout.
#pragma once

#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "compiler/options.hpp"
#include "table/table.hpp"
#include "util/result.hpp"

namespace camus::compiler {

// Linear resource model. Units are arbitrary; only ratios matter. TCAM
// is weighted well above SRAM (it is the scarce resource on a Tofino-like
// ASIC), stages above entries (a stage is a pipeline pass), and projected
// compile seconds convert wall time into the same scale.
struct CostWeights {
  double sram_entry = 1.0;
  double tcam_entry = 8.0;
  double stage = 2000.0;
  double compile_second = 5000.0;
  double infeasible = 1e12;  // added when the scaled usage busts the budget
};

struct ExploreParams {
  // Sample size for candidate compiles (stride-sampled, deterministic).
  std::size_t sample_rules = 2000;
  CostWeights weights;
  table::ResourceBudget budget;
  // Starting options: threads, guard rails, and any knob the search does
  // not own are inherited by every candidate and by the returned best.
  CompileOptions base;
};

struct ExploreCandidate {
  std::string label;
  CompileOptions opts;
  bool ok = false;        // candidate compile succeeded
  bool feasible = false;  // scaled usage fits the budget
  double cost = 0;
  double t_compile = 0;       // sample compile seconds
  std::uint64_t entries = 0;  // sample pipeline entries
  table::ResourceUsage usage;
};

struct ExploreResult {
  CompileOptions best;
  std::string best_label;
  double best_cost = 0;
  std::size_t sampled = 0;      // rules actually compiled per candidate
  std::size_t total_rules = 0;  // full set size (extrapolation factor)
  std::vector<ExploreCandidate> candidates;  // in evaluation order

  std::string to_json() const;
};

// Runs the search over already-bound rules. Errors only when every
// candidate compile fails; individual candidate failures are recorded
// (ok=false) and skipped.
util::Result<ExploreResult> explore(const spec::Schema& schema,
                                    const std::vector<lang::BoundRule>& rules,
                                    const ExploreParams& params = {});

}  // namespace camus::compiler
