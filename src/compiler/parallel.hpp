// The sharded parallel compilation pipeline (the "dynamic step at scale"
// extension): partition the flattened rule set by the top partition field,
// build each shard's MTBDD on a worker pool with a per-thread BddManager,
// then merge the shard roots into the master manager with a pairwise union
// reduction. Semantically identical to the serial path — only state
// numbering and wall time differ — which the differential switchsim test
// asserts.
//
// Why shard by the top partition field: rules that agree on the first
// subject of the variable order (message type in the paper's §3 pipeline
// split; the stock symbol in the Figure 5c workload) produce BDDs that are
// disjoint below a short shared prefix, so in-shard unions do almost all
// of the union work and the final cross-shard merges stay cheap. Any
// partition is *correct* (union is associative and commutative); this one
// is merely fast. Rules that do not point-constrain the partition field
// fall into a catch-all group.
#pragma once

#include <cstddef>
#include <vector>

#include "bdd/bdd.hpp"
#include "compiler/compile.hpp"
#include "lang/dnf.hpp"
#include "util/result.hpp"

namespace camus::compiler {

// Resolves CompileOptions::threads: 0 means "auto" ->
// std::thread::hardware_concurrency() (1 if unknown).
std::size_t resolve_threads(std::size_t requested);

struct ShardPlan {
  // Rule indices per shard. Partition groups are kept intact and packed
  // into at most n_shards shards, heaviest group first onto the currently
  // lightest shard (LPT by estimated work: rule_work sums 1 + constraint
  // count per DNF term, so a few high-predicate rules cannot hide behind
  // a flat rule count).
  std::vector<std::vector<std::size_t>> shards;
  std::size_t groups = 0;  // distinct partition groups (incl. catch-all)
};

// Plans the sharding of `rules` under `order` for up to n_shards workers.
// Returns a plan with <= 1 shards when sharding cannot help (few rules, no
// usable partition field, n_shards <= 1) — callers then use the serial
// path.
ShardPlan plan_shards(const std::vector<lang::FlatRule>& rules,
                      const bdd::VarOrder& order, std::size_t n_shards);

struct ShardedBuild {
  bdd::NodeRef root;             // merged root, owned by the master manager
  std::vector<ShardStats> shards;
  bdd::CacheStats worker_cache;  // accumulated over all shard managers
  double t_build = 0;            // concurrent shard phase (wall time)
  double t_merge = 0;            // import + pairwise union into master
};

// Executes the plan: one private BddManager per worker, shard roots merged
// into `master`. Worker failures (e.g. path blowup guards) surface as an
// Error naming the first failing shard.
util::Result<ShardedBuild> build_sharded(
    bdd::BddManager& master, const std::vector<lang::FlatRule>& rules,
    const ShardPlan& plan, bool semantic_prune);

}  // namespace camus::compiler
