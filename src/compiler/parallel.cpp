#include "compiler/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "compiler/partition.hpp"
#include "util/timer.hpp"

namespace camus::compiler {

using bdd::NodeRef;
using lang::FlatRule;
using lang::Subject;

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ShardPlan plan_shards(const std::vector<FlatRule>& rules,
                      const bdd::VarOrder& order, std::size_t n_shards) {
  ShardPlan plan;
  // Sharding overhead (manager setup, import) isn't worth it for tiny rule
  // sets; the serial path also keeps single-shard plans trivial.
  if (n_shards <= 1 || rules.size() < 2 * n_shards) return plan;

  // The top partition field: the highest-ranked subject that most rules
  // point-constrain. Ranked subjects are tried in order so the partition
  // mirrors the pipeline's own top-level split.
  std::optional<Subject> part;
  for (Subject s : order.subjects()) {
    std::size_t covered = 0;
    for (const auto& r : rules)
      if (point_constrained_value(r, s)) ++covered;
    if (covered * 2 >= rules.size()) {
      part = s;
      break;
    }
  }

  // Group rules by partition value; everything else is one catch-all
  // group. With no usable partition field, deal rules round-robin — the
  // union work no longer splits cleanly, but the build phase still
  // parallelizes.
  std::map<std::uint64_t, std::vector<std::size_t>> by_value;
  std::vector<std::vector<std::size_t>> groups;
  if (part) {
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (auto v = point_constrained_value(rules[i], *part))
        by_value[*v].push_back(i);
      else
        rest.push_back(i);
    }
    for (auto& [value, idx] : by_value) groups.push_back(std::move(idx));
    if (!rest.empty()) groups.push_back(std::move(rest));
  } else {
    groups.resize(n_shards);
    for (std::size_t i = 0; i < rules.size(); ++i)
      groups[i % n_shards].push_back(i);
  }
  plan.groups = groups.size();

  // LPT bin packing by estimated work (per-rule predicate counts), not
  // raw rule count: under Zipf symbol skew the head group's rules also
  // carry the long predicate chains, and counting rules used to hand one
  // shard most of the union work — a straggler that serialized the whole
  // build phase.
  std::vector<std::size_t> group_work(groups.size(), 0);
  std::vector<std::size_t> by_work(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    by_work[g] = g;
    for (std::size_t i : groups[g]) group_work[g] += rule_work(rules[i]);
  }
  std::sort(by_work.begin(), by_work.end(), [&](std::size_t a, std::size_t b) {
    return group_work[a] != group_work[b] ? group_work[a] > group_work[b]
                                          : a < b;
  });
  const std::size_t shard_count = std::min(n_shards, groups.size());
  plan.shards.assign(shard_count, {});
  std::vector<std::size_t> load(shard_count, 0);
  for (std::size_t g : by_work) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[lightest] += group_work[g];
    auto& shard = plan.shards[lightest];
    shard.insert(shard.end(), groups[g].begin(), groups[g].end());
  }
  return plan;
}

util::Result<ShardedBuild> build_sharded(bdd::BddManager& master,
                                         const std::vector<FlatRule>& rules,
                                         const ShardPlan& plan,
                                         bool semantic_prune) {
  ShardedBuild out;
  const std::size_t n = plan.shards.size();
  if (n == 0) return util::Error{"build_sharded: empty shard plan"};

  struct WorkerResult {
    std::unique_ptr<bdd::BddManager> mgr;
    NodeRef root;
    ShardStats stats;
    std::string error;
  };
  std::vector<WorkerResult> results(n);
  std::atomic<std::size_t> next{0};
  util::Timer build_timer;

  // Worker pool: shards are pulled from a shared counter, so uneven shard
  // sizes never idle a worker while work remains. Each worker owns a
  // private manager — BddManager is not thread-safe and, more importantly,
  // private unique/memo tables mean zero synchronization on the hot path.
  auto work = [&]() {
    while (true) {
      const std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= n) return;
      WorkerResult& wr = results[s];
      util::Timer t;
      try {
        wr.mgr = std::make_unique<bdd::BddManager>(master.order(),
                                                   master.domains());
        std::vector<NodeRef> roots;
        roots.reserve(plan.shards[s].size());
        for (std::size_t idx : plan.shards[s])
          roots.push_back(wr.mgr->build_rule(rules[idx]));
        wr.root = wr.mgr->unite_all(std::move(roots), semantic_prune);
      } catch (const std::exception& e) {
        wr.error = e.what();
        continue;  // record and keep draining so the pool always finishes
      }
      wr.stats.rules = plan.shards[s].size();
      wr.stats.bdd_nodes = wr.mgr->node_table_size();
      wr.stats.manager_bytes = wr.mgr->memory_bytes();
      wr.stats.t_seconds = t.seconds();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(n > 0 ? n - 1 : 0);
  for (std::size_t i = 1; i < n; ++i) pool.emplace_back(work);
  work();  // the calling thread is worker 0
  for (auto& th : pool) th.join();
  out.t_build = build_timer.seconds();

  for (std::size_t s = 0; s < n; ++s) {
    if (!results[s].error.empty())
      return util::Error{"shard " + std::to_string(s) + ": " +
                         results[s].error};
  }

  // Merge: re-intern each shard BDD into the master manager, then reduce
  // the imported roots pairwise (unite_all's balanced tree).
  util::Timer merge_timer;
  std::vector<NodeRef> imported;
  imported.reserve(n);
  for (auto& wr : results) {
    imported.push_back(master.import(*wr.mgr, wr.root));
    out.worker_cache.accumulate(wr.mgr->cache_stats());
    out.shards.push_back(wr.stats);
  }
  out.root = master.unite_all(std::move(imported), semantic_prune);
  out.t_merge = merge_timer.seconds();
  return out;
}

}  // namespace camus::compiler
