#include "compiler/explore.hpp"

#include <algorithm>
#include <sstream>

#include "util/json.hpp"
#include "util/timer.hpp"

namespace camus::compiler {

namespace {

const char* order_name(bdd::OrderHeuristic h) {
  switch (h) {
    case bdd::OrderHeuristic::kDeclared: return "declared";
    case bdd::OrderHeuristic::kExactFirst: return "exact_first";
    case bdd::OrderHeuristic::kSelectivityAsc: return "selectivity_asc";
    case bdd::OrderHeuristic::kSelectivityDesc: return "selectivity_desc";
  }
  return "?";
}

}  // namespace

std::string ExploreResult::to_json() const {
  using util::json::format_double;
  std::ostringstream os;
  os << "{\"sampled\":" << sampled << ",\"total_rules\":" << total_rules
     << ",\"best\":\"" << util::json::escape(best_label) << "\""
     << ",\"best_cost\":" << format_double(best_cost) << ",\"candidates\":[";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const ExploreCandidate& c = candidates[i];
    os << (i ? "," : "") << "{\"label\":\"" << util::json::escape(c.label)
       << "\",\"ok\":" << (c.ok ? "true" : "false")
       << ",\"feasible\":" << (c.feasible ? "true" : "false")
       << ",\"cost\":" << format_double(c.cost)
       << ",\"seconds\":" << format_double(c.t_compile)
       << ",\"entries\":" << c.entries
       << ",\"sram\":" << c.usage.sram_entries
       << ",\"tcam\":" << c.usage.tcam_entries
       << ",\"stages\":" << c.usage.stages << "}";
  }
  os << "]}";
  return os.str();
}

util::Result<ExploreResult> explore(const spec::Schema& schema,
                                    const std::vector<lang::BoundRule>& rules,
                                    const ExploreParams& params) {
  if (rules.empty()) return util::Error{"explore: empty rule set"};
  ExploreResult out;
  out.total_rules = rules.size();

  // Deterministic stride sample: every k-th rule, preserving relative
  // order, so symbol/host diversity in generated workloads survives.
  std::vector<lang::BoundRule> sample;
  const std::size_t want = std::max<std::size_t>(1, params.sample_rules);
  if (rules.size() <= want) {
    sample = rules;
  } else {
    const std::size_t stride = rules.size() / want;
    for (std::size_t i = 0; i < rules.size() && sample.size() < want;
         i += stride)
      sample.push_back(rules[i]);
  }
  out.sampled = sample.size();
  const double scale =
      static_cast<double>(rules.size()) / static_cast<double>(sample.size());

  auto evaluate = [&](std::string label,
                      const CompileOptions& opts) -> const ExploreCandidate& {
    ExploreCandidate c;
    c.label = std::move(label);
    c.opts = opts;
    util::Timer t;
    auto compiled = compile_rules(schema, sample, opts);
    c.t_compile = t.seconds();
    if (compiled.ok()) {
      c.ok = true;
      c.entries = compiled.value().stats.total_entries;
      c.usage = compiled.value().pipeline.resources();
      // Linear extrapolation of the sample usage to the full set — an
      // upper bound for layouts whose entries grow sublinearly, which is
      // exactly the conservative direction for a feasibility gate.
      table::ResourceUsage scaled = c.usage;
      scaled.sram_entries =
          static_cast<std::uint64_t>(static_cast<double>(scaled.sram_entries) * scale);
      scaled.tcam_entries =
          static_cast<std::uint64_t>(static_cast<double>(scaled.tcam_entries) * scale);
      scaled.logical_entries = static_cast<std::uint64_t>(
          static_cast<double>(scaled.logical_entries) * scale);
      c.feasible = params.budget.fits(scaled);
      c.cost = params.weights.sram_entry * static_cast<double>(scaled.sram_entries) +
               params.weights.tcam_entry * static_cast<double>(scaled.tcam_entries) +
               params.weights.stage * static_cast<double>(c.usage.stages) +
               params.weights.compile_second * c.t_compile * scale;
      if (!c.feasible) c.cost += params.weights.infeasible;
    } else {
      c.cost = params.weights.infeasible * 2;  // never preferred
    }
    out.candidates.push_back(std::move(c));
    return out.candidates.back();
  };

  // Phase 1: race the order heuristics with every rewrite off.
  CompileOptions probe = params.base;
  probe.partition = PartitionMode::kOff;
  probe.intern_entries = false;
  probe.domain_compression = false;
  const bdd::OrderHeuristic orders[] = {
      bdd::OrderHeuristic::kDeclared, bdd::OrderHeuristic::kExactFirst,
      bdd::OrderHeuristic::kSelectivityAsc,
      bdd::OrderHeuristic::kSelectivityDesc};
  bdd::OrderHeuristic best_order = probe.order;
  double best_cost = 0;
  bool have = false;
  for (bdd::OrderHeuristic h : orders) {
    CompileOptions o = probe;
    o.order = h;
    const ExploreCandidate& c =
        evaluate(std::string("order:") + order_name(h), o);
    if (c.ok && (!have || c.cost < best_cost)) {
      best_order = h;
      best_cost = c.cost;
      have = true;
    }
  }
  if (!have) return util::Error{"explore: every order-probe compile failed"};

  // Phase 2: layout knobs under the winning order. kForce (not kAuto) so
  // the sample actually exercises the partitioned path the full compile
  // would take; compile_rules still falls back when no partition subject
  // exists, in which case the pair of candidates just ties.
  out.best = probe;
  out.best.order = best_order;
  out.best_label = std::string("order:") + order_name(best_order);
  out.best_cost = best_cost;
  for (int part = 0; part <= 1; ++part) {
    for (int intern = 0; intern <= 1; ++intern) {
      for (std::uint32_t regions : {std::uint32_t{0}, std::uint32_t{64},
                                    params.base.compression_max_regions}) {
        if (part == 0 && intern == 0 && regions == 0) continue;  // scored
        if (regions == 64 && params.base.compression_max_regions == 64)
          continue;  // duplicate of the base-regions candidate
        CompileOptions o = probe;
        o.order = best_order;
        o.partition = part ? PartitionMode::kForce : PartitionMode::kOff;
        o.intern_entries = intern != 0;
        o.domain_compression = regions != 0;
        if (regions != 0) o.compression_max_regions = regions;
        std::ostringstream label;
        label << "layout:part=" << part << ",intern=" << intern
              << ",regions=" << regions;
        const ExploreCandidate& c = evaluate(label.str(), o);
        if (c.ok && c.cost < out.best_cost) {
          // Keep kForce: the search already decided partitioning pays for
          // this workload; kAuto would re-gate the full compile on size.
          out.best = o;
          out.best_label = c.label;
          out.best_cost = c.cost;
        }
      }
    }
  }
  return out;
}

}  // namespace camus::compiler
