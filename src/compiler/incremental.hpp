// Incremental compilation — the extension the paper sketches in §3:
// "Highly dynamic queries would require an incremental algorithm, both to
// reduce compilation time and to minimize the number of state updates in
// the network. ... BDDs — our primary internal data structure — can
// leverage memoization, and state updates can benefit from table entry
// re-use."
//
// Both halves are implemented here:
//  - Memoization: one persistent BddManager spans all commits, so the
//    hash-consed unique table and union/prune memo caches carry over;
//    rebuilding the combined BDD after a small change is mostly cache
//    lookups. Per-subscription rule BDDs are also cached.
//  - Entry re-use: a persistent StateAllocator keeps BDD-node -> state-id
//    assignments stable across commits, so unchanged regions of the BDD
//    produce byte-identical table entries. commit() returns the exact
//    add/remove delta against the previously installed tables — the
//    control-plane update cost.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "compiler/algorithm1.hpp"
#include "compiler/compile.hpp"
#include "compiler/options.hpp"
#include "spec/schema.hpp"
#include "table/delta.hpp"
#include "util/result.hpp"

namespace camus::compiler {

class IncrementalCompiler {
 public:
  using SubscriptionId = std::uint64_t;

  explicit IncrementalCompiler(spec::Schema schema,
                               CompileOptions opts = {});

  // Registers a subscription; takes effect at the next commit().
  SubscriptionId add(lang::BoundRule rule);
  util::Result<SubscriptionId> add_source(std::string_view rule_text);

  // Unregisters; returns false for unknown ids.
  bool remove(SubscriptionId id);

  std::size_t subscription_count() const noexcept { return rules_.size(); }

  // One control-plane operation: install, delete, or (leaf-only) modify
  // one entry. Shared with the installer and switch (table/delta.hpp) so
  // the same op list flows through every layer unchanged.
  using EntryOp = table::EntryOp;

  struct Delta {
    std::vector<EntryOp> ops;
    std::size_t reused_entries = 0;  // entries identical to last commit
    std::size_t total_entries = 0;   // entries in the new pipeline
    double compile_seconds = 0;

    // Entry-level deltas presuppose that every targeted stage exists in
    // the program the switch runs. Stage materialization keeps that true
    // for plain commits, but domain compression can create or retire
    // mapping stages mid-churn (a table crossing the compression
    // threshold), and the diff base may have been re-seeded from a batch
    // compile without materialized stages. Such commits cannot ship as
    // ops — install pipeline() with a full reprogram instead.
    bool requires_reprogram = false;

    // Compile-phase telemetry for this commit (same schema as the batch
    // compiler; t_flatten covers only newly added subscriptions — cached
    // rule BDDs skip flattening entirely).
    CompileStats stats;

    std::size_t adds() const;
    std::size_t removes() const;
    std::size_t modifies() const;

    // Fraction of new-pipeline entries carried over unchanged (1.0 when
    // the pipeline is empty — nothing needed shipping).
    double reuse_fraction() const;

    // Per-commit delta telemetry (ops/adds/removes/modifies/reuse plus
    // the embedded CompileStats profile), for camusc --json and benches.
    std::string to_json() const;
  };

  // Recompiles and returns the delta against the previous commit. The
  // first commit reports every entry as an add.
  util::Result<Delta> commit();

  // The currently installed pipeline. E122 before a successful commit()
  // — an expected caller-ordering error reported as a diagnostic, not a
  // throw (E1xx convention), so recovery code never unwinds through an
  // exception. The pointer is never null on the ok() path and stays valid
  // until the next commit()/restore_installed().
  util::Result<const table::Pipeline*> pipeline() const;
  bool has_pipeline() const noexcept { return installed_.has_value(); }

  // Rolls the diff base back to an earlier snapshot — used when a commit's
  // output is rejected downstream (lint policy, failed install) so the
  // next commit diffs against what the switch actually runs. The
  // persistent state allocator is untouched: it only grows, and stale
  // ids merely become unreferenced.
  void restore_installed(table::Pipeline last_good);

  // Tells the compiler whether its diff base came from a PARTITIONED batch
  // compile (compile_rules with partition_groups > 0). Incremental commits
  // always run the monolithic path; when partitioning was requested or the
  // base was partition-compiled, the next commit() surfaces the silent
  // fallback in Delta::stats.partition_fallback (I130) instead of quietly
  // emitting a structurally different pipeline.
  void note_partitioned_base(bool partitioned) noexcept {
    partitioned_base_ = partitioned;
  }

  const spec::Schema& schema() const noexcept { return schema_; }

  // The persistent BDD manager and the root of the last committed BDD —
  // the same artifacts compiler::Compiled exposes for rendering/debugging.
  const std::shared_ptr<bdd::BddManager>& manager() const noexcept {
    return manager_;
  }
  bdd::NodeRef root() const noexcept { return last_root_; }

 private:
  // Entry-level diffing against the installed pipeline lives in
  // table::diff_pipelines — shared with the controller's warm-boot
  // reconciliation pass so the two can never disagree about what a
  // minimal update is.

  spec::Schema schema_;
  CompileOptions opts_;

  std::map<SubscriptionId, lang::BoundRule> rules_;
  SubscriptionId next_id_ = 1;

  // Persistent compilation state (see file comment).
  std::shared_ptr<bdd::BddManager> manager_;
  std::map<SubscriptionId, bdd::NodeRef> rule_roots_;
  StateAllocator states_;
  std::optional<std::uint32_t> pinned_root_raw_;
  bdd::NodeRef last_root_;

  std::optional<table::Pipeline> installed_;
  bool partitioned_base_ = false;  // see note_partitioned_base
};

}  // namespace camus::compiler
