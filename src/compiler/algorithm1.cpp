#include "compiler/algorithm1.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "lang/dnf.hpp"

namespace camus::compiler {

using bdd::BddManager;
using bdd::NodeRef;
using lang::Subject;
using table::Entry;
using table::LeafEntry;
using table::StateId;
using table::ValueMatch;
using util::IntervalSet;

namespace {

struct Analysis {
  // Reachable non-terminal nodes grouped by subject rank, each vector in
  // ascending node-index order (deterministic output).
  std::map<std::size_t, std::vector<NodeRef>> components;
  std::unordered_set<std::uint32_t> in_nodes;        // raw refs
  std::vector<NodeRef> terminals;                    // discovery order
};

Analysis analyze(const BddManager& mgr, NodeRef root) {
  Analysis a;
  std::unordered_set<std::uint32_t> seen;
  std::set<std::uint32_t> seen_terms;
  std::vector<NodeRef> stack{root};
  std::vector<NodeRef> order_found;
  while (!stack.empty()) {
    const NodeRef r = stack.back();
    stack.pop_back();
    if (r.is_terminal()) {
      if (seen_terms.insert(r.index()).second) a.terminals.push_back(r);
      continue;
    }
    if (!seen.insert(r.raw()).second) continue;
    order_found.push_back(r);
    const auto& n = mgr.node(r);
    const Subject subj = mgr.subject_of(r);
    for (NodeRef child : {n.hi, n.lo}) {
      if (!child.is_terminal() && mgr.subject_of(child) != subj)
        a.in_nodes.insert(child.raw());
      stack.push_back(child);
    }
  }
  if (!root.is_terminal()) a.in_nodes.insert(root.raw());

  for (NodeRef r : order_found)
    a.components[mgr.order().rank(mgr.subject_of(r))].push_back(r);
  for (auto& [rank, nodes] : a.components) {
    std::sort(nodes.begin(), nodes.end(),
              [](NodeRef x, NodeRef y) { return x.index() < y.index(); });
  }
  // Stable terminal order for state assignment.
  std::sort(a.terminals.begin(), a.terminals.end(),
            [](NodeRef x, NodeRef y) { return x.index() < y.index(); });
  return a;
}

// Subject display name, match hint, and width from the schema.
struct SubjectInfo {
  std::string name;
  spec::MatchHint hint = spec::MatchHint::kRange;
  std::uint32_t width_bits = 64;
  bool symbol = false;
};

SubjectInfo subject_info(Subject s, const spec::Schema& schema) {
  SubjectInfo info;
  if (s.kind == Subject::Kind::kField) {
    const auto& f = schema.field(s.id);
    info.name = f.path();
    info.hint = f.hint;
    info.width_bits = f.width_bits;
    info.symbol = f.kind == spec::FieldKind::kSymbol;
  } else {
    const auto& v = schema.state_var(s.id);
    info.name = v.name;
    info.hint = spec::MatchHint::kRange;
    info.width_bits = v.width_bits;
  }
  return info;
}

}  // namespace

util::Result<TableGenResult> bdd_to_tables(const BddManager& mgr,
                                           NodeRef root,
                                           const spec::Schema& schema,
                                           const CompileOptions& opts,
                                           StateAllocator* states) {
  TableGenResult result;
  table::Pipeline& pipe = result.pipeline;

  const Analysis a = analyze(mgr, root);

  // --- state assignment -------------------------------------------------
  StateAllocator local;
  StateAllocator& alloc = states ? *states : local;
  auto& state_of_raw = alloc.ids;
  auto assign = [&](NodeRef r) {
    auto [it, inserted] = state_of_raw.emplace(r.raw(), alloc.next);
    if (inserted) ++alloc.next;
    return it->second;
  };
  // The root is the initial state; then In nodes in component order; then
  // terminals (mirrors the compact numbering of the paper's Figure 4).
  pipe.initial_state = assign(root);
  for (const auto& [rank, nodes] : a.components) {
    for (NodeRef r : nodes)
      if (a.in_nodes.count(r.raw())) assign(r);
  }
  for (NodeRef t : a.terminals) assign(t);

  const NodeRef drop_term = mgr.drop();

  // --- per-component table generation ------------------------------------
  for (const auto& [rank, nodes] : a.components) {
    const Subject subj = mgr.order().subjects()[rank];
    const SubjectInfo info = subject_info(subj, schema);
    const std::uint64_t umax = mgr.domains().umax(subj);
    std::unordered_set<std::uint32_t> in_component;
    for (NodeRef r : nodes) in_component.insert(r.raw());

    ++result.stats.components;
    std::vector<Entry> entries;
    bool has_range_entry = false;
    bool all_points = true;

    for (NodeRef u : nodes) {
      if (!a.in_nodes.count(u.raw())) continue;
      ++result.stats.in_nodes;

      // Enumerate all paths from u through this component, accumulating
      // per-Out-node value sets (Algorithm 1 lines 5-9, with ranges for
      // the same (u, v) pair unioned).
      std::map<std::uint32_t, IntervalSet> out_ranges;  // raw ref -> values
      bool budget_exceeded = false;
      std::function<void(NodeRef, const IntervalSet&)> walk =
          [&](NodeRef n, const IntervalSet& range) {
            if (budget_exceeded) return;
            if (++result.stats.paths_enumerated >
                opts.max_paths_per_component) {
              budget_exceeded = true;
              return;
            }
            if (n.is_terminal() || !in_component.count(n.raw())) {
              auto [it, inserted] = out_ranges.emplace(n.raw(), range);
              if (!inserted) it->second = it->second.unite(range);
              return;
            }
            const auto& node = mgr.node(n);
            const auto& p = mgr.var_pred(node.var);
            const IntervalSet tv =
                lang::predicate_values(p.op, p.value, true, umax);
            const IntervalSet hi = range.intersect(tv);
            const IntervalSet lo = range.subtract(tv);
            if (!hi.is_empty()) walk(node.hi, hi);
            if (!lo.is_empty()) walk(node.lo, lo);
          };
      walk(u, IntervalSet::all(umax));
      if (budget_exceeded) {
        return util::Error{
            "Algorithm 1: path budget exceeded in component '" + info.name +
                "'",
            0, 0, "E130"};
      }

      // Split successors into drop vs live.
      IntervalSet drop_set;
      std::vector<std::pair<std::uint32_t, const IntervalSet*>> live;
      for (const auto& [raw, set] : out_ranges) {
        if (raw == drop_term.raw())
          drop_set = set;
        else
          live.emplace_back(raw, &set);
      }

      const StateId u_state = state_of_raw.at(u.raw());
      // On exact-hinted fields, short runs of adjacent values (e.g. two
      // merged identifiers) are emitted as individual exact entries so the
      // table stays SRAM-resident instead of degrading to a range table.
      const std::uint64_t expand_limit =
          info.hint == spec::MatchHint::kExact ? 8 : 1;
      auto emit_set = [&](const IntervalSet& set, StateId next) {
        if (set.is_all(umax)) {
          entries.push_back({u_state, ValueMatch::any(), next});
          return;
        }
        for (const auto& iv : set.intervals()) {
          const std::uint64_t count = iv.hi - iv.lo;  // values - 1
          if (count == 0) {
            entries.push_back({u_state, ValueMatch::exact(iv.lo), next});
          } else if (count < expand_limit) {
            for (std::uint64_t v = iv.lo;; ++v) {
              entries.push_back({u_state, ValueMatch::exact(v), next});
              if (v == iv.hi) break;
            }
          } else {
            entries.push_back(
                {u_state, ValueMatch::range(iv.lo, iv.hi), next});
            has_range_entry = true;
            all_points = false;
          }
        }
      };

      // Choose among three sound encodings for this state's successors
      // (Figure 4 uses the '*' rows of options B/C):
      //  A: one entry per interval of every live successor; drop paths are
      //     implicit (lookup miss -> leaf miss -> drop) unless
      //     emit_drop_entries asks for them.
      //  B: wildcard fallback to the bulkiest live successor; every other
      //     successor AND the drop region become explicit (the wildcard
      //     would otherwise swallow drop traffic).
      //  C: explicit live entries plus a wildcard to the drop state; only
      //     meaningful when drop entries are materialized at all.
      // Ties prefer C, then B: a wildcard plus points is far cheaper in
      // TCAM than the multi-interval complements it replaces.
      std::size_t live_intervals = 0;
      std::size_t best = live.size();  // index of wildcard candidate
      std::size_t best_count = 0;
      for (std::size_t i = 0; i < live.size(); ++i) {
        const std::size_t c = live[i].second->intervals().size();
        live_intervals += c;
        if (c > best_count) {
          best_count = c;
          best = i;
        }
      }
      const std::size_t drop_intervals = drop_set.intervals().size();
      const std::size_t cost_a =
          live_intervals + (opts.emit_drop_entries ? drop_intervals : 0);
      const std::size_t cost_b =
          live.empty() || !opts.wildcard_fallback
              ? SIZE_MAX
              : 1 + (live_intervals - best_count) + drop_intervals;
      const std::size_t cost_c =
          opts.emit_drop_entries && opts.wildcard_fallback &&
                  !drop_set.is_empty()
              ? 1 + live_intervals
              : SIZE_MAX;

      if (cost_c <= cost_a && cost_c <= cost_b) {
        for (const auto& [raw, set] : live)
          emit_set(*set, state_of_raw.at(raw));
        entries.push_back(
            {u_state, ValueMatch::any(), state_of_raw.at(drop_term.raw())});
      } else if (cost_b <= cost_a) {
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (i == best) continue;
          emit_set(*live[i].second, state_of_raw.at(live[i].first));
        }
        if (!drop_set.is_empty())
          emit_set(drop_set, state_of_raw.at(drop_term.raw()));
        entries.push_back({u_state, ValueMatch::any(),
                           state_of_raw.at(live[best].first)});
      } else {
        for (const auto& [raw, set] : live)
          emit_set(*set, state_of_raw.at(raw));
        if (opts.emit_drop_entries && !drop_set.is_empty())
          emit_set(drop_set, state_of_raw.at(drop_term.raw()));
      }
    }

    // Match kind: honour the @query_field_exact hint; otherwise use exact
    // (SRAM) when every entry is a point (resource optimization #2).
    table::MatchKind kind = table::MatchKind::kRange;
    if (!has_range_entry &&
        (info.hint == spec::MatchHint::kExact ||
         (opts.exact_match_optimization && all_points))) {
      kind = table::MatchKind::kExact;
    }
    table::Table t(info.name, subj, kind, info.width_bits);
    t.set_symbol(info.symbol);
    for (const Entry& e : entries) t.add_entry(e);
    result.stats.stage_entries.push_back({info.name, entries.size()});
    pipe.tables.push_back(std::move(t));
  }

  // --- leaf table ---------------------------------------------------------
  for (NodeRef t : a.terminals) {
    const auto& actions = mgr.terminal_actions(t);
    if (actions.is_drop() && !opts.emit_drop_entries) continue;
    LeafEntry e;
    e.state = state_of_raw.at(t.raw());
    e.actions = actions;
    if (actions.ports.size() > 1)
      e.mcast_group = pipe.mcast.intern(actions.ports);
    pipe.leaf.add_entry(std::move(e));
  }

  result.stats.leaf_entries = pipe.leaf.entries().size();

  pipe.finalize();
  // Range entries for one state come from disjoint BDD branches; an
  // overlap indicates a compiler bug. Surface it through the error path
  // callers already handle rather than aborting the caller.
  if (auto valid = pipe.validate(); !valid.ok()) {
    util::Error e = valid.error();
    e.code = "E131";
    e.message = "Algorithm 1: generated pipeline failed validation: " +
                e.message;
    return e;
  }
  return result;
}

void materialize_stages(table::Pipeline& pipe, const BddManager& mgr,
                        const spec::Schema& schema) {
  // pipe.tables is already in rank order (bdd_to_tables emits components
  // in BDD order), so one forward merge pass places every missing stage.
  std::size_t pos = 0;
  for (const Subject s : mgr.order().subjects()) {
    const SubjectInfo info = subject_info(s, schema);
    if (pos < pipe.tables.size() && pipe.tables[pos].name() == info.name) {
      ++pos;
      continue;
    }
    table::Table t(info.name, s,
                   info.hint == spec::MatchHint::kExact
                       ? table::MatchKind::kExact
                       : table::MatchKind::kRange,
                   info.width_bits);
    t.set_symbol(info.symbol);
    pipe.tables.insert(pipe.tables.begin() + static_cast<std::ptrdiff_t>(pos),
                       std::move(t));
    ++pos;
  }
  // Index the inserted stages eagerly: lazy finalization mutates shared
  // state under a const API, a data race for concurrent evaluators.
  pipe.finalize();
}

}  // namespace camus::compiler
