#include "compiler/incremental.hpp"

#include <algorithm>

#include <sstream>

#include "compiler/compress.hpp"
#include "compiler/field_order.hpp"
#include "lang/parser.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace camus::compiler {

using util::Error;
using util::Result;

IncrementalCompiler::IncrementalCompiler(spec::Schema schema,
                                         CompileOptions opts)
    : schema_(std::move(schema)), opts_(opts) {
  // The variable order must be fixed for the manager's lifetime: nodes
  // hash-consed under one order cannot be reused under another. Orders
  // that depend on the rule set (selectivity) therefore use the declared
  // order here.
  auto heuristic = opts_.order;
  if (heuristic == bdd::OrderHeuristic::kSelectivityAsc ||
      heuristic == bdd::OrderHeuristic::kSelectivityDesc)
    heuristic = bdd::OrderHeuristic::kDeclared;
  manager_ = std::make_shared<bdd::BddManager>(
      choose_order(schema_, {}, heuristic), bdd::DomainMap(schema_));
}

IncrementalCompiler::SubscriptionId IncrementalCompiler::add(
    lang::BoundRule rule) {
  const SubscriptionId id = next_id_++;
  rules_.emplace(id, std::move(rule));
  return id;
}

Result<IncrementalCompiler::SubscriptionId> IncrementalCompiler::add_source(
    std::string_view rule_text) {
  auto parsed = lang::parse_rule(rule_text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rule(parsed.value(), schema_);
  if (!bound.ok()) return bound.error();
  return add(std::move(bound).take());
}

bool IncrementalCompiler::remove(SubscriptionId id) {
  rule_roots_.erase(id);
  return rules_.erase(id) > 0;
}

std::set<IncrementalCompiler::FieldKey> IncrementalCompiler::field_keys(
    const table::Pipeline& pipe) {
  std::set<FieldKey> keys;
  auto collect = [&](const table::Table& t) {
    for (const auto& e : t.entries()) {
      keys.emplace(t.name(), e.state,
                   static_cast<std::uint8_t>(e.match.kind), e.match.lo,
                   e.match.hi, e.next_state);
    }
  };
  for (const auto& t : pipe.value_maps) collect(t);
  for (const auto& t : pipe.tables) collect(t);
  return keys;
}

IncrementalCompiler::LeafMap IncrementalCompiler::leaf_map(
    const table::Pipeline& pipe) {
  LeafMap m;
  // Multicast group ids are renumbered per compilation; diffing on the
  // action set keeps renumbering from showing up as churn.
  for (const auto& e : pipe.leaf.entries()) m.emplace(e.state, e.actions);
  return m;
}

namespace {
std::size_t count_kind(const std::vector<table::EntryOp>& ops,
                       table::EntryOp::Kind k) {
  return static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(),
                    [k](const table::EntryOp& op) { return op.kind == k; }));
}
}  // namespace

std::size_t IncrementalCompiler::Delta::adds() const {
  return count_kind(ops, EntryOp::Kind::kAdd);
}

std::size_t IncrementalCompiler::Delta::removes() const {
  return count_kind(ops, EntryOp::Kind::kRemove);
}

std::size_t IncrementalCompiler::Delta::modifies() const {
  return count_kind(ops, EntryOp::Kind::kModify);
}

double IncrementalCompiler::Delta::reuse_fraction() const {
  return total_entries == 0
             ? 1.0
             : static_cast<double>(reused_entries) /
                   static_cast<double>(total_entries);
}

std::string IncrementalCompiler::Delta::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"ops\": " << ops.size() << ",\n"
     << "  \"adds\": " << adds() << ",\n"
     << "  \"removes\": " << removes() << ",\n"
     << "  \"modifies\": " << modifies() << ",\n"
     << "  \"reused_entries\": " << reused_entries << ",\n"
     << "  \"total_entries\": " << total_entries << ",\n"
     << "  \"reuse_fraction\": " << util::json::format_double(reuse_fraction())
     << ",\n"
     << "  \"requires_reprogram\": " << (requires_reprogram ? "true" : "false")
     << ",\n"
     << "  \"compile_seconds\": "
     << util::json::format_double(compile_seconds) << ",\n"
     << "  \"stats\": " << stats.to_json() << "\n"
     << "}";
  return os.str();
}

Result<IncrementalCompiler::Delta> IncrementalCompiler::commit() {
  util::Timer timer;
  Delta delta;
  delta.stats.rule_count = rules_.size();

  // Build (or reuse) the per-subscription rule BDDs.
  util::Timer phase;
  double t_flatten = 0;
  std::vector<bdd::NodeRef> roots;
  roots.reserve(rules_.size());
  for (const auto& [id, rule] : rules_) {
    auto it = rule_roots_.find(id);
    if (it == rule_roots_.end()) {
      phase.reset();
      auto flat = lang::flatten_rule(rule, schema_, opts_.max_dnf_terms);
      t_flatten += phase.seconds();
      if (!flat.ok()) {
        Error e = flat.error();
        e.message = "subscription " + std::to_string(id) + ": " + e.message;
        return e;
      }
      delta.stats.dnf_terms += flat.value().terms.size();
      it = rule_roots_.emplace(id, manager_->build_rule(flat.value())).first;
    }
    roots.push_back(it->second);
  }
  delta.stats.t_flatten = t_flatten;
  delta.stats.t_build = timer.seconds() - t_flatten;

  // Union (persistent memo caches make repeats cheap) and regenerate
  // tables with stable state ids.
  phase.reset();
  bdd::NodeRef root = manager_->unite_all(std::move(roots),
                                          opts_.semantic_prune);
  delta.stats.t_union = phase.seconds();
  delta.stats.bdd_before_prune = manager_->stats(root);
  phase.reset();
  if (opts_.semantic_prune) root = manager_->prune(root);
  delta.stats.t_prune = phase.seconds();
  delta.stats.bdd_after_prune = manager_->stats(root);
  last_root_ = root;

  // Pin the (non-terminal) root to the initial state id. The root node
  // changes on almost every commit, but its role — "pipeline entry" — does
  // not; without pinning, every first-table entry would be renumbered and
  // show up as churn.
  if (!root.is_terminal()) {
    if (pinned_root_raw_ && *pinned_root_raw_ != root.raw())
      states_.ids.erase(*pinned_root_raw_);
    states_.ids.insert_or_assign(root.raw(), table::kInitialState);
    if (states_.next == table::kInitialState) ++states_.next;
    pinned_root_raw_ = root.raw();
  }

  phase.reset();
  TableGenResult gen;
  try {
    gen = bdd_to_tables(*manager_, root, schema_, opts_, &states_);
  } catch (const std::runtime_error& e) {
    return Error{e.what()};
  }
  if (opts_.domain_compression)
    compress_domains(gen.pipeline, opts_);
  materialize_stages(gen.pipeline, *manager_, schema_);
  delta.stats.t_tables = phase.seconds();
  delta.stats.tablegen = gen.stats;
  delta.stats.cache = manager_->cache_stats();
  delta.stats.total_entries = gen.pipeline.total_entries();
  delta.stats.multicast_groups = gen.pipeline.mcast.size();

  // Diff against the installed pipeline.
  const std::set<FieldKey> new_field = field_keys(gen.pipeline);
  const LeafMap new_leaf = leaf_map(gen.pipeline);
  const std::set<FieldKey> old_field =
      installed_ ? field_keys(*installed_) : std::set<FieldKey>{};
  const LeafMap old_leaf = installed_ ? leaf_map(*installed_) : LeafMap{};

  auto field_op = [](EntryOp::Kind kind, const FieldKey& k) {
    EntryOp op;
    op.kind = kind;
    op.table = std::get<0>(k);
    op.state = std::get<1>(k);
    op.match.kind =
        static_cast<table::ValueMatch::Kind>(std::get<2>(k));
    op.match.lo = std::get<3>(k);
    op.match.hi = std::get<4>(k);
    op.next_state = std::get<5>(k);
    return op;
  };
  for (const auto& k : new_field) {
    if (!old_field.count(k))
      delta.ops.push_back(field_op(EntryOp::Kind::kAdd, k));
    else
      ++delta.reused_entries;
  }
  for (const auto& k : old_field) {
    if (!new_field.count(k))
      delta.ops.push_back(field_op(EntryOp::Kind::kRemove, k));
  }
  auto leaf_op = [](EntryOp::Kind kind, table::StateId state,
                    const lang::ActionSet& actions) {
    EntryOp op;
    op.kind = kind;
    op.table = std::string(table::kLeafTableName);
    op.state = state;
    op.actions = actions;
    return op;
  };
  // Leaf diff by state: a surviving state whose ActionSet changed is one
  // kModify op (one control-plane write), not a remove+add pair.
  for (const auto& [state, actions] : new_leaf) {
    auto old_it = old_leaf.find(state);
    if (old_it == old_leaf.end())
      delta.ops.push_back(leaf_op(EntryOp::Kind::kAdd, state, actions));
    else if (!(old_it->second == actions))
      delta.ops.push_back(leaf_op(EntryOp::Kind::kModify, state, actions));
    else
      ++delta.reused_entries;
  }
  for (const auto& [state, actions] : old_leaf) {
    if (!new_leaf.count(state))
      delta.ops.push_back(leaf_op(EntryOp::Kind::kRemove, state, actions));
  }

  delta.total_entries = new_field.size() + new_leaf.size();

  // Structural applicability of the delta against the diff base: every op
  // must target a stage the base (= what the switch runs) already has, and
  // the mapping-stage list must be unchanged — an empty value map is not
  // neutral (it would re-code its field to 0), so a map appearing or
  // retiring forces a full reprogram.
  if (installed_) {
    for (const auto& op : delta.ops) {
      if (!op.is_leaf() && !installed_->find_table(op.table)) {
        delta.requires_reprogram = true;
        break;
      }
    }
    if (!delta.requires_reprogram) {
      auto map_names = [](const table::Pipeline& p) {
        std::vector<std::string> names;
        names.reserve(p.value_maps.size());
        for (const auto& m : p.value_maps) names.push_back(m.name());
        return names;
      };
      if (map_names(*installed_) != map_names(gen.pipeline))
        delta.requires_reprogram = true;
    }
  }

  installed_ = std::move(gen.pipeline);
  delta.compile_seconds = timer.seconds();
  delta.stats.t_total = delta.compile_seconds;
  return delta;
}

const table::Pipeline& IncrementalCompiler::pipeline() const {
  if (!installed_)
    throw std::logic_error("IncrementalCompiler::pipeline before commit()");
  return *installed_;
}

void IncrementalCompiler::restore_installed(table::Pipeline last_good) {
  installed_ = std::move(last_good);
}

}  // namespace camus::compiler
