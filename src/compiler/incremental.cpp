#include "compiler/incremental.hpp"

#include <algorithm>

#include <sstream>

#include "compiler/compress.hpp"
#include "compiler/field_order.hpp"
#include "lang/parser.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace camus::compiler {

using util::Error;
using util::Result;

IncrementalCompiler::IncrementalCompiler(spec::Schema schema,
                                         CompileOptions opts)
    : schema_(std::move(schema)), opts_(opts) {
  // The variable order must be fixed for the manager's lifetime: nodes
  // hash-consed under one order cannot be reused under another. Orders
  // that depend on the rule set (selectivity) therefore use the declared
  // order here.
  auto heuristic = opts_.order;
  if (heuristic == bdd::OrderHeuristic::kSelectivityAsc ||
      heuristic == bdd::OrderHeuristic::kSelectivityDesc)
    heuristic = bdd::OrderHeuristic::kDeclared;
  manager_ = std::make_shared<bdd::BddManager>(
      choose_order(schema_, {}, heuristic), bdd::DomainMap(schema_));
}

IncrementalCompiler::SubscriptionId IncrementalCompiler::add(
    lang::BoundRule rule) {
  const SubscriptionId id = next_id_++;
  rules_.emplace(id, std::move(rule));
  return id;
}

Result<IncrementalCompiler::SubscriptionId> IncrementalCompiler::add_source(
    std::string_view rule_text) {
  auto parsed = lang::parse_rule(rule_text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rule(parsed.value(), schema_);
  if (!bound.ok()) return bound.error();
  return add(std::move(bound).take());
}

bool IncrementalCompiler::remove(SubscriptionId id) {
  rule_roots_.erase(id);
  return rules_.erase(id) > 0;
}

namespace {
std::size_t count_kind(const std::vector<table::EntryOp>& ops,
                       table::EntryOp::Kind k) {
  return static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(),
                    [k](const table::EntryOp& op) { return op.kind == k; }));
}
}  // namespace

std::size_t IncrementalCompiler::Delta::adds() const {
  return count_kind(ops, EntryOp::Kind::kAdd);
}

std::size_t IncrementalCompiler::Delta::removes() const {
  return count_kind(ops, EntryOp::Kind::kRemove);
}

std::size_t IncrementalCompiler::Delta::modifies() const {
  return count_kind(ops, EntryOp::Kind::kModify);
}

double IncrementalCompiler::Delta::reuse_fraction() const {
  return total_entries == 0
             ? 1.0
             : static_cast<double>(reused_entries) /
                   static_cast<double>(total_entries);
}

std::string IncrementalCompiler::Delta::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"ops\": " << ops.size() << ",\n"
     << "  \"adds\": " << adds() << ",\n"
     << "  \"removes\": " << removes() << ",\n"
     << "  \"modifies\": " << modifies() << ",\n"
     << "  \"reused_entries\": " << reused_entries << ",\n"
     << "  \"total_entries\": " << total_entries << ",\n"
     << "  \"reuse_fraction\": " << util::json::format_double(reuse_fraction())
     << ",\n"
     << "  \"requires_reprogram\": " << (requires_reprogram ? "true" : "false")
     << ",\n"
     << "  \"compile_seconds\": "
     << util::json::format_double(compile_seconds) << ",\n"
     << "  \"stats\": " << stats.to_json() << "\n"
     << "}";
  return os.str();
}

Result<IncrementalCompiler::Delta> IncrementalCompiler::commit() {
  util::Timer timer;
  Delta delta;
  delta.stats.rule_count = rules_.size();

  // The persistent-manager path has no partitioned variant: partitioning
  // rebuilds per-shard managers from scratch, which would forfeit the memo
  // caches and stable state ids this class exists to preserve. When the
  // options ask for partitioned output (or the diff base came from a
  // partitioned batch compile), say so instead of silently diverging.
  const bool wants_partition =
      opts_.partition == PartitionMode::kForce ||
      (opts_.partition == PartitionMode::kAuto &&
       rules_.size() >= opts_.partition_min_rules);
  if (wants_partition) {
    delta.stats.partition_fallback =
        "I130: incremental commit compiles monolithically; requested "
        "partitioned output (mode=" +
        std::string(opts_.partition == PartitionMode::kForce ? "force"
                                                             : "auto") +
        ", rules=" + std::to_string(rules_.size()) +
        " >= min=" + std::to_string(opts_.partition_min_rules) +
        ") is not produced on this path";
  } else if (partitioned_base_) {
    delta.stats.partition_fallback =
        "I130: diff base was partition-compiled but incremental commit "
        "compiles monolithically; first delta re-images the pipeline "
        "structure";
  }

  // Build (or reuse) the per-subscription rule BDDs.
  util::Timer phase;
  double t_flatten = 0;
  std::vector<bdd::NodeRef> roots;
  roots.reserve(rules_.size());
  for (const auto& [id, rule] : rules_) {
    auto it = rule_roots_.find(id);
    if (it == rule_roots_.end()) {
      phase.reset();
      auto flat = lang::flatten_rule(rule, schema_, opts_.max_dnf_terms);
      t_flatten += phase.seconds();
      if (!flat.ok()) {
        Error e = flat.error();
        e.message = "subscription " + std::to_string(id) + ": " + e.message;
        return e;
      }
      delta.stats.dnf_terms += flat.value().terms.size();
      it = rule_roots_.emplace(id, manager_->build_rule(flat.value())).first;
    }
    roots.push_back(it->second);
  }
  delta.stats.t_flatten = t_flatten;
  delta.stats.t_build = timer.seconds() - t_flatten;

  // Union (persistent memo caches make repeats cheap) and regenerate
  // tables with stable state ids.
  phase.reset();
  bdd::NodeRef root = manager_->unite_all(std::move(roots),
                                          opts_.semantic_prune);
  delta.stats.t_union = phase.seconds();
  delta.stats.bdd_before_prune = manager_->stats(root);
  phase.reset();
  if (opts_.semantic_prune) root = manager_->prune(root);
  delta.stats.t_prune = phase.seconds();
  delta.stats.bdd_after_prune = manager_->stats(root);
  last_root_ = root;

  // Pin the (non-terminal) root to the initial state id. The root node
  // changes on almost every commit, but its role — "pipeline entry" — does
  // not; without pinning, every first-table entry would be renumbered and
  // show up as churn.
  if (!root.is_terminal()) {
    if (pinned_root_raw_ && *pinned_root_raw_ != root.raw())
      states_.ids.erase(*pinned_root_raw_);
    states_.ids.insert_or_assign(root.raw(), table::kInitialState);
    if (states_.next == table::kInitialState) ++states_.next;
    pinned_root_raw_ = root.raw();
  }

  phase.reset();
  auto gen_result = bdd_to_tables(*manager_, root, schema_, opts_, &states_);
  if (!gen_result.ok()) return gen_result.error();
  TableGenResult gen = std::move(gen_result).take();
  if (opts_.domain_compression)
    compress_domains(gen.pipeline, opts_);
  materialize_stages(gen.pipeline, *manager_, schema_);
  delta.stats.t_tables = phase.seconds();
  delta.stats.tablegen = gen.stats;
  delta.stats.cache = manager_->cache_stats();
  delta.stats.total_entries = gen.pipeline.total_entries();
  delta.stats.multicast_groups = gen.pipeline.mcast.size();

  // Diff against the installed pipeline. The diff itself is the shared
  // reconciliation currency in table/delta.hpp — the controller's
  // warm-boot anti-entropy pass computes repair deltas with the same
  // function, so churn deltas and recovery repairs cannot drift apart.
  table::PipelineDiff diff = table::diff_pipelines(
      installed_ ? &*installed_ : nullptr, gen.pipeline);
  delta.ops = std::move(diff.ops);
  delta.reused_entries = diff.reused_entries;
  delta.total_entries = diff.total_entries;
  delta.requires_reprogram = diff.requires_reprogram;

  installed_ = std::move(gen.pipeline);
  // The base is now this commit's own (monolithic) output.
  partitioned_base_ = false;
  delta.compile_seconds = timer.seconds();
  delta.stats.t_total = delta.compile_seconds;
  return delta;
}

Result<const table::Pipeline*> IncrementalCompiler::pipeline() const {
  if (!installed_)
    return Error{"IncrementalCompiler::pipeline() before a successful "
                 "commit()",
                 0, 0, "E122"};
  return &*installed_;
}

void IncrementalCompiler::restore_installed(table::Pipeline last_good) {
  installed_ = std::move(last_good);
}

}  // namespace camus::compiler
