#include "compiler/fabric.hpp"

#include <algorithm>
#include <map>

#include "compiler/field_order.hpp"
#include "compiler/partition.hpp"
#include "lang/dnf.hpp"
#include "table/delta.hpp"

namespace camus::compiler {

namespace {

// State-subject constraints are as out of scope as state updates: the
// register a leaf reads is not the register the monolithic switch would
// have read.
bool touches_state(const lang::FlatRule& flat) {
  if (!flat.actions.state_updates.empty()) return true;
  for (const auto& term : flat.terms)
    for (const auto& [subject, _] : term.constraints)
      if (subject.kind == lang::Subject::Kind::kState) return true;
  return false;
}

lang::BoundCondPtr interval_cond(lang::Subject subject,
                                 const util::IntervalSet& values,
                                 std::uint64_t umax) {
  using lang::BoundCond;
  using lang::BoundPredicate;
  using lang::RelOp;
  if (values.is_empty()) return BoundCond::make_const(false);
  if (values.is_all(umax)) return BoundCond::make_const(true);
  lang::BoundCondPtr acc;
  for (const auto& iv : values.intervals()) {
    lang::BoundCondPtr piece;
    if (iv.lo == iv.hi) {
      piece = BoundCond::make_atom(BoundPredicate{subject, RelOp::kEq, iv.lo});
    } else {
      // [lo, hi] == !(x < lo) && x < hi+1, skipping bounds the domain
      // already implies.
      lang::BoundCondPtr lo_part, hi_part;
      if (iv.lo > 0)
        lo_part = BoundCond::make_not(
            BoundCond::make_atom(BoundPredicate{subject, RelOp::kLt, iv.lo}));
      if (iv.hi < umax)
        hi_part = BoundCond::make_atom(
            BoundPredicate{subject, RelOp::kLt, iv.hi + 1});
      if (lo_part && hi_part)
        piece = BoundCond::make_and(lo_part, hi_part);
      else
        piece = lo_part ? lo_part : hi_part;
    }
    acc = acc ? BoundCond::make_or(acc, piece) : piece;
  }
  return acc;
}

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

util::Result<bool> fabric_rule_ok(const lang::BoundRule& rule,
                                  const spec::Schema& schema) {
  auto flat = lang::flatten_rule(rule, schema);
  if (!flat.ok()) return flat.error();
  if (touches_state(flat.value()))
    return util::Error{
        "fabric placement is stateless-only: rule reads or updates register "
        "state, which cannot be replicated across switches without changing "
        "update multiplicity",
        0, 0, "F150"};
  return true;
}

util::Result<FabricPlacement> partition_for_fabric(
    const spec::Schema& schema, const std::vector<lang::BoundRule>& rules,
    const FabricSpec& spec, const CompileOptions& opts) {
  if (spec.leaves == 0 || spec.spines == 0)
    return util::Error{"fabric spec needs at least one leaf and one spine",
                       0, 0, "F151"};

  auto flat_r = lang::flatten_rules(rules, schema, opts.max_dnf_terms);
  if (!flat_r.ok()) return flat_r.error();
  const auto& flat = flat_r.value();
  for (const auto& fr : flat)
    if (touches_state(fr))
      return util::Error{
          "fabric placement is stateless-only: rule reads or updates "
          "register state (reject at subscribe time with fabric_rule_ok)",
          0, 0, "F150"};

  const bdd::VarOrder order = choose_order(schema, flat, opts.order);
  const bdd::DomainMap domains(schema);

  FabricPlacement placement;
  placement.spec = spec;
  placement.total_rules = rules.size();
  placement.leaf_rules.resize(spec.leaves);
  placement.leaf_values.resize(spec.leaves);
  placement.leaf_needs_all.assign(spec.leaves, false);

  // Steering attribute: the field subject pinned (point-constrained across
  // every DNF term) by the most rules — the same dominance criterion
  // plan_partition uses to shard one pipeline, applied across switches.
  // Ties break by variable-order rank so the choice is deterministic.
  std::map<lang::Subject, std::size_t> pinned_count;
  for (const auto& fr : flat)
    for (const auto& subject : order.subjects()) {
      if (subject.kind != lang::Subject::Kind::kField) continue;
      if (point_constrained_value(fr, subject)) ++pinned_count[subject];
    }
  std::optional<lang::Subject> steer;
  std::size_t best = 0;
  for (const auto& [subject, count] : pinned_count) {
    if (count > best ||
        (count == best && steer && order.rank(subject) < order.rank(*steer))) {
      steer = subject;
      best = count;
    }
  }
  if (steer && best == 0) steer.reset();
  placement.steer_subject = steer;
  if (steer) placement.steer_subject_name = schema.field(steer->id).path();

  // Per-leaf restriction + steering bookkeeping. The leaf rule keeps the
  // monolithic condition verbatim (restriction touches only the ActionSet,
  // so leaf correctness is immediate); steering looks at the flat form.
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const auto& rule = rules[i];
    const auto& fr = flat[i];
    std::optional<std::uint64_t> pin;
    if (steer) pin = point_constrained_value(fr, *steer);
    if (pin && steer) placement.pinned_rules++;

    std::vector<lang::ActionSet> leaf_actions(spec.leaves);
    for (std::uint16_t port : rule.actions.ports)
      leaf_actions[spec.leaf_of(port)].add_port(port);

    for (std::size_t leaf = 0; leaf < spec.leaves; ++leaf) {
      if (leaf_actions[leaf].is_drop()) continue;
      placement.leaf_rules[leaf].push_back(
          lang::BoundRule{rule.cond, std::move(leaf_actions[leaf])});
      if (pin)
        placement.leaf_values[leaf] =
            placement.leaf_values[leaf].unite(util::IntervalSet::point(*pin));
      else
        placement.leaf_needs_all[leaf] = true;
    }
  }

  // Spine steering rules, one per leaf: "packets a leaf might forward must
  // reach it". Empty leaves get constant-false (compiles to nothing);
  // needs_all leaves get the catch-all.
  const std::uint64_t steer_umax =
      steer ? domains.umax(*steer) : util::IntervalSet::kMax;
  placement.spine_rules.reserve(spec.leaves);
  for (std::size_t leaf = 0; leaf < spec.leaves; ++leaf) {
    lang::BoundCondPtr cond;
    if (placement.leaf_rules[leaf].empty()) {
      cond = lang::BoundCond::make_const(false);
    } else if (!steer || placement.leaf_needs_all[leaf]) {
      cond = lang::BoundCond::make_const(true);
    } else {
      cond = interval_cond(*steer, placement.leaf_values[leaf], steer_umax);
    }
    lang::ActionSet act;
    act.add_port(spec.downlink(leaf));
    placement.spine_rules.push_back(lang::BoundRule{std::move(cond), act});
  }
  return placement;
}

util::Result<FabricProgram> compile_fabric(const spec::Schema& schema,
                                           const FabricPlacement& placement,
                                           const CompileOptions& opts) {
  FabricProgram program;
  program.spec = placement.spec;

  // The spine program is a handful of interval rules; partitioning it
  // would only add a dispatch stage.
  CompileOptions spine_opts = opts;
  spine_opts.partition = PartitionMode::kOff;
  spine_opts.threads = 1;
  auto spine = compile_rules(schema, placement.spine_rules, spine_opts);
  if (!spine.ok()) return spine.error();
  program.spine = std::move(spine.value().pipeline);
  program.spine_stats = std::move(spine.value().stats);
  program.spine_digest = table::pipeline_digest(program.spine);

  program.leaves.reserve(placement.spec.leaves);
  for (std::size_t leaf = 0; leaf < placement.spec.leaves; ++leaf) {
    auto compiled = compile_rules(schema, placement.leaf_rules[leaf], opts);
    if (!compiled.ok()) return compiled.error();
    program.leaves.push_back(std::move(compiled.value().pipeline));
    program.leaf_stats.push_back(std::move(compiled.value().stats));
    program.leaf_digests.push_back(
        table::pipeline_digest(program.leaves.back()));
  }

  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a_mix(h, placement.spec.spines);
  h = fnv1a_mix(h, placement.spec.leaves);
  h = fnv1a_mix(h, program.spine_digest);
  for (std::uint64_t d : program.leaf_digests) h = fnv1a_mix(h, d);
  program.fabric_digest = h;
  return program;
}

}  // namespace camus::compiler
