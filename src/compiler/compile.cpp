#include "compiler/compile.hpp"

#include <sstream>

#include "compiler/compress.hpp"
#include "compiler/field_order.hpp"
#include "lang/dnf.hpp"
#include "lang/parser.hpp"
#include "util/timer.hpp"

namespace camus::compiler {

using util::Result;
using util::Timer;

std::string CompileStats::to_string() const {
  std::ostringstream os;
  os << "rules=" << rule_count << " dnf_terms=" << dnf_terms
     << " bdd_nodes=" << bdd_before_prune.node_count << "->"
     << bdd_after_prune.node_count
     << " entries=" << total_entries
     << " mcast_groups=" << multicast_groups
     << " time=" << t_total << "s"
     << " (flatten=" << t_flatten << " build=" << t_build
     << " union=" << t_union << " prune=" << t_prune
     << " tables=" << t_tables << ")";
  return os.str();
}

Result<Compiled> compile_rules(const spec::Schema& schema,
                               const std::vector<lang::BoundRule>& rules,
                               const CompileOptions& opts) {
  Timer total;
  Compiled out;
  out.stats.rule_count = rules.size();

  // 1. Normalize every rule into disjunctive form.
  Timer t;
  auto flat = lang::flatten_rules(rules, schema, opts.max_dnf_terms);
  if (!flat.ok()) return flat.error();
  for (const auto& r : flat.value()) out.stats.dnf_terms += r.terms.size();
  out.stats.t_flatten = t.seconds();

  // 2. Build one BDD per rule under the chosen variable order.
  t.reset();
  bdd::VarOrder order = choose_order(schema, flat.value(), opts.order);
  out.manager = std::make_shared<bdd::BddManager>(std::move(order),
                                                  bdd::DomainMap(schema));
  bdd::BddManager& mgr = *out.manager;
  std::vector<bdd::NodeRef> roots;
  roots.reserve(flat.value().size());
  for (const auto& r : flat.value()) roots.push_back(mgr.build_rule(r));
  out.stats.t_build = t.seconds();

  // 3. Union all rules (balanced tree; overlapping rules merge their
  //    ActionSets at the terminals).
  t.reset();
  out.root = mgr.unite_all(std::move(roots), opts.semantic_prune);
  out.stats.t_union = t.seconds();
  out.stats.bdd_before_prune = mgr.stats(out.root);

  // 4. Reduction (iii): remove predicates implied by ancestors.
  t.reset();
  if (opts.semantic_prune) out.root = mgr.prune(out.root);
  out.stats.t_prune = t.seconds();
  out.stats.bdd_after_prune = mgr.stats(out.root);

  // 5. Algorithm 1: slice into per-field tables.
  t.reset();
  try {
    TableGenResult gen = bdd_to_tables(mgr, out.root, schema, opts);
    out.pipeline = std::move(gen.pipeline);
    out.stats.tablegen = gen.stats;
  } catch (const std::runtime_error& e) {
    return util::Error{e.what()};
  }

  // 6. Optional resource optimization: domain compression.
  if (opts.domain_compression) compress_domains(out.pipeline, opts);
  out.stats.t_tables = t.seconds();

  out.stats.total_entries = out.pipeline.total_entries();
  out.stats.multicast_groups = out.pipeline.mcast.size();
  out.stats.t_total = total.seconds();
  return out;
}

Result<Compiled> compile_source(const spec::Schema& schema,
                                std::string_view rules_text,
                                const CompileOptions& opts) {
  auto parsed = lang::parse_rules(rules_text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rules(parsed.value(), schema);
  if (!bound.ok()) return bound.error();
  return compile_rules(schema, bound.value(), opts);
}

}  // namespace camus::compiler
