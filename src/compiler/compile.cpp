#include "compiler/compile.hpp"

#include <sstream>

#include "compiler/compress.hpp"
#include "compiler/field_order.hpp"
#include "compiler/parallel.hpp"
#include "compiler/partition.hpp"
#include "lang/dnf.hpp"
#include "lang/parser.hpp"
#include "util/json.hpp"
#include "util/mem.hpp"
#include "util/timer.hpp"

namespace camus::compiler {

using util::Result;
using util::Timer;

std::string CompileStats::to_string() const {
  std::ostringstream os;
  os << "rules=" << rule_count << " dnf_terms=" << dnf_terms
     << " bdd_nodes=" << bdd_before_prune.node_count << "->"
     << bdd_after_prune.node_count
     << " entries=" << total_entries
     << " mcast_groups=" << multicast_groups
     << " time=" << t_total << "s"
     << " (flatten=" << t_flatten << " build=" << t_build
     << " union=" << t_union << " prune=" << t_prune
     << " tables=" << t_tables << ")";
  if (partition_groups > 0) {
    os << " partition=" << partition_subject << "/" << partition_groups
       << " stitch=" << t_stitch << "s";
  }
  if (!partition_fallback.empty())
    os << " partition_fallback=\"" << partition_fallback << "\"";
  if (interned) {
    os << " intern=" << intern.entries_before << "->" << intern.entries_after
       << " (states " << intern.states_before << "->" << intern.states_after
       << ", " << intern.iterations << " rounds)";
  }
  if (threads_used > 1) {
    os << " threads=" << threads_used << " shards=[";
    for (std::size_t i = 0; i < shards.size(); ++i)
      os << (i ? "," : "") << shards[i].rules;
    os << "]";
  }
  if (mem.peak_rss > 0)
    os << " peak_rss_mb=" << (mem.peak_rss >> 20)
       << " bdd_mb=" << (mem.bdd_bytes >> 20);
  const std::uint64_t probes = cache.unite_probes + cache.unite_res_probes;
  if (probes > 0) os << " memo_hit_rate=" << cache.memo_hit_rate();
  return os.str();
}

std::string CompileStats::to_json() const {
  using util::json::format_double;
  std::ostringstream os;
  os << "{";
  os << "\"rules\":" << rule_count << ",\"dnf_terms\":" << dnf_terms;
  os << ",\"threads\":" << threads_used;
  os << ",\"phases\":{"
     << "\"flatten\":" << format_double(t_flatten)
     << ",\"build\":" << format_double(t_build)
     << ",\"union\":" << format_double(t_union)
     << ",\"prune\":" << format_double(t_prune)
     << ",\"stitch\":" << format_double(t_stitch)
     << ",\"tables\":" << format_double(t_tables)
     << ",\"total\":" << format_double(t_total) << "}";
  os << ",\"partition\":{"
     << "\"groups\":" << partition_groups
     << ",\"subject\":\"" << util::json::escape(partition_subject)
     << "\",\"fallback\":\"" << util::json::escape(partition_fallback)
     << "\"}";
  os << ",\"intern\":{"
     << "\"applied\":" << (interned ? "true" : "false")
     << ",\"states_before\":" << intern.states_before
     << ",\"states_after\":" << intern.states_after
     << ",\"entries_before\":" << intern.entries_before
     << ",\"entries_after\":" << intern.entries_after
     << ",\"iterations\":" << intern.iterations << "}";
  os << ",\"mem\":{"
     << "\"rss_before\":" << mem.rss_before
     << ",\"rss_after_build\":" << mem.rss_after_build
     << ",\"rss_after_tables\":" << mem.rss_after_tables
     << ",\"peak_rss\":" << mem.peak_rss
     << ",\"bdd_bytes\":" << mem.bdd_bytes << "}";
  os << ",\"bdd\":{"
     << "\"nodes_before_prune\":" << bdd_before_prune.node_count
     << ",\"nodes_after_prune\":" << bdd_after_prune.node_count
     << ",\"terminals\":" << bdd_after_prune.terminal_count
     << ",\"vars\":" << bdd_after_prune.var_count << "}";
  os << ",\"cache\":{"
     << "\"unique_nodes\":" << cache.unique_nodes
     << ",\"terminals\":" << cache.terminals
     << ",\"vars\":" << cache.vars
     << ",\"unite_probes\":" << cache.unite_probes
     << ",\"unite_hits\":" << cache.unite_hits
     << ",\"unite_res_probes\":" << cache.unite_res_probes
     << ",\"unite_res_hits\":" << cache.unite_res_hits
     << ",\"split_probes\":" << cache.split_probes
     << ",\"split_hits\":" << cache.split_hits
     << ",\"memo_hit_rate\":" << format_double(cache.memo_hit_rate()) << "}";
  os << ",\"tablegen\":{"
     << "\"components\":" << tablegen.components
     << ",\"in_nodes\":" << tablegen.in_nodes
     << ",\"paths_enumerated\":" << tablegen.paths_enumerated << "}";
  os << ",\"stages\":[";
  for (std::size_t i = 0; i < tablegen.stage_entries.size(); ++i) {
    const auto& s = tablegen.stage_entries[i];
    os << (i ? "," : "") << "{\"table\":\"" << util::json::escape(s.table)
       << "\",\"entries\":" << s.entries << "}";
  }
  if (!tablegen.stage_entries.empty() || tablegen.leaf_entries > 0 ||
      total_entries > 0) {
    os << (tablegen.stage_entries.empty() ? "" : ",")
       << "{\"table\":\"leaf\",\"entries\":" << tablegen.leaf_entries << "}";
  }
  os << "]";
  os << ",\"entries\":" << total_entries
     << ",\"multicast_groups\":" << multicast_groups;
  os << ",\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const auto& s = shards[i];
    os << (i ? "," : "") << "{\"rules\":" << s.rules
       << ",\"bdd_nodes\":" << s.bdd_nodes
       << ",\"manager_bytes\":" << s.manager_bytes
       << ",\"seconds\":" << format_double(s.t_seconds) << "}";
  }
  os << "]}";
  return os.str();
}

Result<Compiled> compile_rules(const spec::Schema& schema,
                               const std::vector<lang::BoundRule>& rules,
                               const CompileOptions& opts) {
  Timer total;
  Compiled out;
  out.stats.rule_count = rules.size();
  out.stats.mem.rss_before = util::current_rss_bytes();

  // 1. Normalize every rule into disjunctive form.
  Timer t;
  auto flat = lang::flatten_rules(rules, schema, opts.max_dnf_terms);
  if (!flat.ok()) return flat.error();
  for (const auto& r : flat.value()) out.stats.dnf_terms += r.terms.size();
  out.stats.t_flatten = t.seconds();

  // 1.5. Partitioned-output path: when a dominant point-constrained
  // attribute exists and the mode/threshold gate passes, compile each
  // value slice to an independent sub-pipeline and stitch behind a
  // dispatch stage (compiler/partition.*). Peak BDD size and memory then
  // scale with the largest shard, not the union.
  if (opts.partition != PartitionMode::kOff) {
    bdd::VarOrder probe_order = choose_order(schema, flat.value(), opts.order);
    PartitionPlan plan = plan_partition(flat.value(), probe_order);
    if (partition_applies(plan, opts, flat.value().size())) {
      auto part = compile_partitioned(schema, flat.value(), plan, opts);
      if (!part.ok()) return part.error();
      part.value().stats.t_flatten = out.stats.t_flatten;
      part.value().stats.mem.rss_before = out.stats.mem.rss_before;
      part.value().stats.t_total = total.seconds();
      return part;
    }
  }

  // 2+3. Build one BDD per rule under the chosen variable order and union
  // them all (overlapping rules merge their ActionSets at the terminals).
  // With opts.threads > 1 this runs as the sharded parallel pipeline:
  // rules partitioned by the top partition field, per-thread BddManagers,
  // shard roots merged into the master manager by pairwise union.
  bdd::VarOrder order = choose_order(schema, flat.value(), opts.order);
  out.manager = std::make_shared<bdd::BddManager>(std::move(order),
                                                  bdd::DomainMap(schema));
  bdd::BddManager& mgr = *out.manager;

  ShardPlan plan;
  if (const std::size_t threads = resolve_threads(opts.threads); threads > 1)
    plan = plan_shards(flat.value(), mgr.order(), threads);

  if (plan.shards.size() > 1) {
    auto built =
        build_sharded(mgr, flat.value(), plan, opts.semantic_prune);
    if (!built.ok()) return built.error();
    out.root = built.value().root;
    out.stats.threads_used = plan.shards.size();
    out.stats.shards = std::move(built.value().shards);
    out.stats.cache = built.value().worker_cache;  // master added below
    out.stats.t_build = built.value().t_build;
    out.stats.t_union = built.value().t_merge;
  } else {
    t.reset();
    std::vector<bdd::NodeRef> roots;
    roots.reserve(flat.value().size());
    for (const auto& r : flat.value()) roots.push_back(mgr.build_rule(r));
    out.stats.t_build = t.seconds();

    t.reset();
    out.root = mgr.unite_all(std::move(roots), opts.semantic_prune);
    out.stats.t_union = t.seconds();
  }
  out.stats.bdd_before_prune = mgr.stats(out.root);
  out.stats.mem.rss_after_build = util::current_rss_bytes();

  // 4. Reduction (iii): remove predicates implied by ancestors.
  t.reset();
  if (opts.semantic_prune) out.root = mgr.prune(out.root);
  out.stats.t_prune = t.seconds();
  out.stats.bdd_after_prune = mgr.stats(out.root);

  // 5. Algorithm 1: slice into per-field tables.
  t.reset();
  auto gen = bdd_to_tables(mgr, out.root, schema, opts);
  if (!gen.ok()) return gen.error();
  out.pipeline = std::move(gen.value().pipeline);
  out.stats.tablegen = gen.value().stats;

  // 6. Optional table-level rewrites: entry interning (state-machine
  // minimization), then domain compression.
  if (opts.intern_entries) {
    out.stats.intern = intern_entries(out.pipeline);
    out.stats.interned = true;
  }
  if (opts.domain_compression) compress_domains(out.pipeline, opts);
  out.stats.t_tables = t.seconds();

  out.stats.cache.accumulate(mgr.cache_stats());
  out.stats.total_entries = out.pipeline.total_entries();
  out.stats.multicast_groups = out.pipeline.mcast.size();
  out.stats.mem.rss_after_tables = util::current_rss_bytes();
  out.stats.mem.peak_rss = util::peak_rss_bytes();
  out.stats.mem.bdd_bytes = mgr.memory_bytes();
  out.stats.t_total = total.seconds();
  return out;
}

Result<Compiled> compile_source(const spec::Schema& schema,
                                std::string_view rules_text,
                                const CompileOptions& opts) {
  auto parsed = lang::parse_rules(rules_text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rules(parsed.value(), schema);
  if (!bound.ok()) return bound.error();
  return compile_rules(schema, bound.value(), opts);
}

}  // namespace camus::compiler
