// Compilation options. Defaults reproduce the paper's configuration; the
// switches exist for the ablation benchmarks (bench/ablation_*).
#pragma once

#include <cstddef>
#include <cstdint>

#include "bdd/order.hpp"

namespace camus::compiler {

// Partitioned-output compilation (compile-at-scale path; see
// compiler/partition.hpp). kOff keeps the single master-BDD pipeline;
// kAuto partitions when a dominant exact-match attribute covers enough of
// the rule set; kForce partitions whenever any partition subject exists
// (tests and the DSE use it to pin the layout).
enum class PartitionMode : std::uint8_t { kOff, kAuto, kForce };

struct CompileOptions {
  // Field ordering heuristic for the BDD variable order.
  bdd::OrderHeuristic order = bdd::OrderHeuristic::kDeclared;

  // Reduction (iii): domain-semantic pruning of implied predicates.
  // Reductions (i) and (ii) are structural invariants of the BDD manager
  // and cannot be disabled.
  bool semantic_prune = true;

  // Emit explicit entries for paths that reach the drop terminal (the
  // "(state, *) -> drop" rows of Figure 4). Off by default: a lookup miss
  // already drops at the leaf, so these entries are redundant — but they
  // make the printed tables match the paper figure exactly.
  bool emit_drop_entries = false;

  // Choose between per-interval range entries and a wildcard fallback
  // entry per state, whichever needs fewer entries (always sound; mirrors
  // the '*' rows in Figure 4).
  bool wildcard_fallback = true;

  // Use exact-match (SRAM) tables when every entry is a point, even if the
  // field was annotated @query_field (paper resource optimization #2).
  bool exact_match_optimization = true;

  // Map range fields with few distinct regions onto a narrow code domain
  // via a mapping stage (paper resource optimization #3).
  bool domain_compression = false;
  std::uint32_t compression_max_regions = 256;
  // Only compress a table when it has at least this many entries;
  // compressing tiny tables adds a stage for no TCAM win.
  std::size_t compression_min_entries = 8;

  // Worker threads for the sharded compilation pipeline. <= 1 compiles on
  // the calling thread (the reference serial path); 0 is reserved for
  // "auto" and is resolved to std::thread::hardware_concurrency() by
  // compile_rules(). With N > 1, bound rules are partitioned by the top
  // partition field (the first subject of the variable order — message
  // type in the paper's §3 pipeline split), each shard's MTBDD is built on
  // a worker with a private BddManager, and the shard roots are merged
  // into the master manager via a pairwise union reduction. The parallel
  // path is semantically identical to the serial one (differential-tested
  // on switchsim); state numbering and table layout may differ.
  std::size_t threads = 1;

  // Partitioned compilation: shard the rule set by the dominant
  // point-constrained attribute, compile every shard to an independent
  // sub-pipeline (own BddManager, own state range), and stitch the shards
  // behind a generated dispatch stage. Peak BDD size and compile memory
  // then scale with the largest shard instead of the whole union. The
  // stitched pipeline is equivalent to the monolithic one (proved by
  // camus::verify; see DESIGN.md "Compiling at scale").
  PartitionMode partition = PartitionMode::kOff;
  // kAuto only partitions rule sets at least this large; below it the
  // monolithic path is both faster and smaller.
  std::size_t partition_min_rules = 4096;
  // Also build the monolithic reference MTBDD (Compiled::manager/root) so
  // callers can run the equivalence checker against the stitched pipeline.
  // Costs the full union; off by default — without it a partitioned
  // Compiled carries a null manager.
  bool partition_reference = false;

  // Entry interning: after table generation, merge behaviourally
  // equivalent pipeline states (partition-refinement minimization of the
  // table state machine). Recovers the cross-shard suffix sharing that
  // hash-consing gives the monolithic BDD but partitioned compilation
  // loses, so stitched entry counts return to the monolithic scale.
  bool intern_entries = false;

  // Guard rails.
  std::size_t max_dnf_terms = 1 << 16;
  std::size_t max_paths_per_component = 10'000'000;
};

}  // namespace camus::compiler
