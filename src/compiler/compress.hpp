// Domain compression (paper resource optimization #3): "some fields will
// probably have only a few unique range predicates. The compiler can map
// values for that field and the corresponding range predicates onto a
// lower-resolution domain (e.g., 8-bits)."
//
// For a range table whose entries induce at most compression_max_regions
// distinct value regions, a mapping stage translates the raw field value
// into a dense region code, and the main table is rewritten to match codes
// on a narrow key. The mapping table pays one TCAM range entry per region
// *once*, instead of per (state, range) pair, and the rewritten matches
// need far fewer TCAM bits.
#pragma once

#include "compiler/options.hpp"
#include "table/pipeline.hpp"

namespace camus::compiler {

// Rewrites eligible tables in place; appends mapping stages to
// pipeline.value_maps and re-finalizes. Returns how many tables were
// compressed.
std::size_t compress_domains(table::Pipeline& pipeline,
                             const CompileOptions& opts);

}  // namespace camus::compiler
