// Domain compression (paper resource optimization #3): "some fields will
// probably have only a few unique range predicates. The compiler can map
// values for that field and the corresponding range predicates onto a
// lower-resolution domain (e.g., 8-bits)."
//
// For a range table whose entries induce at most compression_max_regions
// distinct value regions, a mapping stage translates the raw field value
// into a dense region code, and the main table is rewritten to match codes
// on a narrow key. The mapping table pays one TCAM range entry per region
// *once*, instead of per (state, range) pair, and the rewritten matches
// need far fewer TCAM bits.
#pragma once

#include <cstddef>

#include "compiler/options.hpp"
#include "table/pipeline.hpp"

namespace camus::compiler {

// Rewrites eligible tables in place; appends mapping stages to
// pipeline.value_maps and re-finalizes. Returns how many tables were
// compressed.
std::size_t compress_domains(table::Pipeline& pipeline,
                             const CompileOptions& opts);

// Telemetry for intern_entries (CompileStats::to_json "intern" block).
struct InternStats {
  std::size_t states_before = 0;
  std::size_t states_after = 0;   // equivalence classes kept
  std::size_t entries_before = 0; // field-table + leaf entries
  std::size_t entries_after = 0;
  std::size_t iterations = 0;     // refinement rounds to fixpoint
};

// Entry interning: partition-refinement minimization of the pipeline's
// state machine (Moore-style DFA minimization adapted to the
// miss-passes-through walk). Two states merge when they carry the same
// leaf observation and, table by table, the same (match -> class of next
// state) transition lists — the table-level analogue of the BDD's
// isomorphic-node sharing, applied across sub-pipelines the stitched
// partitioned compile glued together with disjoint state ranges.
//
// Sound under the pipeline semantics because a lookup miss keeps the
// current state: within one class a miss sends every member to the same
// class (its own), and equal transition lists induce the same hit regions
// with class-equal successors, so by backwards induction over the stages
// equal-class states reach leaf-equal observations on every packet.
// Dedupe of isomorphic leaf regions and shared ActionSet suffixes falls
// out: identical-action terminals collapse first, then the chains feeding
// them collapse level by level.
//
// Value-map stages are untouched (their entries are keyed on the constant
// kInitialState, not on pipeline states). Tables left with no entries are
// removed — an empty stage is pass-through. Re-finalizes the pipeline.
InternStats intern_entries(table::Pipeline& pipeline);

}  // namespace camus::compiler
