// Field-order selection for the BDD variable order (paper §3.2: "The
// choice of an order can significantly impact the size of a BDD.
// Determining an optimal field order is NP-hard, but simple heuristics
// often work well in practice.").
#pragma once

#include <vector>

#include "bdd/order.hpp"
#include "compiler/options.hpp"
#include "lang/dnf.hpp"
#include "spec/schema.hpp"

namespace camus::compiler {

// Builds the subject order for the BDD from the schema's queryable fields
// and declared state variables, arranged per the heuristic. Selectivity
// heuristics inspect the flattened rules to count distinct predicate
// constants per subject.
bdd::VarOrder choose_order(const spec::Schema& schema,
                           const std::vector<lang::FlatRule>& rules,
                           bdd::OrderHeuristic heuristic);

}  // namespace camus::compiler
