// Fabric placement: distribute one subscription set across a spine–leaf
// topology of switches (the ROADMAP "multi-switch fabric" item).
//
// A production feed with millions of subscribers cannot fit one TCAM, but
// the camus model generalizes cleanly: subscribers (egress ports) are
// assigned to leaf switches, each leaf carries only the fine per-subscriber
// rules whose forwarding set touches its ports, and the spines carry coarse
// steering rules over the workload's dominant point-constrained attribute
// (the stock symbol in the Fig-5 workloads — the same dominance criterion
// the PR-8 partitioned compile uses to shard one pipeline) that decide
// which leaves need to see a packet at all.
//
// Placement semantics (the theorem camus::verify::check_fabric_equivalence
// proves, with MTBDD counterexamples on violation):
//
//   monolithic(env).ports  ==  U_L { leaf_L(env).ports : spine steers env
//                                    to downlink L }
//
// which follows from two facts established per leaf:
//   (1) restriction — leaf_L computes exactly the monolithic function with
//       every ActionSet intersected with L's port set (the union of the
//       restrictions over all leaves recombines to the monolithic MTBDD);
//   (2) no starvation — every env on which leaf_L forwards is steered to L
//       by the spine rules (a pinned rule's value lands in L's steering
//       interval set; an unpinned rule forces L onto the catch-all path).
//
// Scope: fabric placement is stateless-only in this revision. Stateful
// subscriptions (@query_counter / @query_avg) read and write per-switch
// registers; replicating a register program across spines and leaves
// changes update multiplicity, so such rules are rejected up front with a
// stable diagnostic (F150) instead of silently mis-compiling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "lang/bound.hpp"
#include "spec/schema.hpp"
#include "table/pipeline.hpp"
#include "util/interval.hpp"
#include "util/result.hpp"

namespace camus::compiler {

// The topology shape and the (total, deterministic) subscriber->leaf map.
// Ports are assigned to leaves round-robin so every leaf serves an equal
// slice of the subscriber space without a lookup table; the controller,
// the verifier, the simulator, and the nemesis all share this one map.
struct FabricSpec {
  std::size_t leaves = 2;
  std::size_t spines = 1;

  std::size_t leaf_of(std::uint16_t port) const noexcept {
    return leaves == 0 ? 0 : port % leaves;
  }
  // The spine egress port that reaches leaf L (downlink index).
  std::uint16_t downlink(std::size_t leaf) const noexcept {
    return static_cast<std::uint16_t>(leaf);
  }

  friend bool operator==(const FabricSpec&, const FabricSpec&) = default;
};

// Where every rule lives in the fabric, before compilation.
struct FabricPlacement {
  FabricSpec spec;

  // The steering attribute (dominant point-constrained subject, chosen by
  // the same criterion as plan_partition), or nullopt when no rule pins
  // any attribute — the spines then steer every packet to every populated
  // leaf (correct, never better than broadcast).
  std::optional<lang::Subject> steer_subject;
  std::string steer_subject_name;  // display name for telemetry

  std::size_t total_rules = 0;
  std::size_t pinned_rules = 0;  // rules that pin the steering attribute

  // leaf_rules[L]: the monolithic rules whose forwarding set intersects
  // L's ports, with actions restricted to those ports (fact (1) above).
  std::vector<std::vector<lang::BoundRule>> leaf_rules;

  // Per-leaf steering state: the coalesced steering-attribute values L's
  // pinned rules cover, and whether any unpinned rule forces L onto the
  // spine catch-all path (needs_all).
  std::vector<util::IntervalSet> leaf_values;
  std::vector<bool> leaf_needs_all;

  // spine_rules[L]: the coarse rule "steer to downlink(L)" — an interval
  // condition over the steering attribute (or constant true on the
  // catch-all path, constant false for an empty leaf).
  std::vector<lang::BoundRule> spine_rules;

  std::size_t max_leaf_rules() const noexcept {
    std::size_t m = 0;
    for (const auto& r : leaf_rules) m = std::max(m, r.size());
    return m;
  }
  std::size_t populated_leaves() const noexcept {
    std::size_t n = 0;
    for (const auto& r : leaf_rules) n += !r.empty();
    return n;
  }
};

// Checks a bound rule against the fabric's stateless-only scope: F150 when
// the rule updates or tests register state. Shared by the placement pass
// and the FabricController's subscribe-time validation (a rule the fabric
// cannot place must be rejected before it is journaled).
util::Result<bool> fabric_rule_ok(const lang::BoundRule& rule,
                                  const spec::Schema& schema);

// Derives the placement: steering attribute, per-leaf restricted rule
// sets, and per-leaf spine steering rules. Pure function of its inputs.
// Diagnostics: F150 (stateful rule in scope), F151 (degenerate spec:
// zero leaves or zero spines).
util::Result<FabricPlacement> partition_for_fabric(
    const spec::Schema& schema, const std::vector<lang::BoundRule>& rules,
    const FabricSpec& spec, const CompileOptions& opts = {});

// The compiled fabric: one spine program (identical on every spine — the
// steering function does not depend on which spine ECMP picked) and one
// program per leaf, with per-switch digests and a fabric digest folding
// them in topology order (the all-or-nothing install verifies against
// these, and the nemesis pins convergence on them).
struct FabricProgram {
  FabricSpec spec;
  table::Pipeline spine;
  std::vector<table::Pipeline> leaves;

  CompileStats spine_stats;
  std::vector<CompileStats> leaf_stats;

  std::uint64_t spine_digest = 0;
  std::vector<std::uint64_t> leaf_digests;
  std::uint64_t fabric_digest = 0;

  std::uint64_t max_leaf_entries() const noexcept {
    std::uint64_t m = 0;
    for (const auto& p : leaves) m = std::max(m, p.total_entries());
    return m;
  }
  std::uint64_t total_leaf_entries() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : leaves) t += p.total_entries();
    return t;
  }
};

// Compiles every node program of a placement. The spine set is compiled
// monolithically (a handful of interval rules); each leaf compiles with
// the caller's options, so the PR-8 partitioned path and entry interning
// apply per leaf exactly as they would on a single switch.
util::Result<FabricProgram> compile_fabric(const spec::Schema& schema,
                                           const FabricPlacement& placement,
                                           const CompileOptions& opts = {});

}  // namespace camus::compiler
