#include "compiler/compress.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace camus::compiler {

using table::Entry;
using table::Table;
using table::ValueMatch;

namespace {

std::uint32_t bits_for(std::uint64_t max_value) {
  std::uint32_t bits = 1;
  while (bits < 64 && (max_value >> bits) != 0) ++bits;
  return bits;
}

}  // namespace

std::size_t compress_domains(table::Pipeline& pipeline,
                             const CompileOptions& opts) {
  std::size_t compressed = 0;

  for (Table& t : pipeline.tables) {
    if (t.kind() != table::MatchKind::kRange) continue;
    if (t.entries().size() < opts.compression_min_entries) continue;

    const std::uint64_t umax =
        t.width_bits() >= 64 ? ~0ULL : ((1ULL << t.width_bits()) - 1);

    // Region boundaries: the low end of every match plus one past its high
    // end. Cut 0 is always present so codes cover the whole domain.
    std::set<std::uint64_t> cuts{0};
    bool has_concrete = false;
    for (const Entry& e : t.entries()) {
      if (e.match.kind == ValueMatch::Kind::kAny) continue;
      has_concrete = true;
      cuts.insert(e.match.lo);
      if (e.match.hi < umax) cuts.insert(e.match.hi + 1);
    }
    if (!has_concrete) continue;
    if (cuts.size() > opts.compression_max_regions) continue;

    const std::vector<std::uint64_t> bounds(cuts.begin(), cuts.end());
    auto code_of = [&](std::uint64_t v) -> std::uint64_t {
      auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
      return static_cast<std::uint64_t>(it - bounds.begin()) - 1;
    };
    const std::uint32_t code_bits = bits_for(bounds.size() - 1);

    // Mapping stage: raw value ranges -> region code.
    Table map(t.name() + "_map", t.subject(), table::MatchKind::kRange,
              t.width_bits());
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      const std::uint64_t lo = bounds[i];
      const std::uint64_t hi = i + 1 < bounds.size() ? bounds[i + 1] - 1 : umax;
      Entry e;
      e.state = table::kInitialState;
      e.match = lo == hi ? ValueMatch::exact(lo) : ValueMatch::range(lo, hi);
      e.next_state = static_cast<table::StateId>(i);
      map.add_entry(e);
    }

    // Rewrite the main table to match codes. Every match boundary is a
    // cut, so [lo, hi] maps exactly onto the contiguous code range
    // [code(lo), code(hi)].
    bool all_exact = true;
    std::vector<Entry> rewritten;
    rewritten.reserve(t.entries().size());
    for (const Entry& e : t.entries()) {
      Entry ne = e;
      if (e.match.kind != ValueMatch::Kind::kAny) {
        const std::uint64_t clo = code_of(e.match.lo);
        const std::uint64_t chi = code_of(std::min(e.match.hi, umax));
        ne.match = clo == chi ? ValueMatch::exact(clo)
                              : ValueMatch::range(clo, chi);
        if (clo != chi) all_exact = false;
      }
      rewritten.push_back(ne);
    }

    Table nt(t.name(), t.subject(),
             all_exact ? table::MatchKind::kExact : table::MatchKind::kRange,
             code_bits);
    for (const Entry& e : rewritten) nt.add_entry(e);
    t = std::move(nt);
    pipeline.value_maps.push_back(std::move(map));
    ++compressed;
  }

  if (compressed > 0) pipeline.finalize();
  return compressed;
}

}  // namespace camus::compiler
