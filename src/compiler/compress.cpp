#include "compiler/compress.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace camus::compiler {

using table::Entry;
using table::LeafEntry;
using table::StateId;
using table::Table;
using table::ValueMatch;

namespace {

std::uint32_t bits_for(std::uint64_t max_value) {
  std::uint32_t bits = 1;
  while (bits < 64 && (max_value >> bits) != 0) ++bits;
  return bits;
}

}  // namespace

std::size_t compress_domains(table::Pipeline& pipeline,
                             const CompileOptions& opts) {
  std::size_t compressed = 0;

  // A value map remaps the subject's value for *every* stage keyed on it,
  // so a subject with several stages (the stitched partitioned layout:
  // dispatch + default-shard table) must not be compressed — the other
  // stage would silently start matching codes against raw-value entries.
  std::map<lang::Subject, std::size_t> stages_per_subject;
  for (const Table& t : pipeline.tables) ++stages_per_subject[t.subject()];

  for (Table& t : pipeline.tables) {
    if (t.kind() != table::MatchKind::kRange) continue;
    if (t.entries().size() < opts.compression_min_entries) continue;
    if (stages_per_subject[t.subject()] > 1) continue;

    const std::uint64_t umax =
        t.width_bits() >= 64 ? ~0ULL : ((1ULL << t.width_bits()) - 1);

    // Region boundaries: the low end of every match plus one past its high
    // end. Cut 0 is always present so codes cover the whole domain.
    std::set<std::uint64_t> cuts{0};
    bool has_concrete = false;
    for (const Entry& e : t.entries()) {
      if (e.match.kind == ValueMatch::Kind::kAny) continue;
      has_concrete = true;
      cuts.insert(e.match.lo);
      if (e.match.hi < umax) cuts.insert(e.match.hi + 1);
    }
    if (!has_concrete) continue;
    if (cuts.size() > opts.compression_max_regions) continue;

    const std::vector<std::uint64_t> bounds(cuts.begin(), cuts.end());
    auto code_of = [&](std::uint64_t v) -> std::uint64_t {
      auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
      return static_cast<std::uint64_t>(it - bounds.begin()) - 1;
    };
    const std::uint32_t code_bits = bits_for(bounds.size() - 1);

    // Mapping stage: raw value ranges -> region code.
    Table map(t.name() + "_map", t.subject(), table::MatchKind::kRange,
              t.width_bits());
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      const std::uint64_t lo = bounds[i];
      const std::uint64_t hi = i + 1 < bounds.size() ? bounds[i + 1] - 1 : umax;
      Entry e;
      e.state = table::kInitialState;
      e.match = lo == hi ? ValueMatch::exact(lo) : ValueMatch::range(lo, hi);
      e.next_state = static_cast<table::StateId>(i);
      map.add_entry(e);
    }

    // Rewrite the main table to match codes. Every match boundary is a
    // cut, so [lo, hi] maps exactly onto the contiguous code range
    // [code(lo), code(hi)].
    bool all_exact = true;
    std::vector<Entry> rewritten;
    rewritten.reserve(t.entries().size());
    for (const Entry& e : t.entries()) {
      Entry ne = e;
      if (e.match.kind != ValueMatch::Kind::kAny) {
        const std::uint64_t clo = code_of(e.match.lo);
        const std::uint64_t chi = code_of(std::min(e.match.hi, umax));
        ne.match = clo == chi ? ValueMatch::exact(clo)
                              : ValueMatch::range(clo, chi);
        if (clo != chi) all_exact = false;
      }
      rewritten.push_back(ne);
    }

    Table nt(t.name(), t.subject(),
             all_exact ? table::MatchKind::kExact : table::MatchKind::kRange,
             code_bits);
    for (const Entry& e : rewritten) nt.add_entry(e);
    t = std::move(nt);
    pipeline.value_maps.push_back(std::move(map));
    ++compressed;
  }

  if (compressed > 0) pipeline.finalize();
  return compressed;
}

InternStats intern_entries(table::Pipeline& pipeline) {
  InternStats st;

  // --- state universe (value-map stages excluded: their entries key on
  // the constant kInitialState, not on pipeline states) -----------------
  std::unordered_map<StateId, std::uint32_t> dense;
  std::vector<StateId> state_of;  // dense index -> original id
  auto idx_of = [&](StateId s) {
    auto [it, inserted] = dense.emplace(s, state_of.size());
    if (inserted) state_of.push_back(s);
    return it->second;
  };
  idx_of(pipeline.initial_state);
  for (const Table& t : pipeline.tables) {
    for (const Entry& e : t.entries()) {
      idx_of(e.state);
      idx_of(e.next_state);
    }
  }
  for (const LeafEntry& e : pipeline.leaf.entries()) idx_of(e.state);
  const std::size_t n = state_of.size();
  st.states_before = n;
  st.entries_before = pipeline.leaf.entries().size();
  for (const Table& t : pipeline.tables) st.entries_before += t.entries().size();

  // --- per-state transition lists, canonically sorted ------------------
  // Matches for one state within one table are disjoint, so sorting by
  // (table, kind, lo, hi) is a canonical order independent of targets.
  struct Trans {
    std::uint32_t table;
    std::uint8_t kind;
    std::uint64_t lo, hi;
    std::uint32_t next;  // dense index
  };
  std::vector<std::vector<Trans>> trans(n);
  for (std::uint32_t ti = 0; ti < pipeline.tables.size(); ++ti) {
    for (const Entry& e : pipeline.tables[ti].entries()) {
      trans[dense.at(e.state)].push_back(
          {ti, static_cast<std::uint8_t>(e.match.kind), e.match.lo, e.match.hi,
           dense.at(e.next_state)});
    }
  }
  for (auto& v : trans) {
    std::sort(v.begin(), v.end(), [](const Trans& a, const Trans& b) {
      return std::tie(a.table, a.kind, a.lo, a.hi) <
             std::tie(b.table, b.kind, b.lo, b.hi);
    });
  }

  // --- initial partition: leaf observation ------------------------------
  // lookup() honours first-wins duplicate semantics, so shadowed leaf
  // entries never influence a state's observable class.
  std::vector<std::uint32_t> cls(n);
  {
    std::map<lang::ActionSet, std::uint32_t> obs_ids;
    for (std::size_t i = 0; i < n; ++i) {
      const LeafEntry* le = pipeline.leaf.lookup(state_of[i]);
      if (!le) {
        cls[i] = 0;  // no-entry observation (drop)
      } else {
        auto [it, ins] = obs_ids.emplace(le->actions, obs_ids.size() + 1);
        cls[i] = it->second;
      }
    }
  }

  // --- Moore refinement to fixpoint -------------------------------------
  // New class = (old class, transition list with class-mapped targets).
  // Class count is strictly monotone until the fixpoint, so the loop runs
  // at most n rounds; on BDD-derived pipelines (forward edges only) it
  // converges in ~stage-count rounds.
  std::size_t n_classes = 0;
  for (;;) {
    ++st.iterations;
    std::map<std::vector<std::uint64_t>, std::uint32_t> sig_ids;
    std::vector<std::uint32_t> next_cls(n);
    std::vector<std::uint64_t> key;
    for (std::size_t i = 0; i < n; ++i) {
      key.clear();
      key.push_back(cls[i]);
      for (const Trans& tr : trans[i]) {
        key.push_back((static_cast<std::uint64_t>(tr.table) << 8) | tr.kind);
        key.push_back(tr.lo);
        key.push_back(tr.hi);
        key.push_back(cls[tr.next]);
      }
      auto [it, ins] = sig_ids.emplace(key, sig_ids.size());
      next_cls[i] = it->second;
    }
    cls = std::move(next_cls);
    if (sig_ids.size() == n_classes) break;
    n_classes = sig_ids.size();
  }
  st.states_after = n_classes;

  // --- representative per class: the minimum original state id ----------
  std::vector<StateId> rep_state(n_classes, ~StateId{0});
  for (std::size_t i = 0; i < n; ++i)
    rep_state[cls[i]] = std::min(rep_state[cls[i]], state_of[i]);
  auto rep_of = [&](StateId s) { return rep_state[cls[dense.at(s)]]; };

  // --- rewrite: keep representative states' rows, remap targets ---------
  std::vector<Table> new_tables;
  for (const Table& t : pipeline.tables) {
    Table nt(t.name(), t.subject(), t.kind(), t.width_bits());
    nt.set_symbol(t.is_symbol());
    // Per-state simplification under miss-passes-through:
    //  - with a wildcard row whose target every sibling shares, the
    //    siblings are redundant;
    //  - without a wildcard row, a self-loop row equals a miss.
    std::map<StateId, std::vector<Entry>> per_state;
    for (const Entry& e : t.entries()) {
      if (rep_of(e.state) != e.state) continue;
      Entry ne = e;
      ne.next_state = rep_of(e.next_state);
      per_state[ne.state].push_back(ne);
    }
    for (auto& [s, rows] : per_state) {
      const Entry* any = nullptr;
      for (const Entry& e : rows)
        if (e.match.kind == ValueMatch::Kind::kAny) any = &e;
      if (any) {
        const StateId target = any->next_state;
        bool all_same = true;
        for (const Entry& e : rows) all_same &= e.next_state == target;
        if (all_same) {
          if (target != s) nt.add_entry(*any);  // self-loop wildcard == miss
          continue;
        }
        for (const Entry& e : rows) nt.add_entry(e);
      } else {
        for (const Entry& e : rows)
          if (e.next_state != s) nt.add_entry(e);
      }
    }
    if (!nt.entries().empty()) new_tables.push_back(std::move(nt));
  }
  pipeline.tables = std::move(new_tables);

  table::LeafTable new_leaf;
  for (const LeafEntry& e : pipeline.leaf.entries()) {
    if (rep_of(e.state) != e.state) continue;
    if (new_leaf.lookup(e.state)) continue;  // drop shadowed duplicates
    new_leaf.add_entry(e);
  }
  pipeline.leaf = std::move(new_leaf);
  pipeline.initial_state = rep_of(pipeline.initial_state);

  st.entries_after = pipeline.leaf.entries().size();
  for (const Table& t : pipeline.tables) st.entries_after += t.entries().size();
  pipeline.finalize();
  return st;
}

}  // namespace camus::compiler
