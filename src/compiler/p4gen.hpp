// The static compilation step (paper §3.1): generates the P4 program for
// an application — packet parser, header definitions, metadata, the
// match-action table skeletons in BDD field order, and the register blocks
// backing state variables. Performed once per application; the dynamic
// step then populates the tables at runtime.
//
// Emission targets P4-16 / v1model syntax. There is no P4 toolchain in
// this environment, so the output is validated structurally by tests and
// executed semantically by the switch simulator, which consumes the same
// Pipeline IR the P4 program describes.
#pragma once

#include <string>

#include "spec/schema.hpp"
#include "table/pipeline.hpp"

namespace camus::compiler {

struct P4Options {
  std::string program_name = "camus";
  // Number of register cells preallocated per state variable block
  // (paper: "the compiler statically preallocates a block of registers").
  std::uint32_t register_block_size = 1024;
};

// Generates the full P4-16 (v1model) program for the schema. If `pipeline`
// is non-null, table size annotations reflect the compiled entry counts.
std::string generate_p4(const spec::Schema& schema,
                        const table::Pipeline* pipeline = nullptr,
                        const P4Options& opts = {});

// Generates the program in P4_14 syntax — the dialect the paper's
// prototype targeted (its specs extend P4_14 header_type declarations, and
// the compiler consumed them through the P4V library).
std::string generate_p4_14(const spec::Schema& schema,
                           const table::Pipeline* pipeline = nullptr,
                           const P4Options& opts = {});

// Dumps the dynamic step's output: one control-plane entry per line in a
// bmv2/P4Runtime-inspired text format. Deterministic; used as the exchange
// format between the compiler and the switch (simulator).
std::string generate_control_plane_rules(const table::Pipeline& pipeline);

}  // namespace camus::compiler
