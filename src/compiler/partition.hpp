// Partitioned-output compilation (the compile-at-scale path).
//
// The sharded pipeline in parallel.* parallelizes the *build* but still
// unions every shard into one master MTBDD, so peak node count, union
// time, and compile memory all scale with the whole rule set — at 10^6
// subscriptions the final merge is >95% of compile time. This module goes
// one step further: shard by the dominant point-constrained attribute
// (the stock symbol in the Fig-5 workloads; message type in the paper's
// §3 split), compile every shard to an *independent sub-pipeline* with a
// private BddManager and a private state range, and stitch the shards
// behind a generated exact-match dispatch stage:
//
//     (state 0, attr == v)  -> shard_v's initial state
//     (state 0, *)          -> default shard's initial state
//
// Rules that pin the attribute to v compile into shard v with the pin
// stripped (the dispatch hit already established it). Rules that do not
// pin it are *specialized* into every value shard — terms whose
// constraint excludes v are dropped, terms admitting v lose the
// constraint — and also form the default shard unchanged, reached by the
// dispatch wildcard. The stitched pipeline therefore computes exactly the
// union semantics of the original rule set (proof sketch in DESIGN.md
// "Compiling at scale"); camus::verify proves it against the monolithic
// reference MTBDD when CompileOptions::partition_reference is set.
//
// Every shard uses the same global variable order with the partition
// attribute moved to the front, so the stitched stage sequence still
// follows one total order — the property both Algorithm 1 and the
// equivalence checker rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bdd/order.hpp"
#include "compiler/compile.hpp"
#include "lang/dnf.hpp"
#include "util/result.hpp"

namespace camus::compiler {

// The single value `s` is pinned to across every DNF term of the rule, or
// nullopt when any term leaves it unconstrained, non-point, or terms
// disagree. Shared by plan_shards (parallel.*) and plan_partition.
std::optional<std::uint64_t> point_constrained_value(const lang::FlatRule& r,
                                                     lang::Subject s);

// Estimated compile work of one flat rule: 1 + constraint count, summed
// over its DNF terms. plan_shards packs shards by this weight (LPT), so a
// few high-predicate rules no longer hide behind a flat rule count.
std::size_t rule_work(const lang::FlatRule& r);

struct PartitionPlan {
  // Present when a usable partition attribute was found.
  std::optional<lang::Subject> subject;
  // Sorted distinct pinned values; groups[i] holds the specialized flat
  // rules for values[i] (pinned rules stripped + applicable catch-all
  // rules specialized).
  std::vector<std::uint64_t> values;
  std::vector<std::vector<lang::FlatRule>> groups;
  // Rules that do not pin the attribute, unmodified (the default shard).
  std::vector<lang::FlatRule> catch_all;
  // How many input rules pinned the attribute (coverage diagnostics).
  std::size_t pinned_rules = 0;
};

// Chooses the partition attribute (highest-ranked subject pinned by at
// least half the rules) and builds the per-value specialized rule groups.
// plan.subject is empty when no attribute qualifies or fewer than two
// distinct values exist — partitioning then cannot help.
PartitionPlan plan_partition(const std::vector<lang::FlatRule>& rules,
                             const bdd::VarOrder& order);

// Mode/threshold gate: true when compile_rules should take the
// partitioned path for this plan.
bool partition_applies(const PartitionPlan& plan, const CompileOptions& opts,
                       std::size_t n_rules);

// Compiles the plan: shards in parallel (resolve_threads(opts.threads)
// workers), deterministic stitch (canonical shard order by value, default
// last — output is identical at every thread count), then optional
// intern_entries / compress_domains over the stitched pipeline. The
// returned Compiled carries the monolithic reference MTBDD only when
// opts.partition_reference is set; otherwise manager is null.
util::Result<Compiled> compile_partitioned(
    const spec::Schema& schema, const std::vector<lang::FlatRule>& flat,
    const PartitionPlan& plan, const CompileOptions& opts);

}  // namespace camus::compiler
