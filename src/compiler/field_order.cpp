#include "compiler/field_order.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace camus::compiler {

using bdd::OrderHeuristic;
using bdd::VarOrder;
using lang::Subject;

VarOrder choose_order(const spec::Schema& schema,
                      const std::vector<lang::FlatRule>& rules,
                      OrderHeuristic heuristic) {
  // Base order: queryable fields in annotation order, then state variables.
  std::vector<Subject> subjects;
  for (auto fid : schema.query_order()) subjects.push_back(Subject::field(fid));
  for (const auto& v : schema.state_vars())
    subjects.push_back(Subject::state(v.id));

  switch (heuristic) {
    case OrderHeuristic::kDeclared:
      break;
    case OrderHeuristic::kExactFirst: {
      std::stable_partition(subjects.begin(), subjects.end(), [&](Subject s) {
        return s.kind == Subject::Kind::kField &&
               schema.field(s.id).hint == spec::MatchHint::kExact;
      });
      break;
    }
    case OrderHeuristic::kSelectivityAsc:
    case OrderHeuristic::kSelectivityDesc: {
      // Distinct interval endpoints per subject across all rule terms — a
      // proxy for how many BDD variables the subject contributes.
      std::map<Subject, std::set<std::uint64_t>> constants;
      for (const auto& r : rules) {
        for (const auto& t : r.terms) {
          for (const auto& [subj, set] : t.constraints) {
            for (const auto& iv : set.intervals()) {
              constants[subj].insert(iv.lo);
              constants[subj].insert(iv.hi);
            }
          }
        }
      }
      auto count = [&](Subject s) -> std::size_t {
        auto it = constants.find(s);
        return it == constants.end() ? 0 : it->second.size();
      };
      std::stable_sort(subjects.begin(), subjects.end(),
                       [&](Subject a, Subject b) {
                         return heuristic == OrderHeuristic::kSelectivityAsc
                                    ? count(a) < count(b)
                                    : count(a) > count(b);
                       });
      break;
    }
  }
  return VarOrder(std::move(subjects));
}

}  // namespace camus::compiler
