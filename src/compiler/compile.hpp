// The dynamic compilation step (paper §3): subscription rules -> DNF ->
// multi-terminal BDD -> (Algorithm 1) -> match-action table entries and
// multicast groups. Re-run whenever the subscription set changes.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"
#include "compiler/algorithm1.hpp"
#include "compiler/compress.hpp"
#include "compiler/options.hpp"
#include "lang/bound.hpp"
#include "spec/schema.hpp"
#include "table/pipeline.hpp"
#include "util/result.hpp"

namespace camus::compiler {

// Telemetry for one shard of the parallel compilation pipeline.
struct ShardStats {
  std::size_t rules = 0;      // flat rules assigned to this shard
  std::size_t bdd_nodes = 0;  // shard-local manager node-table size
  double t_seconds = 0;       // shard build+union wall time on its worker
  std::size_t manager_bytes = 0;  // shard manager arena footprint
};

// Process/arena memory telemetry (the compile-scale memory gate).
struct MemStats {
  std::uint64_t rss_before = 0;       // current RSS at compile entry
  std::uint64_t rss_after_build = 0;  // after BDD build+union (or shards)
  std::uint64_t rss_after_tables = 0; // after table generation + rewrites
  std::uint64_t peak_rss = 0;         // process high-water mark at exit
  // Master-manager arena bytes on the monolithic path; the *largest
  // single shard's* arena on the partitioned path (that is the quantity
  // partitioning bounds).
  std::uint64_t bdd_bytes = 0;
};

// Compile-phase telemetry: per-phase wall time, BDD node counts,
// unique-table/memo hit rates, per-stage table entries, and shard sizes.
// Serialized as JSON (to_json) so benches and tools can emit
// machine-readable profiles; the schema is documented in DESIGN.md.
struct CompileStats {
  std::size_t rule_count = 0;
  std::size_t dnf_terms = 0;

  bdd::BddStats bdd_before_prune;
  bdd::BddStats bdd_after_prune;
  // Unique-table sizes and memo probe/hit totals, summed over the master
  // manager and (on the parallel path) every worker manager.
  bdd::CacheStats cache;
  TableGenStats tablegen;

  std::uint64_t total_entries = 0;
  std::size_t multicast_groups = 0;

  // Parallel sharded path: number of workers actually used and per-shard
  // telemetry. threads_used == 1 and shards empty on the serial path.
  std::size_t threads_used = 1;
  std::vector<ShardStats> shards;

  // Partitioned-output path (compiler/partition.*): shard count (value
  // shards + default), the dispatch attribute's display name, and the
  // stitch wall time. partition_groups == 0 means the monolithic path ran.
  std::size_t partition_groups = 0;
  std::string partition_subject;
  double t_stitch = 0;
  // Non-empty when partitioned output was requested (kForce, or kAuto at
  // or above partition_min_rules) but this compile ran monolithically —
  // e.g. an IncrementalCompiler commit, whose persistent-manager path has
  // no partitioned variant (diagnostic I130). Silent before this field:
  // callers saw partition_groups == 0 with no explanation.
  std::string partition_fallback;

  // Entry interning (intern_entries); interned == false when the pass did
  // not run and the counters are zero.
  bool interned = false;
  InternStats intern;

  // Peak-RSS and arena-bytes telemetry (always collected; zeros only on
  // platforms without a measurement).
  MemStats mem;

  // Wall-clock breakdown in seconds. On the parallel path t_build covers
  // the concurrent shard phase and t_union the import + pairwise merge
  // into the master manager. On the partitioned path t_build covers the
  // concurrent per-shard compiles (build+union+prune+tables inside each
  // shard), t_stitch the deterministic merge, t_tables the post-stitch
  // rewrites (interning, domain compression), and t_union the optional
  // reference-MTBDD build (partition_reference).
  double t_flatten = 0;
  double t_build = 0;
  double t_union = 0;
  double t_prune = 0;
  double t_tables = 0;
  double t_total = 0;

  std::string to_string() const;

  // Machine-readable profile (parse with util::json). Stable key schema —
  // see DESIGN.md "Parallel compilation & telemetry".
  std::string to_json() const;
};

struct Compiled {
  table::Pipeline pipeline;
  CompileStats stats;

  // The BDD is kept alive so callers can render it (quickstart example,
  // debugging) without recompiling. On the partitioned path no monolithic
  // MTBDD exists — manager is null unless partition_reference asked for
  // one (root is then the reference the equivalence checker verifies the
  // stitched pipeline against).
  std::shared_ptr<bdd::BddManager> manager;
  bdd::NodeRef root;
};

// Compiles already-bound rules.
util::Result<Compiled> compile_rules(const spec::Schema& schema,
                                     const std::vector<lang::BoundRule>& rules,
                                     const CompileOptions& opts = {});

// Parses, binds, and compiles subscription source text.
util::Result<Compiled> compile_source(const spec::Schema& schema,
                                      std::string_view rules_text,
                                      const CompileOptions& opts = {});

}  // namespace camus::compiler
