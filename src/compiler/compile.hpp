// The dynamic compilation step (paper §3): subscription rules -> DNF ->
// multi-terminal BDD -> (Algorithm 1) -> match-action table entries and
// multicast groups. Re-run whenever the subscription set changes.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"
#include "compiler/algorithm1.hpp"
#include "compiler/options.hpp"
#include "lang/bound.hpp"
#include "spec/schema.hpp"
#include "table/pipeline.hpp"
#include "util/result.hpp"

namespace camus::compiler {

struct CompileStats {
  std::size_t rule_count = 0;
  std::size_t dnf_terms = 0;

  bdd::BddStats bdd_before_prune;
  bdd::BddStats bdd_after_prune;
  TableGenStats tablegen;

  std::uint64_t total_entries = 0;
  std::size_t multicast_groups = 0;

  // Wall-clock breakdown in seconds.
  double t_flatten = 0;
  double t_build = 0;
  double t_union = 0;
  double t_prune = 0;
  double t_tables = 0;
  double t_total = 0;

  std::string to_string() const;
};

struct Compiled {
  table::Pipeline pipeline;
  CompileStats stats;

  // The BDD is kept alive so callers can render it (quickstart example,
  // debugging) without recompiling.
  std::shared_ptr<bdd::BddManager> manager;
  bdd::NodeRef root;
};

// Compiles already-bound rules.
util::Result<Compiled> compile_rules(const spec::Schema& schema,
                                     const std::vector<lang::BoundRule>& rules,
                                     const CompileOptions& opts = {});

// Parses, binds, and compiles subscription source text.
util::Result<Compiled> compile_source(const spec::Schema& schema,
                                      std::string_view rules_text,
                                      const CompileOptions& opts = {});

}  // namespace camus::compiler
