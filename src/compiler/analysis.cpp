#include "compiler/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace camus::compiler {

using util::Result;

namespace {

// Canonical text of a flattened condition, used for duplicate detection.
std::string condition_key(const lang::FlatRule& r) {
  std::vector<std::string> terms;
  terms.reserve(r.terms.size());
  for (const auto& t : r.terms) terms.push_back(t.to_string());
  std::sort(terms.begin(), terms.end());
  std::string key;
  for (const auto& t : terms) {
    key += t;
    key += '|';
  }
  return key;
}

double term_selectivity(const lang::Conjunction& term,
                        const spec::Schema& schema) {
  double sel = 1.0;
  for (const auto& [subj, set] : term.constraints) {
    const double domain =
        static_cast<double>(lang::subject_umax(subj, schema)) + 1.0;
    sel *= static_cast<double>(set.cardinality()) / domain;
  }
  return sel;
}

}  // namespace

Result<RuleSetReport> analyze_rules(const spec::Schema& schema,
                                    const std::vector<lang::BoundRule>& rules,
                                    std::size_t max_dnf_terms) {
  RuleSetReport report;
  report.rules.reserve(rules.size());

  std::map<std::string, std::size_t> first_with_condition;
  std::map<std::string, std::size_t> first_with_rule;

  for (std::size_t i = 0; i < rules.size(); ++i) {
    auto flat = lang::flatten_rule(rules[i], schema, max_dnf_terms);
    if (!flat.ok()) {
      util::Error e = flat.error();
      e.message = "rule " + std::to_string(i + 1) + ": " + e.message;
      return e;
    }

    RuleReport r;
    r.index = i;
    r.dnf_terms = flat.value().terms.size();
    report.total_dnf_terms += r.dnf_terms;
    r.satisfiable = !flat.value().terms.empty();
    if (!r.satisfiable) ++report.unsatisfiable_count;

    // Subjects and selectivity.
    std::map<lang::Subject, bool> seen;
    double sel = 0;
    for (const auto& t : flat.value().terms) {
      sel += term_selectivity(t, schema);
      for (const auto& [subj, set] : t.constraints) {
        if (!seen.count(subj)) {
          seen.emplace(subj, true);
          r.subjects.push_back(subj);
        }
      }
    }
    r.selectivity = std::min(sel, 1.0);

    // Duplicate / same-condition detection.
    const std::string cond_key = condition_key(flat.value());
    const std::string rule_key =
        cond_key + "=>" + rules[i].actions.to_string();
    if (auto it = first_with_rule.find(rule_key);
        it != first_with_rule.end()) {
      r.duplicate_of = it->second;
      ++report.duplicate_count;
    } else {
      first_with_rule.emplace(rule_key, i);
      if (auto it2 = first_with_condition.find(cond_key);
          it2 != first_with_condition.end()) {
        r.same_condition_as = it2->second;
      }
    }
    first_with_condition.emplace(cond_key, i);

    report.rules.push_back(std::move(r));
  }
  return report;
}

std::string RuleSetReport::to_string(const spec::Schema& schema) const {
  std::ostringstream os;
  os << rules.size() << " rules, " << total_dnf_terms << " DNF terms, "
     << unsatisfiable_count << " unsatisfiable, " << duplicate_count
     << " duplicates\n";
  for (const auto& r : rules) {
    if (r.satisfiable && !r.duplicate_of && !r.same_condition_as &&
        r.selectivity > 1e-12)
      continue;  // only report noteworthy rules
    os << "  rule " << (r.index + 1) << ":";
    if (!r.satisfiable) os << " UNSATISFIABLE";
    if (r.duplicate_of)
      os << " duplicate of rule " << (*r.duplicate_of + 1);
    if (r.same_condition_as)
      os << " same condition as rule " << (*r.same_condition_as + 1);
    if (r.satisfiable && r.selectivity <= 1e-12)
      os << " matches a negligible fraction of packets";
    os << "\n";
  }
  (void)schema;
  return os.str();
}

}  // namespace camus::compiler
