#include "compiler/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace camus::compiler {

using util::Result;

namespace {

double term_selectivity(const lang::Conjunction& term,
                        const spec::Schema& schema) {
  double sel = 1.0;
  for (const auto& [subj, set] : term.constraints) {
    const double domain =
        static_cast<double>(lang::subject_umax(subj, schema)) + 1.0;
    sel *= static_cast<double>(set.cardinality()) / domain;
  }
  return sel;
}

// Hashed canonical-key index: hash -> rule indices whose key hashed there.
// Collisions are resolved by comparing the stored canonical strings, so
// detection stays exact while the common case is one hash probe instead of
// an ordered-map walk with full string comparisons at every level.
struct KeyIndex {
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;

  // Returns the first rule whose key matches, or nullopt; then registers
  // `index` under the key.
  std::optional<std::size_t> find_or_insert(
      std::uint64_t hash, const std::string& key, std::size_t index,
      const std::vector<std::string>& keys) {
    auto& bucket = buckets[hash];
    for (std::size_t cand : bucket)
      if (keys[cand] == key) return cand;
    bucket.push_back(index);
    return std::nullopt;
  }
};

}  // namespace

std::string condition_key(const lang::FlatRule& r) {
  std::vector<std::string> terms;
  terms.reserve(r.terms.size());
  for (const auto& t : r.terms) terms.push_back(t.to_string());
  // Bytewise sort: locale-independent, so the canonical ordering (and any
  // report text derived from it) is identical across platforms.
  std::sort(terms.begin(), terms.end());
  std::size_t len = 0;
  for (const auto& t : terms) len += t.size() + 1;
  std::string key;
  key.reserve(len);
  for (const auto& t : terms) {
    key += t;
    key += '|';
  }
  return key;
}

std::uint64_t canonical_hash(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : key) h = (h ^ c) * 0x100000001b3ULL;
  return h;
}

Result<RuleSetReport> analyze_rules(const spec::Schema& schema,
                                    const std::vector<lang::BoundRule>& rules,
                                    std::size_t max_dnf_terms,
                                    bool keep_flat) {
  RuleSetReport report;
  report.rules.reserve(rules.size());
  if (keep_flat) report.flat.reserve(rules.size());

  // Canonical condition keys per rule (kept so hash collisions can be
  // verified against the real strings) and the two hashed indices.
  std::vector<std::string> cond_keys;
  std::vector<std::string> rule_keys;
  cond_keys.reserve(rules.size());
  rule_keys.reserve(rules.size());
  KeyIndex by_condition;
  KeyIndex by_rule;

  for (std::size_t i = 0; i < rules.size(); ++i) {
    auto flat = lang::flatten_rule(rules[i], schema, max_dnf_terms);
    if (!flat.ok()) {
      util::Error e = flat.error();
      e.message = "rule " + std::to_string(i + 1) + ": " + e.message;
      return e;
    }

    RuleReport r;
    r.index = i;
    r.dnf_terms = flat.value().terms.size();
    report.total_dnf_terms += r.dnf_terms;
    r.satisfiable = !flat.value().terms.empty();
    if (!r.satisfiable) ++report.unsatisfiable_count;

    // Subjects and selectivity.
    std::map<lang::Subject, bool> seen;
    double sel = 0;
    for (const auto& t : flat.value().terms) {
      sel += term_selectivity(t, schema);
      for (const auto& [subj, set] : t.constraints) {
        if (!seen.count(subj)) {
          seen.emplace(subj, true);
          r.subjects.push_back(subj);
        }
      }
    }
    r.selectivity = std::min(sel, 1.0);

    // Duplicate / same-condition detection over hashed canonical keys.
    cond_keys.push_back(condition_key(flat.value()));
    const std::string& cond_key = cond_keys.back();
    rule_keys.push_back(cond_key + "=>" + rules[i].actions.to_string());
    const std::string& rule_key = rule_keys.back();

    if (auto dup = by_rule.find_or_insert(canonical_hash(rule_key), rule_key,
                                          i, rule_keys)) {
      r.duplicate_of = *dup;
      ++report.duplicate_count;
      // Register the condition too so later rules point at the earliest
      // occurrence of this condition.
      by_condition.find_or_insert(canonical_hash(cond_key), cond_key, i,
                                  cond_keys);
    } else if (auto same = by_condition.find_or_insert(
                   canonical_hash(cond_key), cond_key, i, cond_keys)) {
      r.same_condition_as = *same;
    }

    report.rules.push_back(std::move(r));
    if (keep_flat) report.flat.push_back(std::move(flat).take());
  }
  return report;
}

std::string RuleSetReport::to_string(const spec::Schema& schema) const {
  std::ostringstream os;
  os << rules.size() << " rules, " << total_dnf_terms << " DNF terms, "
     << unsatisfiable_count << " unsatisfiable, " << duplicate_count
     << " duplicates\n";
  for (const auto& r : rules) {
    if (r.satisfiable && !r.duplicate_of && !r.same_condition_as &&
        r.selectivity > 1e-12)
      continue;  // only report noteworthy rules
    os << "  rule " << (r.index + 1) << ":";
    if (!r.satisfiable) os << " UNSATISFIABLE";
    if (r.duplicate_of)
      os << " duplicate of rule " << (*r.duplicate_of + 1);
    if (r.same_condition_as)
      os << " same condition as rule " << (*r.same_condition_as + 1);
    if (r.satisfiable && r.selectivity <= 1e-12)
      os << " matches a negligible fraction of packets";
    os << "\n";
  }
  (void)schema;
  return os.str();
}

}  // namespace camus::compiler
