// Siena-style synthetic subscription workloads (paper §4: "we generated
// workloads using the Siena Synthetic Benchmark Generator"). Drives the
// compiler-efficiency experiments of Figures 5a and 5b: subscriptions are
// conjunctions of k atomic predicates drawn over a mixed string/numeric
// attribute space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/bound.hpp"
#include "spec/schema.hpp"

namespace camus::workload {

struct SienaParams {
  std::uint64_t seed = 1;
  std::size_t n_subscriptions = 20;
  // Number of atomic predicates per conjunction (Figure 5b's x-axis,
  // "selectiveness of subscriptions").
  std::size_t predicates_per_subscription = 3;

  std::size_t n_string_attrs = 2;
  std::size_t n_numeric_attrs = 3;
  std::size_t n_symbols = 50;       // distinct string constants
  std::uint64_t numeric_max = 1000; // numeric constants drawn from [0, max]
  double symbol_zipf_s = 0.8;       // popularity skew of string constants
  std::size_t n_ports = 16;
  // Operator mix on numeric attributes (strings always use ==).
  double numeric_eq_fraction = 0.3;
};

struct SienaWorkload {
  spec::Schema schema;
  std::vector<lang::BoundRule> rules;
  std::vector<std::string> symbols;
};

SienaWorkload generate_siena(const SienaParams& params);

}  // namespace camus::workload
