// Grammar-driven subscription fuzzer: a seeded, deterministic sampler of
// the full Figure-1 subscription grammar — deep and/or/! nesting, mixed
// exact (symbol), range (numeric) and stateful (register) atoms,
// adversarial constants (domain boundaries, out-of-width literals, shared
// overlapping thresholds), engineered subsumption/duplication between the
// rules of one sample, and multi-action rules with state updates — plus a
// paired adversarial message corpus that targets each sample's decision
// boundaries (values at and adjacent to every constant that appears in the
// sample, window-rollover timestamps for stateful atoms).
//
// Determinism contract: sample(index) is a pure function of
// (params.seed, index) — independent of call order, so campaigns can be
// resumed, sharded, or replayed one index at a time (`camus-fuzz --only`).
//
// The byte-level fuzz helpers (random_text/token_soup) live here too so
// the grammar-level and byte-level fuzzers share one Rng seeding and one
// repro-hint convention (tests/test_fuzz.cpp and camus-fuzz both use
// them).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "lang/bound.hpp"
#include "spec/schema.hpp"
#include "util/rng.hpp"

namespace camus::workload {

struct FuzzParams {
  std::uint64_t seed = 1;
  // Rules per sample: uniform in [1, max_rules].
  std::size_t max_rules = 5;
  // Maximum boolean nesting depth of a generated condition.
  std::size_t max_depth = 4;
  // Atom budget per rule (keeps the DNF expansion far from the guard).
  std::size_t max_atoms = 10;
  // Adversarial probes generated per sample.
  std::size_t max_probes = 40;
  // Probability that a rule derives from an earlier rule of the same
  // sample (engineered subsumption / same-condition / overlap).
  double p_derived = 0.30;
  // Probability that a rule carries an update(state_var) action, and that
  // atoms may test state variables (requires schema state vars).
  double p_stateful = 0.35;
  // Symbol pool size for exact-match atoms.
  std::size_t n_symbols = 12;
  // Half the samples compile with domain compression (value-map stages).
  bool vary_compression = true;
};

// One adversarial probe: a full field environment (indexed by FieldId)
// plus the classification timestamp. Probe times within a sample are
// nondecreasing so stateful windows evolve like a real feed.
struct FuzzProbe {
  std::vector<std::uint64_t> fields;
  std::uint64_t now_us = 0;
};

struct FuzzSample {
  std::uint64_t seed = 0;
  std::uint64_t index = 0;
  std::vector<lang::Rule> rules;       // unbound AST (printable source)
  std::vector<lang::BoundRule> bound;  // same rules bound to the schema
  std::vector<FuzzProbe> probes;       // decision-boundary corpus
  bool compress = false;               // compile with domain compression

  // Parseable subscription source, one rule per line — what a reproducer
  // file stores and what the parser round-trip oracle re-reads.
  std::string source() const;
};

class GrammarFuzzer {
 public:
  GrammarFuzzer(const spec::Schema& schema, FuzzParams params = {});

  // Pure function of (params.seed, index); see the determinism contract.
  FuzzSample sample(std::uint64_t index) const;

  // Rebuilds the boundary-targeted probe corpus for an arbitrary bound
  // rule set — the minimizer re-targets the corpus after a structural
  // shrink changes which constants exist.
  std::vector<FuzzProbe> make_probes(
      const std::vector<lang::BoundRule>& bound, util::Rng& rng) const;

  const spec::Schema& schema() const noexcept { return *schema_; }
  const FuzzParams& params() const noexcept { return params_; }
  const std::vector<std::string>& symbol_pool() const noexcept {
    return symbols_;
  }

 private:
  lang::Rule gen_rule(util::Rng& rng,
                      const std::vector<lang::Rule>& earlier,
                      std::vector<std::uint64_t>& shared_consts) const;
  lang::CondPtr gen_cond(util::Rng& rng, std::size_t depth,
                         std::size_t& atom_budget,
                         const std::vector<std::uint64_t>& shared) const;
  lang::PredExpr gen_atom(util::Rng& rng,
                          const std::vector<std::uint64_t>& shared) const;
  std::uint64_t gen_numeric_const(util::Rng& rng, std::uint64_t umax,
                                  const std::vector<std::uint64_t>&
                                      shared) const;

  const spec::Schema* schema_;
  FuzzParams params_;
  std::vector<std::string> symbols_;       // exact-match symbol pool
  std::vector<spec::FieldId> queryable_;   // schema query order
  std::uint64_t min_window_us_ = 0;        // smallest state window (0=none)
};

// --- byte-level fuzz helpers (shared with tests/test_fuzz.cpp) ---------

// Random printable garbage of length <= max_len.
std::string random_text(util::Rng& rng, std::size_t max_len);

// Token soup: min_tokens..max_tokens draws from `tokens`, space-joined —
// input that is lexically plausible but structurally random.
std::string token_soup(util::Rng& rng,
                       std::span<const std::string_view> tokens,
                       std::size_t min_tokens, std::size_t max_tokens);

// One-line repro command for a failing (seed, index) pair — the single
// convention every fuzz failure message uses, grammar- or byte-level.
std::string fuzz_repro_hint(std::uint64_t seed, std::uint64_t index);

}  // namespace camus::workload
