// ITCH subscription generator for the compile-time experiment (Figure 5c):
// subscriptions of the form "stock == S and price > P : fwd(H)", with S one
// of n_symbols stock symbols, P in (0, price_max) and H one of n_hosts end
// hosts.
//
// By default each host uses one fixed price threshold across all of its
// subscriptions (per_host_threshold). This reproduces the paper's reported
// scale — ~21K table entries and ~200 multicast groups at 100K
// subscriptions — because the per-symbol threshold chains then share the
// same global host ordering, so the merged action sets are prefixes of one
// sequence and deduplicate across symbols. With per-subscription random
// thresholds (the ablation setting) the action sets differ per symbol and
// both counts grow substantially.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/bound.hpp"
#include "spec/schema.hpp"

namespace camus::workload {

struct ItchSubsParams {
  std::uint64_t seed = 1;
  std::size_t n_subscriptions = 1000;
  std::size_t n_symbols = 100;
  std::size_t n_hosts = 200;
  std::uint64_t price_max = 1000;
  bool per_host_threshold = true;
  // Cover (host, symbol) pairs round-robin instead of sampling both
  // uniformly. With enough subscriptions every symbol is watched by every
  // host, so the per-symbol threshold chains share one global host
  // ordering and the merged action sets deduplicate switch-wide — the
  // regime the paper reports (~200 multicast groups at 100K
  // subscriptions). Random sampling leaves each symbol missing a few
  // hosts, which multiplies the distinct action sets.
  bool round_robin = true;
};

struct ItchSubscriptions {
  std::vector<lang::BoundRule> rules;
  std::vector<std::string> symbols;  // the symbol universe
};

// Symbol universe used by the ITCH workloads ("STK0".."STK99"-style, plus
// well-known tickers first so examples read naturally).
std::vector<std::string> itch_symbols(std::size_t n);

// `schema` must contain queryable fields named "stock" and "price" (e.g.
// spec::make_itch_schema()).
ItchSubscriptions generate_itch_subscriptions(const spec::Schema& schema,
                                              const ItchSubsParams& params);

}  // namespace camus::workload
