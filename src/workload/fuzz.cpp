#include "workload/fuzz.hpp"

#include <algorithm>
#include <map>

#include "util/intern.hpp"
#include "workload/itch_subs.hpp"

namespace camus::workload {

namespace {

// Mixes (seed, index) into one xoshiro seed. Index is stretched through
// SplitMix so neighbouring indices produce unrelated streams.
std::uint64_t sample_seed(std::uint64_t seed, std::uint64_t index) {
  util::SplitMix64 sm(seed ^ (index * 0x9e3779b97f4a7c15ULL) ^
                      0xc6a4a7935bd1e995ULL);
  (void)sm.next();
  return sm.next();
}

// Collects every constant a bound rule set tests, per subject.
std::map<lang::Subject, std::vector<std::uint64_t>> collect_constants(
    const std::vector<lang::BoundRule>& bound) {
  std::map<lang::Subject, std::vector<std::uint64_t>> out;
  auto walk = [&](auto&& self, const lang::BoundCond& c) -> void {
    switch (c.kind) {
      case lang::BoundCond::Kind::kAtom:
        out[c.atom.subject].push_back(c.atom.value);
        return;
      case lang::BoundCond::Kind::kNot:
        self(self, *c.lhs);
        return;
      case lang::BoundCond::Kind::kAnd:
      case lang::BoundCond::Kind::kOr:
        self(self, *c.lhs);
        self(self, *c.rhs);
        return;
      default:
        return;
    }
  };
  for (const auto& r : bound)
    if (r.cond) walk(walk, *r.cond);
  return out;
}

}  // namespace

std::string FuzzSample::source() const {
  std::string s;
  for (const auto& r : rules) {
    s += r.to_string();
    s += '\n';
  }
  return s;
}

GrammarFuzzer::GrammarFuzzer(const spec::Schema& schema, FuzzParams params)
    : schema_(&schema), params_(params) {
  symbols_ = itch_symbols(params_.n_symbols);
  // Adversarial pool members: 1-char and full-width 8-char symbols.
  symbols_.push_back("A");
  symbols_.push_back("ZZZZZZZZ");
  queryable_ = schema.query_order();
  for (const auto& sv : schema.state_vars()) {
    if (sv.window_us > 0 &&
        (min_window_us_ == 0 || sv.window_us < min_window_us_))
      min_window_us_ = sv.window_us;
  }
}

std::uint64_t GrammarFuzzer::gen_numeric_const(
    util::Rng& rng, std::uint64_t umax,
    const std::vector<std::uint64_t>& shared) const {
  const std::uint64_t r = rng.uniform(0, 99);
  auto clamp = [&](std::uint64_t v) { return v > umax ? umax : v; };
  if (r < 35 && !shared.empty()) return clamp(rng.pick(shared));
  if (r < 45 && !shared.empty()) {
    const std::uint64_t base = clamp(rng.pick(shared));
    return rng.chance(0.5) ? (base == 0 ? 1 : base - 1) : clamp(base + 1);
  }
  if (r < 55) return rng.uniform(0, 1);
  if (r < 65) return umax - rng.uniform(0, 1);
  if (r < 75 && umax < (1ULL << 62)) {
    // Out-of-width literal: the binder must constant-fold, not wrap.
    return umax + 1 + rng.uniform(0, umax);
  }
  return rng.uniform(0, umax);
}

lang::PredExpr GrammarFuzzer::gen_atom(
    util::Rng& rng, const std::vector<std::uint64_t>& shared) const {
  static constexpr lang::CmpOp kOps[] = {
      lang::CmpOp::kEq, lang::CmpOp::kNe, lang::CmpOp::kLt,
      lang::CmpOp::kGt, lang::CmpOp::kLe, lang::CmpOp::kGe};

  lang::PredExpr p;
  const bool has_state = !schema_->state_vars().empty();
  if (has_state && rng.chance(params_.p_stateful * 0.5)) {
    // Stateful atom: register value against a small threshold.
    const auto& sv =
        schema_->state_vars()[rng.uniform(0, schema_->state_vars().size() - 1)];
    const bool macro_form =
        (sv.func == spec::StateFunc::kAvg || sv.func == spec::StateFunc::kSum) &&
        sv.src_field != spec::kInvalidField && rng.chance(0.5);
    if (macro_form) {
      p.subject = schema_->field(sv.src_field).name;
      p.macro = sv.func == spec::StateFunc::kAvg ? lang::AggMacro::kAvg
                                                 : lang::AggMacro::kSum;
    } else {
      p.subject = sv.name;
    }
    p.op = kOps[rng.uniform(0, 5)];
    p.literal.kind = lang::Literal::Kind::kInt;
    // Thresholds a tumbling-window counter/average actually crosses.
    static constexpr std::uint64_t kStateConsts[] = {0, 1, 2, 3, 5, 8, 100};
    p.literal.int_value =
        rng.chance(0.8) ? kStateConsts[rng.uniform(0, 6)]
                        : gen_numeric_const(rng, sv.umax(), shared);
    return p;
  }

  const auto& f = schema_->field(
      queryable_[rng.uniform(0, queryable_.size() - 1)]);
  p.subject = f.name;
  if (f.kind == spec::FieldKind::kSymbol) {
    p.op = rng.chance(0.7) ? lang::CmpOp::kEq : lang::CmpOp::kNe;
    p.literal.kind = lang::Literal::Kind::kSymbol;
    p.literal.text = rng.pick(symbols_);
  } else {
    p.op = kOps[rng.uniform(0, 5)];
    p.literal.kind = lang::Literal::Kind::kInt;
    p.literal.int_value = gen_numeric_const(rng, f.umax(), shared);
  }
  return p;
}

lang::CondPtr GrammarFuzzer::gen_cond(
    util::Rng& rng, std::size_t depth, std::size_t& atom_budget,
    const std::vector<std::uint64_t>& shared) const {
  if (depth == 0 || atom_budget <= 1 || rng.chance(0.35)) {
    if (atom_budget > 0) --atom_budget;
    return lang::Cond::make_atom(gen_atom(rng, shared));
  }
  const std::uint64_t r = rng.uniform(0, 9);
  if (r < 4) {
    auto a = gen_cond(rng, depth - 1, atom_budget, shared);
    auto b = gen_cond(rng, depth - 1, atom_budget, shared);
    return lang::Cond::make_and(std::move(a), std::move(b));
  }
  if (r < 8) {
    auto a = gen_cond(rng, depth - 1, atom_budget, shared);
    auto b = gen_cond(rng, depth - 1, atom_budget, shared);
    return lang::Cond::make_or(std::move(a), std::move(b));
  }
  return lang::Cond::make_not(gen_cond(rng, depth - 1, atom_budget, shared));
}

lang::Rule GrammarFuzzer::gen_rule(
    util::Rng& rng, const std::vector<lang::Rule>& earlier,
    std::vector<std::uint64_t>& shared_consts) const {
  lang::Rule rule;

  auto gen_actions = [&]() {
    std::vector<lang::Action> acts;
    if (rng.chance(0.07)) {
      lang::Action drop;
      drop.kind = lang::Action::Kind::kDrop;
      acts.push_back(std::move(drop));
      return acts;
    }
    lang::Action fwd;
    fwd.kind = lang::Action::Kind::kFwd;
    const std::size_t n_ports = 1 + (rng.chance(0.3) ? rng.uniform(1, 2) : 0);
    for (std::size_t i = 0; i < n_ports; ++i)
      fwd.fwd.ports.push_back(
          static_cast<std::uint16_t>(1 + rng.uniform(0, 7)));
    acts.push_back(std::move(fwd));
    if (!schema_->state_vars().empty() && rng.chance(params_.p_stateful)) {
      lang::Action upd;
      upd.kind = lang::Action::Kind::kUpdate;
      upd.update.state_var =
          schema_->state_vars()[rng.uniform(0,
                                            schema_->state_vars().size() - 1)]
              .name;
      acts.push_back(std::move(upd));
    }
    return acts;
  };

  if (!earlier.empty() && rng.chance(params_.p_derived)) {
    // Engineered relations against an earlier rule: subsumption in either
    // direction, repeated conditions, and complements.
    const lang::Rule& base = rng.pick(earlier);
    switch (rng.uniform(0, 3)) {
      case 0:  // strictly narrower: base_cond AND extra atom
        rule.cond = lang::Cond::make_and(
            base.cond, lang::Cond::make_atom(gen_atom(rng, shared_consts)));
        break;
      case 1:  // identical condition (duplicate / same-condition lint)
        rule.cond = base.cond;
        break;
      case 2:  // strictly wider: base_cond OR extra atom
        rule.cond = lang::Cond::make_or(
            base.cond, lang::Cond::make_atom(gen_atom(rng, shared_consts)));
        break;
      default:  // complement: together with base covers everything
        rule.cond = lang::Cond::make_not(base.cond);
        break;
    }
    // Half the time inherit the base rule's actions so subsumption is
    // real (cond ⊆ AND actions ⊆); otherwise fresh actions (overlap
    // without subsumption).
    rule.actions = rng.chance(0.5) ? base.actions : gen_actions();
    return rule;
  }

  std::size_t budget = params_.max_atoms;
  const std::size_t depth = 1 + rng.uniform(0, params_.max_depth - 1);
  rule.cond = gen_cond(rng, depth, budget, shared_consts);
  rule.actions = gen_actions();
  return rule;
}

FuzzSample GrammarFuzzer::sample(std::uint64_t index) const {
  FuzzSample s;
  s.seed = params_.seed;
  s.index = index;
  util::Rng rng(sample_seed(params_.seed, index));

  // Shared constants engineered to collide/overlap across the sample's
  // rules (adjacent thresholds, duplicated range endpoints).
  std::vector<std::uint64_t> shared = {
      rng.uniform(0, 1000), rng.uniform(0, 1000), rng.uniform(90, 110),
      rng.uniform(0, 0xffffffffULL)};

  const std::size_t n_rules = 1 + rng.uniform(0, params_.max_rules - 1);
  for (std::size_t i = 0; i < n_rules; ++i)
    s.rules.push_back(gen_rule(rng, s.rules, shared));

  for (const auto& r : s.rules) {
    auto b = lang::bind_rule(r, *schema_);
    // Samples are valid by construction; a bind failure is a generator or
    // binder bug and is surfaced by the harness (bound.size() mismatch).
    if (b.ok()) s.bound.push_back(std::move(b).take());
  }

  s.compress = params_.vary_compression && rng.chance(0.5);
  s.probes = make_probes(s.bound, rng);
  return s;
}

std::vector<FuzzProbe> GrammarFuzzer::make_probes(
    const std::vector<lang::BoundRule>& bound, util::Rng& rng) const {
  const auto consts = collect_constants(bound);

  // Per-field candidate pools: every tested constant and its neighbours,
  // plus domain boundaries; symbol fields additionally get unreferenced
  // pool symbols (exact-table miss) and off-by-one non-symbol encodings
  // (hash/probe adjacency).
  const auto& fields = schema_->fields();
  std::vector<std::vector<std::uint64_t>> pools(fields.size());
  for (const auto& f : fields) {
    auto& pool = pools[f.id];
    const std::uint64_t umax = f.umax();
    auto it = consts.find(lang::Subject::field(f.id));
    if (it != consts.end()) {
      for (std::uint64_t c : it->second) {
        const std::uint64_t cc = c > umax ? umax : c;
        pool.push_back(cc);
        if (cc > 0) pool.push_back(cc - 1);
        if (cc < umax) pool.push_back(cc + 1);
        if (f.kind == spec::FieldKind::kSymbol) pool.push_back(cc ^ 1);
      }
    }
    if (f.kind == spec::FieldKind::kSymbol) {
      pool.push_back(util::encode_symbol(rng.pick(symbols_)));
      pool.push_back(util::encode_symbol(rng.pick(symbols_)));
      pool.push_back(util::encode_symbol("MISS"));
    } else {
      pool.push_back(0);
      pool.push_back(umax);
    }
  }

  // Stateful decision boundaries are reached through time: advance the
  // clock by window fractions/multiples so tumbling windows accumulate,
  // sit at their last microsecond, and roll over mid-corpus.
  const std::uint64_t w = min_window_us_ ? min_window_us_ : 100;
  const std::uint64_t steps[] = {0, 0, 1, w / 2, w - 1, w, w + 1, 3 * w};

  std::vector<FuzzProbe> probes;
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < params_.max_probes; ++i) {
    FuzzProbe p;
    p.fields.resize(fields.size());
    for (const auto& f : fields) {
      const auto& pool = pools[f.id];
      p.fields[f.id] = (!pool.empty() && rng.chance(0.75))
                           ? rng.pick(pool)
                           : rng.uniform(0, f.umax());
    }
    now += steps[rng.uniform(0, std::size(steps) - 1)];
    p.now_us = now;
    probes.push_back(std::move(p));
  }
  return probes;
}

// --- byte-level helpers ------------------------------------------------

std::string random_text(util::Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcz_ABCZ019 ().,:;<>=!&|\"\n\t#/*+-@[]{}";
  std::string s;
  const std::size_t n = rng.uniform(0, max_len);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(kAlphabet[rng.uniform(0, sizeof(kAlphabet) - 2)]);
  return s;
}

std::string token_soup(util::Rng& rng,
                       std::span<const std::string_view> tokens,
                       std::size_t min_tokens, std::size_t max_tokens) {
  std::string s;
  const std::size_t n = rng.uniform(min_tokens, max_tokens);
  for (std::size_t i = 0; i < n; ++i) {
    s += tokens[rng.uniform(0, tokens.size() - 1)];
    s += ' ';
  }
  return s;
}

std::string fuzz_repro_hint(std::uint64_t seed, std::uint64_t index) {
  return "camus-fuzz --seed " + std::to_string(seed) + " --only " +
         std::to_string(index);
}

}  // namespace camus::workload
