// Subscription-churn workload: a seeded stream of subscribe/unsubscribe
// operations over the ITCH subscription distributions (itch_subs.hpp),
// driving the live update path (controller commit -> installer delta ->
// switch patch). The paper's §3 motivates exactly this regime: "highly
// dynamic queries would require an incremental algorithm, both to reduce
// compilation time and to minimize the number of state updates in the
// network."
//
// The generator owns the notion of the live set and names rules by a
// stable *slot* id assigned at subscribe time (base rules occupy slots
// 0..base().size()-1). Consumers map slots onto their own handles —
// IncrementalCompiler::SubscriptionId in the bench, a rules vector index
// in the differential test — so one op stream can drive an incremental
// path and a from-scratch oracle identically.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/bound.hpp"
#include "spec/schema.hpp"
#include "util/rng.hpp"
#include "workload/itch_subs.hpp"

namespace camus::workload {

struct ChurnParams {
  std::uint64_t seed = 1;
  // Subscribe probability per op when both moves are legal (an empty live
  // set forces a subscribe). 0.5 holds the live set near its base size.
  double p_subscribe = 0.5;
  // Distributions for the base set and for freshly subscribed rules
  // (n_subscriptions is the base size).
  ItchSubsParams subs;
};

class ChurnGenerator {
 public:
  struct Op {
    bool subscribe = false;
    // Slot id: fresh for a subscribe, a previously live slot for an
    // unsubscribe.
    std::size_t slot = 0;
    lang::BoundRule rule;  // subscribe ops only
  };

  ChurnGenerator(const spec::Schema& schema, ChurnParams params);

  // The base rule set (slots 0..size-1, live before the first next()).
  const std::vector<lang::BoundRule>& base() const noexcept {
    return base_.rules;
  }
  const std::vector<std::string>& symbols() const noexcept {
    return base_.symbols;
  }

  // The next churn op, deterministic from the seed. Unsubscribes evict a
  // uniformly random live slot.
  Op next();

  std::size_t live_count() const noexcept { return live_.size(); }

 private:
  lang::BoundRule make_rule();

  const spec::Schema& schema_;
  ChurnParams params_;
  util::Rng rng_;
  ItchSubscriptions base_;
  std::vector<std::size_t> live_;  // currently subscribed slots
  std::size_t next_slot_ = 0;
  std::uint32_t stock_field_ = 0;
  std::uint32_t price_field_ = 0;
  std::uint64_t price_umax_ = 0;
  std::vector<std::uint64_t> host_threshold_;
};

}  // namespace camus::workload
