#include "workload/siena.hpp"

#include <algorithm>

#include "util/intern.hpp"
#include "util/rng.hpp"

namespace camus::workload {

using lang::BoundCond;
using lang::BoundCondPtr;
using lang::BoundPredicate;
using lang::RelOp;
using lang::Subject;

SienaWorkload generate_siena(const SienaParams& p) {
  util::Rng rng(p.seed);
  SienaWorkload w;

  // Attribute space: s0..s{n-1} (symbol, exact) then n0..n{m-1} (numeric,
  // range). Declared in one header, annotation order = declaration order.
  w.schema.add_header("siena_msg_t", "msg");
  std::vector<spec::FieldId> string_fields, numeric_fields;
  for (std::size_t i = 0; i < p.n_string_attrs; ++i) {
    auto fid = w.schema.add_field("s" + std::to_string(i), 64,
                                  spec::FieldKind::kSymbol);
    w.schema.mark_queryable(fid, spec::MatchHint::kExact);
    string_fields.push_back(fid);
  }
  for (std::size_t i = 0; i < p.n_numeric_attrs; ++i) {
    auto fid = w.schema.add_field("n" + std::to_string(i), 32);
    w.schema.mark_queryable(fid, spec::MatchHint::kRange);
    numeric_fields.push_back(fid);
  }

  w.symbols.reserve(p.n_symbols);
  for (std::size_t i = 0; i < p.n_symbols; ++i)
    w.symbols.push_back("SYM" + std::to_string(i));
  util::ZipfDistribution sym_dist(p.n_symbols, p.symbol_zipf_s);

  const std::size_t n_attrs = p.n_string_attrs + p.n_numeric_attrs;
  const std::size_t k = std::min(p.predicates_per_subscription, n_attrs);

  for (std::size_t s = 0; s < p.n_subscriptions; ++s) {
    // Choose k distinct attributes for the conjunction.
    std::vector<std::size_t> attrs(n_attrs);
    for (std::size_t i = 0; i < n_attrs; ++i) attrs[i] = i;
    rng.shuffle(attrs);
    attrs.resize(k);
    std::sort(attrs.begin(), attrs.end());

    BoundCondPtr cond;
    for (std::size_t a : attrs) {
      BoundPredicate pred;
      if (a < p.n_string_attrs) {
        pred.subject = Subject::field(string_fields[a]);
        pred.op = RelOp::kEq;
        pred.value = util::encode_symbol(w.symbols[sym_dist(rng)]);
      } else {
        pred.subject = Subject::field(numeric_fields[a - p.n_string_attrs]);
        const double roll = rng.uniform01();
        pred.op = roll < p.numeric_eq_fraction ? RelOp::kEq
                  : rng.chance(0.5)            ? RelOp::kLt
                                               : RelOp::kGt;
        pred.value = rng.uniform(1, p.numeric_max - 1);
      }
      auto atom = BoundCond::make_atom(pred);
      cond = cond ? BoundCond::make_and(std::move(cond), std::move(atom))
                  : std::move(atom);
    }

    lang::BoundRule rule;
    rule.cond = std::move(cond);
    rule.actions.add_port(
        static_cast<std::uint16_t>(1 + rng.uniform(0, p.n_ports - 1)));
    w.rules.push_back(std::move(rule));
  }
  return w;
}

}  // namespace camus::workload
