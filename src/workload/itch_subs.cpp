#include "workload/itch_subs.hpp"

#include <stdexcept>

#include "util/intern.hpp"
#include "util/rng.hpp"

namespace camus::workload {

using lang::BoundCond;
using lang::BoundPredicate;
using lang::RelOp;
using lang::Subject;

std::vector<std::string> itch_symbols(std::size_t n) {
  static const std::vector<std::string> kWellKnown = {
      "GOOGL", "AAPL", "MSFT", "AMZN", "ORCL", "INTC", "NVDA", "TSLA",
      "META",  "NFLX", "AMD",  "CSCO", "QCOM", "IBM",  "TXN",  "ADBE"};
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n && i < kWellKnown.size(); ++i)
    out.push_back(kWellKnown[i]);
  for (std::size_t i = out.size(); i < n; ++i)
    out.push_back("STK" + std::to_string(i));
  return out;
}

ItchSubscriptions generate_itch_subscriptions(const spec::Schema& schema,
                                              const ItchSubsParams& p) {
  auto stock = schema.resolve_field("stock");
  auto price = schema.resolve_field("price");
  if (!stock || !price)
    throw std::invalid_argument(
        "ITCH subscription generator needs 'stock' and 'price' fields");

  util::Rng rng(p.seed);
  ItchSubscriptions out;
  out.symbols = itch_symbols(p.n_symbols);

  // Per-host fixed thresholds (see header comment).
  std::vector<std::uint64_t> host_threshold(p.n_hosts);
  for (auto& t : host_threshold) t = rng.uniform(1, p.price_max - 1);

  const std::uint64_t price_umax = schema.field(*price).umax();
  out.rules.reserve(p.n_subscriptions);
  for (std::size_t i = 0; i < p.n_subscriptions; ++i) {
    const std::size_t host =
        p.round_robin ? i % p.n_hosts : rng.uniform(0, p.n_hosts - 1);
    const std::uint64_t threshold = p.per_host_threshold
                                        ? host_threshold[host]
                                        : rng.uniform(1, p.price_max - 1);
    const std::string& sym =
        out.symbols[p.round_robin ? (i / p.n_hosts) % p.n_symbols
                                  : rng.uniform(0, p.n_symbols - 1)];

    BoundPredicate ps{Subject::field(*stock), RelOp::kEq,
                      util::encode_symbol(sym)};
    BoundPredicate pp{Subject::field(*price), RelOp::kGt,
                      threshold & price_umax};

    lang::BoundRule rule;
    rule.cond = BoundCond::make_and(BoundCond::make_atom(ps),
                                    BoundCond::make_atom(pp));
    rule.actions.add_port(static_cast<std::uint16_t>(1 + host));
    out.rules.push_back(std::move(rule));
  }
  return out;
}

}  // namespace camus::workload
