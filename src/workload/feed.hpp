// ITCH market-data feed generators for the end-to-end experiments
// (Figure 7). Two modes:
//
//  - kNasdaqReplay: substitutes the paper's Nasdaq trace (Aug 30 2017).
//    Bursty arrivals (market-open style on/off bursts), Zipf symbol
//    popularity, and a pinned fraction for the watched symbol (the paper
//    reports GOOGL at 0.5% of the trace).
//  - kSynthetic: the paper's synthetic feed — uniform arrivals with the
//    watched symbol pinned at 5%.
//
// Per-symbol prices follow a bounded random walk so stateful (moving
// average) subscriptions see realistic dynamics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proto/itch.hpp"

namespace camus::workload {

enum class FeedMode : std::uint8_t { kNasdaqReplay, kSynthetic };

struct FeedParams {
  std::uint64_t seed = 1;
  FeedMode mode = FeedMode::kSynthetic;
  std::size_t n_messages = 100000;
  std::vector<std::string> symbols;  // defaults to itch_symbols(100)

  std::string watched_symbol = "GOOGL";
  double watched_fraction = 0.05;  // 0.005 for the Nasdaq-replay default
  double zipf_s = 1.0;             // popularity skew of the other symbols

  double rate_msgs_per_sec = 100000;  // mean offered load
  // kNasdaqReplay burst model: alternating on/off phases; bursts run at
  // burst_factor times the base rate.
  double burst_factor = 10.0;
  double burst_on_ms = 5.0;
  double burst_off_ms = 20.0;

  std::uint64_t price_min = 100'0000;   // $100.00 in 4-decimal fixed point
  std::uint64_t price_max = 2000'0000;  // $2000.00
  std::uint32_t shares_min = 1;
  std::uint32_t shares_max = 1000;
};

struct FeedMessage {
  std::uint64_t t_us = 0;  // arrival time at the publisher
  proto::ItchAddOrder msg;
};

struct Feed {
  std::vector<FeedMessage> messages;  // sorted by t_us
  std::size_t watched_count = 0;      // messages for the watched symbol
};

Feed generate_feed(const FeedParams& params);

// A fully-encoded ingress frame plus the arrival time of its last packed
// message — the input unit for switchsim::Switch::process_batch and the
// replay harness.
struct PackedFrame {
  std::uint64_t t_us = 0;
  std::vector<std::uint8_t> bytes;
  // Messages packed into this frame (the trailing frame may carry fewer
  // than msgs_per_frame). Latency harnesses weight per-call timings by
  // this so partial batches don't skew per-message percentiles.
  std::uint32_t n_msgs = 0;
};

// Packs the feed into MoldUDP64 market-data frames, msgs_per_frame
// messages per packet (trailing frame may be short), with contiguous
// sequence numbers starting at 1 — the same framing a Publisher produces.
std::vector<PackedFrame> pack_feed_frames(const Feed& feed,
                                          std::size_t msgs_per_frame = 4,
                                          const std::string& session =
                                              "CAMUS00001");

}  // namespace camus::workload
