#include "workload/feed.hpp"

#include <algorithm>

#include "proto/packet.hpp"
#include "util/rng.hpp"
#include "workload/itch_subs.hpp"

namespace camus::workload {

Feed generate_feed(const FeedParams& p) {
  util::Rng rng(p.seed);
  Feed feed;
  feed.messages.reserve(p.n_messages);

  std::vector<std::string> symbols =
      p.symbols.empty() ? itch_symbols(100) : p.symbols;
  // Ensure the watched symbol exists and find the "others" universe.
  std::vector<std::size_t> others;
  others.reserve(symbols.size());
  std::size_t watched_idx = symbols.size();
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i] == p.watched_symbol)
      watched_idx = i;
    else
      others.push_back(i);
  }
  if (watched_idx == symbols.size()) {
    watched_idx = symbols.size();
    symbols.push_back(p.watched_symbol);
  }
  util::ZipfDistribution other_dist(std::max<std::size_t>(others.size(), 1),
                                    p.zipf_s);

  // Per-symbol random-walk price state.
  std::vector<std::uint64_t> price(symbols.size());
  for (auto& v : price) v = rng.uniform(p.price_min, p.price_max);

  // Arrival process.
  const double base_gap_us = 1e6 / p.rate_msgs_per_sec;
  double t_us = 0;
  bool in_burst = false;
  double phase_end_us = 0;

  std::uint64_t order_ref = 1;
  for (std::size_t i = 0; i < p.n_messages; ++i) {
    double gap;
    if (p.mode == FeedMode::kNasdaqReplay) {
      if (t_us >= phase_end_us) {
        in_burst = !in_burst;
        phase_end_us =
            t_us + (in_burst ? p.burst_on_ms : p.burst_off_ms) * 1e3;
      }
      const double rate_scale = in_burst ? p.burst_factor : 0.2;
      gap = rng.exponential(base_gap_us / rate_scale);
    } else {
      gap = rng.exponential(base_gap_us);
    }
    t_us += gap;

    // Pick the symbol: watched fraction first, Zipf over the rest.
    std::size_t sym_idx;
    if (rng.chance(p.watched_fraction) || others.empty()) {
      sym_idx = watched_idx;
      ++feed.watched_count;
    } else {
      sym_idx = others[other_dist(rng)];
    }

    // Bounded +/-0.5% random-walk price step.
    std::uint64_t& px = price[sym_idx];
    const std::uint64_t step = std::max<std::uint64_t>(px / 200, 1);
    px = rng.chance(0.5) ? px + rng.uniform(0, step)
                         : px - std::min(px - 1, rng.uniform(0, step));
    px = std::clamp(px, p.price_min, p.price_max);

    FeedMessage fm;
    fm.t_us = static_cast<std::uint64_t>(t_us);
    fm.msg.stock_locate = static_cast<std::uint16_t>(sym_idx);
    fm.msg.tracking = 0;
    fm.msg.timestamp_ns = fm.t_us * 1000;
    fm.msg.order_ref = order_ref++;
    fm.msg.side = rng.chance(0.5) ? 'B' : 'S';
    fm.msg.shares = static_cast<std::uint32_t>(
        rng.uniform(p.shares_min, p.shares_max));
    fm.msg.stock = symbols[sym_idx];
    fm.msg.price = static_cast<std::uint32_t>(px);
    feed.messages.push_back(std::move(fm));
  }
  return feed;
}

std::vector<PackedFrame> pack_feed_frames(const Feed& feed,
                                          std::size_t msgs_per_frame,
                                          const std::string& session) {
  proto::EthernetHeader eth;
  eth.dst = 0x01005e000001ULL;  // IP multicast group MAC
  eth.src = 0x0200c0ffee01ULL;
  constexpr std::uint32_t kPublisherIp = 0x0a000001;  // 10.0.0.1
  constexpr std::uint32_t kFeedGroupIp = 0xe8010101;  // 232.1.1.1

  proto::MoldUdp64Header mold;
  mold.session = session;
  std::uint64_t sequence = 1;

  const std::size_t per = std::max<std::size_t>(msgs_per_frame, 1);
  std::vector<PackedFrame> out;
  out.reserve((feed.messages.size() + per - 1) / per);
  std::vector<proto::ItchAddOrder> msgs;
  msgs.reserve(per);
  for (std::size_t i = 0; i < feed.messages.size(); i += per) {
    const std::size_t end = std::min(i + per, feed.messages.size());
    msgs.clear();
    for (std::size_t j = i; j < end; ++j)
      msgs.push_back(feed.messages[j].msg);
    mold.sequence = sequence;
    sequence += msgs.size();
    PackedFrame pf;
    pf.t_us = feed.messages[end - 1].t_us;
    pf.n_msgs = static_cast<std::uint32_t>(msgs.size());
    pf.bytes = proto::encode_market_data_packet(eth, kPublisherIp,
                                                kFeedGroupIp, mold, msgs);
    out.push_back(std::move(pf));
  }
  return out;
}

}  // namespace camus::workload
