#include "workload/churn.hpp"

#include <stdexcept>

#include "util/intern.hpp"

namespace camus::workload {

using lang::BoundCond;
using lang::BoundPredicate;
using lang::RelOp;
using lang::Subject;

ChurnGenerator::ChurnGenerator(const spec::Schema& schema, ChurnParams params)
    : schema_(schema), params_(params), rng_(params.seed) {
  auto stock = schema.resolve_field("stock");
  auto price = schema.resolve_field("price");
  if (!stock || !price)
    throw std::invalid_argument(
        "churn generator needs 'stock' and 'price' fields");
  stock_field_ = *stock;
  price_field_ = *price;
  price_umax_ = schema.field(price_field_).umax();

  base_ = generate_itch_subscriptions(schema, params_.subs);
  live_.reserve(base_.rules.size());
  for (std::size_t i = 0; i < base_.rules.size(); ++i) live_.push_back(i);
  next_slot_ = base_.rules.size();

  // Fresh subscriptions reuse the base workload's per-host thresholds, so
  // churned rules stay inside the same action-set-sharing regime as the
  // base set (see itch_subs.hpp on why that matches the paper's scale).
  host_threshold_.resize(params_.subs.n_hosts);
  for (auto& t : host_threshold_)
    t = rng_.uniform(1, params_.subs.price_max - 1);
}

lang::BoundRule ChurnGenerator::make_rule() {
  const std::size_t host = rng_.uniform(0, params_.subs.n_hosts - 1);
  const std::uint64_t threshold =
      params_.subs.per_host_threshold
          ? host_threshold_[host]
          : rng_.uniform(1, params_.subs.price_max - 1);
  const std::string& sym =
      base_.symbols[rng_.uniform(0, base_.symbols.size() - 1)];

  BoundPredicate ps{Subject::field(stock_field_), RelOp::kEq,
                    util::encode_symbol(sym)};
  BoundPredicate pp{Subject::field(price_field_), RelOp::kGt,
                    threshold & price_umax_};
  lang::BoundRule rule;
  rule.cond = BoundCond::make_and(BoundCond::make_atom(ps),
                                  BoundCond::make_atom(pp));
  rule.actions.add_port(static_cast<std::uint16_t>(1 + host));
  return rule;
}

ChurnGenerator::Op ChurnGenerator::next() {
  Op op;
  const bool subscribe =
      live_.empty() ||
      rng_.uniform(0, 999) < static_cast<std::uint64_t>(
                                 params_.p_subscribe * 1000.0);
  if (subscribe) {
    op.subscribe = true;
    op.slot = next_slot_++;
    op.rule = make_rule();
    live_.push_back(op.slot);
  } else {
    const std::size_t pick = rng_.uniform(0, live_.size() - 1);
    op.subscribe = false;
    op.slot = live_[pick];
    live_[pick] = live_.back();
    live_.pop_back();
  }
  return op;
}

}  // namespace camus::workload
