// Bound rules: the parser's AST resolved against a spec::Schema.
//  - subjects become typed ids (header field or state variable),
//  - symbol literals become their 64-bit wire encodings,
//  - !=, <=, >= desugar into negations of the three canonical operators
//    (==, <, >) from the paper's grammar,
//  - comparisons that are constant for the field's width (e.g. x < 2^33 on
//    a 32-bit field) fold to true/false.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "spec/schema.hpp"
#include "util/result.hpp"

namespace camus::lang {

// What a predicate tests: a packet header field or a state variable. State
// variables are compiled as an extra "field" read from registers into
// metadata at pipeline entry, so most of the compiler treats the two
// uniformly through this type.
struct Subject {
  enum class Kind : std::uint8_t { kField, kState };
  Kind kind = Kind::kField;
  std::uint32_t id = 0;

  static Subject field(spec::FieldId f) { return {Kind::kField, f}; }
  static Subject state(std::uint32_t s) { return {Kind::kState, s}; }

  friend auto operator<=>(const Subject&, const Subject&) = default;
};

// Canonical relational operators (paper Figure 1).
enum class RelOp : std::uint8_t { kEq, kLt, kGt };

std::string to_string(RelOp op);

struct BoundPredicate {
  Subject subject;
  RelOp op = RelOp::kEq;
  std::uint64_t value = 0;

  friend auto operator<=>(const BoundPredicate&,
                          const BoundPredicate&) = default;
};

// The set of actions a packet receives; terminals of the multi-terminal BDD.
// Overlapping rules merge by set union (paper: fwd(1) + fwd(2) -> fwd(1,2)).
// An empty ActionSet means drop.
struct ActionSet {
  std::vector<std::uint16_t> ports;          // sorted, unique
  std::vector<std::uint32_t> state_updates;  // sorted, unique state-var ids

  bool is_drop() const noexcept {
    return ports.empty() && state_updates.empty();
  }

  void add_port(std::uint16_t p);
  void add_update(std::uint32_t var);
  void merge(const ActionSet& other);

  std::string to_string() const;

  friend auto operator<=>(const ActionSet&, const ActionSet&) = default;
};

struct BoundCond;
using BoundCondPtr = std::shared_ptr<const BoundCond>;

struct BoundCond {
  enum class Kind : std::uint8_t { kAnd, kOr, kNot, kAtom, kTrue, kFalse };
  Kind kind = Kind::kAtom;
  BoundCondPtr lhs;
  BoundCondPtr rhs;
  BoundPredicate atom;

  static BoundCondPtr make_atom(BoundPredicate p);
  static BoundCondPtr make_and(BoundCondPtr a, BoundCondPtr b);
  static BoundCondPtr make_or(BoundCondPtr a, BoundCondPtr b);
  static BoundCondPtr make_not(BoundCondPtr a);
  static BoundCondPtr make_const(bool v);

  std::string to_string(const spec::Schema* schema = nullptr) const;
};

struct BoundRule {
  BoundCondPtr cond;
  ActionSet actions;
};

// Packet/state values a condition is evaluated against.
struct Env {
  std::vector<std::uint64_t> fields;  // indexed by spec::FieldId
  std::vector<std::uint64_t> states;  // indexed by state-variable id

  std::uint64_t get(Subject s) const {
    return s.kind == Subject::Kind::kField ? fields.at(s.id)
                                           : states.at(s.id);
  }
};

bool eval_pred(const BoundPredicate& p, const Env& env);
bool eval_cond(const BoundCond& c, const Env& env);

// Binds a parsed rule against the schema. Fails on unknown fields/state
// variables, order comparisons on symbol fields, or symbol literals used
// with numeric fields.
util::Result<BoundRule> bind_rule(const Rule& rule, const spec::Schema& schema);

util::Result<std::vector<BoundRule>> bind_rules(const std::vector<Rule>& rules,
                                                const spec::Schema& schema);

// Largest representable value for the subject (field width or register
// width).
std::uint64_t subject_umax(Subject s, const spec::Schema& schema);

}  // namespace camus::lang
