#include "lang/bound.hpp"

#include <algorithm>
#include <sstream>

#include "util/intern.hpp"

namespace camus::lang {

using util::Error;
using util::Result;

std::string to_string(RelOp op) {
  switch (op) {
    case RelOp::kEq: return "==";
    case RelOp::kLt: return "<";
    case RelOp::kGt: return ">";
  }
  return "?";
}

void ActionSet::add_port(std::uint16_t p) {
  auto it = std::lower_bound(ports.begin(), ports.end(), p);
  if (it == ports.end() || *it != p) ports.insert(it, p);
}

void ActionSet::add_update(std::uint32_t var) {
  auto it = std::lower_bound(state_updates.begin(), state_updates.end(), var);
  if (it == state_updates.end() || *it != var) state_updates.insert(it, var);
}

void ActionSet::merge(const ActionSet& other) {
  for (auto p : other.ports) add_port(p);
  for (auto v : other.state_updates) add_update(v);
}

std::string ActionSet::to_string() const {
  if (is_drop()) return "drop()";
  std::ostringstream os;
  if (!ports.empty()) {
    os << "fwd(";
    for (std::size_t i = 0; i < ports.size(); ++i) {
      if (i) os << ",";
      os << ports[i];
    }
    os << ")";
  }
  for (std::size_t i = 0; i < state_updates.size(); ++i) {
    if (!ports.empty() || i) os << "; ";
    os << "update(#" << state_updates[i] << ")";
  }
  return os.str();
}

BoundCondPtr BoundCond::make_atom(BoundPredicate p) {
  auto c = std::make_shared<BoundCond>();
  c->kind = Kind::kAtom;
  c->atom = p;
  return c;
}

BoundCondPtr BoundCond::make_and(BoundCondPtr a, BoundCondPtr b) {
  auto c = std::make_shared<BoundCond>();
  c->kind = Kind::kAnd;
  c->lhs = std::move(a);
  c->rhs = std::move(b);
  return c;
}

BoundCondPtr BoundCond::make_or(BoundCondPtr a, BoundCondPtr b) {
  auto c = std::make_shared<BoundCond>();
  c->kind = Kind::kOr;
  c->lhs = std::move(a);
  c->rhs = std::move(b);
  return c;
}

BoundCondPtr BoundCond::make_not(BoundCondPtr a) {
  auto c = std::make_shared<BoundCond>();
  c->kind = Kind::kNot;
  c->lhs = std::move(a);
  return c;
}

BoundCondPtr BoundCond::make_const(bool v) {
  auto c = std::make_shared<BoundCond>();
  c->kind = v ? Kind::kTrue : Kind::kFalse;
  return c;
}

std::string BoundCond::to_string(const spec::Schema* schema) const {
  auto subj_name = [&](Subject s) -> std::string {
    if (!schema) {
      return (s.kind == Subject::Kind::kField ? "f" : "v") +
             std::to_string(s.id);
    }
    return s.kind == Subject::Kind::kField ? schema->field(s.id).path()
                                           : schema->state_var(s.id).name;
  };
  switch (kind) {
    case Kind::kTrue: return "true";
    case Kind::kFalse: return "false";
    case Kind::kAtom:
      return subj_name(atom.subject) + " " + lang::to_string(atom.op) + " " +
             std::to_string(atom.value);
    case Kind::kNot:
      return "!(" + lhs->to_string(schema) + ")";
    case Kind::kAnd:
      return "(" + lhs->to_string(schema) + " and " + rhs->to_string(schema) +
             ")";
    case Kind::kOr:
      return "(" + lhs->to_string(schema) + " or " + rhs->to_string(schema) +
             ")";
  }
  return "?";
}

bool eval_pred(const BoundPredicate& p, const Env& env) {
  const std::uint64_t v = env.get(p.subject);
  switch (p.op) {
    case RelOp::kEq: return v == p.value;
    case RelOp::kLt: return v < p.value;
    case RelOp::kGt: return v > p.value;
  }
  return false;
}

bool eval_cond(const BoundCond& c, const Env& env) {
  switch (c.kind) {
    case BoundCond::Kind::kTrue: return true;
    case BoundCond::Kind::kFalse: return false;
    case BoundCond::Kind::kAtom: return eval_pred(c.atom, env);
    case BoundCond::Kind::kNot: return !eval_cond(*c.lhs, env);
    case BoundCond::Kind::kAnd:
      return eval_cond(*c.lhs, env) && eval_cond(*c.rhs, env);
    case BoundCond::Kind::kOr:
      return eval_cond(*c.lhs, env) || eval_cond(*c.rhs, env);
  }
  return false;
}

std::uint64_t subject_umax(Subject s, const spec::Schema& schema) {
  return s.kind == Subject::Kind::kField ? schema.field(s.id).umax()
                                         : schema.state_var(s.id).umax();
}

namespace {

// Builds the bound condition for one atom, folding width-constant
// comparisons to true/false.
Result<BoundCondPtr> bind_atom(const PredExpr& p, const spec::Schema& schema) {
  Subject subj;
  bool is_symbol_field = false;

  if (p.macro) {
    const spec::StateFunc func =
        *p.macro == AggMacro::kAvg   ? spec::StateFunc::kAvg
        : *p.macro == AggMacro::kSum ? spec::StateFunc::kSum
        : *p.macro == AggMacro::kMin ? spec::StateFunc::kMin
                                     : spec::StateFunc::kMax;
    auto sid = schema.resolve_macro(func, p.subject);
    if (!sid) {
      return Error{"no declared state variable matches macro '" +
                   p.to_string() +
                   "' (declare it with @query_avg/@query_sum/"
                   "@query_min/@query_max)"};
    }
    subj = Subject::state(*sid);
  } else if (auto fid = schema.resolve_field(p.subject)) {
    const auto& f = schema.field(*fid);
    if (!f.queryable) {
      return Error{"field '" + p.subject +
                   "' is not annotated as queryable (@query_field)"};
    }
    subj = Subject::field(*fid);
    is_symbol_field = f.kind == spec::FieldKind::kSymbol;
  } else if (auto sid = schema.resolve_state_var(p.subject)) {
    subj = Subject::state(*sid);
  } else {
    return Error{"unknown field or state variable '" + p.subject + "'"};
  }

  // Resolve the literal value.
  std::uint64_t value = 0;
  if (p.literal.kind == Literal::Kind::kSymbol) {
    if (!is_symbol_field) {
      return Error{"symbol literal '" + p.literal.text +
                   "' used with non-symbol subject '" + p.subject + "'"};
    }
    if (p.literal.text.size() > 8) {
      return Error{"symbol '" + p.literal.text + "' exceeds 8 characters"};
    }
    value = util::encode_symbol(p.literal.text);
  } else {
    if (is_symbol_field) {
      return Error{"numeric literal used with symbol field '" + p.subject +
                   "'"};
    }
    value = p.literal.int_value;
  }

  if (is_symbol_field && p.op != CmpOp::kEq && p.op != CmpOp::kNe) {
    return Error{"symbol field '" + p.subject +
                 "' supports only == and != comparisons"};
  }

  const std::uint64_t umax = subject_umax(subj, schema);

  // Canonicalize to {==, <, >} with optional negation, folding comparisons
  // that are constant over the subject's domain [0, umax].
  auto atom = [&](RelOp op, std::uint64_t v) {
    return BoundCond::make_atom(BoundPredicate{subj, op, v});
  };
  switch (p.op) {
    case CmpOp::kEq:
      if (value > umax) return BoundCond::make_const(false);
      return atom(RelOp::kEq, value);
    case CmpOp::kNe:
      if (value > umax) return BoundCond::make_const(true);
      return BoundCond::make_not(atom(RelOp::kEq, value));
    case CmpOp::kLt:
      if (value == 0) return BoundCond::make_const(false);
      if (value > umax) return BoundCond::make_const(true);
      return atom(RelOp::kLt, value);
    case CmpOp::kGt:
      if (value >= umax) return BoundCond::make_const(false);
      return atom(RelOp::kGt, value);
    case CmpOp::kLe:  // x <= v  ==  !(x > v)
      if (value >= umax) return BoundCond::make_const(true);
      return BoundCond::make_not(atom(RelOp::kGt, value));
    case CmpOp::kGe:  // x >= v  ==  !(x < v)
      if (value == 0) return BoundCond::make_const(true);
      if (value > umax) return BoundCond::make_const(false);
      return BoundCond::make_not(atom(RelOp::kLt, value));
  }
  return Error{"unreachable comparison operator"};
}

Result<BoundCondPtr> bind_cond(const Cond& c, const spec::Schema& schema) {
  switch (c.kind) {
    case Cond::Kind::kAtom:
      return bind_atom(c.atom, schema);
    case Cond::Kind::kNot: {
      auto inner = bind_cond(*c.lhs, schema);
      if (!inner.ok()) return inner;
      return BoundCond::make_not(std::move(inner).take());
    }
    case Cond::Kind::kAnd:
    case Cond::Kind::kOr: {
      auto a = bind_cond(*c.lhs, schema);
      if (!a.ok()) return a;
      auto b = bind_cond(*c.rhs, schema);
      if (!b.ok()) return b;
      return c.kind == Cond::Kind::kAnd
                 ? BoundCond::make_and(std::move(a).take(), std::move(b).take())
                 : BoundCond::make_or(std::move(a).take(), std::move(b).take());
    }
  }
  return Error{"unreachable condition kind"};
}

}  // namespace

Result<BoundRule> bind_rule(const Rule& rule, const spec::Schema& schema) {
  if (!rule.cond) return Error{"rule has no condition"};
  auto cond = bind_cond(*rule.cond, schema);
  if (!cond.ok()) return cond.error();

  BoundRule out;
  out.cond = std::move(cond).take();
  for (const auto& a : rule.actions) {
    switch (a.kind) {
      case Action::Kind::kDrop:
        break;  // drop is the absence of actions
      case Action::Kind::kFwd:
        for (auto p : a.fwd.ports) out.actions.add_port(p);
        break;
      case Action::Kind::kUpdate: {
        auto sid = schema.resolve_state_var(a.update.state_var);
        if (!sid) {
          return Error{"unknown state variable '" + a.update.state_var + "'"};
        }
        out.actions.add_update(*sid);
        break;
      }
    }
  }
  return out;
}

Result<std::vector<BoundRule>> bind_rules(const std::vector<Rule>& rules,
                                          const spec::Schema& schema) {
  std::vector<BoundRule> out;
  out.reserve(rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    auto r = bind_rule(rules[i], schema);
    if (!r.ok()) {
      Error e = r.error();
      e.message = "rule " + std::to_string(i + 1) + ": " + e.message;
      return e;
    }
    out.push_back(std::move(r).take());
  }
  return out;
}

}  // namespace camus::lang
