#include "lang/dnf.hpp"

#include <sstream>

namespace camus::lang {

using util::Error;
using util::IntervalSet;
using util::Result;

std::string Conjunction::to_string() const {
  if (is_true()) return "true";
  std::ostringstream os;
  bool first = true;
  for (const auto& [subj, set] : constraints) {
    if (!first) os << " and ";
    first = false;
    os << (subj.kind == Subject::Kind::kField ? "f" : "v") << subj.id
       << " in " << set.to_string();
  }
  return os.str();
}

IntervalSet predicate_values(RelOp op, std::uint64_t value, bool positive,
                             std::uint64_t umax) {
  IntervalSet s;
  switch (op) {
    case RelOp::kEq:
      s = IntervalSet::point(value);
      break;
    case RelOp::kLt:
      s = IntervalSet::less_than(value);
      break;
    case RelOp::kGt:
      s = IntervalSet::greater_than(value, umax);
      break;
  }
  s = s.intersect(IntervalSet::all(umax));
  return positive ? s : s.complement(umax);
}

namespace {

// Merges an atomic constraint into a conjunction. Returns false if the
// result is unsatisfiable.
bool add_constraint(Conjunction& c, Subject subj, const IntervalSet& vals,
                    std::uint64_t umax) {
  if (vals.is_all(umax)) return true;  // no information
  auto it = c.constraints.find(subj);
  if (it == c.constraints.end()) {
    if (vals.is_empty()) return false;
    c.constraints.emplace(subj, vals);
    return true;
  }
  IntervalSet merged = it->second.intersect(vals);
  if (merged.is_empty()) return false;
  if (merged.is_all(umax)) {
    c.constraints.erase(it);
  } else {
    it->second = std::move(merged);
  }
  return true;
}

struct DnfBuilder {
  const spec::Schema& schema;
  std::size_t max_terms;

  // Recursive DNF with negation tracked by `positive`.
  Result<std::vector<Conjunction>> build(const BoundCond& c, bool positive) {
    switch (c.kind) {
      case BoundCond::Kind::kTrue:
        return constant(positive);
      case BoundCond::Kind::kFalse:
        return constant(!positive);
      case BoundCond::Kind::kNot:
        return build(*c.lhs, !positive);
      case BoundCond::Kind::kAtom: {
        const std::uint64_t umax = subject_umax(c.atom.subject, schema);
        const IntervalSet vals =
            predicate_values(c.atom.op, c.atom.value, positive, umax);
        if (vals.is_empty()) return std::vector<Conjunction>{};
        Conjunction conj;
        if (!vals.is_all(umax)) conj.constraints.emplace(c.atom.subject, vals);
        return std::vector<Conjunction>{std::move(conj)};
      }
      case BoundCond::Kind::kAnd:
      case BoundCond::Kind::kOr: {
        // De Morgan under negation: !(a and b) == !a or !b.
        const bool is_and = (c.kind == BoundCond::Kind::kAnd) == positive;
        auto a = build(*c.lhs, positive);
        if (!a.ok()) return a;
        auto b = build(*c.rhs, positive);
        if (!b.ok()) return b;
        if (is_and) return conjoin(a.value(), b.value());
        auto out = std::move(a).take();
        auto& bv = b.value();
        out.insert(out.end(), bv.begin(), bv.end());
        if (out.size() > max_terms) return too_big();
        return out;
      }
    }
    return Error{"unreachable condition kind"};
  }

  std::vector<Conjunction> constant(bool v) const {
    if (!v) return {};
    return {Conjunction{}};  // single always-true term
  }

  Error too_big() const {
    return Error{"DNF expansion exceeds " + std::to_string(max_terms) +
                 " terms"};
  }

  Result<std::vector<Conjunction>> conjoin(
      const std::vector<Conjunction>& as, const std::vector<Conjunction>& bs) {
    std::vector<Conjunction> out;
    for (const auto& a : as) {
      for (const auto& b : bs) {
        Conjunction merged = a;
        bool sat = true;
        for (const auto& [subj, vals] : b.constraints) {
          if (!add_constraint(merged, subj, vals,
                              subject_umax(subj, schema))) {
            sat = false;
            break;
          }
        }
        if (!sat) continue;
        out.push_back(std::move(merged));
        if (out.size() > max_terms) return too_big();
      }
    }
    return out;
  }
};

}  // namespace

Result<std::vector<Conjunction>> to_dnf(const BoundCondPtr& cond,
                                        const spec::Schema& schema,
                                        std::size_t max_terms) {
  if (!cond) return Error{"null condition"};
  DnfBuilder b{schema, max_terms};
  return b.build(*cond, /*positive=*/true);
}

Result<FlatRule> flatten_rule(const BoundRule& rule, const spec::Schema& schema,
                              std::size_t max_terms) {
  auto terms = to_dnf(rule.cond, schema, max_terms);
  if (!terms.ok()) return terms.error();
  FlatRule out;
  out.terms = std::move(terms).take();
  out.actions = rule.actions;
  return out;
}

Result<std::vector<FlatRule>> flatten_rules(const std::vector<BoundRule>& rules,
                                            const spec::Schema& schema,
                                            std::size_t max_terms) {
  std::vector<FlatRule> out;
  out.reserve(rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    auto r = flatten_rule(rules[i], schema, max_terms);
    if (!r.ok()) {
      Error e = r.error();
      e.message = "rule " + std::to_string(i + 1) + ": " + e.message;
      return e;
    }
    out.push_back(std::move(r).take());
  }
  return out;
}

bool eval_conjunction(const Conjunction& c, const Env& env) {
  for (const auto& [subj, set] : c.constraints) {
    if (!set.contains(env.get(subj))) return false;
  }
  return true;
}

bool eval_flat_rule(const FlatRule& r, const Env& env) {
  for (const auto& t : r.terms) {
    if (eval_conjunction(t, env)) return true;
  }
  return false;
}

}  // namespace camus::lang
