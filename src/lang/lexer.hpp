// Tokenizer for the subscription language. Kept separate from the parser so
// tests can exercise token-level behaviour (IPv4 literals, quoted symbols,
// operator spellings) in isolation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace camus::lang {

struct Token {
  enum class Kind : std::uint8_t {
    kIdent,     // stock, add_order, GOOGL
    kNumber,    // 42
    kString,    // "GOOGL"
    kIpv4,      // 192.168.0.1 (value folded into number)
    kCmp,       // == != < > <= >=
    kAnd,       // and &&
    kOr,        // or ||
    kNot,       // not !
    kLParen,    // (
    kRParen,    // )
    kColon,     // :
    kSemi,      // ;
    kComma,     // ,
    kDot,       // .
    kAssign,    // = (for "var = update()" form)
    kEnd,
  };

  Kind kind = Kind::kEnd;
  std::string text;            // source spelling
  std::uint64_t number = 0;    // kNumber / kIpv4
  int line = 1;
  int column = 1;
};

// Tokenizes the whole input. '#' and '//' start line comments.
util::Result<std::vector<Token>> tokenize(std::string_view src);

}  // namespace camus::lang
