#include "lang/lexer.hpp"

#include <cctype>

namespace camus::lang {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

util::Result<std::vector<Token>> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t pos = 0;
  int line = 1, col = 1;

  auto advance = [&](std::size_t n = 1) {
    for (std::size_t i = 0; i < n && pos < src.size(); ++i) {
      if (src[pos] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++pos;
    }
  };
  auto peek = [&](std::size_t off = 0) -> char {
    return pos + off < src.size() ? src[pos + off] : '\0';
  };
  auto push = [&](Token::Kind k, std::string text, std::uint64_t num = 0) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.number = num;
    t.line = line;
    t.column = col;
    out.push_back(std::move(t));
  };
  auto fail = [&](std::string msg) {
    return util::Error{std::move(msg), line, col};
  };

  while (pos < src.size()) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (pos < src.size() && peek() != '\n') advance();
      continue;
    }
    if (is_ident_start(c)) {
      const int tl = line, tc = col;
      std::string s;
      while (pos < src.size() && is_ident_char(peek())) {
        s.push_back(peek());
        advance();
      }
      Token t;
      t.line = tl;
      t.column = tc;
      if (s == "and") {
        t.kind = Token::Kind::kAnd;
      } else if (s == "or") {
        t.kind = Token::Kind::kOr;
      } else if (s == "not") {
        t.kind = Token::Kind::kNot;
      } else {
        t.kind = Token::Kind::kIdent;
      }
      t.text = std::move(s);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Number, or IPv4 dotted quad (distinguished by <digits>.<digits>).
      const int tl = line, tc = col;
      std::uint64_t v = 0;
      std::string text;
      bool overflow = false;
      while (pos < src.size() &&
             std::isdigit(static_cast<unsigned char>(peek()))) {
        const std::uint64_t d = static_cast<std::uint64_t>(peek() - '0');
        if (v > (~0ULL - d) / 10) overflow = true;
        v = v * 10 + d;
        text.push_back(peek());
        advance();
      }
      if (overflow) return fail("integer literal overflows 64 bits");
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        // IPv4 literal: exactly four octets.
        std::uint64_t addr = v;
        if (v > 255) return fail("invalid IPv4 literal");
        text.push_back('.');
        advance();  // consume '.'
        int octets = 1;
        for (;;) {
          std::uint64_t o = 0;
          if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("invalid IPv4 literal");
          while (std::isdigit(static_cast<unsigned char>(peek()))) {
            o = o * 10 + static_cast<std::uint64_t>(peek() - '0');
            if (o > 255) return fail("IPv4 octet out of range");
            text.push_back(peek());
            advance();
          }
          addr = (addr << 8) | o;
          ++octets;
          if (peek() == '.' &&
              std::isdigit(static_cast<unsigned char>(peek(1)))) {
            text.push_back('.');
            advance();
            continue;
          }
          break;
        }
        if (octets != 4) return fail("IPv4 literal must have four octets");
        Token t;
        t.kind = Token::Kind::kIpv4;
        t.text = std::move(text);
        t.number = addr;
        t.line = tl;
        t.column = tc;
        out.push_back(std::move(t));
      } else {
        Token t;
        t.kind = Token::Kind::kNumber;
        t.text = std::move(text);
        t.number = v;
        t.line = tl;
        t.column = tc;
        out.push_back(std::move(t));
      }
      continue;
    }
    if (c == '"') {
      const int tl = line, tc = col;
      advance();
      std::string s;
      while (pos < src.size() && peek() != '"' && peek() != '\n') {
        s.push_back(peek());
        advance();
      }
      if (peek() != '"') return fail("unterminated string literal");
      advance();
      Token t;
      t.kind = Token::Kind::kString;
      t.text = std::move(s);
      t.line = tl;
      t.column = tc;
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '=':
        if (peek(1) == '=') {
          push(Token::Kind::kCmp, "==");
          advance(2);
        } else {
          push(Token::Kind::kAssign, "=");
          advance();
        }
        break;
      case '!':
        if (peek(1) == '=') {
          push(Token::Kind::kCmp, "!=");
          advance(2);
        } else {
          push(Token::Kind::kNot, "!");
          advance();
        }
        break;
      case '<':
        if (peek(1) == '=') {
          push(Token::Kind::kCmp, "<=");
          advance(2);
        } else {
          push(Token::Kind::kCmp, "<");
          advance();
        }
        break;
      case '>':
        if (peek(1) == '=') {
          push(Token::Kind::kCmp, ">=");
          advance(2);
        } else {
          push(Token::Kind::kCmp, ">");
          advance();
        }
        break;
      case '&':
        if (peek(1) != '&') return fail("expected '&&'");
        push(Token::Kind::kAnd, "&&");
        advance(2);
        break;
      case '|':
        if (peek(1) != '|') return fail("expected '||'");
        push(Token::Kind::kOr, "||");
        advance(2);
        break;
      case '(': push(Token::Kind::kLParen, "("); advance(); break;
      case ')': push(Token::Kind::kRParen, ")"); advance(); break;
      case ':': push(Token::Kind::kColon, ":"); advance(); break;
      case ';': push(Token::Kind::kSemi, ";"); advance(); break;
      case ',': push(Token::Kind::kComma, ","); advance(); break;
      case '.': push(Token::Kind::kDot, "."); advance(); break;
      default:
        return fail(std::string("unexpected character '") + c + "'");
    }
  }
  push(Token::Kind::kEnd, "");
  return out;
}

}  // namespace camus::lang
