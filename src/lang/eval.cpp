#include "lang/eval.hpp"

namespace camus::lang {

bool env_has_subject(const Env& env, Subject s) {
  const auto& vec =
      s.kind == Subject::Kind::kField ? env.fields : env.states;
  return s.id < vec.size();
}

bool brute_eval_pred(const BoundPredicate& p, const Env& env) {
  if (!env_has_subject(env, p.subject)) return false;
  const std::uint64_t v = p.subject.kind == Subject::Kind::kField
                              ? env.fields[p.subject.id]
                              : env.states[p.subject.id];
  switch (p.op) {
    case RelOp::kEq:
      return v == p.value;
    case RelOp::kLt:
      return v < p.value;
    case RelOp::kGt:
      return v > p.value;
  }
  return false;
}

bool brute_eval_cond(const BoundCond& c, const Env& env) {
  switch (c.kind) {
    case BoundCond::Kind::kTrue:
      return true;
    case BoundCond::Kind::kFalse:
      return false;
    case BoundCond::Kind::kAtom:
      return brute_eval_pred(c.atom, env);
    case BoundCond::Kind::kNot:
      return !brute_eval_cond(*c.lhs, env);
    case BoundCond::Kind::kAnd:
      return brute_eval_cond(*c.lhs, env) && brute_eval_cond(*c.rhs, env);
    case BoundCond::Kind::kOr:
      return brute_eval_cond(*c.lhs, env) || brute_eval_cond(*c.rhs, env);
  }
  return false;
}

ActionSet brute_eval_rules(const std::vector<BoundRule>& rules,
                           const Env& env) {
  ActionSet out;
  for (const BoundRule& r : rules) {
    if (r.cond && brute_eval_cond(*r.cond, env)) out.merge(r.actions);
  }
  return out;
}

}  // namespace camus::lang
