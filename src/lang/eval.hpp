// Brute-force reference evaluator for bound subscription rules — the
// ground-truth oracle of the generative fuzzing harness.
//
// Deliberately shares no code with the compilation pipeline: it walks the
// raw BoundCond AST with its own recursion and its own predicate compare,
// so a bug in DNF normalization, BDD construction, table generation, or
// the flattened fast path cannot cancel out against the oracle. The only
// shared vocabulary is the data types (BoundRule/Env/ActionSet).
//
// Missing-attribute semantics: when the environment does not carry a
// subject (the fields/states vector is shorter than the subject id), every
// comparison on that subject evaluates to FALSE — the message simply lacks
// the attribute — and a negation above it is therefore TRUE. This mirrors
// content-based pub/sub matching semantics (Siena) and never throws, so
// the oracle is total over arbitrary environments.
#pragma once

#include <vector>

#include "lang/bound.hpp"

namespace camus::lang {

// True when the environment carries the subject (vector long enough).
bool env_has_subject(const Env& env, Subject s);

// One predicate under the missing-attribute semantics above.
bool brute_eval_pred(const BoundPredicate& p, const Env& env);

// Full condition walk (kTrue/kFalse/kAtom/kNot/kAnd/kOr).
bool brute_eval_cond(const BoundCond& c, const Env& env);

// The packet's merged ActionSet: union of the actions of every rule whose
// condition holds (paper semantics; empty set == drop).
ActionSet brute_eval_rules(const std::vector<BoundRule>& rules,
                           const Env& env);

}  // namespace camus::lang
