// Disjunctive normal form. The compiler's first step (paper §3.2):
// "subscription rules are first normalized into disjunctive form, yielding
// a set of independent rules in which the condition in each rule consists
// of a conjunction of atomic predicates."
//
// A conjunction is kept in canonical form: one IntervalSet per subject —
// the intersection of all atomic predicates on that subject over the
// subject's value domain [0, umax]. Unsatisfiable conjunctions (empty
// intersection) are dropped; always-true constraints are elided.
#pragma once

#include <map>
#include <vector>

#include "lang/bound.hpp"
#include "spec/schema.hpp"
#include "util/interval.hpp"
#include "util/result.hpp"

namespace camus::lang {

struct Conjunction {
  // Subjects are ordered by Subject's comparison; every IntervalSet is
  // non-empty and a strict subset of the subject's full domain.
  std::map<Subject, util::IntervalSet> constraints;

  bool is_true() const noexcept { return constraints.empty(); }

  std::string to_string() const;
};

// A rule after DNF normalization: the packet matches if any term matches.
struct FlatRule {
  std::vector<Conjunction> terms;
  ActionSet actions;
};

// Converts a bound condition to DNF. Fails if the expansion exceeds
// max_terms (guards against pathological (a1|b1)&(a2|b2)&... blowup).
util::Result<std::vector<Conjunction>> to_dnf(const BoundCondPtr& cond,
                                              const spec::Schema& schema,
                                              std::size_t max_terms = 1 << 16);

util::Result<FlatRule> flatten_rule(const BoundRule& rule,
                                    const spec::Schema& schema,
                                    std::size_t max_terms = 1 << 16);

util::Result<std::vector<FlatRule>> flatten_rules(
    const std::vector<BoundRule>& rules, const spec::Schema& schema,
    std::size_t max_terms = 1 << 16);

bool eval_conjunction(const Conjunction& c, const Env& env);
bool eval_flat_rule(const FlatRule& r, const Env& env);

// The IntervalSet of values satisfying one (possibly negated) atomic
// predicate over [0, umax].
util::IntervalSet predicate_values(RelOp op, std::uint64_t value,
                                   bool positive, std::uint64_t umax);

}  // namespace camus::lang
