// Recursive-descent parser for subscription rules.
//
// Grammar (precedence: or < and < not):
//   rules   := rule*
//   rule    := cond ':' actions
//   cond    := and_e (('or'|'||') and_e)*
//   and_e   := unary (('and'|'&&') unary)*
//   unary   := ('not'|'!') unary | '(' cond ')' | pred
//   pred    := subject cmp literal
//   subject := path | ('avg'|'sum') '(' path ')'
//   path    := IDENT ('.' IDENT)*
//   cmp     := '==' | '!=' | '<' | '>' | '<=' | '>='
//   literal := NUMBER | IPV4 | IDENT | STRING
//   actions := action ((';') action)*
//   action  := 'fwd' '(' NUMBER (',' NUMBER)* ')'
//            | 'drop' '(' ')'
//            | 'update' '(' IDENT ')'
//            | IDENT '=' IDENT '(' ')'        -- "my_counter = incr()" form
#pragma once

#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "util/result.hpp"

namespace camus::lang {

// Parses a single rule; fails if trailing input remains.
util::Result<Rule> parse_rule(std::string_view src);

// Parses a sequence of rules (e.g. a subscription file).
util::Result<std::vector<Rule>> parse_rules(std::string_view src);

// Parses just a condition expression (no ':' action part).
util::Result<CondPtr> parse_condition(std::string_view src);

}  // namespace camus::lang
