// Abstract syntax for the packet-subscription language (paper Figure 1):
//
//   r ::= c : a                       condition-action rule
//   c ::= c1 and c2 | c1 or c2 | !c | e
//   e ::= p > n | p < n | p == n     (plus desugared !=, <=, >=)
//   p ::= header.field | state_var | avg(field) | sum(field)
//   a ::= a1; a2 | fwd(p0, ..., pk) | drop() | update(state_var)
//
// This header defines the *unbound* AST produced by the parser; binding
// against a spec::Schema (bound.hpp) resolves paths to field/state ids and
// symbol literals to their wire encodings.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace camus::lang {

// Comparison operators as written in source. Binding desugars kNe/kLe/kGe
// into negations of the three canonical operators the paper uses.
enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kGt, kLe, kGe };

std::string to_string(CmpOp op);

struct Literal {
  enum class Kind : std::uint8_t {
    kInt,     // 42, or a dotted-quad IPv4 address folded to uint32
    kSymbol,  // GOOGL or "GOOGL"
  };
  Kind kind = Kind::kInt;
  std::uint64_t int_value = 0;  // valid when kind == kInt
  std::string text;             // valid when kind == kSymbol

  std::string to_string() const;
};

// Aggregation macro applied to a field in subject position: avg(price).
enum class AggMacro : std::uint8_t { kAvg, kSum, kMin, kMax };

struct PredExpr {
  std::string subject;              // field path or state-variable name
  std::optional<AggMacro> macro;    // set for avg(...) / sum(...)
  CmpOp op = CmpOp::kEq;
  Literal literal;

  std::string to_string() const;
};

struct Cond;
using CondPtr = std::shared_ptr<const Cond>;

struct Cond {
  enum class Kind : std::uint8_t { kAnd, kOr, kNot, kAtom };
  Kind kind = Kind::kAtom;
  CondPtr lhs;     // kAnd/kOr: left; kNot: operand
  CondPtr rhs;     // kAnd/kOr: right
  PredExpr atom;   // kAtom

  static CondPtr make_atom(PredExpr p);
  static CondPtr make_and(CondPtr a, CondPtr b);
  static CondPtr make_or(CondPtr a, CondPtr b);
  static CondPtr make_not(CondPtr a);

  std::string to_string() const;
};

struct FwdAction {
  std::vector<std::uint16_t> ports;
};

struct DropAction {};

struct UpdateAction {
  std::string state_var;
};

struct Action {
  enum class Kind : std::uint8_t { kFwd, kDrop, kUpdate };
  Kind kind = Kind::kFwd;
  FwdAction fwd;        // kFwd
  UpdateAction update;  // kUpdate

  std::string to_string() const;
};

struct Rule {
  CondPtr cond;
  std::vector<Action> actions;

  std::string to_string() const;
};

}  // namespace camus::lang
