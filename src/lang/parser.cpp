#include "lang/parser.hpp"

#include "lang/lexer.hpp"

namespace camus::lang {
namespace {

using util::Error;
using util::Result;

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<Rule> rule_all() {
    auto r = rule();
    if (!r.ok()) return r.error();
    if (!at_end()) return fail("trailing input after rule");
    return r;
  }

  Result<std::vector<Rule>> rules_all() {
    std::vector<Rule> out;
    while (!at_end()) {
      auto r = rule();
      if (!r.ok()) return r.error();
      out.push_back(std::move(r).take());
    }
    return out;
  }

  Result<CondPtr> cond_all() {
    auto c = cond();
    if (!c.ok()) return c.error();
    if (!at_end()) return fail("trailing input after condition");
    return c;
  }

 private:
  const Token& cur() const { return toks_[i_]; }
  const Token& peek(std::size_t off = 1) const {
    return toks_[std::min(i_ + off, toks_.size() - 1)];
  }
  bool at_end() const { return cur().kind == Token::Kind::kEnd; }
  void bump() {
    if (!at_end()) ++i_;
  }
  bool eat(Token::Kind k) {
    if (cur().kind != k) return false;
    bump();
    return true;
  }
  Error fail(std::string msg) const {
    return Error{std::move(msg), cur().line, cur().column};
  }

  Result<Rule> rule() {
    auto c = cond();
    if (!c.ok()) return c.error();
    if (!eat(Token::Kind::kColon)) return fail("expected ':' before actions");
    Rule r;
    r.cond = std::move(c).take();
    for (;;) {
      auto a = action();
      if (!a.ok()) return a.error();
      r.actions.push_back(std::move(a).take());
      if (!eat(Token::Kind::kSemi)) break;
    }
    if (r.actions.empty()) return fail("rule has no actions");
    return r;
  }

  Result<CondPtr> cond() {
    auto lhs = and_expr();
    if (!lhs.ok()) return lhs;
    CondPtr acc = std::move(lhs).take();
    while (eat(Token::Kind::kOr)) {
      auto rhs = and_expr();
      if (!rhs.ok()) return rhs;
      acc = Cond::make_or(std::move(acc), std::move(rhs).take());
    }
    return acc;
  }

  Result<CondPtr> and_expr() {
    auto lhs = unary();
    if (!lhs.ok()) return lhs;
    CondPtr acc = std::move(lhs).take();
    while (eat(Token::Kind::kAnd)) {
      auto rhs = unary();
      if (!rhs.ok()) return rhs;
      acc = Cond::make_and(std::move(acc), std::move(rhs).take());
    }
    return acc;
  }

  Result<CondPtr> unary() {
    if (eat(Token::Kind::kNot)) {
      auto inner = unary();
      if (!inner.ok()) return inner;
      return Cond::make_not(std::move(inner).take());
    }
    if (eat(Token::Kind::kLParen)) {
      auto inner = cond();
      if (!inner.ok()) return inner;
      if (!eat(Token::Kind::kRParen)) return fail("expected ')'");
      return inner;
    }
    return pred_or_in();
  }

  // pred, or the "subject in (v1, v2, ...)" set-membership sugar, which
  // expands to a disjunction of equality atoms.
  Result<CondPtr> pred_or_in() {
    // Detect the 'in' form: subject path followed by the identifier 'in'.
    const std::size_t mark = i_;
    if (cur().kind == Token::Kind::kIdent) {
      auto path = field_path();
      if (path.ok() && cur().kind == Token::Kind::kIdent &&
          cur().text == "in") {
        bump();  // 'in'
        if (!eat(Token::Kind::kLParen))
          return fail("expected '(' after 'in'");
        CondPtr acc;
        for (;;) {
          PredExpr p;
          p.subject = path.value();
          p.op = CmpOp::kEq;
          switch (cur().kind) {
            case Token::Kind::kNumber:
            case Token::Kind::kIpv4:
              p.literal.kind = Literal::Kind::kInt;
              p.literal.int_value = cur().number;
              break;
            case Token::Kind::kIdent:
            case Token::Kind::kString:
              p.literal.kind = Literal::Kind::kSymbol;
              p.literal.text = cur().text;
              break;
            default:
              return fail("expected literal in 'in' set");
          }
          bump();
          auto atom = Cond::make_atom(std::move(p));
          acc = acc ? Cond::make_or(std::move(acc), std::move(atom))
                    : std::move(atom);
          if (eat(Token::Kind::kComma)) continue;
          break;
        }
        if (!eat(Token::Kind::kRParen))
          return fail("expected ')' after 'in' set");
        return acc;
      }
      i_ = mark;  // not the 'in' form: re-parse as a plain predicate
    }
    auto p = pred();
    if (!p.ok()) return p.error();
    return Cond::make_atom(std::move(p).take());
  }

  Result<PredExpr> pred() {
    PredExpr p;
    if (cur().kind != Token::Kind::kIdent)
      return fail("expected field, state variable, or macro");
    // Macro subject: avg(path) / sum(path).
    if ((cur().text == "avg" || cur().text == "sum" ||
         cur().text == "min" || cur().text == "max") &&
        peek().kind == Token::Kind::kLParen) {
      p.macro = cur().text == "avg"   ? AggMacro::kAvg
                : cur().text == "sum" ? AggMacro::kSum
                : cur().text == "min" ? AggMacro::kMin
                                      : AggMacro::kMax;
      bump();
      bump();  // '('
      auto path = field_path();
      if (!path.ok()) return path.error();
      p.subject = std::move(path).take();
      if (!eat(Token::Kind::kRParen)) return fail("expected ')' after macro");
    } else {
      auto path = field_path();
      if (!path.ok()) return path.error();
      p.subject = std::move(path).take();
    }
    if (cur().kind != Token::Kind::kCmp)
      return fail("expected comparison operator");
    const std::string& op = cur().text;
    if (op == "==") p.op = CmpOp::kEq;
    else if (op == "!=") p.op = CmpOp::kNe;
    else if (op == "<") p.op = CmpOp::kLt;
    else if (op == ">") p.op = CmpOp::kGt;
    else if (op == "<=") p.op = CmpOp::kLe;
    else p.op = CmpOp::kGe;
    bump();

    switch (cur().kind) {
      case Token::Kind::kNumber:
      case Token::Kind::kIpv4:
        p.literal.kind = Literal::Kind::kInt;
        p.literal.int_value = cur().number;
        bump();
        break;
      case Token::Kind::kIdent:
      case Token::Kind::kString:
        p.literal.kind = Literal::Kind::kSymbol;
        p.literal.text = cur().text;
        bump();
        break;
      default:
        return fail("expected literal value");
    }
    return p;
  }

  Result<std::string> field_path() {
    if (cur().kind != Token::Kind::kIdent) return fail("expected identifier");
    std::string path = cur().text;
    bump();
    while (cur().kind == Token::Kind::kDot &&
           peek().kind == Token::Kind::kIdent) {
      bump();
      path += ".";
      path += cur().text;
      bump();
    }
    return path;
  }

  Result<Action> action() {
    if (cur().kind != Token::Kind::kIdent) return fail("expected action");
    const std::string head = cur().text;

    if (head == "fwd") {
      bump();
      if (!eat(Token::Kind::kLParen)) return fail("expected '(' after fwd");
      Action a;
      a.kind = Action::Kind::kFwd;
      for (;;) {
        if (cur().kind != Token::Kind::kNumber)
          return fail("expected port number");
        if (cur().number > 0xffff) return fail("port number out of range");
        a.fwd.ports.push_back(static_cast<std::uint16_t>(cur().number));
        bump();
        if (eat(Token::Kind::kComma)) continue;
        break;
      }
      if (!eat(Token::Kind::kRParen)) return fail("expected ')' after ports");
      return a;
    }
    if (head == "drop") {
      bump();
      if (!eat(Token::Kind::kLParen) || !eat(Token::Kind::kRParen))
        return fail("expected '()' after drop");
      Action a;
      a.kind = Action::Kind::kDrop;
      return a;
    }
    if (head == "update") {
      bump();
      if (!eat(Token::Kind::kLParen)) return fail("expected '(' after update");
      if (cur().kind != Token::Kind::kIdent)
        return fail("expected state variable name");
      Action a;
      a.kind = Action::Kind::kUpdate;
      a.update.state_var = cur().text;
      bump();
      if (!eat(Token::Kind::kRParen)) return fail("expected ')'");
      return a;
    }
    // "var = func()" form; the function name is informational (the update
    // function is declared in the spec annotation), so it is ignored.
    if (peek().kind == Token::Kind::kAssign) {
      Action a;
      a.kind = Action::Kind::kUpdate;
      a.update.state_var = head;
      bump();  // var
      bump();  // '='
      if (cur().kind != Token::Kind::kIdent)
        return fail("expected update function name");
      bump();
      if (!eat(Token::Kind::kLParen) || !eat(Token::Kind::kRParen))
        return fail("update functions take no arguments");
      return a;
    }
    return fail("unknown action '" + head + "'");
  }

  std::vector<Token> toks_;
  std::size_t i_ = 0;
};

Result<Parser> make_parser(std::string_view src) {
  auto toks = tokenize(src);
  if (!toks.ok()) return toks.error();
  return Parser(std::move(toks).take());
}

}  // namespace

util::Result<Rule> parse_rule(std::string_view src) {
  auto p = make_parser(src);
  if (!p.ok()) return p.error();
  return p.value().rule_all();
}

util::Result<std::vector<Rule>> parse_rules(std::string_view src) {
  auto p = make_parser(src);
  if (!p.ok()) return p.error();
  return p.value().rules_all();
}

util::Result<CondPtr> parse_condition(std::string_view src) {
  auto p = make_parser(src);
  if (!p.ok()) return p.error();
  return p.value().cond_all();
}

}  // namespace camus::lang
