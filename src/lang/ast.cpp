#include "lang/ast.hpp"

#include <sstream>

namespace camus::lang {

std::string to_string(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kGt: return ">";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

std::string Literal::to_string() const {
  return kind == Kind::kInt ? std::to_string(int_value) : text;
}

std::string PredExpr::to_string() const {
  std::string subj = subject;
  if (macro) {
    const char* name = *macro == AggMacro::kAvg   ? "avg("
                       : *macro == AggMacro::kSum ? "sum("
                       : *macro == AggMacro::kMin ? "min("
                                                  : "max(";
    subj = name + subject + ")";
  }
  return subj + " " + lang::to_string(op) + " " + literal.to_string();
}

CondPtr Cond::make_atom(PredExpr p) {
  auto c = std::make_shared<Cond>();
  c->kind = Kind::kAtom;
  c->atom = std::move(p);
  return c;
}

CondPtr Cond::make_and(CondPtr a, CondPtr b) {
  auto c = std::make_shared<Cond>();
  c->kind = Kind::kAnd;
  c->lhs = std::move(a);
  c->rhs = std::move(b);
  return c;
}

CondPtr Cond::make_or(CondPtr a, CondPtr b) {
  auto c = std::make_shared<Cond>();
  c->kind = Kind::kOr;
  c->lhs = std::move(a);
  c->rhs = std::move(b);
  return c;
}

CondPtr Cond::make_not(CondPtr a) {
  auto c = std::make_shared<Cond>();
  c->kind = Kind::kNot;
  c->lhs = std::move(a);
  return c;
}

std::string Cond::to_string() const {
  switch (kind) {
    case Kind::kAtom:
      return atom.to_string();
    case Kind::kNot:
      return "!(" + lhs->to_string() + ")";
    case Kind::kAnd:
      return "(" + lhs->to_string() + " and " + rhs->to_string() + ")";
    case Kind::kOr:
      return "(" + lhs->to_string() + " or " + rhs->to_string() + ")";
  }
  return "?";
}

std::string Action::to_string() const {
  switch (kind) {
    case Kind::kDrop:
      return "drop()";
    case Kind::kUpdate:
      return "update(" + update.state_var + ")";
    case Kind::kFwd: {
      std::ostringstream os;
      os << "fwd(";
      for (std::size_t i = 0; i < fwd.ports.size(); ++i) {
        if (i) os << ",";
        os << fwd.ports[i];
      }
      os << ")";
      return os.str();
    }
  }
  return "?";
}

std::string Rule::to_string() const {
  std::string s = cond ? cond->to_string() : "true";
  s += " : ";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i) s += "; ";
    s += actions[i].to_string();
  }
  return s;
}

}  // namespace camus::lang
