// Switch-state fault injection: deterministic register bit-flips, table
// entry bit-flips, and entry evictions against a running
// switchsim::Switch. Each experiment mutates real switch state through the
// same public surfaces the control plane uses (StateRegisters, Table entry
// editing + reprogram), so the blast radius of an SRAM soft error or a
// lost control-plane entry can be measured with the static verifier and
// the differential harnesses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fault/plan.hpp"
#include "switchsim/switch.hpp"

namespace camus::fault {

// What one injection touched, for logs and assertions.
struct Injection {
  enum class Kind : std::uint8_t {
    kRegisterBitFlip,
    kEntryBitFlip,
    kEntryEviction,
  };
  Kind kind = Kind::kRegisterBitFlip;
  std::string table;           // stage name (entry faults)
  std::size_t entry = 0;       // entry index within the stage
  std::uint32_t register_var = 0;
  unsigned bit = 0;

  std::string to_string() const;
};

// Seeded injector: the k-th call of each experiment kind is a pure
// function of (seed, k), so a fault campaign replays identically.
class Injector {
 public:
  explicit Injector(std::uint64_t seed) : seed_(seed) {}

  // Flips one pseudo-random bit in one pseudo-random state-register cell.
  // Returns nullopt when the switch has no state variables.
  std::optional<Injection> flip_register_bit(switchsim::Switch& sw);

  // Flips one bit of the next_state of a pseudo-random field-table entry
  // and reprograms the switch with the mutated pipeline. Returns nullopt
  // when the pipeline has no field-table entries.
  std::optional<Injection> flip_entry_bit(switchsim::Switch& sw);

  // Evicts a pseudo-random field-table entry (control-plane entry lost)
  // and reprograms. Returns nullopt when the pipeline has no entries.
  std::optional<Injection> evict_entry(switchsim::Switch& sw);

  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t injections() const noexcept { return count_; }

 private:
  std::uint64_t next_draw() noexcept;

  std::uint64_t seed_;
  std::uint64_t count_ = 0;
};

}  // namespace camus::fault
