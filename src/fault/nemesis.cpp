#include "fault/nemesis.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "compiler/compile.hpp"
#include "fault/plan.hpp"
#include "lang/bound.hpp"
#include "lang/parser.hpp"
#include "pubsub/durable.hpp"
#include "pubsub/install.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "table/delta.hpp"
#include "util/intern.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace camus::fault {

namespace {

using pubsub::DurableController;
using pubsub::TwoPhaseInstaller;

const std::vector<std::string>& symbols() {
  static const std::vector<std::string> syms = {
      "GOOGL", "MSFT", "AAPL", "AMZN", "NVDA", "TSLA", "IBM", "ORCL"};
  return syms;
}

// Seeded textual rule generator (the churn workload's grammar): plain
// symbol interest, symbol+price bands, share-size filters — the shapes
// the paper's ITCH application uses. Interest-only texts exercise the
// controller's fwd(port) appending.
std::string gen_rule_text(util::Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return "stock == " + rng.pick(symbols());
    case 1:
      return "stock == " + rng.pick(symbols()) + " and price > " +
             std::to_string(rng.uniform(1, 500) * 100);
    case 2:
      return "shares > " + std::to_string(rng.uniform(1, 900));
    default:
      return "stock == " + rng.pick(symbols()) + " and shares < " +
             std::to_string(rng.uniform(10, 2000));
  }
}

// The harness's shadow model: what the intended state MUST be, maintained
// independently of the controller (same single-port unsubscribe filter).
struct ShadowSub {
  std::uint16_t port = 0;
  int priority = 0;
  std::string text;  // full text incl. action
};

// Binds the shadow set for the batch-compiled oracle.
util::Result<std::vector<lang::BoundRule>> bind_shadow(
    const spec::Schema& schema, const std::vector<ShadowSub>& shadow) {
  std::vector<lang::BoundRule> rules;
  rules.reserve(shadow.size());
  for (const ShadowSub& s : shadow) {
    auto parsed = lang::parse_rule(s.text);
    if (!parsed.ok()) return parsed.error();
    auto bound = lang::bind_rule(parsed.value(), schema);
    if (!bound.ok()) return bound.error();
    rules.push_back(std::move(bound).take());
  }
  return rules;
}

lang::Env probe_env(util::Rng& rng) {
  lang::Env env;
  env.fields = {rng.uniform(0, 2500),                        // shares
                util::encode_symbol(rng.pick(symbols())),    // stock
                rng.uniform(0, 60000)};                      // price
  env.states = {0, 0};
  return env;
}

struct Scenario {
  const NemesisOptions& opts;
  NemesisStats& stats;
  std::uint64_t seed;
  util::Rng rng;
  spec::Schema schema;

  util::MemStorage storage;
  std::unique_ptr<DurableController> ctl;
  std::unique_ptr<switchsim::Switch> sw;
  std::unique_ptr<TwoPhaseInstaller> installer;
  std::vector<ShadowSub> shadow;
  std::uint16_t next_port = 1;
  bool used_checkpoint = false;
  // The last epoch a now-deposed controller held (stale-write source).
  std::optional<std::uint64_t> deposed_epoch;

  Scenario(const NemesisOptions& o, NemesisStats& st, std::uint64_t s)
      : opts(o), stats(st), seed(s), rng(s), schema(spec::make_itch_schema()) {
    sw = std::make_unique<switchsim::Switch>(spec::make_itch_schema(),
                                             table::Pipeline{});
    installer = std::make_unique<TwoPhaseInstaller>(*sw);
    ctl = std::make_unique<DurableController>(spec::make_itch_schema(),
                                              storage);
  }

  void trace(const std::string& what) {
    if (std::getenv("NEMESIS_TRACE"))
      std::fprintf(stderr, "[seed %llu] %s\n",
                   static_cast<unsigned long long>(seed), what.c_str());
  }

  std::string tables(const table::Pipeline& p) {
    std::string out;
    for (const auto& t : p.tables) out += t.name() + " ";
    return out;
  }

  void violation(const std::string& what) {
    ++stats.violations;
    if (stats.violation_details.size() < 20)
      stats.violation_details.push_back("seed " + std::to_string(seed) +
                                        ": " + what);
  }

  bool check(bool ok, const std::string& what) {
    if (!ok) violation(what);
    return ok;
  }

  // I1: replayed intended state matches the shadow model.
  void check_recovery(const pubsub::RecoveryInfo& info) {
    check(info.subscriptions == shadow.size(),
          "I1: recovered " + std::to_string(info.subscriptions) +
              " subscriptions, shadow has " +
              std::to_string(shadow.size()));
    if (!info.from_snapshot)
      check(info.digest_mismatches == 0,
            "I1: exact replay reported digest mismatches");
  }

  // I2 + I4: switch ≡ intended ≡ independently compiled oracle, checked
  // by digest and by a differential probe sweep (exactly-once: the
  // delivered port set equals the oracle's — nothing missing, nothing
  // duplicated or spurious).
  void check_installed() {
    trace("epilogue: ctl subs=" + std::to_string(ctl->subscription_count()) +
          " shadow=" + std::to_string(shadow.size()));
    auto intended = ctl->intended();
    if (!check(intended.ok(), "I2: no intended pipeline after commit"))
      return;
    check(sw->program_digest() ==
              table::pipeline_digest(*intended.value()),
          "I2: switch program digest != intended digest");

    auto bound = bind_shadow(schema, shadow);
    if (!check(bound.ok(), "I2: shadow rules failed to bind")) return;
    auto oracle = compiler::compile_rules(schema, bound.value());
    if (!check(oracle.ok(), "I2: oracle batch compile failed")) return;

    for (std::size_t i = 0; i < opts.probe_messages; ++i) {
      ++stats.probes;
      lang::Env env = probe_env(rng);
      const lang::ActionSet& got = sw->classify(env.fields, 1000 + i);
      const lang::ActionSet want =
          oracle.value().pipeline.evaluate_actions(env);
      if (got.ports != want.ports) {
        std::ostringstream os;
        os << "I4: probe " << i << " delivered to " << got.ports.size()
           << " ports, oracle says " << want.ports.size();
        violation(os.str());
        if (std::getenv("NEMESIS_TRACE")) {
          std::ostringstream dbg;
          dbg << "probe fields: shares=" << env.fields[0]
              << " stock=" << env.fields[1] << " price=" << env.fields[2]
              << " | switch={";
          for (auto pt : got.ports) dbg << pt << " ";
          dbg << "} oracle={";
          for (auto pt : want.ports) dbg << pt << " ";
          dbg << "}";
          trace(dbg.str());
        }
        return;  // one detailed report per sweep is enough
      }
    }
  }

  // Churn ops ------------------------------------------------------------

  void do_subscribe() {
    const std::uint16_t port =
        rng.chance(0.3) ? static_cast<std::uint16_t>(rng.uniform(1, 8))
                        : next_port++;
    const int prio = static_cast<int>(rng.uniform(0, 3));
    std::string text = gen_rule_text(rng);
    auto sub = ctl->subscribe(port, text, prio);
    if (!check(sub.ok(), "subscribe rejected: " +
                             (sub.ok() ? "" : sub.error().to_string())))
      return;
    if (text.find(':') == std::string::npos)
      text += " : fwd(" + std::to_string(port) + ")";
    shadow.push_back({port, prio, text});
  }

  void do_unsubscribe() {
    if (shadow.empty()) return;
    const std::uint16_t port = shadow[rng.uniform(0, shadow.size() - 1)].port;
    auto removed = ctl->unsubscribe(port);
    if (!check(removed.ok(), "unsubscribe failed")) return;
    // Mirror the controller's filter: drop rules forwarding ONLY to port.
    // Rule texts always end in exactly one fwd(p), so the filter is
    // text-level here.
    const std::string only = ": fwd(" + std::to_string(port) + ")";
    std::size_t dropped = 0, w = 0;
    for (std::size_t i = 0; i < shadow.size(); ++i) {
      if (shadow[i].text.find(only) != std::string::npos &&
          shadow[i].port == port) {
        ++dropped;
        continue;
      }
      if (w != i) shadow[w] = std::move(shadow[i]);
      ++w;
    }
    shadow.resize(w);
    check(removed.value() == dropped,
          "unsubscribe removed " + std::to_string(removed.value()) +
              ", shadow dropped " + std::to_string(dropped));
  }

  void do_commit_install(const fault::Plan* faults, bool expect_commit) {
    auto delta = ctl->commit();
    if (!check(delta.ok(), "commit failed: " +
                               (delta.ok() ? "" : delta.error().to_string())))
      return;
    ++stats.commits;
    trace("commit: " + std::to_string(delta.value().ops.size()) + " ops full=" +
          std::to_string(delta.value().requires_reprogram) + " intended={" +
          tables(*ctl->intended().value()) + "} switch={" +
          tables(installer->target().pipeline_snapshot()) + "}");
    auto report = ctl->install(*installer, delta.value(), faults);
    if (!check(report.ok(), "install errored")) return;
    ++stats.installs;
    if (!report.value().committed) {
      if (expect_commit) {
        violation("install failed on a healthy channel: " +
                  report.value().error);
        return;
      }
      ++stats.partition_aborts;
      // The channel was partitioned: the abort is journaled and the diff
      // base rolled back. Heal and re-ship via reconciliation.
      auto healed = ctl->reconcile(*installer);
      ++stats.reconciles;
      if (check(healed.ok(), "post-partition reconcile errored") &&
          !healed.value().in_sync) {
        if (healed.value().repaired) {
          ++stats.repairs;
          stats.repair_ops += healed.value().repair_ops;
          if (healed.value().full_reprogram) ++stats.full_reprograms;
        } else {
          violation("post-partition reconcile failed to repair");
        }
      }
    }
  }

  // Nemesis actions -------------------------------------------------------

  void crash_controller() {
    ++stats.crashes;
    trace("crash controller");
    deposed_epoch = ctl->epoch();
    if (opts.checkpoint_every > 0 && !used_checkpoint &&
        seed % opts.checkpoint_every == 0 && rng.chance(0.5)) {
      // Checkpoint BEFORE the crash on some scenarios: the recovery then
      // replays from the snapshot (fresh state numbering).
      if (ctl->checkpoint().ok()) {
        ++stats.checkpoints;
        used_checkpoint = true;
      }
    }
    // Kill the process: unsynced bytes vanish except for a torn tail.
    storage.crash(rng.uniform(0, 16));
    ctl = std::make_unique<DurableController>(spec::make_itch_schema(),
                                              storage);
    auto info = ctl->open();
    if (!check(info.ok(),
               "recovery open() failed: " +
                   (info.ok() ? "" : info.error().to_string()))) {
      // Unrecoverable scenario state; stop churning it.
      return;
    }
    if (info.value().from_snapshot) ++stats.recoveries_from_snapshot;
    check_recovery(info.value());
    // Warm-boot reconciliation: fence the switch, repair divergence from
    // any half-staged install the crash left behind.
    auto rec = ctl->reconcile(*installer);
    ++stats.reconciles;
    if (rec.ok())
      trace("post-crash reconcile in_sync=" + std::to_string(rec.value().in_sync) +
            " repaired=" + std::to_string(rec.value().repaired) +
            " full=" + std::to_string(rec.value().full_reprogram) +
            " ops=" + std::to_string(rec.value().repair_ops));
    if (check(rec.ok(), "post-crash reconcile errored") &&
        !rec.value().in_sync) {
      if (rec.value().repaired) {
        ++stats.repairs;
        stats.repair_ops += rec.value().repair_ops;
        if (rec.value().full_reprogram) ++stats.full_reprograms;
      } else {
        violation("post-crash reconcile failed: " +
                  rec.value().install.error);
      }
    }
  }

  void reboot_switch() {
    ++stats.switch_reboots;
    trace("reboot switch");
    // The switch comes back with an empty program (cold boot) — the
    // harshest divergence reconciliation must repair.
    sw = std::make_unique<switchsim::Switch>(spec::make_itch_schema(),
                                             table::Pipeline{});
    installer = std::make_unique<TwoPhaseInstaller>(*sw);
    auto rec = ctl->reconcile(*installer);
    ++stats.reconciles;
    if (!check(rec.ok(), "post-reboot reconcile errored")) return;
    if (!rec.value().in_sync) {
      if (rec.value().repaired) {
        ++stats.repairs;
        stats.repair_ops += rec.value().repair_ops;
        if (rec.value().full_reprogram) ++stats.full_reprograms;
      } else if (ctl->commit_seq() > 0) {
        violation("post-reboot reconcile failed: " +
                  rec.value().install.error);
      }
    }
  }

  void stale_write() {
    if (!deposed_epoch) return;
    ++stats.stale_writes;
    const std::uint64_t before = sw->program_version();
    // The deposed controller retries its last write with its old epoch:
    // a full reprogram with a garbage (empty) image, then a delta.
    auto rejected =
        sw->reprogram_fenced(*deposed_epoch, table::Pipeline{});
    const bool bounced = !rejected.ok() &&
                         rejected.error().code == "E140" &&
                         sw->program_version() == before;
    if (bounced) ++stats.stale_rejected;
    check(bounced, "I3: stale-epoch write was not rejected");
  }

  void run() {
    auto opened = ctl->open();
    if (!check(opened.ok(), "initial open() failed")) return;
    for (std::size_t step = 0; step < opts.steps; ++step) {
      ++stats.steps;
      if (!shadow.empty() && rng.chance(0.25))
        do_unsubscribe();
      else
        do_subscribe();

      if ((step + 1) % opts.commit_every == 0) {
        const bool partition =
            rng.uniform(0, 999) < opts.partition_per_mille;
        if (partition) {
          ++stats.partitions;
          // Total partition: every chunk is dropped; the install must
          // abort cleanly (journaled) and the later heal must repair.
          FaultSpec spec;
          spec.drop = 1.0;
          const Plan plan(spec, seed ^ (step * 0x9e37ULL));
          do_commit_install(&plan, /*expect_commit=*/false);
        } else if (rng.chance(0.5)) {
          // A flaky-but-usable channel: drops, corruption, duplication,
          // reordering — the chunk protocol must still land the image.
          FaultSpec spec;
          spec.drop = 0.08;
          spec.corrupt = 0.08;
          spec.duplicate = 0.10;
          spec.reorder = 0.10;
          const Plan plan(spec, seed ^ (step * 0x85ebULL));
          do_commit_install(&plan, /*expect_commit=*/true);
        } else {
          do_commit_install(nullptr, /*expect_commit=*/true);
        }
      }

      const std::uint32_t roll =
          static_cast<std::uint32_t>(rng.uniform(0, 999));
      if (roll < opts.crash_per_mille) {
        crash_controller();
      } else if (roll < opts.crash_per_mille + opts.reboot_per_mille) {
        reboot_switch();
      } else if (roll < opts.crash_per_mille + opts.reboot_per_mille +
                            opts.stale_write_per_mille) {
        stale_write();
      }
    }

    // Scenario epilogue: converge and audit everything.
    do_commit_install(nullptr, /*expect_commit=*/true);
    auto rec = ctl->reconcile(*installer);
    ++stats.reconciles;
    if (check(rec.ok(), "final reconcile errored") && !rec.value().in_sync &&
        !rec.value().repaired)
      violation("final reconcile failed: " + rec.value().install.error);
    check_installed();
  }
};

}  // namespace

std::string NemesisStats::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"scenarios\": " << scenarios << ",\n"
     << "  \"steps\": " << steps << ",\n"
     << "  \"commits\": " << commits << ",\n"
     << "  \"installs\": " << installs << ",\n"
     << "  \"crashes\": " << crashes << ",\n"
     << "  \"recoveries_from_snapshot\": " << recoveries_from_snapshot
     << ",\n"
     << "  \"switch_reboots\": " << switch_reboots << ",\n"
     << "  \"partitions\": " << partitions << ",\n"
     << "  \"partition_aborts\": " << partition_aborts << ",\n"
     << "  \"stale_writes\": " << stale_writes << ",\n"
     << "  \"stale_rejected\": " << stale_rejected << ",\n"
     << "  \"reconciles\": " << reconciles << ",\n"
     << "  \"repairs\": " << repairs << ",\n"
     << "  \"full_reprograms\": " << full_reprograms << ",\n"
     << "  \"repair_ops\": " << repair_ops << ",\n"
     << "  \"checkpoints\": " << checkpoints << ",\n"
     << "  \"probes\": " << probes << ",\n"
     << "  \"violations\": " << violations << "\n"
     << "}";
  return os.str();
}

NemesisStats run_nemesis(const NemesisOptions& opts) {
  NemesisStats stats;
  for (std::size_t i = 0; i < opts.scenarios; ++i) {
    ++stats.scenarios;
    Scenario sc(opts, stats, opts.seed + i);
    sc.run();
  }
  return stats;
}

}  // namespace camus::fault
