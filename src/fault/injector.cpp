#include "fault/injector.hpp"

#include "util/rng.hpp"

namespace camus::fault {

std::string Injection::to_string() const {
  switch (kind) {
    case Kind::kRegisterBitFlip:
      return "register r" + std::to_string(register_var) + " bit " +
             std::to_string(bit);
    case Kind::kEntryBitFlip:
      return "table " + table + " entry " + std::to_string(entry) +
             " next_state bit " + std::to_string(bit);
    case Kind::kEntryEviction:
      return "table " + table + " entry " + std::to_string(entry) +
             " evicted";
  }
  return {};
}

std::uint64_t Injector::next_draw() noexcept {
  // Stream position = number of draws so far; a fresh SplitMix64 per draw
  // keeps the sequence independent of which experiment kinds interleave.
  util::SplitMix64 sm(seed_ ^ (0xc2b2ae3d27d4eb4fULL * ++count_));
  return sm.next();
}

std::optional<Injection> Injector::flip_register_bit(switchsim::Switch& sw) {
  auto& regs = sw.registers();
  if (regs.size() == 0) return std::nullopt;
  const std::uint64_t r = next_draw();
  Injection inj;
  inj.kind = Injection::Kind::kRegisterBitFlip;
  inj.register_var = static_cast<std::uint32_t>((r >> 8) % regs.size());
  inj.bit = static_cast<unsigned>(r & 63);
  regs.inject_bit_flip(inj.register_var, inj.bit);
  return inj;
}

namespace {

// Picks a (table, entry) uniformly over all field-table entries.
std::optional<std::pair<std::size_t, std::size_t>> pick_entry(
    const table::Pipeline& p, std::uint64_t r) {
  std::size_t total = 0;
  for (const auto& t : p.tables) total += t.entries().size();
  if (total == 0) return std::nullopt;
  std::size_t k = static_cast<std::size_t>(r % total);
  for (std::size_t ti = 0; ti < p.tables.size(); ++ti) {
    const std::size_t n = p.tables[ti].entries().size();
    if (k < n) return std::make_pair(ti, k);
    k -= n;
  }
  return std::nullopt;  // unreachable
}

}  // namespace

std::optional<Injection> Injector::flip_entry_bit(switchsim::Switch& sw) {
  table::Pipeline mutated = sw.pipeline();
  const std::uint64_t r = next_draw();
  auto picked = pick_entry(mutated, r);
  if (!picked) return std::nullopt;
  auto& tbl = mutated.tables[picked->first];
  table::Entry e = tbl.entries()[picked->second];
  Injection inj;
  inj.kind = Injection::Kind::kEntryBitFlip;
  inj.table = tbl.name();
  inj.entry = picked->second;
  inj.bit = static_cast<unsigned>((r >> 32) & 31);
  e.next_state ^= 1u << inj.bit;
  tbl.set_entry(picked->second, e);
  sw.reprogram(std::move(mutated));
  return inj;
}

std::optional<Injection> Injector::evict_entry(switchsim::Switch& sw) {
  table::Pipeline mutated = sw.pipeline();
  const std::uint64_t r = next_draw();
  auto picked = pick_entry(mutated, r);
  if (!picked) return std::nullopt;
  auto& tbl = mutated.tables[picked->first];
  Injection inj;
  inj.kind = Injection::Kind::kEntryEviction;
  inj.table = tbl.name();
  inj.entry = picked->second;
  tbl.remove_entry(picked->second);
  sw.reprogram(std::move(mutated));
  return inj;
}

}  // namespace camus::fault
