// Jepsen-style nemesis harness for the crash-safe control plane: runs
// seeded churn scenarios against a DurableController + TwoPhaseInstaller
// + Switch, injecting controller crashes (journal truncated to its synced
// prefix plus a torn tail), switch reboots (program lost), control-channel
// partitions (all chunks dropped for a window), and stale-epoch writes
// from a deposed controller — then checks four invariants after every
// disruption:
//
//   I1  recovery fidelity — a restarted controller's replayed intended
//       state matches the shadow model (same subscription set), and on
//       exact replay the journal's commit digests re-verify (J010 would
//       have failed open()).
//   I2  installed ≡ intended — after reconciliation the switch's program
//       digest equals the intended pipeline's, and a differential sweep
//       of seeded messages classifies identically against an
//       independently batch-compiled oracle of the shadow rules.
//   I3  fencing — no stale-epoch write lands: a deposed controller's
//       reprogram/delta attempts bounce with E140 and the switch's
//       program version does not move.
//   I4  delivery resumes exactly-once — after recovery, every seeded
//       message is delivered to exactly the oracle's port set: no lost
//       subscriptions (missing deliveries) and no resurrected ones
//       (duplicate/spurious deliveries).
//
// Everything is a pure function of the seed: scenarios, churn, crash
// points, fault plans, and probe messages all derive from it, so a
// violating seed replays bit-identically under a debugger.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace camus::fault {

struct NemesisOptions {
  std::uint64_t seed = 1;
  std::size_t scenarios = 100;
  // Churn steps per scenario (each step subscribes/unsubscribes; every
  // commit_every-th step commits and installs).
  std::size_t steps = 14;
  std::size_t commit_every = 3;
  // Probability weights (per mille) for the nemesis acting after a step.
  std::uint32_t crash_per_mille = 180;      // controller crash + recover
  std::uint32_t reboot_per_mille = 90;      // switch reboot (program lost)
  std::uint32_t partition_per_mille = 120;  // install window drops chunks
  std::uint32_t stale_write_per_mille = 120;  // deposed controller writes
  // Every n-th scenario exercises checkpoint compaction before the crash
  // (snapshot recovery path). 0 disables.
  std::size_t checkpoint_every = 4;
  // Messages in the differential delivery sweep (I2/I4).
  std::size_t probe_messages = 64;
};

struct NemesisStats {
  std::size_t scenarios = 0;
  std::size_t steps = 0;
  std::size_t commits = 0;
  std::size_t installs = 0;
  std::size_t crashes = 0;
  std::size_t recoveries_from_snapshot = 0;
  std::size_t switch_reboots = 0;
  std::size_t partitions = 0;
  std::size_t partition_aborts = 0;   // installs the partition killed
  std::size_t stale_writes = 0;
  std::size_t stale_rejected = 0;     // must equal stale_writes (I3)
  std::size_t reconciles = 0;
  std::size_t repairs = 0;            // reconciles that shipped a repair
  std::size_t full_reprograms = 0;    // repairs that had to re-image
  std::size_t repair_ops = 0;         // total entry ops shipped as repairs
  std::size_t checkpoints = 0;
  std::size_t probes = 0;             // differential messages checked
  std::size_t violations = 0;
  std::vector<std::string> violation_details;  // first few, for triage

  std::string to_json() const;
};

// Runs the campaign; deterministic in opts.seed. Any violation is both
// counted and described (scenario seed + invariant) in the stats.
NemesisStats run_nemesis(const NemesisOptions& opts);

}  // namespace camus::fault
