#include "fault/fabric_nemesis.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "compiler/compile.hpp"
#include "fault/plan.hpp"
#include "lang/bound.hpp"
#include "lang/parser.hpp"
#include "netsim/fabric.hpp"
#include "pubsub/fabric.hpp"
#include "spec/itch_spec.hpp"
#include "table/delta.hpp"
#include "util/intern.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace camus::fault {

namespace {

using pubsub::FabricController;

const std::vector<std::string>& symbols() {
  static const std::vector<std::string> syms = {
      "GOOGL", "MSFT", "AAPL", "AMZN", "NVDA", "TSLA", "IBM", "ORCL"};
  return syms;
}

// Same stateless churn grammar as the single-switch nemesis (the fabric
// rejects stateful rules with F150, so the generator stays within scope).
std::string gen_rule_text(util::Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return "stock == " + rng.pick(symbols());
    case 1:
      return "stock == " + rng.pick(symbols()) + " and price > " +
             std::to_string(rng.uniform(1, 500) * 100);
    case 2:
      return "shares > " + std::to_string(rng.uniform(1, 900));
    default:
      return "stock == " + rng.pick(symbols()) + " and shares < " +
             std::to_string(rng.uniform(10, 2000));
  }
}

struct ShadowSub {
  std::uint16_t port = 0;
  int priority = 0;
  std::string text;  // full text incl. action
};

util::Result<std::vector<lang::BoundRule>> bind_shadow(
    const spec::Schema& schema, const std::vector<ShadowSub>& shadow) {
  std::vector<lang::BoundRule> rules;
  rules.reserve(shadow.size());
  for (const ShadowSub& s : shadow) {
    auto parsed = lang::parse_rule(s.text);
    if (!parsed.ok()) return parsed.error();
    auto bound = lang::bind_rule(parsed.value(), schema);
    if (!bound.ok()) return bound.error();
    rules.push_back(std::move(bound).take());
  }
  return rules;
}

lang::Env probe_env(util::Rng& rng) {
  lang::Env env;
  env.fields = {rng.uniform(0, 2500),                      // shares
                util::encode_symbol(rng.pick(symbols())),  // stock
                rng.uniform(0, 60000)};                    // price
  env.states = {0, 0};
  return env;
}

struct Scenario {
  const FabricNemesisOptions& opts;
  FabricNemesisStats& stats;
  std::uint64_t seed;
  util::Rng rng;
  spec::Schema schema;
  compiler::FabricSpec fabric_spec;

  util::MemStorage storage;
  std::unique_ptr<netsim::Fabric> fabric;
  std::unique_ptr<FabricController> ctl;
  std::vector<ShadowSub> shadow;
  std::uint16_t next_port = 1;
  bool used_checkpoint = false;
  std::optional<std::uint64_t> deposed_epoch;

  Scenario(const FabricNemesisOptions& o, FabricNemesisStats& st,
           std::uint64_t s)
      : opts(o), stats(st), seed(s), rng(s), schema(spec::make_itch_schema()) {
    fabric_spec.leaves = opts.leaves;
    fabric_spec.spines = opts.spines;
    netsim::FabricTopologyOptions topo;
    topo.spec = fabric_spec;
    fabric = std::make_unique<netsim::Fabric>(spec::make_itch_schema(), topo);
    ctl = std::make_unique<FabricController>(spec::make_itch_schema(), storage,
                                             fabric_spec);
  }

  std::size_t switch_count() const { return opts.spines + opts.leaves; }

  void trace(const std::string& what) {
    if (std::getenv("NEMESIS_TRACE"))
      std::fprintf(stderr, "[fabric seed %llu] %s\n",
                   static_cast<unsigned long long>(seed), what.c_str());
  }

  void violation(const std::string& what) {
    ++stats.violations;
    if (stats.violation_details.size() < 20)
      stats.violation_details.push_back("seed " + std::to_string(seed) + ": " +
                                        what);
  }

  bool check(bool ok, const std::string& what) {
    if (!ok) violation(what);
    return ok;
  }

  std::vector<std::uint64_t> switch_digests() {
    std::vector<std::uint64_t> d;
    d.reserve(switch_count());
    for (std::size_t s = 0; s < opts.spines; ++s)
      d.push_back(fabric->spine(s).program_digest());
    for (std::size_t l = 0; l < opts.leaves; ++l)
      d.push_back(fabric->leaf(l).program_digest());
    return d;
  }

  // I1: replayed intended state matches the shadow model.
  void check_recovery(const pubsub::RecoveryInfo& info) {
    check(info.subscriptions == shadow.size(),
          "I1: recovered " + std::to_string(info.subscriptions) +
              " subscriptions, shadow has " + std::to_string(shadow.size()));
    if (!info.from_snapshot)
      check(info.digest_mismatches == 0,
            "I1: exact replay reported digest mismatches");
  }

  void note_reconcile(const pubsub::FabricReconcileReport& rec) {
    ++stats.reconciles;
    stats.repairs += rec.repaired;
    stats.full_reprograms += rec.full_reprograms;
    stats.repair_ops += rec.repair_ops;
  }

  // Reconcile the whole fabric and demand convergence (I2 precondition).
  void reconcile(const std::string& why) {
    auto rec = ctl->reconcile(fabric->targets());
    if (!check(rec.ok(), why + ": reconcile errored: " +
                             (rec.ok() ? "" : rec.error().to_string())))
      return;
    note_reconcile(rec.value());
    if (ctl->commit_seq() > 0)
      check(rec.value().converged,
            why + ": reconcile did not converge: " + rec.value().error);
  }

  // I2 + I4 fabric-wide: per-switch digests match the intended program,
  // and the fabric's delivery set equals the monolithic oracle's.
  void check_installed() {
    auto intended = ctl->intended();
    if (!check(intended.ok(), "I2: no intended program after commit")) return;
    const compiler::FabricProgram& prog = *intended.value();
    for (std::size_t s = 0; s < opts.spines; ++s)
      check(fabric->spine(s).program_digest() == prog.spine_digest,
            "I2: spine " + std::to_string(s) + " digest != intended");
    for (std::size_t l = 0; l < opts.leaves; ++l)
      check(fabric->leaf(l).program_digest() == prog.leaf_digests[l],
            "I2: leaf " + std::to_string(l) + " digest != intended");

    auto bound = bind_shadow(schema, shadow);
    if (!check(bound.ok(), "I4: shadow rules failed to bind")) return;
    auto oracle = compiler::compile_rules(schema, bound.value());
    if (!check(oracle.ok(), "I4: oracle batch compile failed")) return;

    for (std::size_t i = 0; i < opts.probe_messages; ++i) {
      ++stats.probes;
      lang::Env env = probe_env(rng);
      const auto got = fabric->deliver_env(env.fields, 1000 + i);
      const lang::ActionSet want_set =
          oracle.value().pipeline.evaluate_actions(env);
      std::vector<std::pair<std::size_t, std::uint16_t>> want;
      want.reserve(want_set.ports.size());
      for (const std::uint16_t p : want_set.ports)
        want.emplace_back(fabric_spec.leaf_of(p), p);
      std::sort(want.begin(), want.end());
      want.erase(std::unique(want.begin(), want.end()), want.end());
      if (got != want) {
        std::ostringstream os;
        os << "I4: probe " << i << " fabric delivered " << got.size()
           << " (leaf,port) pairs, oracle says " << want.size();
        violation(os.str());
        return;  // one detailed report per sweep is enough
      }
    }
  }

  // Churn ops ------------------------------------------------------------

  void do_subscribe() {
    const std::uint16_t port =
        rng.chance(0.3)
            ? static_cast<std::uint16_t>(rng.uniform(1, 8))
            : next_port++;
    const int prio = static_cast<int>(rng.uniform(0, 3));
    std::string text = gen_rule_text(rng);
    auto sub = ctl->subscribe(port, text, prio);
    if (!check(sub.ok(), "subscribe rejected: " +
                             (sub.ok() ? "" : sub.error().to_string())))
      return;
    if (text.find(':') == std::string::npos)
      text += " : fwd(" + std::to_string(port) + ")";
    shadow.push_back({port, prio, text});
  }

  void do_unsubscribe() {
    if (shadow.empty()) return;
    const std::uint16_t port = shadow[rng.uniform(0, shadow.size() - 1)].port;
    auto removed = ctl->unsubscribe(port);
    if (!check(removed.ok(), "unsubscribe failed")) return;
    const std::string only = ": fwd(" + std::to_string(port) + ")";
    std::size_t dropped = 0, w = 0;
    for (std::size_t i = 0; i < shadow.size(); ++i) {
      if (shadow[i].text.find(only) != std::string::npos &&
          shadow[i].port == port) {
        ++dropped;
        continue;
      }
      if (w != i) shadow[w] = std::move(shadow[i]);
      ++w;
    }
    shadow.resize(w);
    check(removed.value() == dropped,
          "unsubscribe removed " + std::to_string(removed.value()) +
              ", shadow dropped " + std::to_string(dropped));
  }

  enum class InstallFlavor { kClean, kFlaky, kPartition, kCrashMidCommit };

  void do_commit_install(InstallFlavor flavor, std::uint64_t salt) {
    auto committed = ctl->commit();
    if (!check(committed.ok(),
               "commit failed: " +
                   (committed.ok() ? "" : committed.error().to_string())))
      return;
    ++stats.commits;

    switch (flavor) {
      case InstallFlavor::kClean: {
        auto report = ctl->install(fabric->targets());
        if (!check(report.ok(), "install errored")) return;
        ++stats.installs;
        check(report.value().committed,
              "install failed on a healthy channel: " + report.value().error);
        break;
      }
      case InstallFlavor::kFlaky: {
        // Flaky-but-usable channel on every switch: the chunk protocol
        // must still land the whole transaction.
        FaultSpec spec;
        spec.drop = 0.08;
        spec.corrupt = 0.08;
        spec.duplicate = 0.10;
        spec.reorder = 0.10;
        const Plan plan(spec, seed ^ (salt * 0x85ebULL));
        auto report = ctl->install(fabric->targets(), &plan);
        if (!check(report.ok(), "install errored")) return;
        ++stats.installs;
        check(report.value().committed,
              "install failed on a flaky channel: " + report.value().error);
        break;
      }
      case InstallFlavor::kPartition: {
        // Total partition to ONE switch: the transaction must abort with
        // ZERO switches modified — atomicity witnessed by digests.
        ++stats.partitions;
        const int victim =
            static_cast<int>(rng.uniform(0, switch_count() - 1));
        const auto before = switch_digests();
        FaultSpec spec;
        spec.drop = 1.0;
        const Plan plan(spec, seed ^ (salt * 0x9e37ULL));
        auto report = ctl->install(fabric->targets(), &plan, victim);
        if (!check(report.ok(), "partitioned install errored")) return;
        ++stats.installs;
        if (check(report.value().all_or_nothing_abort,
                  "partitioned install did not abort all-or-nothing"))
          ++stats.all_or_nothing_aborts;
        check(report.value().committed_switches == 0 &&
                  switch_digests() == before,
              "I2: aborted install modified a switch (atomicity broken)");
        // Heal: the journaled commit is still the intent.
        reconcile("post-partition heal");
        break;
      }
      case InstallFlavor::kCrashMidCommit: {
        // The fabric-specific hazard: die between per-switch commits.
        ++stats.crashes_mid_commit;
        const int after =
            static_cast<int>(rng.uniform(0, switch_count() - 1));
        ctl->set_crash_after_commits(after);
        auto report = ctl->install(fabric->targets());
        if (!check(report.ok(), "mid-commit install errored")) return;
        ++stats.installs;
        check(report.value().crashed_mid_commit,
              "crash hook did not fire mid-commit");
        trace("crashed after " + std::to_string(after) + " commits");
        // The controller process is dead: recover a successor and let it
        // repair the mixed fabric.
        crash_controller(/*already_dead=*/true);
        break;
      }
    }
  }

  // Nemesis actions -------------------------------------------------------

  void crash_controller(bool already_dead = false) {
    ++stats.crashes;
    trace(already_dead ? "recover after mid-commit death"
                       : "crash controller");
    deposed_epoch = ctl->epoch();
    if (!already_dead && opts.checkpoint_every > 0 && !used_checkpoint &&
        seed % opts.checkpoint_every == 0 && rng.chance(0.5)) {
      if (ctl->checkpoint().ok()) {
        ++stats.checkpoints;
        used_checkpoint = true;
      }
    }
    storage.crash(rng.uniform(0, 16));
    ctl = std::make_unique<FabricController>(spec::make_itch_schema(), storage,
                                             fabric_spec);
    auto info = ctl->open();
    if (!check(info.ok(), "recovery open() failed: " +
                              (info.ok() ? "" : info.error().to_string())))
      return;
    if (info.value().from_snapshot) ++stats.recoveries_from_snapshot;
    check_recovery(info.value());
    reconcile("post-crash");
  }

  void reboot_leaf() {
    ++stats.leaf_reboots;
    const std::size_t l = rng.uniform(0, opts.leaves - 1);
    trace("reboot leaf " + std::to_string(l));
    fabric->reboot_leaf(l);
    reconcile("post-leaf-reboot");
  }

  void reboot_spine() {
    ++stats.spine_reboots;
    const std::size_t s = rng.uniform(0, opts.spines - 1);
    trace("reboot spine " + std::to_string(s));
    fabric->reboot_spine(s);
    reconcile("post-spine-reboot");
  }

  void stale_write() {
    if (!deposed_epoch) return;
    ++stats.stale_writes;
    // The deposed controller retries its last write on a random switch.
    const std::size_t i = rng.uniform(0, switch_count() - 1);
    switchsim::Switch& sw = i < opts.spines
                                ? fabric->spine(i)
                                : fabric->leaf(i - opts.spines);
    const std::uint64_t before = sw.program_version();
    auto rejected = sw.reprogram_fenced(*deposed_epoch, table::Pipeline{});
    const bool bounced = !rejected.ok() && rejected.error().code == "E140" &&
                         sw.program_version() == before;
    if (bounced) ++stats.stale_rejected;
    check(bounced, "I3: stale-epoch write landed on switch " +
                       std::to_string(i));
  }

  void run() {
    auto opened = ctl->open();
    if (!check(opened.ok(), "initial open() failed")) return;
    for (std::size_t step = 0; step < opts.steps; ++step) {
      ++stats.steps;
      if (!shadow.empty() && rng.chance(0.25))
        do_unsubscribe();
      else
        do_subscribe();

      if ((step + 1) % opts.commit_every == 0) {
        const std::uint32_t roll =
            static_cast<std::uint32_t>(rng.uniform(0, 999));
        InstallFlavor flavor = InstallFlavor::kClean;
        if (roll < opts.partition_per_mille)
          flavor = InstallFlavor::kPartition;
        else if (roll < opts.partition_per_mille +
                            opts.crash_mid_commit_per_mille)
          flavor = InstallFlavor::kCrashMidCommit;
        else if (rng.chance(0.5))
          flavor = InstallFlavor::kFlaky;
        do_commit_install(flavor, step);
      }

      const std::uint32_t roll =
          static_cast<std::uint32_t>(rng.uniform(0, 999));
      if (roll < opts.crash_per_mille) {
        crash_controller();
      } else if (roll < opts.crash_per_mille + opts.leaf_reboot_per_mille) {
        reboot_leaf();
      } else if (roll < opts.crash_per_mille + opts.leaf_reboot_per_mille +
                            opts.spine_reboot_per_mille) {
        reboot_spine();
      } else if (roll < opts.crash_per_mille + opts.leaf_reboot_per_mille +
                            opts.spine_reboot_per_mille +
                            opts.stale_write_per_mille) {
        stale_write();
      }
    }

    // Scenario epilogue: converge and audit the whole fabric.
    do_commit_install(InstallFlavor::kClean, opts.steps + 1);
    reconcile("final");
    check_installed();
  }
};

}  // namespace

std::string FabricNemesisStats::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"scenarios\": " << scenarios << ",\n"
     << "  \"steps\": " << steps << ",\n"
     << "  \"commits\": " << commits << ",\n"
     << "  \"installs\": " << installs << ",\n"
     << "  \"crashes\": " << crashes << ",\n"
     << "  \"crashes_mid_commit\": " << crashes_mid_commit << ",\n"
     << "  \"recoveries_from_snapshot\": " << recoveries_from_snapshot
     << ",\n"
     << "  \"leaf_reboots\": " << leaf_reboots << ",\n"
     << "  \"spine_reboots\": " << spine_reboots << ",\n"
     << "  \"partitions\": " << partitions << ",\n"
     << "  \"all_or_nothing_aborts\": " << all_or_nothing_aborts << ",\n"
     << "  \"stale_writes\": " << stale_writes << ",\n"
     << "  \"stale_rejected\": " << stale_rejected << ",\n"
     << "  \"reconciles\": " << reconciles << ",\n"
     << "  \"repairs\": " << repairs << ",\n"
     << "  \"full_reprograms\": " << full_reprograms << ",\n"
     << "  \"repair_ops\": " << repair_ops << ",\n"
     << "  \"checkpoints\": " << checkpoints << ",\n"
     << "  \"probes\": " << probes << ",\n"
     << "  \"violations\": " << violations << "\n"
     << "}";
  return os.str();
}

FabricNemesisStats run_fabric_nemesis(const FabricNemesisOptions& opts) {
  FabricNemesisStats stats;
  for (std::size_t i = 0; i < opts.scenarios; ++i) {
    ++stats.scenarios;
    Scenario sc(opts, stats, opts.seed + i);
    sc.run();
  }
  return stats;
}

}  // namespace camus::fault
