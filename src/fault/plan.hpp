// Deterministic, seeded fault injection for links and replay harnesses.
// A fault::Plan answers "what happens to packet #i on this link" as a pure
// function of (seed, i) — two runs with the same seed see byte-identical
// fault sequences regardless of evaluation order or interleaving, which is
// what makes loss-sweep experiments and differential recovery tests
// reproducible. fault::LinkFaults is the stateful per-link wrapper the
// netsim topology and trace replay apply frame by frame.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace camus::fault {

// Per-link fault rates. All probabilities are independent per frame; a
// dropped frame is gone (duplicate/reorder/corrupt do not apply to it).
struct FaultSpec {
  double drop = 0;       // P(frame lost)
  double duplicate = 0;  // P(frame delivered twice)
  double reorder = 0;    // P(frame delayed past its successors)
  double corrupt = 0;    // P(frame payload bit-flipped)

  // A reordered frame arrives this much later (scaled by a per-frame
  // deterministic factor in [1, 2)); tune it above the inter-frame gap so
  // reordering actually displaces frames.
  double reorder_delay_us = 50.0;
  // Corrupted frames get 1..corrupt_max_bits bit flips.
  std::uint32_t corrupt_max_bits = 3;

  bool enabled() const noexcept {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0;
  }
};

// What the plan decided for one frame.
struct Decision {
  bool drop = false;
  bool duplicate = false;
  std::uint32_t corrupt_bits = 0;  // 0 = intact
  double delay_us = 0;             // > 0 when reordered
};

// The deterministic decision source. decision(i) derives a private
// SplitMix64 stream from (seed, i), so it can be queried out of order,
// twice, or from different processes and always agree.
class Plan {
 public:
  Plan() = default;
  Plan(FaultSpec spec, std::uint64_t seed) : spec_(spec), seed_(seed) {}

  Decision decision(std::uint64_t index) const noexcept;

  // Applies decision(index).corrupt_bits pseudo-random bit flips in place.
  // No-op when the decision says the frame is intact or `frame` is empty.
  void corrupt(std::uint64_t index, std::span<std::uint8_t> frame) const
      noexcept;

  const FaultSpec& spec() const noexcept { return spec_; }
  std::uint64_t seed() const noexcept { return seed_; }
  bool enabled() const noexcept { return spec_.enabled(); }

 private:
  FaultSpec spec_;
  std::uint64_t seed_ = 0;
};

// Stateful per-link applier: assigns consecutive plan indices to offered
// frames and materializes the decisions as 0..2 timed deliveries.
class LinkFaults {
 public:
  struct Arrival {
    double t_us = 0;
    std::vector<std::uint8_t> bytes;
  };

  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;  // arrivals produced (includes duplicates)
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
  };

  LinkFaults() = default;
  explicit LinkFaults(Plan plan) : plan_(plan) {}

  // Offers one frame arriving at t_us; returns its post-fault deliveries
  // (empty on drop, two entries on duplication). Reordered frames get a
  // later t_us — the consumer (event simulator or a time-sorted replay)
  // realizes the displacement by honoring the timestamps.
  std::vector<Arrival> offer(double t_us, std::span<const std::uint8_t> frame);

  const Stats& stats() const noexcept { return stats_; }
  const Plan& plan() const noexcept { return plan_; }
  std::uint64_t frames_seen() const noexcept { return next_index_; }

  void reset() {
    next_index_ = 0;
    stats_ = Stats{};
  }

 private:
  Plan plan_;
  std::uint64_t next_index_ = 0;
  Stats stats_;
};

}  // namespace camus::fault
