#include "fault/plan.hpp"

#include "util/rng.hpp"

namespace camus::fault {

namespace {

// Independent per-(seed, index, salt) streams. SplitMix64 over a mixed key
// gives every frame its own short high-quality sequence; the salts keep the
// decision draws and the corruption positions decoupled, so e.g. raising
// the drop rate does not shift which bits a corrupted frame flips.
constexpr std::uint64_t kDecisionSalt = 0xd5a61a94f7c0d9e3ULL;
constexpr std::uint64_t kCorruptSalt = 0x9e2b6f1ac83d571bULL;

util::SplitMix64 stream(std::uint64_t seed, std::uint64_t index,
                        std::uint64_t salt) noexcept {
  util::SplitMix64 mixer(seed ^ salt);
  const std::uint64_t a = mixer.next();
  util::SplitMix64 keyed(a ^ (index * 0x9e3779b97f4a7c15ULL + salt));
  return keyed;
}

double u01(util::SplitMix64& sm) noexcept {
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

}  // namespace

Decision Plan::decision(std::uint64_t index) const noexcept {
  Decision d;
  if (!spec_.enabled()) return d;
  auto sm = stream(seed_, index, kDecisionSalt);
  // Draw every variate unconditionally so one rate never perturbs the
  // stream positions of the others.
  const double r_drop = u01(sm);
  const double r_dup = u01(sm);
  const double r_reorder = u01(sm);
  const double r_corrupt = u01(sm);
  const double r_delay = u01(sm);
  const double r_bits = u01(sm);

  if (r_drop < spec_.drop) {
    d.drop = true;
    return d;
  }
  d.duplicate = r_dup < spec_.duplicate;
  if (r_reorder < spec_.reorder)
    d.delay_us = spec_.reorder_delay_us * (1.0 + r_delay);
  if (r_corrupt < spec_.corrupt && spec_.corrupt_max_bits > 0)
    d.corrupt_bits =
        1 + static_cast<std::uint32_t>(
                r_bits * static_cast<double>(spec_.corrupt_max_bits - 1) +
                0.5);
  return d;
}

void Plan::corrupt(std::uint64_t index, std::span<std::uint8_t> frame) const
    noexcept {
  const Decision d = decision(index);
  if (d.corrupt_bits == 0 || frame.empty()) return;
  auto sm = stream(seed_, index, kCorruptSalt);
  for (std::uint32_t i = 0; i < d.corrupt_bits; ++i) {
    const std::uint64_t r = sm.next();
    const std::size_t byte = static_cast<std::size_t>(
        (r >> 3) % static_cast<std::uint64_t>(frame.size()));
    frame[byte] ^= static_cast<std::uint8_t>(1u << (r & 7));
  }
}

std::vector<LinkFaults::Arrival> LinkFaults::offer(
    double t_us, std::span<const std::uint8_t> frame) {
  const std::uint64_t index = next_index_++;
  ++stats_.offered;
  std::vector<Arrival> out;
  const Decision d = plan_.decision(index);
  if (d.drop) {
    ++stats_.dropped;
    return out;
  }
  Arrival a;
  a.t_us = t_us + d.delay_us;
  a.bytes.assign(frame.begin(), frame.end());
  if (d.corrupt_bits > 0) {
    plan_.corrupt(index, a.bytes);
    ++stats_.corrupted;
  }
  if (d.delay_us > 0) ++stats_.reordered;
  if (d.duplicate) {
    ++stats_.duplicated;
    out.push_back(a);  // duplicate carries the same bytes and timestamp
    ++stats_.delivered;
  }
  out.push_back(std::move(a));
  ++stats_.delivered;
  return out;
}

}  // namespace camus::fault
