// Fabric nemesis: the Jepsen-style campaign of nemesis.hpp lifted to a
// whole spine–leaf fabric. Each scenario drives a FabricController over a
// netsim::Fabric through seeded churn while injecting:
//
//   controller crash      journal truncated to its synced prefix (+ torn
//                         tail); a successor opens, adopts a higher epoch,
//                         and reconciles EVERY switch.
//   crash BETWEEN per-switch commits — the fabric-specific hazard: the
//                         transaction staged everywhere, committed on some
//                         switches, and died, leaving the fabric mixed
//                         old/new with an unresolved kInstallBegin.
//   leaf / spine reboot   one node returns factory-blank; reconcile must
//                         re-image exactly that node.
//   install partition     all chunks dropped to ONE switch: the
//                         all-or-nothing protocol must abort with ZERO
//                         switches modified (checked by digest).
//   stale writes          a deposed controller replays its last write at
//                         a random switch; fencing must bounce it (E140).
//
// The I1–I4 invariants of the single-switch nemesis are checked
// fabric-wide:
//   I1  recovered subscription set == shadow model; exact-replay digests
//       verify.
//   I2  after reconcile, EVERY switch's program digest equals its
//       per-switch intended digest (spine program / leaf program).
//   I3  no stale write lands on ANY switch.
//   I4  delivery ≡ monolithic oracle: for seeded probes, the fabric's
//       (leaf, port) delivery set equals {(leaf_of(p), p)} of an
//       independently batch-compiled single-switch oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace camus::fault {

struct FabricNemesisOptions {
  std::uint64_t seed = 1;
  std::size_t scenarios = 100;
  std::size_t steps = 12;
  std::size_t commit_every = 3;
  std::size_t leaves = 2;
  std::size_t spines = 2;
  // Probability weights (per mille) for the nemesis acting after a step.
  std::uint32_t crash_per_mille = 150;
  std::uint32_t leaf_reboot_per_mille = 90;
  std::uint32_t spine_reboot_per_mille = 60;
  std::uint32_t stale_write_per_mille = 100;
  // Per-mille chance a commit's install runs against a partitioned switch
  // (all chunks dropped → all-or-nothing abort) or crashes mid-commit.
  std::uint32_t partition_per_mille = 180;
  std::uint32_t crash_mid_commit_per_mille = 150;
  // Every n-th scenario checkpoints before a crash (snapshot recovery).
  std::size_t checkpoint_every = 4;
  std::size_t probe_messages = 48;
};

struct FabricNemesisStats {
  std::size_t scenarios = 0;
  std::size_t steps = 0;
  std::size_t commits = 0;
  std::size_t installs = 0;
  std::size_t crashes = 0;
  std::size_t crashes_mid_commit = 0;
  std::size_t recoveries_from_snapshot = 0;
  std::size_t leaf_reboots = 0;
  std::size_t spine_reboots = 0;
  std::size_t partitions = 0;
  std::size_t all_or_nothing_aborts = 0;  // must equal partitions (atomic)
  std::size_t stale_writes = 0;
  std::size_t stale_rejected = 0;         // must equal stale_writes (I3)
  std::size_t reconciles = 0;
  std::size_t repairs = 0;                // switches a reconcile repaired
  std::size_t full_reprograms = 0;
  std::size_t repair_ops = 0;
  std::size_t checkpoints = 0;
  std::size_t probes = 0;
  std::size_t violations = 0;
  std::vector<std::string> violation_details;

  std::string to_json() const;
};

// Runs the campaign; deterministic in opts.seed (scenario i uses seed
// opts.seed + i for everything: churn, fault plans, crash points, probes).
FabricNemesisStats run_fabric_nemesis(const FabricNemesisOptions& opts);

}  // namespace camus::fault
