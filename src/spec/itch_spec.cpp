#include "spec/itch_spec.hpp"

#include <stdexcept>

#include "spec/spec_parser.hpp"

namespace camus::spec {

std::string_view itch_spec_text() {
  return R"(
// ITCH add-order message specification (paper Figure 2).
header_type itch_add_order_t {
    fields {
        shares: 32;
        stock: 64 (symbol);
        price: 32;
    }
}
header itch_add_order_t add_order;

@query_field(add_order.shares)
@query_field(add_order.price)
@query_field_exact(add_order.stock)
@query_counter(my_counter, 100)
@query_avg(avg_price, add_order.price, 100)
)";
}

Schema make_itch_schema() {
  auto r = parse_spec(itch_spec_text());
  if (!r.ok())
    throw std::runtime_error("builtin ITCH spec failed to parse: " +
                             r.error().to_string());
  return std::move(r).take();
}

}  // namespace camus::spec
