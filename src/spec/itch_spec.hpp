// Canonical ITCH add-order schema used throughout the tests, examples, and
// benchmarks. Defined as spec-language source (exercising the parser on
// every use) matching Figure 2 of the paper.
#pragma once

#include <string_view>

#include "spec/schema.hpp"

namespace camus::spec {

// The Figure 2 specification text, extended with the moving-average state
// variable used by the paper's stateful-rule example.
std::string_view itch_spec_text();

// Parses itch_spec_text(); throws std::runtime_error on failure (the text
// is a compile-time constant, so failure is a bug).
Schema make_itch_schema();

}  // namespace camus::spec
