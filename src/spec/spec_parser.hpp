// Parser for the message-format specification language of Figure 2: P4-14
// style header_type declarations plus the Camus @query annotations.
//
//   header_type itch_add_order_t {
//       fields {
//           shares: 32;
//           stock: 64 (symbol);   // (symbol) marks a string-valued field
//           price: 32;
//       }
//   }
//   header itch_add_order_t add_order;
//
//   @query_field(add_order.shares)        // range-matchable
//   @query_field_exact(add_order.stock)   // exact-match only (saves TCAM)
//   @query_counter(my_counter, 100)       // counter, 100us tumbling window
//   @query_avg(avg_price, add_order.price, 100)
//   @query_sum(sum_shares, add_order.shares, 100)
//
// Comments start with '//' or '#'. The annotation order of @query_field
// declarations defines the compiler's default BDD field order.
#pragma once

#include <string_view>

#include "spec/schema.hpp"
#include "util/result.hpp"

namespace camus::spec {

util::Result<Schema> parse_spec(std::string_view text);

}  // namespace camus::spec
