// Message-format schema: the typed attribute space that packet subscriptions
// are written against. Produced by the spec parser (Figure 2 of the paper)
// or built programmatically; consumed by the subscription binder, the Camus
// compiler, and the switch simulator's parser configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace camus::spec {

using FieldId = std::uint32_t;
inline constexpr FieldId kInvalidField = 0xffffffffu;

enum class FieldKind : std::uint8_t {
  kNumeric,  // unsigned integer value
  kSymbol,   // interned/encoded string value (compared only with ==)
};

// Match-type guidance from the annotation: @query_field -> kRange,
// @query_field_exact -> kExact (paper §3.2, "Resource Optimizations").
enum class MatchHint : std::uint8_t { kRange, kExact };

struct FieldSpec {
  FieldId id = kInvalidField;
  std::string header;  // enclosing header instance name, e.g. "add_order"
  std::string name;    // field name, e.g. "stock"
  std::uint32_t width_bits = 0;
  FieldKind kind = FieldKind::kNumeric;
  MatchHint hint = MatchHint::kRange;
  bool queryable = false;  // annotated with @query_field[_exact]

  std::string path() const { return header + "." + name; }

  // Largest representable value for this field's width.
  std::uint64_t umax() const noexcept {
    return width_bits >= 64 ? ~0ULL : ((1ULL << width_bits) - 1);
  }
};

// Aggregation function of a state variable (paper Figure 1: g).
enum class StateFunc : std::uint8_t { kCount, kSum, kAvg, kMin, kMax };

std::string_view to_string(StateFunc f);

struct StateVarSpec {
  std::uint32_t id = 0;
  std::string name;           // e.g. "my_counter", "avg_price"
  StateFunc func = StateFunc::kCount;
  FieldId src_field = kInvalidField;  // field aggregated (kSum/kAvg)
  std::uint64_t window_us = 0;        // tumbling window size
  std::uint32_t width_bits = 64;      // register width

  std::uint64_t umax() const noexcept {
    return width_bits >= 64 ? ~0ULL : ((1ULL << width_bits) - 1);
  }
};

struct HeaderSpec {
  std::string type_name;              // e.g. "itch_add_order_t"
  std::string instance;               // e.g. "add_order"
  std::vector<FieldId> fields;        // in declaration order
};

class Schema {
 public:
  // Declares a header instance; fields are added with add_field.
  void add_header(std::string type_name, std::string instance);

  // Adds a field to the most recently added header. Returns its id.
  FieldId add_field(std::string name, std::uint32_t width_bits,
                    FieldKind kind = FieldKind::kNumeric);

  // Marks a field queryable with the given match hint.
  void mark_queryable(FieldId id, MatchHint hint);

  std::uint32_t add_state_var(std::string name, StateFunc func,
                              FieldId src_field, std::uint64_t window_us);

  const std::vector<FieldSpec>& fields() const noexcept { return fields_; }
  const std::vector<HeaderSpec>& headers() const noexcept { return headers_; }
  const std::vector<StateVarSpec>& state_vars() const noexcept {
    return state_vars_;
  }

  const FieldSpec& field(FieldId id) const { return fields_.at(id); }
  const StateVarSpec& state_var(std::uint32_t id) const {
    return state_vars_.at(id);
  }

  // Resolves "header.field", or a bare "field" when unique across headers.
  std::optional<FieldId> resolve_field(std::string_view path) const;

  // Resolves a state variable by name.
  std::optional<std::uint32_t> resolve_state_var(std::string_view name) const;

  // Resolves a macro reference like avg(price): finds the state variable
  // with the given function whose source field matches `field_path`.
  std::optional<std::uint32_t> resolve_macro(StateFunc func,
                                             std::string_view field_path) const;

  // Queryable fields in annotation order — the compiler's default BDD
  // field order.
  const std::vector<FieldId>& query_order() const noexcept {
    return query_order_;
  }

 private:
  std::vector<FieldSpec> fields_;
  std::vector<HeaderSpec> headers_;
  std::vector<StateVarSpec> state_vars_;
  std::vector<FieldId> query_order_;
};

}  // namespace camus::spec
