#include "spec/spec_parser.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <string>
#include <vector>

namespace camus::spec {
namespace {

using util::Error;
using util::Result;

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kAnnotation, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    t.column = column_;
    if (pos_ >= src_.size()) {
      t.kind = Token::Kind::kEnd;
      return t;
    }
    const char c = src_[pos_];
    if (c == '@') {
      advance();
      t.kind = Token::Kind::kAnnotation;
      t.text = take_ident();
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      t.kind = Token::Kind::kIdent;
      t.text = take_ident();
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      t.kind = Token::Kind::kNumber;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        t.text.push_back(src_[pos_]);
        advance();
      }
      return t;
    }
    t.kind = Token::Kind::kPunct;
    t.text.push_back(c);
    advance();
    return t;
  }

 private:
  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#' ||
                 (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  std::string take_ident() {
    std::string s;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        s.push_back(c);
        advance();
      } else {
        break;
      }
    }
    return s;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

struct TypeField {
  std::string name;
  std::uint32_t width = 0;
  FieldKind kind = FieldKind::kNumeric;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) { bump(); }

  Result<Schema> parse() {
    while (cur_.kind != Token::Kind::kEnd) {
      if (cur_.kind == Token::Kind::kIdent && cur_.text == "header_type") {
        if (auto err = parse_header_type()) return *err;
      } else if (cur_.kind == Token::Kind::kIdent && cur_.text == "header") {
        if (auto err = parse_header_instance()) return *err;
      } else if (cur_.kind == Token::Kind::kAnnotation) {
        if (auto err = parse_annotation()) return *err;
      } else {
        return fail("E101", "expected 'header_type', 'header', or an annotation");
      }
    }
    if (schema_.headers().empty())
      return fail("E102", "specification declares no header instances");
    return std::move(schema_);
  }

 private:
  void bump() { cur_ = lex_.next(); }

  // Stable diagnostic codes (E101..E114) in the style of the verify::
  // lint codes, so tooling can assert on failure class instead of message
  // text.
  Error fail(const char* code, std::string msg) const {
    return Error{std::move(msg), cur_.line, cur_.column, code};
  }

  std::optional<Error> expect_punct(char c) {
    if (cur_.kind != Token::Kind::kPunct || cur_.text[0] != c)
      return fail("E103",
                  std::string("expected '") + c + "', got '" + cur_.text +
                      "'");
    bump();
    return std::nullopt;
  }

  std::optional<Error> expect_ident(std::string* out) {
    if (cur_.kind != Token::Kind::kIdent)
      return fail("E104", "expected identifier, got '" + cur_.text + "'");
    *out = cur_.text;
    bump();
    return std::nullopt;
  }

  std::optional<Error> expect_number(std::uint64_t* out) {
    if (cur_.kind != Token::Kind::kNumber)
      return fail("E105", "expected number, got '" + cur_.text + "'");
    std::uint64_t v = 0;
    auto [p, ec] = std::from_chars(cur_.text.data(),
                                   cur_.text.data() + cur_.text.size(), v);
    if (ec != std::errc() || p != cur_.text.data() + cur_.text.size())
      return fail("E105", "invalid number '" + cur_.text + "'");
    *out = v;
    bump();
    return std::nullopt;
  }

  std::optional<Error> parse_header_type() {
    bump();  // 'header_type'
    std::string type_name;
    if (auto e = expect_ident(&type_name)) return e;
    if (auto e = expect_punct('{')) return e;
    std::string kw;
    if (auto e = expect_ident(&kw)) return e;
    if (kw != "fields") return fail("E114", "expected 'fields' block");
    if (auto e = expect_punct('{')) return e;

    std::vector<TypeField> fields;
    while (!(cur_.kind == Token::Kind::kPunct && cur_.text == "}")) {
      TypeField f;
      if (auto e = expect_ident(&f.name)) return e;
      if (auto e = expect_punct(':')) return e;
      std::uint64_t w = 0;
      if (auto e = expect_number(&w)) return e;
      if (w == 0 || w > 64)
        return fail("E106", "field '" + f.name + "' width must be in [1, 64]");
      f.width = static_cast<std::uint32_t>(w);
      if (cur_.kind == Token::Kind::kPunct && cur_.text == "(") {
        bump();
        std::string k;
        if (auto e = expect_ident(&k)) return e;
        if (k == "symbol")
          f.kind = FieldKind::kSymbol;
        else if (k == "numeric")
          f.kind = FieldKind::kNumeric;
        else
          return fail("E107", "unknown field kind '" + k + "'");
        if (auto e = expect_punct(')')) return e;
      }
      if (auto e = expect_punct(';')) return e;
      fields.push_back(std::move(f));
    }
    bump();  // '}' of fields
    if (auto e = expect_punct('}')) return e;

    if (types_.count(type_name))
      return fail("E108", "duplicate header_type '" + type_name + "'");
    types_.emplace(std::move(type_name), std::move(fields));
    return std::nullopt;
  }

  std::optional<Error> parse_header_instance() {
    bump();  // 'header'
    std::string type_name, instance;
    if (auto e = expect_ident(&type_name)) return e;
    if (auto e = expect_ident(&instance)) return e;
    if (auto e = expect_punct(';')) return e;
    auto it = types_.find(type_name);
    if (it == types_.end())
      return fail("E109", "unknown header_type '" + type_name + "'");
    schema_.add_header(type_name, instance);
    for (const auto& f : it->second)
      schema_.add_field(f.name, f.width, f.kind);
    return std::nullopt;
  }

  std::optional<Error> parse_annotation() {
    const std::string ann = cur_.text;
    bump();
    if (auto e = expect_punct('(')) return e;

    if (ann == "query_field" || ann == "query_field_exact") {
      std::string path;
      if (auto e = parse_field_path(&path)) return e;
      auto fid = schema_.resolve_field(path);
      if (!fid) return fail("E110", "unknown or ambiguous field '" + path + "'");
      const MatchHint hint =
          ann == "query_field_exact" ? MatchHint::kExact : MatchHint::kRange;
      if (schema_.field(*fid).kind == FieldKind::kSymbol &&
          hint == MatchHint::kRange)
        return fail("E111",
                    "symbol field '" + path + "' requires @query_field_exact");
      schema_.mark_queryable(*fid, hint);
    } else if (ann == "query_counter") {
      std::string name;
      if (auto e = expect_ident(&name)) return e;
      if (auto e = expect_punct(',')) return e;
      std::uint64_t window = 0;
      if (auto e = expect_number(&window)) return e;
      if (schema_.resolve_state_var(name))
        return fail("E112", "duplicate state variable '" + name + "'");
      schema_.add_state_var(name, StateFunc::kCount, kInvalidField, window);
    } else if (ann == "query_avg" || ann == "query_sum" ||
               ann == "query_min" || ann == "query_max") {
      std::string name;
      if (auto e = expect_ident(&name)) return e;
      if (auto e = expect_punct(',')) return e;
      std::string path;
      if (auto e = parse_field_path(&path)) return e;
      if (auto e = expect_punct(',')) return e;
      std::uint64_t window = 0;
      if (auto e = expect_number(&window)) return e;
      auto fid = schema_.resolve_field(path);
      if (!fid) return fail("E110", "unknown or ambiguous field '" + path + "'");
      if (schema_.resolve_state_var(name))
        return fail("E112", "duplicate state variable '" + name + "'");
      const StateFunc func = ann == "query_avg"   ? StateFunc::kAvg
                             : ann == "query_sum" ? StateFunc::kSum
                             : ann == "query_min" ? StateFunc::kMin
                                                  : StateFunc::kMax;
      schema_.add_state_var(name, func, *fid, window);
    } else {
      return fail("E113", "unknown annotation '@" + ann + "'");
    }
    return expect_punct(')');
  }

  std::optional<Error> parse_field_path(std::string* out) {
    std::string part;
    if (auto e = expect_ident(&part)) return e;
    *out = part;
    while (cur_.kind == Token::Kind::kPunct && cur_.text == ".") {
      bump();
      if (auto e = expect_ident(&part)) return e;
      *out += "." + part;
    }
    return std::nullopt;
  }

  Lexer lex_;
  Token cur_;
  Schema schema_;
  std::map<std::string, std::vector<TypeField>> types_;
};

}  // namespace

Result<Schema> parse_spec(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace camus::spec
