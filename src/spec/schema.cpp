#include "spec/schema.hpp"

#include <stdexcept>

namespace camus::spec {

std::string_view to_string(StateFunc f) {
  switch (f) {
    case StateFunc::kCount: return "count";
    case StateFunc::kSum: return "sum";
    case StateFunc::kAvg: return "avg";
    case StateFunc::kMin: return "min";
    case StateFunc::kMax: return "max";
  }
  return "?";
}

void Schema::add_header(std::string type_name, std::string instance) {
  headers_.push_back({std::move(type_name), std::move(instance), {}});
}

FieldId Schema::add_field(std::string name, std::uint32_t width_bits,
                          FieldKind kind) {
  if (headers_.empty())
    throw std::logic_error("add_field called before add_header");
  if (width_bits == 0 || width_bits > 64)
    throw std::invalid_argument("field width must be in [1, 64] bits");
  FieldSpec f;
  f.id = static_cast<FieldId>(fields_.size());
  f.header = headers_.back().instance;
  f.name = std::move(name);
  f.width_bits = width_bits;
  f.kind = kind;
  fields_.push_back(f);
  headers_.back().fields.push_back(f.id);
  return f.id;
}

void Schema::mark_queryable(FieldId id, MatchHint hint) {
  FieldSpec& f = fields_.at(id);
  if (!f.queryable) query_order_.push_back(id);
  f.queryable = true;
  f.hint = hint;
}

std::uint32_t Schema::add_state_var(std::string name, StateFunc func,
                                    FieldId src_field,
                                    std::uint64_t window_us) {
  StateVarSpec v;
  v.id = static_cast<std::uint32_t>(state_vars_.size());
  v.name = std::move(name);
  v.func = func;
  v.src_field = src_field;
  v.window_us = window_us;
  state_vars_.push_back(std::move(v));
  return state_vars_.back().id;
}

std::optional<FieldId> Schema::resolve_field(std::string_view path) const {
  const auto dot = path.find('.');
  if (dot != std::string_view::npos) {
    const std::string_view hdr = path.substr(0, dot);
    const std::string_view name = path.substr(dot + 1);
    for (const auto& f : fields_)
      if (f.header == hdr && f.name == name) return f.id;
    return std::nullopt;
  }
  // Bare name: unique match across all headers required.
  std::optional<FieldId> found;
  for (const auto& f : fields_) {
    if (f.name == path) {
      if (found) return std::nullopt;  // ambiguous
      found = f.id;
    }
  }
  return found;
}

std::optional<std::uint32_t> Schema::resolve_state_var(
    std::string_view name) const {
  for (const auto& v : state_vars_)
    if (v.name == name) return v.id;
  return std::nullopt;
}

std::optional<std::uint32_t> Schema::resolve_macro(
    StateFunc func, std::string_view field_path) const {
  const auto fid = resolve_field(field_path);
  for (const auto& v : state_vars_) {
    if (v.func != func) continue;
    if (fid && v.src_field == *fid) return v.id;
  }
  return std::nullopt;
}

}  // namespace camus::spec
