// Software content-based matchers — the systems Camus is compared against.
//
//  - NaiveMatcher: evaluates every subscription per message. This is what
//    the paper's baseline subscriber does (DPDK host filtering the full
//    feed for its own subscriptions).
//  - CountingMatcher: the classic counting-algorithm index from software
//    pub/sub brokers (Siena-style): per-subject interval indices mark
//    satisfied constraints, and a conjunction fires when its counter
//    reaches its constraint count. The strongest practical software
//    baseline for the throughput microbenchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/bound.hpp"
#include "lang/dnf.hpp"
#include "spec/schema.hpp"

namespace camus::baseline {

class NaiveMatcher {
 public:
  NaiveMatcher(std::vector<lang::FlatRule> rules);

  // Union of the actions of every matching rule.
  lang::ActionSet match(const lang::Env& env) const;

  std::size_t rule_count() const noexcept { return rules_.size(); }

 private:
  std::vector<lang::FlatRule> rules_;
};

class CountingMatcher {
 public:
  CountingMatcher(const std::vector<lang::FlatRule>& rules,
                  const spec::Schema& schema);

  lang::ActionSet match(const lang::Env& env) const;

  std::size_t conjunction_count() const noexcept { return conj_.size(); }

 private:
  struct ConjInfo {
    std::uint32_t needed = 0;   // number of per-subject constraints
    std::uint32_t rule = 0;     // owning rule (for actions)
  };

  // Per-subject elementary-segment index: the subject's domain is split at
  // every constraint boundary; each segment stores the conjunction
  // constraints it satisfies. Stabbing = one binary search.
  struct SubjectIndex {
    lang::Subject subject;
    std::vector<std::uint64_t> bounds;  // segment starts, ascending, [0]=0
    std::vector<std::vector<std::uint32_t>> satisfied;  // conj ids/segment
  };

  std::vector<ConjInfo> conj_;
  std::vector<lang::ActionSet> rule_actions_;
  std::vector<SubjectIndex> subjects_;
  std::vector<std::uint32_t> always_true_;  // conjunctions with no atoms
  // Scratch counters reused across match() calls (single-threaded use).
  mutable std::vector<std::uint32_t> counters_;
};

}  // namespace camus::baseline
