#include "baseline/matcher.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace camus::baseline {

using lang::ActionSet;
using lang::Env;
using lang::FlatRule;
using lang::Subject;
using util::IntervalSet;

NaiveMatcher::NaiveMatcher(std::vector<FlatRule> rules)
    : rules_(std::move(rules)) {}

ActionSet NaiveMatcher::match(const Env& env) const {
  ActionSet out;
  for (const auto& r : rules_) {
    if (lang::eval_flat_rule(r, env)) out.merge(r.actions);
  }
  return out;
}

CountingMatcher::CountingMatcher(const std::vector<FlatRule>& rules,
                                 const spec::Schema& schema) {
  rule_actions_.reserve(rules.size());
  // Collect constraints per subject across all conjunctions.
  std::map<Subject, std::vector<std::pair<IntervalSet, std::uint32_t>>>
      per_subject;
  for (std::uint32_t r = 0; r < rules.size(); ++r) {
    rule_actions_.push_back(rules[r].actions);
    for (const auto& term : rules[r].terms) {
      const std::uint32_t cid = static_cast<std::uint32_t>(conj_.size());
      conj_.push_back({static_cast<std::uint32_t>(term.constraints.size()),
                       r});
      if (term.constraints.empty()) {
        always_true_.push_back(cid);
        continue;
      }
      for (const auto& [subj, set] : term.constraints)
        per_subject[subj].emplace_back(set, cid);
    }
  }

  // Build the elementary-segment index per subject.
  for (auto& [subj, constraints] : per_subject) {
    SubjectIndex idx;
    idx.subject = subj;
    std::set<std::uint64_t> cuts{0};
    for (const auto& [set, cid] : constraints) {
      for (const auto& iv : set.intervals()) {
        cuts.insert(iv.lo);
        if (iv.hi != IntervalSet::kMax) cuts.insert(iv.hi + 1);
      }
    }
    idx.bounds.assign(cuts.begin(), cuts.end());
    idx.satisfied.resize(idx.bounds.size());
    for (const auto& [set, cid] : constraints) {
      for (const auto& iv : set.intervals()) {
        // Segments covered by [lo, hi]: all bounds in [lo, hi].
        auto first = std::lower_bound(idx.bounds.begin(), idx.bounds.end(),
                                      iv.lo);
        for (auto it = first; it != idx.bounds.end() && *it <= iv.hi; ++it)
          idx.satisfied[static_cast<std::size_t>(it - idx.bounds.begin())]
              .push_back(cid);
      }
    }
    subjects_.push_back(std::move(idx));
  }
  counters_.resize(conj_.size());
}

ActionSet CountingMatcher::match(const Env& env) const {
  std::fill(counters_.begin(), counters_.end(), 0);
  ActionSet out;
  for (const auto& idx : subjects_) {
    const std::uint64_t v = env.get(idx.subject);
    auto it = std::upper_bound(idx.bounds.begin(), idx.bounds.end(), v);
    const std::size_t seg = static_cast<std::size_t>(it - idx.bounds.begin()) - 1;
    for (std::uint32_t cid : idx.satisfied[seg]) {
      if (++counters_[cid] == conj_[cid].needed)
        out.merge(rule_actions_[conj_[cid].rule]);
    }
  }
  for (std::uint32_t cid : always_true_)
    out.merge(rule_actions_[conj_[cid].rule]);
  return out;
}

}  // namespace camus::baseline
