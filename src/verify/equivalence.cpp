#include "verify/equivalence.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_map.hpp"
#include "verify/subscriptions.hpp"

namespace camus::verify {

using bdd::NodeRef;
using lang::RelOp;
using lang::Subject;
using table::StateId;
using table::Table;
using table::ValueMatch;

namespace {

// Region starts a predicate on [0, umax] introduces: the first value on
// which its truth flips.
void predicate_cuts(RelOp op, std::uint64_t value, std::uint64_t umax,
                    std::vector<std::uint64_t>& out) {
  auto push = [&](std::uint64_t v) {
    if (v > 0 && v <= umax) out.push_back(v);
  };
  switch (op) {
    case RelOp::kLt:
      push(value);
      break;
    case RelOp::kEq:
      push(value);
      if (value != ~0ULL) push(value + 1);
      break;
    case RelOp::kGt:
      if (value != ~0ULL) push(value + 1);
      break;
  }
}

void entry_cuts(const ValueMatch& m, std::uint64_t umax,
                std::vector<std::uint64_t>& out) {
  if (m.kind == ValueMatch::Kind::kAny) return;
  if (m.lo > 0 && m.lo <= umax) out.push_back(m.lo);
  if (m.hi != ~0ULL && m.hi + 1 <= umax) out.push_back(m.hi + 1);
}

void sort_unique(std::vector<std::uint64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

struct TripleKey {
  std::uint64_t state_node = 0;  // (state << 32) | node raw bits
  std::uint32_t rank = 0;
  friend bool operator==(const TripleKey&, const TripleKey&) = default;
};
struct TripleHash {
  std::size_t operator()(const TripleKey& k) const noexcept {
    return static_cast<std::size_t>(
        util::mix64(k.state_node ^ (static_cast<std::uint64_t>(k.rank) << 1)));
  }
};

struct Checker {
  const bdd::BddManager& mgr;
  NodeRef root;
  const table::Pipeline& pipe;
  const spec::Schema& schema;
  const EquivalenceOptions& opts;
  EquivalenceResult result;

  std::size_t n_ranks = 0;
  // Per rank: the pipeline stages for that subject in pipeline order
  // (several stages per subject occur on the stitched partitioned path:
  // the dispatch table plus the default shard's own table), and the
  // value-map stage when the subject was domain-compressed.
  std::vector<std::vector<const Table*>> tables_at;
  std::vector<const Table*> map_at;
  std::vector<std::uint64_t> umax_at;
  // Per rank: cuts shared by every state — value-map boundaries (the main
  // table then matches codes, constant within a map region) and, for
  // second-and-later same-rank stages, every entry boundary (the entry
  // state there depends on the first stage's outcome, so per-state cuts
  // would be unsound; the all-entry set over-approximates).
  std::vector<std::vector<std::uint64_t>> shared_cuts;
  // Per rank: per-state entry cuts of the *first* stage (raw domain,
  // uncompressed subjects).
  std::vector<std::unordered_map<StateId, std::vector<std::uint64_t>>>
      state_cuts;
  // Predicate cuts reachable from a BDD node inside its component.
  std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> node_cuts;

  std::unordered_set<TripleKey, TripleHash> visited;
  std::vector<std::uint64_t> path;  // representative value chosen per rank

  bool setup() {
    const auto& subjects = mgr.order().subjects();
    n_ranks = subjects.size();
    tables_at.assign(n_ranks, {});
    map_at.assign(n_ranks, nullptr);
    umax_at.assign(n_ranks, 0);
    shared_cuts.assign(n_ranks, {});
    state_cuts.resize(n_ranks);
    path.assign(n_ranks, 0);
    for (std::size_t k = 0; k < n_ranks; ++k)
      umax_at[k] = mgr.domains().umax(subjects[k]);

    // The co-traversal replays stages in rank order, so it is only sound
    // when the pipeline's stage sequence follows the reference variable
    // order with non-decreasing ranks — true of every compiled pipeline,
    // including the stitched partitioned layout whose dispatch stage and
    // default-shard stage share rank 0. Consecutive same-rank stages are
    // applied in pipeline order against the same field value. Anything
    // else is reported as unverifiable, never as (non-)equivalent.
    std::size_t prev_rank = 0;
    bool first = true;
    for (const auto& t : pipe.tables) {
      if (!mgr.order().contains(t.subject())) {
        result.detail = "table '" + t.name() +
                        "' keys on a subject the reference BDD does not "
                        "order; cannot co-traverse";
        return false;
      }
      const std::size_t k = mgr.order().rank(t.subject());
      if (!first && k < prev_rank) {
        result.detail =
            "pipeline stage order does not follow the reference variable "
            "order; cannot co-traverse";
        return false;
      }
      prev_rank = k;
      first = false;
      if (tables_at[k].empty()) {
        // First stage at this rank: the entry state is known exactly, so
        // its cuts can stay per-state.
        for (const auto& e : t.entries())
          entry_cuts(e.match, umax_at[k], state_cuts[k][e.state]);
        for (auto& [s, cuts] : state_cuts[k]) sort_unique(cuts);
      } else {
        // Later same-rank stages see a state produced by the earlier ones
        // at this very rank, so their cuts join the rank-wide shared set.
        for (const auto& e : t.entries())
          entry_cuts(e.match, umax_at[k], shared_cuts[k]);
        sort_unique(shared_cuts[k]);
      }
      tables_at[k].push_back(&t);
    }
    for (const auto& m : pipe.value_maps) {
      if (!mgr.order().contains(m.subject())) {
        result.detail = "value map '" + m.name() +
                        "' keys on a subject the reference BDD does not "
                        "order; cannot co-traverse";
        return false;
      }
      const std::size_t k = mgr.order().rank(m.subject());
      if (map_at[k]) {
        result.detail = "subject '" + m.name() +
                        "' has two value-map stages; cannot co-traverse";
        return false;
      }
      if (tables_at[k].size() > 1) {
        // A value map rewrites the field for *every* stage on the
        // subject; with several stages (stitched dispatch layouts) the
        // raw-vs-code domains cannot be told apart here. compress_domains
        // refuses to create this shape; reject it defensively.
        result.detail = "subject of value map '" + m.name() +
                        "' has multiple stages; cannot co-traverse";
        return false;
      }
      map_at[k] = &m;
      shared_cuts[k].clear();
      for (const auto& e : m.entries())
        entry_cuts(e.match, umax_at[k], shared_cuts[k]);
      sort_unique(shared_cuts[k]);
      // Code space is opaque to the raw domain: raw-value cuts from the
      // main table would be wrong, so the map boundaries replace them.
      state_cuts[k].clear();
    }
    return true;
  }

  // Cuts of every predicate reachable from u without leaving u's
  // component (nodes testing the same subject).
  const std::vector<std::uint64_t>& cuts_below(NodeRef u, std::size_t k) {
    auto it = node_cuts.find(u.raw());
    if (it != node_cuts.end()) return it->second;
    std::vector<std::uint64_t> cuts;
    std::unordered_set<std::uint32_t> seen;
    std::vector<NodeRef> stack{u};
    const Subject s = mgr.subject_of(u);
    while (!stack.empty()) {
      const NodeRef v = stack.back();
      stack.pop_back();
      if (v.is_terminal() || mgr.subject_of(v) != s) continue;
      if (!seen.insert(v.raw()).second) continue;
      const auto& n = mgr.node(v);
      const auto& p = mgr.var_pred(n.var);
      predicate_cuts(p.op, p.value, umax_at[k], cuts);
      stack.push_back(n.hi);
      stack.push_back(n.lo);
    }
    sort_unique(cuts);
    return node_cuts.emplace(u.raw(), std::move(cuts)).first->second;
  }

  // BDD cofactor of u at value v for rank k: consume every node testing
  // this subject.
  NodeRef descend(NodeRef u, std::size_t k, std::uint64_t v) const {
    while (!u.is_terminal() &&
           mgr.order().rank(mgr.subject_of(u)) == k) {
      const auto& n = mgr.node(u);
      const auto& p = mgr.var_pred(n.var);
      bool taken = false;
      switch (p.op) {
        case RelOp::kEq: taken = v == p.value; break;
        case RelOp::kLt: taken = v < p.value; break;
        case RelOp::kGt: taken = v > p.value; break;
      }
      u = taken ? n.hi : n.lo;
    }
    return u;
  }

  lang::Env build_env() const {
    lang::Env env;
    env.fields.assign(schema.fields().size(), 0);
    env.states.assign(schema.state_vars().size(), 0);
    const auto& subjects = mgr.order().subjects();
    for (std::size_t k = 0; k < n_ranks; ++k) {
      const Subject s = subjects[k];
      auto& slot = s.kind == Subject::Kind::kField ? env.fields : env.states;
      if (s.id < slot.size()) slot[s.id] = path[k];
    }
    return env;
  }

  // Returns false to abort the traversal (divergence found or budget
  // exhausted).
  bool walk(StateId state, NodeRef u, std::size_t k) {
    if (!visited
             .insert({(static_cast<std::uint64_t>(state) << 32) | u.raw(),
                      static_cast<std::uint32_t>(k)})
             .second)
      return true;
    if (++result.pairs_visited > opts.max_pairs) {
      result.completed = false;
      result.detail = "pair budget (" + std::to_string(opts.max_pairs) +
                      ") exhausted before the co-traversal finished";
      return false;
    }

    if (k == n_ranks) {
      // All fields consumed: u is a terminal (children's variables come
      // strictly later in the order, so no node survives the last rank).
      const table::LeafEntry* leaf = pipe.leaf.lookup(state);
      static const lang::ActionSet kDrop{};
      const lang::ActionSet& got = leaf ? leaf->actions : kDrop;
      const lang::ActionSet& want = mgr.terminal_actions(u);
      if (got == want) return true;
      return report_divergence();
    }

    const auto& stages = tables_at[k];
    const Table* map = map_at[k];
    const bool bdd_here =
        !u.is_terminal() && mgr.order().rank(mgr.subject_of(u)) == k;

    // Region starts: 0 plus every boundary either side distinguishes —
    // the BDD component's predicate cuts, the first stage's cuts for the
    // entry state (or the map boundaries), and the rank-wide shared cuts
    // of any later same-rank stages.
    std::vector<std::uint64_t> cuts{0};
    if (bdd_here) {
      const auto& b = cuts_below(u, k);
      cuts.insert(cuts.end(), b.begin(), b.end());
    }
    if (map) {
      cuts.insert(cuts.end(), shared_cuts[k].begin(), shared_cuts[k].end());
    } else {
      if (!stages.empty()) {
        auto it = state_cuts[k].find(state);
        if (it != state_cuts[k].end())
          cuts.insert(cuts.end(), it->second.begin(), it->second.end());
      }
      if (stages.size() > 1)
        cuts.insert(cuts.end(), shared_cuts[k].begin(), shared_cuts[k].end());
    }
    sort_unique(cuts);

    for (const std::uint64_t rep : cuts) {
      ++result.regions_checked;
      path[k] = rep;
      const std::uint64_t key =
          map ? map->lookup(table::kInitialState, rep).value_or(0) : rep;
      StateId next = state;  // no stage: state passes through
      for (const Table* tbl : stages)
        next = tbl->lookup(next, key).value_or(next);
      if (!walk(next, descend(u, k, rep), k + 1)) return false;
    }
    path[k] = 0;
    return true;
  }

  bool report_divergence() {
    lang::Env env = build_env();
    // Re-validate concretely so a checker bug cannot fabricate a wrong
    // counterexample.
    const lang::ActionSet& got = pipe.evaluate_actions(env);
    const lang::ActionSet& want = mgr.evaluate(root, env);
    if (got == want) {
      result.completed = false;
      result.detail =
          "internal: symbolic divergence did not reproduce concretely on " +
          render_env(env, schema);
      return false;
    }
    result.equivalent = false;
    result.counterexample = std::move(env);
    result.detail = "pipeline returns {" + got.to_string() +
                    "} but the reference returns {" + want.to_string() +
                    "} for packet " +
                    render_env(*result.counterexample, schema);
    return false;
  }

  EquivalenceResult run() {
    if (!setup()) {
      result.completed = false;
      return result;
    }
    walk(pipe.initial_state, root, 0);
    return result;
  }
};

}  // namespace

EquivalenceResult check_equivalence(const bdd::BddManager& mgr, NodeRef root,
                                    const table::Pipeline& pipe,
                                    const spec::Schema& schema,
                                    const EquivalenceOptions& opts) {
  Checker c{mgr, root, pipe, schema, opts};
  return c.run();
}

EquivalenceResult verify_equivalence(const bdd::BddManager& mgr, NodeRef root,
                                     const table::Pipeline& pipe,
                                     const spec::Schema& schema,
                                     Report& report,
                                     const EquivalenceOptions& opts) {
  EquivalenceResult r = check_equivalence(mgr, root, pipe, schema, opts);
  if (!r.completed) {
    report.add(LintCode::kVerifierBudget,
               "equivalence not decided: " + r.detail);
  } else if (!r.equivalent) {
    report.add(LintCode::kNotEquivalent, r.detail);
  }
  return r;
}

}  // namespace camus::verify
