#include "verify/verify.hpp"

namespace camus::verify {

util::Result<VerifyResult> verify_compiled(
    const spec::Schema& schema, const std::vector<lang::BoundRule>& rules,
    const compiler::Compiled& compiled, Report& report,
    const VerifyOptions& opts) {
  VerifyResult out;

  auto subs = lint_subscriptions(schema, rules, report, opts.subscriptions);
  if (!subs.ok()) return subs.error();
  out.subscription_stats = subs.value().stats;

  if (opts.coverage && compiled.manager)
    check_coverage(*compiled.manager, compiled.root, schema, report);

  out.pipeline_stats = lint_pipeline(compiled.pipeline, report, opts.pipeline);

  if (opts.equivalence_check && compiled.manager) {
    out.equivalence =
        verify_equivalence(*compiled.manager, compiled.root,
                           compiled.pipeline, schema, report,
                           opts.equivalence);
  }
  return out;
}

}  // namespace camus::verify
