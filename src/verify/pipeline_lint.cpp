#include "verify/pipeline_lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace camus::verify {

using table::Entry;
using table::StateId;
using table::Table;
using table::ValueMatch;

namespace {

std::uint64_t domain_umax(const Table& t) {
  return t.width_bits() >= 64
             ? ~0ULL
             : (1ULL << t.width_bits()) - 1;
}

// Sorted disjoint intervals covering [0, umax]?
bool covers_domain(std::vector<std::pair<std::uint64_t, std::uint64_t>> ivs,
                   std::uint64_t umax) {
  if (ivs.empty()) return false;
  std::sort(ivs.begin(), ivs.end());
  std::uint64_t next = 0;  // first value not yet covered
  for (const auto& [lo, hi] : ivs) {
    if (lo > next) return false;
    if (hi >= next) {
      if (hi == ~0ULL) return true;
      next = hi + 1;
    }
    if (next > umax) return true;
  }
  return next > umax;
}

struct EntryCheck {
  PipelineLintStats* stats;
  Report* report;

  // One table's worth of priority-shadowing (P001) and dead-default
  // (P003) findings, mirroring Table::finalize()'s index semantics:
  // exact beats range beats any; duplicate exact/any keys keep the last
  // write.
  void check_table(const Table& t) {
    const std::uint64_t umax = domain_umax(t);
    // Group entry indices per state, preserving order.
    std::map<StateId, std::vector<std::size_t>> by_state;
    for (std::size_t i = 0; i < t.entries().size(); ++i) {
      ++stats->entries_checked;
      by_state[t.entries()[i].state].push_back(i);
    }

    for (const auto& [state, idxs] : by_state) {
      std::unordered_map<std::uint64_t, std::size_t> last_exact;
      std::size_t last_any = idxs.size();  // sentinel: none
      for (std::size_t i : idxs) {
        const Entry& e = t.entries()[i];
        if (e.match.kind == ValueMatch::Kind::kExact) {
          auto [it, inserted] = last_exact.emplace(e.match.lo, i);
          if (!inserted) {
            shadow(t, state, it->second,
                   "duplicate exact key " + std::to_string(e.match.lo) +
                       "; a later entry wins");
            it->second = i;
          }
        } else if (e.match.kind == ValueMatch::Kind::kAny) {
          if (last_any != idxs.size()) {
            shadow(t, state, last_any,
                   "duplicate wildcard; a later entry wins");
          }
          last_any = i;
        }
      }

      // Range entries fully covered by exact entries (exact has priority).
      std::vector<std::pair<std::uint64_t, std::uint64_t>> specific;
      for (std::size_t i : idxs) {
        const Entry& e = t.entries()[i];
        if (e.match.kind == ValueMatch::Kind::kExact) {
          if (last_exact.at(e.match.lo) == i)
            specific.emplace_back(e.match.lo, e.match.lo);
          continue;
        }
        if (e.match.kind != ValueMatch::Kind::kRange) continue;
        specific.emplace_back(e.match.lo, e.match.hi);
        const std::uint64_t span = e.match.hi - e.match.lo;
        if (span < last_exact.size()) {
          bool covered = true;
          for (std::uint64_t v = e.match.lo; covered; ++v) {
            if (!last_exact.count(v)) covered = false;
            if (v == e.match.hi) break;
          }
          if (covered) {
            shadow(t, state, i,
                   "every value of " + e.match.to_string() +
                       " is claimed by a higher-priority exact entry");
          }
        }
      }

      if (last_any != idxs.size() && covers_domain(specific, umax)) {
        ++stats->dead_defaults;
        auto& d = report->add(
            LintCode::kDeadDefault,
            "wildcard default never fires: exact/range entries already "
            "cover the whole " +
                std::to_string(t.width_bits()) + "-bit domain");
        d.table = t.name();
        d.state = state;
        d.entry = last_any;
      }
    }
  }

  void shadow(const Table& t, StateId state, std::size_t entry,
              const std::string& why) {
    ++stats->shadowed_entries;
    auto& d = report->add(LintCode::kShadowedEntry,
                          "entry can never match: " + why);
    d.table = t.name();
    d.state = state;
    d.entry = entry;
  }
};

}  // namespace

PipelineLintStats lint_pipeline(const table::Pipeline& pipe, Report& report,
                                const PipelineLintOptions& opts) {
  PipelineLintStats stats;

  // --- P008: structural soundness first ---------------------------------
  if (auto valid = pipe.validate(); !valid.ok()) {
    report.add(LintCode::kStructureInvalid, valid.error().message);
    return stats;  // downstream checks assume a well-formed pipeline
  }

  // --- P001 / P003 per table --------------------------------------------
  EntryCheck check{&stats, &report};
  for (const auto& t : pipe.tables) check.check_table(t);

  // --- P002: forward state reachability ---------------------------------
  // A lookup miss keeps the state, so the reachable set only grows stage
  // by stage. An entry keyed on a state not reachable when its stage runs
  // can never fire.
  std::unordered_set<StateId> reachable{pipe.initial_state};
  for (const auto& t : pipe.tables) {
    std::set<StateId> dead;  // ordered, deterministic report
    std::vector<StateId> produced;
    for (const auto& e : t.entries()) {
      if (reachable.count(e.state))
        produced.push_back(e.next_state);
      else
        dead.insert(e.state);
    }
    for (StateId s : dead) {
      ++stats.unreachable_states;
      auto& d = report.add(
          LintCode::kUnreachableState,
          "entries keyed on state " + std::to_string(s) +
              " are dead: no packet can be in that state at this stage");
      d.table = t.name();
      d.state = s;
    }
    reachable.insert(produced.begin(), produced.end());
  }
  {
    std::set<StateId> dead;
    for (const auto& e : pipe.leaf.entries())
      if (!reachable.count(e.state)) dead.insert(e.state);
    for (StateId s : dead) {
      ++stats.unreachable_states;
      auto& d = report.add(LintCode::kUnreachableState,
                           "leaf entry for state " + std::to_string(s) +
                               " is dead: the state is never produced");
      d.table = "leaf";
      d.state = s;
    }
  }

  // --- P004: transitions into undefined states --------------------------
  // "Defined" from stage k onward: keyed by a later stage or present in
  // the leaf table. Inbound counts decide the heuristic severity (the
  // drop sink is normally targeted by many entries; see header).
  std::unordered_set<StateId> leaf_states;
  for (const auto& e : pipe.leaf.entries()) leaf_states.insert(e.state);
  // defined_after[k]: states keyed by any table with index > k.
  std::vector<std::unordered_set<StateId>> keyed_by(pipe.tables.size());
  for (std::size_t k = 0; k < pipe.tables.size(); ++k)
    for (const auto& e : pipe.tables[k].entries())
      keyed_by[k].insert(e.state);
  std::unordered_map<StateId, std::size_t> inbound;
  for (const auto& t : pipe.tables)
    for (const auto& e : t.entries()) ++inbound[e.next_state];

  for (std::size_t k = 0; k < pipe.tables.size(); ++k) {
    std::set<std::pair<StateId, std::size_t>> dangling;  // state, entry
    for (std::size_t i = 0; i < pipe.tables[k].entries().size(); ++i) {
      const Entry& e = pipe.tables[k].entries()[i];
      if (leaf_states.count(e.next_state)) continue;
      bool keyed_later = false;
      for (std::size_t j = k + 1; j < pipe.tables.size() && !keyed_later; ++j)
        keyed_later = keyed_by[j].count(e.next_state) != 0;
      if (!keyed_later) dangling.emplace(e.next_state, i);
    }
    for (const auto& [s, i] : dangling) {
      ++stats.dangling_transitions;
      const bool lone = inbound[s] == 1;
      auto& d = report.add(
          LintCode::kDanglingTransition,
          "transition into state " + std::to_string(s) +
              ", which no later stage keys on and the leaf table does not "
              "define" +
              (lone ? " (single reference: likely a corrupted entry)"
                    : " (drop-sink encoding)"));
      if (!lone) d.severity = Severity::kNote;
      d.table = pipe.tables[k].name();
      d.state = pipe.tables[k].entries()[i].state;
      d.entry = i;
    }
  }

  // --- P005 / P006: resource model --------------------------------------
  if (opts.check_resources) {
    auto check_stage = [&](const Table& t) {
      const table::ResourceUsage u = t.resources();
      if (u.sram_entries > opts.budget.sram_entries_per_stage ||
          u.tcam_entries > opts.budget.tcam_entries_per_stage) {
        ++stats.stages_over_budget;
        auto& d = report.add(
            LintCode::kStageOverBudget,
            "stage needs " + std::to_string(u.sram_entries) + " SRAM / " +
                std::to_string(u.tcam_entries) + " TCAM entries; budget is " +
                std::to_string(opts.budget.sram_entries_per_stage) + " / " +
                std::to_string(opts.budget.tcam_entries_per_stage) +
                " per stage");
        d.table = t.name();
      }
    };
    for (const auto& t : pipe.value_maps) check_stage(t);
    for (const auto& t : pipe.tables) check_stage(t);
    if (pipe.leaf.entries().size() > opts.budget.sram_entries_per_stage) {
      ++stats.stages_over_budget;
      auto& d = report.add(
          LintCode::kStageOverBudget,
          "leaf table needs " + std::to_string(pipe.leaf.entries().size()) +
              " SRAM entries; budget is " +
              std::to_string(opts.budget.sram_entries_per_stage) +
              " per stage");
      d.table = "leaf";
    }

    const table::ResourceUsage total = pipe.resources();
    if (total.stages > opts.budget.max_stages) {
      report.add(LintCode::kPipelineOverBudget,
                 "pipeline needs " + std::to_string(total.stages) +
                     " stages; the device has " +
                     std::to_string(opts.budget.max_stages));
    }
    if (total.multicast_groups > opts.budget.max_multicast_groups) {
      report.add(LintCode::kPipelineOverBudget,
                 "pipeline needs " + std::to_string(total.multicast_groups) +
                     " multicast groups; the device supports " +
                     std::to_string(opts.budget.max_multicast_groups));
    }
  }

  return stats;
}

}  // namespace camus::verify
