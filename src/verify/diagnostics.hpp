// Diagnostics engine for the static verifier (camus::verify): a flat list
// of findings with stable lint codes, severities, and source provenance,
// renderable as human-readable text or machine-readable JSON. Exit codes
// are CI-friendly: errors fail the build, warnings fail only when the
// caller opts in.
//
// Lint code catalogue (stable; documented in DESIGN.md "Static
// verification"):
//   S0xx — subscription-set analysis (layer 1, rules before compilation)
//   P0xx — compiled-pipeline verification (layer 2, Algorithm 1 output)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "table/table.hpp"

namespace camus::verify {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

std::string_view to_string(Severity s);

enum class LintCode : std::uint8_t {
  // Layer 1 — subscription set.
  kRuleUnsatisfiable,   // S001 error: condition can never match any packet
  kRuleDuplicate,       // S002 warning: identical condition and actions
  kRuleSameCondition,   // S003 warning: identical condition, new actions
  kRuleSubsumed,        // S004 warning: another rule always fires instead
  kRuleOverlap,         // S005 note: same-action rules overlap (mergeable)
  kCoverageHole,        // S006 note: some packet matches no rule at all
  kRuleNegligible,      // S007 warning: negligible match fraction
  kAnalysisTruncated,   // S008 note: pair budget exhausted, results partial
  // Layer 2 — compiled pipeline.
  kShadowedEntry,       // P001 error: entry can never be the match result
  kUnreachableState,    // P002 warning: entry state unreachable from root
  kDeadDefault,         // P003 warning: wildcard fully covered by entries
  kDanglingTransition,  // P004 warning/note: target state never defined
  kStageOverBudget,     // P005 error: per-stage SRAM/TCAM model exceeded
  kPipelineOverBudget,  // P006 error: stage count / multicast groups
  kNotEquivalent,       // P007 error: pipeline diverges from the MTBDD
  kStructureInvalid,    // P008 error: structural validation failed
  kVerifierBudget,      // P009 warning: equivalence check truncated
};

// The stable textual code ("S001", "P007", ...).
std::string_view code_string(LintCode c);

Severity default_severity(LintCode c);

struct Diagnostic {
  LintCode code = LintCode::kAnalysisTruncated;
  Severity severity = Severity::kNote;
  std::string message;

  // Provenance: which artifact the finding refers to. All optional; rule
  // indices are 0-based positions in the subscription set (rendered
  // 1-based, matching compiler error messages).
  std::optional<std::size_t> rule;
  std::optional<std::size_t> other_rule;
  std::string table;  // pipeline stage name, empty when not applicable
  std::optional<table::StateId> state;
  std::optional<std::size_t> entry;  // entry index within the table
};

class Report {
 public:
  // Appends a diagnostic with the code's default severity; returns it for
  // provenance chaining (report.add(...).rule = i).
  Diagnostic& add(LintCode code, std::string message);

  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  bool empty() const noexcept { return diags_.empty(); }

  std::size_t count(Severity s) const noexcept;
  std::size_t count(LintCode c) const noexcept;
  bool has_errors() const noexcept { return count(Severity::kError) > 0; }

  // 0 = acceptable, 1 = findings fail the build. Usage errors in the CLIs
  // use exit code 2, so lint failures stay distinguishable.
  int exit_code(bool warnings_as_errors = false) const noexcept;

  // "S004 warning: rule 7 subsumed by rule 3: ..." one line per finding,
  // in insertion order (deterministic), plus a summary line.
  std::string to_text() const;

  // {"diagnostics":[{...}],"summary":{"errors":N,...}} — parseable with
  // util::json; absent provenance fields are omitted.
  std::string to_json() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace camus::verify
