// Differential fuzzing harness: compiles each workload::GrammarFuzzer
// sample and cross-checks the whole compiler/runtime stack against a
// brute-force AST oracle, in four modes:
//
//  kDirect  — four-way oracle agreement per adversarial probe:
//             brute-force AST evaluator (lang/eval.hpp, the ground truth)
//             ≡ baseline::NaiveMatcher (DNF path)
//             ≡ table::Pipeline::evaluate_actions (interpreted switchsim)
//             ≡ table::CompiledPipeline::traverse (flattened fast path)
//             ≡ switchsim::Switch::classify (registers in lockstep with a
//             software mirror). Also proves the printed sample re-parses
//             to the same AST (parser/printer round trip).
//  kChurn   — IncrementalCompiler commit deltas (remove half, re-add)
//             applied through Switch::apply_delta must converge to the
//             same classification function as a from-scratch compile.
//  kFault   — fault::Injector register/entry bit-flips and evictions:
//             a register flip mirrored into the oracle's register file
//             must keep all oracles agreeing; after an entry fault the
//             symbolic equivalence checker must refute (or, if it proves
//             equivalence, the corpus must still agree) — the U-code and
//             verifier paths get fuzzed, not just happy-path compilation.
//  kLint    — camus-lint's diagnostics engine must not crash on generated
//             rule sets and must never contradict the brute-force oracle
//             (an S001 rule must never match a probe; an S004-subsumed
//             rule's matches must be covered by its subsumer; an S006
//             witness must match nothing).
//
// Any divergence is shrunk by a delta-debugging minimizer (drop rules,
// prune AST nodes, shrink constants, drop probes) into a self-contained
// reproducer that serializes to a one-file text format; committed
// reproducers under tests/corpus/ are replayed forever by test_fuzz.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "spec/schema.hpp"
#include "util/result.hpp"
#include "workload/fuzz.hpp"

namespace camus::verify {

enum class FuzzMode : std::uint8_t { kDirect, kChurn, kFault, kLint };

std::string_view to_string(FuzzMode m);
std::optional<FuzzMode> parse_fuzz_mode(std::string_view s);

struct FuzzHarnessOptions {
  bool run_direct = true;
  bool run_churn = true;
  bool run_fault = true;
  bool run_lint = true;
  // Entry/register fault rounds per sample in kFault mode.
  std::size_t fault_rounds = 3;
};

struct FuzzCaseResult {
  bool diverged = false;
  FuzzMode mode = FuzzMode::kDirect;  // the mode that diverged (or last run)
  std::string detail;                 // which oracles disagreed, where
  std::optional<std::size_t> probe;   // diverging probe index, when known
  std::size_t probes_run = 0;
};

// Runs one sample through every enabled mode; the first divergence wins.
FuzzCaseResult run_case(const spec::Schema& schema,
                        const workload::FuzzSample& sample,
                        const FuzzHarnessOptions& opts = {});

// --- reproducers -------------------------------------------------------

// A minimized, self-contained failing case. Serializes to a line-oriented
// text file (see serialize_repro) that replays without the generator.
struct FuzzRepro {
  std::uint64_t seed = 0;
  std::uint64_t index = 0;
  FuzzMode mode = FuzzMode::kDirect;
  bool compress = false;
  std::vector<std::string> notes;  // seed/root-cause commentary ('#' lines)
  std::vector<lang::Rule> rules;
  std::vector<workload::FuzzProbe> probes;
};

std::string serialize_repro(const FuzzRepro& r);
util::Result<FuzzRepro> parse_repro(std::string_view text);

// Replays a reproducer (all modes pinned to r.mode). A fixed bug replays
// green; a regression re-reports the divergence.
FuzzCaseResult replay_repro(const spec::Schema& schema, const FuzzRepro& r,
                            const FuzzHarnessOptions& opts = {});

// Delta-debugging minimizer: greedily drops whole rules and probes,
// prunes boolean AST nodes (replace and/or with one side, unwrap not),
// shrinks constants toward 0, and drops surplus actions/ports — keeping
// every shrink that still reproduces `failing_mode`. Deterministic; the
// probe corpus is re-targeted after structural shrinks.
FuzzRepro minimize(const spec::Schema& schema,
                   const workload::FuzzSample& failing, FuzzMode failing_mode,
                   const FuzzHarnessOptions& opts = {});

// --- campaigns ---------------------------------------------------------

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::size_t samples = 1000;
  double time_budget_s = 0;  // 0 = no budget; stop after `samples` anyway
  bool minimize_failures = true;
  FuzzHarnessOptions harness;
  workload::FuzzParams gen;  // gen.seed is overwritten with `seed`
};

struct CampaignDivergence {
  std::uint64_t index = 0;
  FuzzMode mode = FuzzMode::kDirect;
  std::string detail;
  FuzzRepro minimized;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::size_t samples_requested = 0;
  std::size_t samples_run = 0;
  std::size_t probes_run = 0;
  std::size_t divergences = 0;
  bool time_exhausted = false;
  double seconds = 0;
  // Order-insensitive digest over (index, verdict) pairs: two campaigns
  // with the same seed and sample count must produce the same digest —
  // the determinism gate asserted in tests and CI.
  std::uint64_t verdict_digest = 0;
  std::vector<CampaignDivergence> failures;

  std::string to_json() const;
};

CampaignResult run_campaign(const spec::Schema& schema,
                            const CampaignOptions& opts);

}  // namespace camus::verify
