// Fabric equivalence: proves that a spine–leaf placement computes the
// monolithic packet -> (leaf, port) delivery function, with concrete MTBDD
// counterexamples on mismatch.
//
// Decomposition — the fabric delivers env to (leaf_of(p), p) for port p iff
// the spine steers env to leaf L = leaf_of(p) AND leaf L forwards env to p.
// The proof therefore establishes, in one BddManager:
//
//   (1) recombination — U_L restrict_L(monolithic) == monolithic, where
//       restrict_L keeps only leaf L's ports in every terminal. This is the
//       placement's restriction step replayed symbolically; a failure means
//       ports were lost or duplicated across leaves.
//   (2) per-leaf programs — each compiled leaf pipeline computes
//       restrict_L(monolithic) exactly (the PR-2 region-partition checker,
//       once per leaf).
//   (3) no starvation — no packet exists that leaf L would forward but the
//       spine steering rule for L drops (find_witness over
//       restrict_L(monolithic) × steer_L). The witness, when one exists, is
//       a concrete packet the fabric loses — this is the check a corrupted
//       steering rule trips.
//   (4) spine program — the compiled spine pipeline computes exactly the
//       union of the steering rules (region-partition checker again), so
//       (3)'s symbolic steering function is what the spine switch runs.
//
// (1) ∧ (2) bound fabric delivery above by monolithic delivery (no spurious
// copies: a leaf can only forward what the restriction forwards); (3) ∧ (4)
// bound it below (no starvation: everything a leaf would forward reaches
// that leaf). Together: fabric ≡ monolithic on every packet.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compiler/fabric.hpp"
#include "lang/bound.hpp"
#include "spec/schema.hpp"
#include "verify/equivalence.hpp"

namespace camus::verify {

struct FabricCheckOptions {
  EquivalenceOptions equivalence;  // budget for the per-pipeline checks
  // Must match the CompileOptions::order the programs were compiled with,
  // so the shared reference manager walks the same variable order.
  bdd::OrderHeuristic order = bdd::OrderHeuristic::kDeclared;
};

struct FabricCheckResult {
  bool equivalent = true;  // meaningful only when completed
  bool completed = true;
  // Which of the four obligations failed first (empty when equivalent):
  // "recombination" | "leaf-program" | "starvation" | "spine-program".
  std::string failed_check;
  // Index of the leaf at fault for leaf-scoped failures; nullopt for
  // fabric-wide ones.
  std::optional<std::size_t> leaf;
  // The diverging packet (raw field/state values), when one was found.
  std::optional<lang::Env> counterexample;
  std::string detail;

  bool proven() const noexcept { return completed && equivalent; }
};

// Proves placement+program ≡ the monolithic compile of `rules` (the same
// rule set the placement was derived from). `program` may be the output of
// compile_fabric or a deliberately corrupted variant (negative tests).
FabricCheckResult check_fabric_equivalence(
    const spec::Schema& schema, const std::vector<lang::BoundRule>& rules,
    const compiler::FabricPlacement& placement,
    const compiler::FabricProgram& program, const FabricCheckOptions& opts = {});

}  // namespace camus::verify
