// Layer 2 of the static verifier: checks over the compiled match-action
// artifact (table::Pipeline), independent of how it was produced — the
// same checks run on a freshly compiled pipeline and on one deserialized
// from disk.
//
//   P001  entry shadowed by lookup priority (exact > range > any,
//         duplicates last-write-wins) — the entry can never match.
//   P002  entry keyed on a state no packet can be in when its stage runs.
//   P003  wildcard default that never fires: the state's specific entries
//         already cover the whole value domain.
//   P004  transition into an undefined state: no later stage keys on it
//         and the leaf table has no entry for it. This is exactly how
//         Algorithm 1 encodes the drop sink, so severity is a heuristic:
//         warning when the state has a single inbound reference (likely a
//         corrupted entry), note otherwise (normal drop encoding).
//   P005  one stage exceeds the per-stage SRAM or TCAM budget.
//   P006  the pipeline exceeds whole-device budgets (stages, multicast
//         groups).
//   P008  structurally invalid (overlapping ranges, bad multicast refs) —
//         wraps Pipeline::validate().
#pragma once

#include "table/pipeline.hpp"
#include "verify/diagnostics.hpp"

namespace camus::verify {

struct PipelineLintOptions {
  // The device model the resource checks compare against (Tofino-like
  // defaults; see table::ResourceBudget).
  table::ResourceBudget budget;
  bool check_resources = true;
};

struct PipelineLintStats {
  std::size_t entries_checked = 0;
  std::size_t shadowed_entries = 0;
  std::size_t unreachable_states = 0;
  std::size_t dead_defaults = 0;
  std::size_t dangling_transitions = 0;
  std::size_t stages_over_budget = 0;
};

PipelineLintStats lint_pipeline(const table::Pipeline& pipe, Report& report,
                                const PipelineLintOptions& opts = {});

}  // namespace camus::verify
