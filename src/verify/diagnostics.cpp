#include "verify/diagnostics.hpp"

#include <sstream>

#include "util/json.hpp"

namespace camus::verify {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string_view code_string(LintCode c) {
  switch (c) {
    case LintCode::kRuleUnsatisfiable: return "S001";
    case LintCode::kRuleDuplicate: return "S002";
    case LintCode::kRuleSameCondition: return "S003";
    case LintCode::kRuleSubsumed: return "S004";
    case LintCode::kRuleOverlap: return "S005";
    case LintCode::kCoverageHole: return "S006";
    case LintCode::kRuleNegligible: return "S007";
    case LintCode::kAnalysisTruncated: return "S008";
    case LintCode::kShadowedEntry: return "P001";
    case LintCode::kUnreachableState: return "P002";
    case LintCode::kDeadDefault: return "P003";
    case LintCode::kDanglingTransition: return "P004";
    case LintCode::kStageOverBudget: return "P005";
    case LintCode::kPipelineOverBudget: return "P006";
    case LintCode::kNotEquivalent: return "P007";
    case LintCode::kStructureInvalid: return "P008";
    case LintCode::kVerifierBudget: return "P009";
  }
  return "????";
}

Severity default_severity(LintCode c) {
  switch (c) {
    case LintCode::kRuleUnsatisfiable:
    case LintCode::kShadowedEntry:
    case LintCode::kStageOverBudget:
    case LintCode::kPipelineOverBudget:
    case LintCode::kNotEquivalent:
    case LintCode::kStructureInvalid:
      return Severity::kError;
    case LintCode::kRuleDuplicate:
    case LintCode::kRuleSameCondition:
    case LintCode::kRuleSubsumed:
    case LintCode::kRuleNegligible:
    case LintCode::kUnreachableState:
    case LintCode::kDeadDefault:
    case LintCode::kDanglingTransition:
    case LintCode::kVerifierBudget:
      return Severity::kWarning;
    case LintCode::kRuleOverlap:
    case LintCode::kCoverageHole:
    case LintCode::kAnalysisTruncated:
      return Severity::kNote;
  }
  return Severity::kNote;
}

Diagnostic& Report::add(LintCode code, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = default_severity(code);
  d.message = std::move(message);
  diags_.push_back(std::move(d));
  return diags_.back();
}

std::size_t Report::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == s) ++n;
  return n;
}

std::size_t Report::count(LintCode c) const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.code == c) ++n;
  return n;
}

int Report::exit_code(bool warnings_as_errors) const noexcept {
  if (has_errors()) return 1;
  if (warnings_as_errors && count(Severity::kWarning) > 0) return 1;
  return 0;
}

namespace {

std::string provenance(const Diagnostic& d) {
  std::ostringstream os;
  if (d.rule) os << " [rule " << (*d.rule + 1) << "]";
  if (!d.table.empty()) {
    os << " [" << d.table;
    if (d.state) os << " state " << *d.state;
    if (d.entry) os << " entry " << *d.entry;
    os << "]";
  }
  return os.str();
}

}  // namespace

std::string Report::to_text() const {
  std::ostringstream os;
  for (const auto& d : diags_) {
    os << code_string(d.code) << " " << to_string(d.severity) << ": "
       << d.message << provenance(d) << "\n";
  }
  os << count(Severity::kError) << " error(s), " << count(Severity::kWarning)
     << " warning(s), " << count(Severity::kNote) << " note(s)\n";
  return os.str();
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    os << (i ? "," : "") << "{\"code\":\"" << code_string(d.code)
       << "\",\"severity\":\"" << to_string(d.severity) << "\",\"message\":\""
       << util::json::escape(d.message) << "\"";
    if (d.rule) os << ",\"rule\":" << *d.rule;
    if (d.other_rule) os << ",\"other_rule\":" << *d.other_rule;
    if (!d.table.empty())
      os << ",\"table\":\"" << util::json::escape(d.table) << "\"";
    if (d.state) os << ",\"state\":" << *d.state;
    if (d.entry) os << ",\"entry\":" << *d.entry;
    os << "}";
  }
  os << "],\"summary\":{\"errors\":" << count(Severity::kError)
     << ",\"warnings\":" << count(Severity::kWarning)
     << ",\"notes\":" << count(Severity::kNote) << "}}";
  return os.str();
}

}  // namespace camus::verify
