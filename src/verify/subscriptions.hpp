// Layer 1 of the static verifier: BDD-exact subscription-set analysis.
//
// The cheap DNF pass (compiler::analyze_rules) runs first and already
// settles satisfiability, duplicates, and same-condition findings exactly.
// On top of it this linter proves:
//   - pairwise subsumption (S004): rule i never fires on its own because
//     rule j matches every packet i matches and already carries all of
//     i's actions. The DNF pre-filter proves the common cases (term-wise
//     interval containment; exact for single-term pairs); only multi-term
//     candidates escalate to the domain-exact BDD implication check.
//   - overlap sets (S005): same-action rules whose conditions intersect —
//     legal, but usually a sign the subscription could be one rule. Exact
//     via DNF alone: two conjunctions intersect iff every shared subject's
//     value sets intersect, and two DNF unions intersect iff some term
//     pair does.
//   - coverage holes (S006): a concrete packet matching no rule at all,
//     found by walking the compiled union MTBDD to the drop terminal.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bdd/bdd.hpp"
#include "compiler/analysis.hpp"
#include "spec/schema.hpp"
#include "util/result.hpp"
#include "verify/diagnostics.hpp"

namespace camus::verify {

struct SubscriptionLintOptions {
  std::size_t max_dnf_terms = 1 << 16;
  // Escalate undecided subsumption candidates to the BDD-exact check.
  // With false, only DNF-provable verdicts are reported (never wrong,
  // possibly incomplete for multi-term rules).
  bool bdd_exact = true;
  bool check_subsumption = true;
  bool check_overlaps = true;
  // Total budget of elementary pair checks across subsumption + overlap;
  // exhausting it emits S008 and stops (never silently truncates).
  std::size_t max_pairs = 4'000'000;
  // At most this many S005 notes are emitted individually; the rest are
  // summarized in one note.
  std::size_t max_overlap_notes = 16;
  // S007 threshold, applied to the rule's *range* selectivity: point
  // constraints (exact symbol/value matches) count as 1, so only
  // accidentally-narrow range windows trigger the warning.
  double negligible_selectivity = 1e-12;
};

struct SubscriptionLintStats {
  std::size_t pairs_considered = 0;
  std::size_t dnf_proven = 0;   // subsumptions settled by the pre-filter
  std::size_t dnf_refuted = 0;  // pairs exactly refuted by the pre-filter
  std::size_t bdd_checks = 0;   // pairs escalated to the BDD-exact check
  std::size_t subsumed_rules = 0;
  std::size_t overlap_pairs = 0;
  bool truncated = false;
};

struct SubscriptionLint {
  compiler::RuleSetReport analysis;  // the DNF pre-filter pass (with flat)
  SubscriptionLintStats stats;
};

// Appends S001..S008 diagnostics to `report`. Fails only on DNF expansion
// overflow (propagating the analyze_rules error).
util::Result<SubscriptionLint> lint_subscriptions(
    const spec::Schema& schema, const std::vector<lang::BoundRule>& rules,
    Report& report, const SubscriptionLintOptions& opts = {});

// Whole-set coverage: walks the compiled union MTBDD for a packet that
// reaches the drop terminal. Emits S006 with a witness and returns it, or
// nullopt when every packet matches some rule.
std::optional<lang::Env> check_coverage(const bdd::BddManager& mgr,
                                        bdd::NodeRef root,
                                        const spec::Schema& schema,
                                        Report& report);

// --- pre-filter primitives (exposed for tests) -------------------------

// Every packet satisfying conjunction `a` satisfies conjunction `b`.
// Exact: conjunction containment decomposes per subject.
bool term_implies(const lang::Conjunction& a, const lang::Conjunction& b);

// Some packet satisfies both conjunctions. Exact for the same reason.
bool term_intersects(const lang::Conjunction& a, const lang::Conjunction& b);

enum class PreVerdict : std::uint8_t { kProven, kRefuted, kUnknown };

// DNF pre-filter for cond(a) => cond(b): kProven when every term of a is
// contained in some single term of b; kRefuted when both rules are
// single-term (the term-wise check is then exact); kUnknown otherwise
// (b's terms might jointly cover a term none covers alone).
PreVerdict dnf_implies(const lang::FlatRule& a, const lang::FlatRule& b);

// Exact rule-level overlap via DNF: some term pair intersects.
bool dnf_intersects(const lang::FlatRule& a, const lang::FlatRule& b);

// Renders a witness environment as "field=value, ..." over the schema's
// queryable fields and state variables (symbol fields decoded).
std::string render_env(const lang::Env& env, const spec::Schema& schema);

}  // namespace camus::verify
