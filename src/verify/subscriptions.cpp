#include "verify/subscriptions.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "compiler/field_order.hpp"
#include "util/intern.hpp"

namespace camus::verify {

using lang::ActionSet;
using lang::Conjunction;
using lang::FlatRule;
using util::Result;

bool term_implies(const Conjunction& a, const Conjunction& b) {
  for (const auto& [subj, set_b] : b.constraints) {
    auto it = a.constraints.find(subj);
    // Canonical constraints are strict subsets of the domain, so an
    // unconstrained subject in a can never be contained in set_b.
    if (it == a.constraints.end()) return false;
    if (!it->second.is_subset_of(set_b)) return false;
  }
  return true;
}

bool term_intersects(const Conjunction& a, const Conjunction& b) {
  // Subjects are independent: the joint constraint is satisfiable iff every
  // shared subject's value sets intersect.
  for (const auto& [subj, set_a] : a.constraints) {
    auto it = b.constraints.find(subj);
    if (it == b.constraints.end()) continue;
    if (set_a.intersect(it->second).is_empty()) return false;
  }
  return true;
}

PreVerdict dnf_implies(const FlatRule& a, const FlatRule& b) {
  bool all_covered = true;
  for (const auto& ta : a.terms) {
    bool covered = false;
    for (const auto& tb : b.terms) {
      if (term_implies(ta, tb)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      all_covered = false;
      break;
    }
  }
  if (all_covered) return PreVerdict::kProven;
  if (a.terms.size() == 1 && b.terms.size() == 1) return PreVerdict::kRefuted;
  return PreVerdict::kUnknown;
}

bool dnf_intersects(const FlatRule& a, const FlatRule& b) {
  for (const auto& ta : a.terms)
    for (const auto& tb : b.terms)
      if (term_intersects(ta, tb)) return true;
  return false;
}

std::string render_env(const lang::Env& env, const spec::Schema& schema) {
  std::ostringstream os;
  bool first = true;
  auto emit = [&](const std::string& name, std::uint64_t v, bool symbol) {
    if (!first) os << ", ";
    first = false;
    os << name << "=";
    if (symbol) {
      const std::string sym = util::decode_symbol(v);
      const bool printable =
          !sym.empty() && std::all_of(sym.begin(), sym.end(), [](char c) {
            return c > 0x20 && c < 0x7f;
          });
      if (printable) {
        os << sym;
        return;
      }
    }
    os << v;
  };
  for (const auto& f : schema.fields()) {
    if (!f.queryable) continue;
    const std::uint64_t v = f.id < env.fields.size() ? env.fields[f.id] : 0;
    emit(f.name, v, f.kind == spec::FieldKind::kSymbol);
  }
  for (const auto& sv : schema.state_vars()) {
    const std::uint64_t v =
        sv.id < env.states.size() ? env.states[sv.id] : 0;
    emit(sv.name, v, false);
  }
  return os.str();
}

namespace {

// S007's selectivity: like RuleReport::selectivity but with point
// constraints (one exact value, e.g. a ticker match) counted as 1 — a
// single-symbol subscription is deliberate, not "negligible". What's left
// measures how much of each *range* constraint survives, which is where
// accidentally-empty windows (price > 10 and price < 12 on a 64-bit
// field) show up.
double range_selectivity(const lang::FlatRule& r,
                         const spec::Schema& schema) {
  double sel = 0;
  for (const auto& t : r.terms) {
    double term = 1.0;
    for (const auto& [subj, set] : t.constraints) {
      const std::uint64_t card = set.cardinality();
      if (card <= 1) continue;  // point constraint: deliberate
      const double domain =
          static_cast<double>(lang::subject_umax(subj, schema)) + 1.0;
      term *= static_cast<double>(card) / domain;
    }
    sel += term;
  }
  return sel < 1.0 ? sel : 1.0;
}

// a's actions are a subset of b's: every port and state update of a is
// also produced by b (both vectors are sorted unique).
bool actions_subset(const ActionSet& a, const ActionSet& b) {
  return std::includes(b.ports.begin(), b.ports.end(), a.ports.begin(),
                       a.ports.end()) &&
         std::includes(b.state_updates.begin(), b.state_updates.end(),
                       a.state_updates.begin(), a.state_updates.end());
}

// Lazily-built boolean BDDs (one shared manager; terminals replaced by a
// uniform marker so implication compares match/no-match, not actions).
class RuleBdds {
 public:
  RuleBdds(const spec::Schema& schema, const std::vector<FlatRule>& flat)
      : flat_(flat),
        mgr_(compiler::choose_order(schema, flat,
                                    bdd::OrderHeuristic::kDeclared),
             bdd::DomainMap(schema)),
        roots_(flat.size()) {
    marker_.add_port(1);
  }

  bdd::NodeRef root(std::size_t i) {
    if (!roots_[i]) {
      FlatRule boolean;
      boolean.terms = flat_[i].terms;
      boolean.actions = marker_;
      roots_[i] = mgr_.build_rule(boolean);
    }
    return *roots_[i];
  }

  bool implies(std::size_t i, std::size_t j) {
    return mgr_.implies(root(i), root(j));
  }

 private:
  const std::vector<FlatRule>& flat_;
  bdd::BddManager mgr_;
  ActionSet marker_;
  std::vector<std::optional<bdd::NodeRef>> roots_;
};

}  // namespace

Result<SubscriptionLint> lint_subscriptions(
    const spec::Schema& schema, const std::vector<lang::BoundRule>& rules,
    Report& report, const SubscriptionLintOptions& opts) {
  auto analyzed =
      compiler::analyze_rules(schema, rules, opts.max_dnf_terms,
                              /*keep_flat=*/true);
  if (!analyzed.ok()) return analyzed.error();

  SubscriptionLint out;
  out.analysis = std::move(analyzed).take();
  const auto& flat = out.analysis.flat;

  // --- findings the DNF pass already settles ----------------------------
  for (const auto& r : out.analysis.rules) {
    if (!r.satisfiable) {
      report
          .add(LintCode::kRuleUnsatisfiable,
               "rule " + std::to_string(r.index + 1) +
                   " can never match any packet")
          .rule = r.index;
    }
    if (r.duplicate_of) {
      auto& d = report.add(
          LintCode::kRuleDuplicate,
          "rule " + std::to_string(r.index + 1) + " duplicates rule " +
              std::to_string(*r.duplicate_of + 1) +
              " (identical condition and actions)");
      d.rule = r.index;
      d.other_rule = *r.duplicate_of;
    } else if (r.same_condition_as) {
      auto& d = report.add(
          LintCode::kRuleSameCondition,
          "rule " + std::to_string(r.index + 1) +
              " repeats the condition of rule " +
              std::to_string(*r.same_condition_as + 1) +
              " with different actions");
      d.rule = r.index;
      d.other_rule = *r.same_condition_as;
    }
    if (r.satisfiable && !r.duplicate_of &&
        range_selectivity(flat[r.index], schema) <=
            opts.negligible_selectivity) {
      report
          .add(LintCode::kRuleNegligible,
               "rule " + std::to_string(r.index + 1) +
                   " matches a negligible fraction of packets")
          .rule = r.index;
    }
  }

  if (!opts.check_subsumption && !opts.check_overlaps) return out;

  // --- candidate grouping ----------------------------------------------
  // Rule i can only be subsumed by a rule whose actions are a superset of
  // i's (otherwise i still contributes actions even when covered), so
  // rules are grouped by exact action set; strict-superset group pairs are
  // scanned separately.
  std::map<ActionSet, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const auto& r = out.analysis.rules[i];
    if (!r.satisfiable || r.duplicate_of) continue;  // already reported
    groups[rules[i].actions].push_back(i);
  }

  std::optional<RuleBdds> bdds;
  auto bdd_implies = [&](std::size_t i, std::size_t j) {
    if (!bdds) bdds.emplace(schema, flat);
    ++out.stats.bdd_checks;
    return bdds->implies(i, j);
  };

  std::vector<bool> subsumed(rules.size(), false);
  auto budget_left = [&] {
    if (out.stats.pairs_considered < opts.max_pairs) return true;
    if (!out.stats.truncated) {
      out.stats.truncated = true;
      report.add(LintCode::kAnalysisTruncated,
                 "pair budget (" + std::to_string(opts.max_pairs) +
                     ") exhausted; subsumption/overlap results are partial");
    }
    return false;
  };

  // cond(i) => cond(j), DNF pre-filter first, BDD-exact on escalation.
  auto implies_exact = [&](std::size_t i, std::size_t j) {
    ++out.stats.pairs_considered;
    switch (dnf_implies(flat[i], flat[j])) {
      case PreVerdict::kProven:
        ++out.stats.dnf_proven;
        return true;
      case PreVerdict::kRefuted:
        ++out.stats.dnf_refuted;
        return false;
      case PreVerdict::kUnknown:
        break;
    }
    if (!opts.bdd_exact) return false;
    return bdd_implies(i, j);
  };

  auto flag_subsumed = [&](std::size_t i, std::size_t j) {
    subsumed[i] = true;
    ++out.stats.subsumed_rules;
    auto& d = report.add(
        LintCode::kRuleSubsumed,
        "rule " + std::to_string(i + 1) + " never fires on its own: rule " +
            std::to_string(j + 1) +
            " matches every packet it matches and carries its actions");
    d.rule = i;
    d.other_rule = j;
  };

  if (opts.check_subsumption) {
    // Within equal-action groups, both directions are candidates; prefer
    // flagging the later rule.
    for (const auto& [actions, members] : groups) {
      for (std::size_t x = 0; x < members.size(); ++x) {
        for (std::size_t y = x + 1; y < members.size(); ++y) {
          const std::size_t lo = members[x], hi = members[y];
          if (!budget_left()) goto subsumption_done;
          if (!subsumed[hi] && implies_exact(hi, lo)) {
            flag_subsumed(hi, lo);
          } else if (!subsumed[lo] && implies_exact(lo, hi)) {
            flag_subsumed(lo, hi);
          }
        }
      }
    }
    // Strict-superset group pairs: i in A subsumed by j in B when A ⊂ B.
    for (const auto& [a_act, a_members] : groups) {
      for (const auto& [b_act, b_members] : groups) {
        if (a_act == b_act || !actions_subset(a_act, b_act)) continue;
        for (std::size_t i : a_members) {
          if (subsumed[i]) continue;
          for (std::size_t j : b_members) {
            if (!budget_left()) goto subsumption_done;
            if (implies_exact(i, j)) {
              flag_subsumed(i, j);
              break;
            }
          }
        }
      }
    }
  }
subsumption_done:

  if (opts.check_overlaps) {
    std::size_t notes = 0;
    for (const auto& [actions, members] : groups) {
      for (std::size_t x = 0; x < members.size(); ++x) {
        for (std::size_t y = x + 1; y < members.size(); ++y) {
          const std::size_t lo = members[x], hi = members[y];
          if (subsumed[lo] || subsumed[hi]) continue;
          if (!budget_left()) goto overlaps_done;
          ++out.stats.pairs_considered;
          if (!dnf_intersects(flat[lo], flat[hi])) continue;
          ++out.stats.overlap_pairs;
          if (notes < opts.max_overlap_notes) {
            ++notes;
            auto& d = report.add(
                LintCode::kRuleOverlap,
                "rules " + std::to_string(lo + 1) + " and " +
                    std::to_string(hi + 1) +
                    " overlap with identical actions; consider merging");
            d.rule = lo;
            d.other_rule = hi;
          }
        }
      }
    }
  overlaps_done:
    if (out.stats.overlap_pairs > notes) {
      report.add(LintCode::kRuleOverlap,
                 std::to_string(out.stats.overlap_pairs - notes) +
                     " further overlapping same-action rule pairs");
    }
  }

  return out;
}

std::optional<lang::Env> check_coverage(const bdd::BddManager& mgr,
                                        bdd::NodeRef root,
                                        const spec::Schema& schema,
                                        Report& report) {
  lang::Env tmpl;
  tmpl.fields.assign(schema.fields().size(), 0);
  tmpl.states.assign(schema.state_vars().size(), 0);
  auto hole = mgr.find_witness(
      root, root,
      [](const lang::ActionSet& a, const lang::ActionSet&) {
        return a.is_drop();
      },
      tmpl);
  if (hole) {
    report.add(LintCode::kCoverageHole,
               "packets can match no rule at all, e.g. " +
                   render_env(*hole, schema));
  }
  return hole;
}

}  // namespace camus::verify
