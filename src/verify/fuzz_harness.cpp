#include "verify/fuzz_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "baseline/matcher.hpp"
#include "compiler/compile.hpp"
#include "compiler/incremental.hpp"
#include "fault/injector.hpp"
#include "lang/dnf.hpp"
#include "lang/eval.hpp"
#include "lang/parser.hpp"
#include "switchsim/registers.hpp"
#include "switchsim/switch.hpp"
#include "table/compiled.hpp"
#include "util/json.hpp"
#include "verify/equivalence.hpp"
#include "verify/pipeline_lint.hpp"
#include "verify/subscriptions.hpp"

namespace camus::verify {

namespace {

using workload::FuzzProbe;
using workload::FuzzSample;

compiler::CompileOptions compile_opts(const FuzzSample& s) {
  compiler::CompileOptions o;
  o.domain_compression = s.compress;
  return o;
}

std::string hint(const FuzzSample& s) {
  return workload::fuzz_repro_hint(s.seed, s.index);
}

// One divergence message: mode, probe provenance, the disagreeing oracle,
// both ActionSets, the environment, and the one-line repro command.
void diverge(FuzzCaseResult& res, FuzzMode mode, std::string what,
             std::optional<std::size_t> probe = std::nullopt) {
  res.diverged = true;
  res.mode = mode;
  res.probe = probe;
  res.detail = "[" + std::string(to_string(mode)) + "] " + std::move(what);
}

std::string env_str(const lang::Env& env, const spec::Schema& schema) {
  return render_env(env, schema);
}

std::string mismatch_str(std::string_view oracle, const lang::ActionSet& got,
                         const lang::ActionSet& want, std::size_t probe,
                         const lang::Env& env, const spec::Schema& schema,
                         const FuzzSample& s) {
  std::ostringstream os;
  os << "probe " << probe << ": " << oracle << " => " << got.to_string()
     << " want " << want.to_string() << " (brute-force AST); env: "
     << env_str(env, schema) << "; repro: " << hint(s);
  return os.str();
}

// Binder sanity shared by every mode: each generated rule must bind.
bool check_bound(const spec::Schema& schema, const FuzzSample& s,
                 FuzzCaseResult& res, FuzzMode mode) {
  if (s.bound.size() == s.rules.size()) return true;
  std::string detail = "generated rule failed to bind: ";
  for (const auto& r : s.rules) {
    auto b = lang::bind_rule(r, schema);
    if (!b.ok()) {
      detail += "'" + r.to_string() + "': " + b.error().to_string();
      break;
    }
  }
  diverge(res, mode, detail + "; repro: " + hint(s));
  return false;
}

// --- direct mode -------------------------------------------------------

void run_direct(const spec::Schema& schema, const FuzzSample& s,
                FuzzCaseResult& res) {
  if (!check_bound(schema, s, res, FuzzMode::kDirect)) return;

  // Printer/parser round trip: the printed sample must re-parse to the
  // same AST (print is injective up to itself — fixed point).
  auto parsed = lang::parse_rules(s.source());
  if (!parsed.ok()) {
    diverge(res, FuzzMode::kDirect,
            "printed sample rejected by parser: " +
                parsed.error().to_string() + "; repro: " + hint(s));
    return;
  }
  if (parsed.value().size() != s.rules.size()) {
    diverge(res, FuzzMode::kDirect,
            "printed sample re-parsed to a different rule count; repro: " +
                hint(s));
    return;
  }
  for (std::size_t i = 0; i < s.rules.size(); ++i) {
    if (parsed.value()[i].to_string() != s.rules[i].to_string()) {
      diverge(res, FuzzMode::kDirect,
              "rule " + std::to_string(i) +
                  " print/parse round trip not a fixed point: '" +
                  s.rules[i].to_string() + "' vs '" +
                  parsed.value()[i].to_string() + "'; repro: " + hint(s));
      return;
    }
  }

  auto compiled = compiler::compile_rules(schema, s.bound, compile_opts(s));
  if (!compiled.ok()) {
    diverge(res, FuzzMode::kDirect,
            "compile failed on a valid sample: " +
                compiled.error().to_string() + "; repro: " + hint(s));
    return;
  }
  const compiler::Compiled& c = compiled.value();

  // Scale-out rewrites under the same oracle: the interned (state-
  // minimized) pipeline and the partitioned/stitched pipeline must
  // classify every probe exactly like the plain compile. kForce with
  // partition_min_rules=0 takes the partitioned path whenever the sample
  // has any dominant point-constrained attribute and silently degenerates
  // to the monolithic pipeline otherwise — both outcomes are probed.
  compiler::CompileOptions intern_opts = compile_opts(s);
  intern_opts.intern_entries = true;
  auto interned = compiler::compile_rules(schema, s.bound, intern_opts);
  if (!interned.ok()) {
    diverge(res, FuzzMode::kDirect,
            "intern_entries compile failed on a valid sample: " +
                interned.error().to_string() + "; repro: " + hint(s));
    return;
  }
  compiler::CompileOptions part_opts = compile_opts(s);
  part_opts.partition = compiler::PartitionMode::kForce;
  part_opts.partition_min_rules = 0;
  part_opts.intern_entries = true;
  auto part = compiler::compile_rules(schema, s.bound, part_opts);
  if (!part.ok()) {
    diverge(res, FuzzMode::kDirect,
            "partitioned compile failed on a valid sample: " +
                part.error().to_string() + "; repro: " + hint(s));
    return;
  }

  auto flat = lang::flatten_rules(s.bound, schema);
  if (!flat.ok()) {
    diverge(res, FuzzMode::kDirect,
            "DNF flatten failed on a valid sample: " +
                flat.error().to_string() + "; repro: " + hint(s));
    return;
  }
  const baseline::NaiveMatcher naive(flat.value());
  const table::CompiledPipeline fast(c.pipeline);
  switchsim::Switch sw(schema, table::Pipeline(c.pipeline));
  switchsim::StateRegisters mirror(schema);

  for (std::size_t i = 0; i < s.probes.size(); ++i) {
    const FuzzProbe& p = s.probes[i];
    lang::Env env;
    env.fields = p.fields;
    env.states = mirror.snapshot(p.now_us);
    ++res.probes_run;

    const lang::ActionSet want = lang::brute_eval_rules(s.bound, env);

    const lang::ActionSet naive_got = naive.match(env);
    if (naive_got != want) {
      diverge(res, FuzzMode::kDirect,
              mismatch_str("NaiveMatcher", naive_got, want, i, env, schema, s),
              i);
      return;
    }

    const lang::ActionSet& pipe_got = c.pipeline.evaluate_actions(env);
    if (pipe_got != want) {
      diverge(res, FuzzMode::kDirect,
              mismatch_str("Pipeline::evaluate", pipe_got, want, i, env,
                           schema, s),
              i);
      return;
    }

    const lang::ActionSet& intern_got =
        interned.value().pipeline.evaluate_actions(env);
    if (intern_got != want) {
      diverge(res, FuzzMode::kDirect,
              mismatch_str("interned pipeline", intern_got, want, i, env,
                           schema, s),
              i);
      return;
    }
    const lang::ActionSet& part_got =
        part.value().pipeline.evaluate_actions(env);
    if (part_got != want) {
      diverge(res, FuzzMode::kDirect,
              mismatch_str("partitioned pipeline", part_got, want, i, env,
                           schema, s),
              i);
      return;
    }

    if (fast.valid()) {
      const lang::ActionSet* a = fast.actions(fast.traverse(
          std::span(env.fields.data(), env.fields.size()),
          std::span(env.states.data(), env.states.size())));
      static const lang::ActionSet kDrop{};
      const lang::ActionSet& fast_got = a ? *a : kDrop;
      if (fast_got != want) {
        diverge(res, FuzzMode::kDirect,
                mismatch_str("CompiledPipeline::traverse", fast_got, want, i,
                             env, schema, s),
                i);
        return;
      }
    }

    // The switch's register file must be in lockstep with the mirror: as
    // long as every prior probe agreed, both applied the same updates.
    const lang::ActionSet& sw_got = sw.classify(p.fields, p.now_us);
    if (sw_got != want) {
      diverge(res, FuzzMode::kDirect,
              mismatch_str("Switch::classify", sw_got, want, i, env, schema,
                           s),
              i);
      return;
    }

    for (std::uint32_t var : want.state_updates)
      mirror.apply_update(var, p.fields, p.now_us);
  }
}

// --- churn mode --------------------------------------------------------

void run_churn(const spec::Schema& schema, const FuzzSample& s,
               FuzzCaseResult& res) {
  if (s.bound.empty()) return;
  if (!check_bound(schema, s, res, FuzzMode::kChurn)) return;

  compiler::IncrementalCompiler inc(schema, compile_opts(s));
  std::vector<compiler::IncrementalCompiler::SubscriptionId> ids;
  ids.reserve(s.bound.size());
  for (const auto& r : s.bound) ids.push_back(inc.add(r));

  auto d0 = inc.commit();
  if (!d0.ok()) {
    diverge(res, FuzzMode::kChurn,
            "first incremental commit failed: " + d0.error().to_string() +
                "; repro: " + hint(s));
    return;
  }
  switchsim::Switch sw(schema, table::Pipeline(*inc.pipeline().value()));

  // Remove every other subscription, then re-add the removed rules; each
  // commit's entry delta flows through Switch::apply_delta (the live
  // control-plane path, U-code diagnostics included).
  std::vector<lang::BoundRule> removed;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    inc.remove(ids[i]);
    removed.push_back(s.bound[i]);
  }
  for (int phase = 0; phase < 2; ++phase) {
    if (phase == 1)
      for (const auto& r : removed) inc.add(r);
    auto d = inc.commit();
    if (!d.ok()) {
      diverge(res, FuzzMode::kChurn,
              "incremental commit failed mid-churn: " +
                  d.error().to_string() + "; repro: " + hint(s));
      return;
    }
    if (d.value().requires_reprogram) {
      // Structure changed (compression mapping stages); entry ops cannot
      // express it. The control-plane contract is a full reprogram.
      sw.reprogram(table::Pipeline(*inc.pipeline().value()));
    } else {
      auto applied = sw.apply_delta(d.value().ops);
      if (!applied.ok()) {
        diverge(res, FuzzMode::kChurn,
                "Switch::apply_delta rejected a commit delta: " +
                    applied.error().to_string() + "; repro: " + hint(s));
        return;
      }
    }
  }

  // After remove+re-add the semantic rule set equals the original one
  // (ActionSet union is order-independent), so the delta-patched switch,
  // the incremental compiler's pipeline, and a from-scratch compile must
  // all equal the brute-force oracle.
  auto scratch = compiler::compile_rules(schema, s.bound, compile_opts(s));
  if (!scratch.ok()) {
    diverge(res, FuzzMode::kChurn,
            "from-scratch compile failed: " + scratch.error().to_string() +
                "; repro: " + hint(s));
    return;
  }
  // The partitioned+interned layout must agree with the churned state
  // too: the post-churn semantic rule set equals s.bound, so a scale-
  // layout compile of it is a fourth oracle for the same function.
  compiler::CompileOptions scale_opts = compile_opts(s);
  scale_opts.partition = compiler::PartitionMode::kForce;
  scale_opts.partition_min_rules = 0;
  scale_opts.intern_entries = true;
  auto scale = compiler::compile_rules(schema, s.bound, scale_opts);
  if (!scale.ok()) {
    diverge(res, FuzzMode::kChurn,
            "partitioned from-scratch compile failed: " +
                scale.error().to_string() + "; repro: " + hint(s));
    return;
  }

  switchsim::StateRegisters mirror(schema);
  for (std::size_t i = 0; i < s.probes.size(); ++i) {
    const FuzzProbe& p = s.probes[i];
    lang::Env env;
    env.fields = p.fields;
    env.states = mirror.snapshot(p.now_us);
    ++res.probes_run;

    const lang::ActionSet want = lang::brute_eval_rules(s.bound, env);

    const lang::ActionSet& inc_got = inc.pipeline().value()->evaluate_actions(env);
    if (inc_got != want) {
      diverge(res, FuzzMode::kChurn,
              mismatch_str("IncrementalCompiler pipeline (post-churn)",
                           inc_got, want, i, env, schema, s),
              i);
      return;
    }
    const lang::ActionSet& scratch_got =
        scratch.value().pipeline.evaluate_actions(env);
    if (scratch_got != want) {
      diverge(res, FuzzMode::kChurn,
              mismatch_str("from-scratch pipeline", scratch_got, want, i, env,
                           schema, s),
              i);
      return;
    }
    const lang::ActionSet& scale_got =
        scale.value().pipeline.evaluate_actions(env);
    if (scale_got != want) {
      diverge(res, FuzzMode::kChurn,
              mismatch_str("partitioned from-scratch pipeline", scale_got,
                           want, i, env, schema, s),
              i);
      return;
    }
    const lang::ActionSet& sw_got = sw.classify(p.fields, p.now_us);
    if (sw_got != want) {
      diverge(res, FuzzMode::kChurn,
              mismatch_str("delta-patched Switch", sw_got, want, i, env,
                           schema, s),
              i);
      return;
    }

    for (std::uint32_t var : want.state_updates)
      mirror.apply_update(var, p.fields, p.now_us);
  }
}

// --- fault mode --------------------------------------------------------

void run_fault(const spec::Schema& schema, const FuzzSample& s,
               FuzzCaseResult& res, const FuzzHarnessOptions& opts) {
  if (s.bound.empty()) return;
  if (!check_bound(schema, s, res, FuzzMode::kFault)) return;

  auto compiled = compiler::compile_rules(schema, s.bound, compile_opts(s));
  if (!compiled.ok()) return;  // already reported by direct mode
  const compiler::Compiled& c = compiled.value();

  for (std::size_t round = 0; round < opts.fault_rounds; ++round) {
    // Fresh switch + fresh register mirror per round: a prior round's
    // fault must not contaminate this round's lockstep invariant.
    switchsim::Switch sw(schema, table::Pipeline(c.pipeline));
    switchsim::StateRegisters mirror(schema);
    fault::Injector inj(s.seed ^ (s.index * 0x9e3779b97f4a7c15ULL) ^
                        (round * 0x2545f4914f6cdd1dULL));

    const std::size_t kind = round % 3;
    if (kind == 0) {
      // Register bit-flip, mirrored into the oracle's register file: both
      // worlds see the same SRAM soft error, so every oracle must still
      // agree — this fuzzes classification over corrupted register
      // states a clean feed would never reach.
      auto injection = inj.flip_register_bit(sw);
      if (!injection) continue;  // schema has no state variables
      mirror.inject_bit_flip(injection->register_var, injection->bit);

      for (std::size_t i = 0; i < s.probes.size(); ++i) {
        const FuzzProbe& p = s.probes[i];
        lang::Env env;
        env.fields = p.fields;
        env.states = mirror.snapshot(p.now_us);
        ++res.probes_run;
        const lang::ActionSet want = lang::brute_eval_rules(s.bound, env);
        const lang::ActionSet& got = sw.classify(p.fields, p.now_us);
        if (got != want) {
          diverge(res, FuzzMode::kFault,
                  "after mirrored " + injection->to_string() + ": " +
                      mismatch_str("Switch::classify", got, want, i, env,
                                   schema, s),
                  i);
          return;
        }
        for (std::uint32_t var : want.state_updates)
          mirror.apply_update(var, p.fields, p.now_us);
      }
      continue;
    }

    // Table-entry fault (bit-flip or eviction): the switch now runs
    // mutated U-code. The symbolic verifier must refute equivalence — or,
    // when it proves the fault semantically neutral, the corpus must
    // still match the oracle exactly.
    auto injection =
        kind == 1 ? inj.flip_entry_bit(sw) : inj.evict_entry(sw);
    if (!injection) continue;  // pipeline has no entries

    const EquivalenceResult eq =
        check_equivalence(*c.manager, c.root, sw.pipeline(), schema);
    const table::CompiledPipeline mutated_fast(sw.pipeline());

    for (std::size_t i = 0; i < s.probes.size(); ++i) {
      const FuzzProbe& p = s.probes[i];
      lang::Env env;
      env.fields = p.fields;
      env.states = mirror.snapshot(p.now_us);
      ++res.probes_run;
      const lang::ActionSet want = lang::brute_eval_rules(s.bound, env);

      // Crash-shake both lookup paths of the mutated program; results
      // are only asserted when the verifier proved the fault neutral.
      const lang::ActionSet& got = sw.classify(p.fields, p.now_us);
      static const lang::ActionSet kDrop{};
      const lang::ActionSet* fa =
          mutated_fast.valid()
              ? mutated_fast.actions(mutated_fast.traverse(
                    std::span(env.fields.data(), env.fields.size()),
                    std::span(env.states.data(), env.states.size())))
              : nullptr;
      const lang::ActionSet& fast_got = fa ? *fa : kDrop;

      if (eq.proven_equivalent()) {
        if (got != want) {
          diverge(res, FuzzMode::kFault,
                  "verifier PROVED equivalence after " +
                      injection->to_string() + " but " +
                      mismatch_str("Switch::classify", got, want, i, env,
                                   schema, s),
                  i);
          return;
        }
        if (mutated_fast.valid() && fast_got != want) {
          diverge(res, FuzzMode::kFault,
                  "verifier PROVED equivalence after " +
                      injection->to_string() + " but " +
                      mismatch_str("CompiledPipeline::traverse", fast_got,
                                   want, i, env, schema, s),
                  i);
          return;
        }
        for (std::uint32_t var : want.state_updates)
          mirror.apply_update(var, p.fields, p.now_us);
      } else if (got != want) {
        // Divergence observed concretely: the verifier must have refuted
        // (it did — eq not proven), so nothing to report. But a corpus
        // divergence with a *completed, equivalent* verdict was handled
        // above; an incomplete verdict (budget) is acceptable.
        // Register lockstep is void from here on; stop comparing.
        break;
      } else {
        for (std::uint32_t var : want.state_updates)
          mirror.apply_update(var, p.fields, p.now_us);
      }
    }
  }
}

// --- lint mode ---------------------------------------------------------

void run_lint(const spec::Schema& schema, const FuzzSample& s,
              FuzzCaseResult& res) {
  if (!check_bound(schema, s, res, FuzzMode::kLint)) return;

  Report report;
  auto lint = lint_subscriptions(schema, s.bound, report);
  if (!lint.ok()) {
    diverge(res, FuzzMode::kLint,
            "lint engine failed on a generated sample: " +
                lint.error().to_string() + "; repro: " + hint(s));
    return;
  }

  // Static half of the S004 contract: the subsumer must carry every
  // action of the subsumed rule.
  for (const auto& d : report.diagnostics()) {
    if (d.code != LintCode::kRuleSubsumed || !d.rule || !d.other_rule)
      continue;
    if (*d.rule >= s.bound.size() || *d.other_rule >= s.bound.size()) {
      diverge(res, FuzzMode::kLint,
              "lint diagnostic carries an out-of-range rule index; repro: " +
                  hint(s));
      return;
    }
    lang::ActionSet merged = s.bound[*d.other_rule].actions;
    merged.merge(s.bound[*d.rule].actions);
    if (merged != s.bound[*d.other_rule].actions) {
      diverge(res, FuzzMode::kLint,
              "S004 claims rule " + std::to_string(*d.rule) +
                  " subsumed by rule " + std::to_string(*d.other_rule) +
                  " but the subsumer lacks its actions; repro: " + hint(s));
      return;
    }
  }

  auto compiled = compiler::compile_rules(schema, s.bound, compile_opts(s));
  if (compiled.ok()) {
    const compiler::Compiled& c = compiled.value();

    // A clean compile must verify: equivalence refutation or any
    // error-severity pipeline-lint finding on fresh output is a compiler
    // or verifier bug either way.
    const EquivalenceResult eq =
        check_equivalence(*c.manager, c.root, c.pipeline, schema);
    if (eq.completed && !eq.equivalent) {
      diverge(res, FuzzMode::kLint,
              "equivalence checker refuted a clean compile: " + eq.detail +
                  "; repro: " + hint(s));
      return;
    }
    Report preport;
    (void)lint_pipeline(c.pipeline, preport);
    for (const auto& d : preport.diagnostics()) {
      if (d.severity == Severity::kError) {
        diverge(res, FuzzMode::kLint,
                "pipeline lint " + std::string(code_string(d.code)) +
                    " error on a clean compile: " + d.message +
                    "; repro: " + hint(s));
        return;
      }
    }

    // S006 witness oracle: a reported coverage hole must really match no
    // rule under the brute-force evaluator.
    Report creport;
    auto witness = check_coverage(*c.manager, c.root, schema, creport);
    if (witness &&
        !lang::brute_eval_rules(s.bound, *witness).is_drop()) {
      diverge(res, FuzzMode::kLint,
              "S006 coverage witness actually matches the rule set; env: " +
                  env_str(*witness, schema) + "; repro: " + hint(s));
      return;
    }
  }

  // Probe-based contradiction checks against the brute-force oracle.
  switchsim::StateRegisters mirror(schema);
  for (std::size_t i = 0; i < s.probes.size(); ++i) {
    const FuzzProbe& p = s.probes[i];
    lang::Env env;
    env.fields = p.fields;
    env.states = mirror.snapshot(p.now_us);
    ++res.probes_run;

    for (const auto& d : report.diagnostics()) {
      if (d.rule && *d.rule >= s.bound.size()) continue;
      if (d.other_rule && *d.other_rule >= s.bound.size()) continue;
      if (d.code == LintCode::kRuleUnsatisfiable && d.rule &&
          s.bound[*d.rule].cond &&
          lang::brute_eval_cond(*s.bound[*d.rule].cond, env)) {
        diverge(res, FuzzMode::kLint,
                "S001 claims rule " + std::to_string(*d.rule) +
                    " unsatisfiable but probe " + std::to_string(i) +
                    " matches it; env: " + env_str(env, schema) +
                    "; repro: " + hint(s),
                i);
        return;
      }
      if ((d.code == LintCode::kRuleSubsumed ||
           d.code == LintCode::kRuleDuplicate) &&
          d.rule && d.other_rule) {
        const bool a =
            lang::brute_eval_cond(*s.bound[*d.rule].cond, env);
        const bool b =
            lang::brute_eval_cond(*s.bound[*d.other_rule].cond, env);
        const bool broken =
            d.code == LintCode::kRuleDuplicate ? (a != b) : (a && !b);
        if (broken) {
          diverge(res, FuzzMode::kLint,
                  std::string(code_string(d.code)) + " relation between rules " +
                      std::to_string(*d.rule) + " and " +
                      std::to_string(*d.other_rule) +
                      " contradicted by probe " + std::to_string(i) +
                      "; env: " + env_str(env, schema) +
                      "; repro: " + hint(s),
                  i);
          return;
        }
      }
    }

    const lang::ActionSet want = lang::brute_eval_rules(s.bound, env);
    for (std::uint32_t var : want.state_updates)
      mirror.apply_update(var, p.fields, p.now_us);
  }
}

}  // namespace

std::string_view to_string(FuzzMode m) {
  switch (m) {
    case FuzzMode::kDirect:
      return "direct";
    case FuzzMode::kChurn:
      return "churn";
    case FuzzMode::kFault:
      return "fault";
    case FuzzMode::kLint:
      return "lint";
  }
  return "?";
}

std::optional<FuzzMode> parse_fuzz_mode(std::string_view s) {
  if (s == "direct") return FuzzMode::kDirect;
  if (s == "churn") return FuzzMode::kChurn;
  if (s == "fault") return FuzzMode::kFault;
  if (s == "lint") return FuzzMode::kLint;
  return std::nullopt;
}

FuzzCaseResult run_case(const spec::Schema& schema, const FuzzSample& sample,
                        const FuzzHarnessOptions& opts) {
  FuzzCaseResult res;
  if (opts.run_direct) {
    run_direct(schema, sample, res);
    if (res.diverged) return res;
  }
  if (opts.run_churn) {
    run_churn(schema, sample, res);
    if (res.diverged) return res;
  }
  if (opts.run_fault) {
    run_fault(schema, sample, res, opts);
    if (res.diverged) return res;
  }
  if (opts.run_lint) {
    run_lint(schema, sample, res);
    if (res.diverged) return res;
  }
  return res;
}

// --- reproducers -------------------------------------------------------

std::string serialize_repro(const FuzzRepro& r) {
  std::ostringstream os;
  os << "camus-fuzz repro v1\n";
  os << "seed " << r.seed << " index " << r.index << " mode "
     << to_string(r.mode) << " compress " << (r.compress ? 1 : 0) << "\n";
  for (const auto& n : r.notes) os << "# " << n << "\n";
  for (const auto& rule : r.rules) os << "rule " << rule.to_string() << "\n";
  for (const auto& p : r.probes) {
    os << "probe now=" << p.now_us << " fields=";
    for (std::size_t i = 0; i < p.fields.size(); ++i) {
      if (i) os << ",";
      os << p.fields[i];
    }
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

util::Result<FuzzRepro> parse_repro(std::string_view text) {
  FuzzRepro out;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  bool header_seen = false, meta_seen = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != "camus-fuzz repro v1")
        return util::Error{"bad reproducer header", lineno, 1};
      header_seen = true;
      continue;
    }
    if (line.rfind("# ", 0) == 0) {
      out.notes.push_back(line.substr(2));
      continue;
    }
    if (line == "end") break;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "seed") {
      std::string key;
      std::uint64_t compress = 0;
      std::string mode;
      ls >> out.seed >> key >> out.index >> key >> mode >> key >> compress;
      auto m = parse_fuzz_mode(mode);
      if (!m) return util::Error{"unknown mode '" + mode + "'", lineno, 1};
      out.mode = *m;
      out.compress = compress != 0;
      meta_seen = true;
    } else if (tok == "rule") {
      const std::string src = line.substr(5);
      auto r = lang::parse_rule(src);
      if (!r.ok())
        return util::Error{"bad rule: " + r.error().to_string(), lineno, 1};
      out.rules.push_back(std::move(r).take());
    } else if (tok == "probe") {
      FuzzProbe p;
      std::string field;
      while (ls >> field) {
        if (field.rfind("now=", 0) == 0) {
          p.now_us = std::strtoull(field.c_str() + 4, nullptr, 10);
        } else if (field.rfind("fields=", 0) == 0) {
          const char* c = field.c_str() + 7;
          while (*c) {
            char* endp = nullptr;
            p.fields.push_back(std::strtoull(c, &endp, 10));
            c = (*endp == ',') ? endp + 1 : endp;
          }
        } else {
          return util::Error{"bad probe token '" + field + "'", lineno, 1};
        }
      }
      out.probes.push_back(std::move(p));
    } else {
      return util::Error{"unknown directive '" + tok + "'", lineno, 1};
    }
  }
  if (!header_seen || !meta_seen)
    return util::Error{"truncated reproducer (missing header or seed line)"};
  return out;
}

namespace {

FuzzHarnessOptions only_mode(FuzzMode m, const FuzzHarnessOptions& base) {
  FuzzHarnessOptions o = base;
  o.run_direct = m == FuzzMode::kDirect;
  o.run_churn = m == FuzzMode::kChurn;
  o.run_fault = m == FuzzMode::kFault;
  o.run_lint = m == FuzzMode::kLint;
  return o;
}

FuzzSample build_sample(const spec::Schema& schema,
                        const std::vector<lang::Rule>& rules,
                        const std::vector<FuzzProbe>& probes, bool compress,
                        std::uint64_t seed, std::uint64_t index) {
  FuzzSample s;
  s.seed = seed;
  s.index = index;
  s.rules = rules;
  s.probes = probes;
  s.compress = compress;
  for (const auto& r : rules) {
    auto b = lang::bind_rule(r, schema);
    if (b.ok()) s.bound.push_back(std::move(b).take());
  }
  return s;
}

}  // namespace

FuzzCaseResult replay_repro(const spec::Schema& schema, const FuzzRepro& r,
                            const FuzzHarnessOptions& opts) {
  const FuzzSample s =
      build_sample(schema, r.rules, r.probes, r.compress, r.seed, r.index);
  return run_case(schema, s, only_mode(r.mode, opts));
}

// --- minimizer ---------------------------------------------------------

namespace {

// All one-step shrinks of a condition: replace a connective by one of its
// children, unwrap a negation, shrink a literal toward zero — plus every
// shrink of a child, re-wrapped. Quadratic in AST size; generated trees
// are small by construction.
void cond_shrinks(const lang::CondPtr& c, std::vector<lang::CondPtr>& out) {
  using K = lang::Cond::Kind;
  switch (c->kind) {
    case K::kAnd:
    case K::kOr: {
      out.push_back(c->lhs);
      out.push_back(c->rhs);
      std::vector<lang::CondPtr> ls, rs;
      cond_shrinks(c->lhs, ls);
      cond_shrinks(c->rhs, rs);
      for (auto& l : ls)
        out.push_back(c->kind == K::kAnd ? lang::Cond::make_and(l, c->rhs)
                                         : lang::Cond::make_or(l, c->rhs));
      for (auto& r : rs)
        out.push_back(c->kind == K::kAnd ? lang::Cond::make_and(c->lhs, r)
                                         : lang::Cond::make_or(c->lhs, r));
      break;
    }
    case K::kNot: {
      out.push_back(c->lhs);
      std::vector<lang::CondPtr> ls;
      cond_shrinks(c->lhs, ls);
      for (auto& l : ls) out.push_back(lang::Cond::make_not(l));
      break;
    }
    case K::kAtom: {
      const lang::PredExpr& a = c->atom;
      if (a.literal.kind == lang::Literal::Kind::kInt) {
        for (std::uint64_t v :
             {std::uint64_t{0}, a.literal.int_value / 2,
              a.literal.int_value == 0 ? 0 : a.literal.int_value - 1}) {
          if (v == a.literal.int_value) continue;
          lang::PredExpr smaller = a;
          smaller.literal.int_value = v;
          out.push_back(lang::Cond::make_atom(std::move(smaller)));
        }
      } else if (a.literal.text != "A") {
        lang::PredExpr smaller = a;
        smaller.literal.text = "A";
        out.push_back(lang::Cond::make_atom(std::move(smaller)));
      }
      break;
    }
  }
}

// One-step action-list shrinks: drop a whole action, or reduce a
// multi-port fwd to its first port.
std::vector<std::vector<lang::Action>> action_shrinks(
    const std::vector<lang::Action>& acts) {
  std::vector<std::vector<lang::Action>> out;
  if (acts.size() > 1) {
    for (std::size_t i = 0; i < acts.size(); ++i) {
      auto copy = acts;
      copy.erase(copy.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(copy));
    }
  }
  for (std::size_t i = 0; i < acts.size(); ++i) {
    if (acts[i].kind == lang::Action::Kind::kFwd &&
        acts[i].fwd.ports.size() > 1) {
      auto copy = acts;
      copy[i].fwd.ports.resize(1);
      out.push_back(std::move(copy));
    }
  }
  return out;
}

}  // namespace

FuzzRepro minimize(const spec::Schema& schema, const FuzzSample& failing,
                   FuzzMode failing_mode, const FuzzHarnessOptions& opts) {
  const FuzzHarnessOptions mode_opts = only_mode(failing_mode, opts);
  std::vector<lang::Rule> rules = failing.rules;
  std::vector<FuzzProbe> probes = failing.probes;
  bool compress = failing.compress;

  std::size_t budget = 800;  // predicate evaluations (each is a compile)
  auto still_fails = [&](const std::vector<lang::Rule>& rs,
                         const std::vector<FuzzProbe>& ps,
                         bool comp) -> bool {
    if (budget == 0) return false;
    --budget;
    const FuzzSample cand =
        build_sample(schema, rs, ps, comp, failing.seed, failing.index);
    return run_case(schema, cand, mode_opts).diverged;
  };

  // 0. Divergences should not depend on the compression knob; prefer the
  // simpler uncompressed pipeline when both reproduce.
  if (compress && still_fails(rules, probes, false)) compress = false;

  // 1. Drop whole rules (greedy, back to front so indices stay stable).
  for (bool changed = true; changed && budget > 0;) {
    changed = false;
    for (std::size_t i = rules.size(); i-- > 0 && budget > 0;) {
      auto cand = rules;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(cand, probes, compress)) {
        rules = std::move(cand);
        changed = true;
      }
    }
  }

  // 2. Drop probes: halves first (ddmin-style), then single removals.
  auto try_probe_subset = [&](std::size_t lo, std::size_t hi) {
    std::vector<FuzzProbe> cand(probes.begin() + static_cast<std::ptrdiff_t>(lo),
                                probes.begin() + static_cast<std::ptrdiff_t>(hi));
    if (still_fails(rules, cand, compress)) {
      probes = std::move(cand);
      return true;
    }
    return false;
  };
  while (probes.size() > 4 && budget > 0) {
    const std::size_t half = probes.size() / 2;
    if (try_probe_subset(0, half)) continue;
    if (try_probe_subset(half, probes.size())) continue;
    break;
  }
  for (bool changed = true; changed && budget > 0;) {
    changed = false;
    for (std::size_t i = probes.size(); i-- > 0 && budget > 0;) {
      auto cand = probes;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(rules, cand, compress)) {
        probes = std::move(cand);
        changed = true;
      }
    }
  }

  // 3. Prune AST nodes and shrink constants, rule by rule.
  for (bool changed = true; changed && budget > 0;) {
    changed = false;
    for (std::size_t i = 0; i < rules.size() && budget > 0; ++i) {
      std::vector<lang::CondPtr> cands;
      if (rules[i].cond) cond_shrinks(rules[i].cond, cands);
      for (auto& c : cands) {
        if (budget == 0) break;
        auto cand = rules;
        cand[i].cond = c;
        if (still_fails(cand, probes, compress)) {
          rules = std::move(cand);
          changed = true;
          break;  // re-enumerate shrinks of the new, smaller condition
        }
      }
      for (auto& acts : action_shrinks(rules[i].actions)) {
        if (budget == 0) break;
        auto cand = rules;
        cand[i].actions = acts;
        if (still_fails(cand, probes, compress)) {
          rules = std::move(cand);
          changed = true;
          break;
        }
      }
    }
  }

  FuzzRepro out;
  out.seed = failing.seed;
  out.index = failing.index;
  out.mode = failing_mode;
  out.compress = compress;
  out.rules = std::move(rules);
  out.probes = std::move(probes);

  // Final verdict recorded as provenance.
  const FuzzSample final_sample = build_sample(
      schema, out.rules, out.probes, out.compress, out.seed, out.index);
  const FuzzCaseResult final_run =
      run_case(schema, final_sample, mode_opts);
  out.notes.push_back("found by " +
                      workload::fuzz_repro_hint(out.seed, out.index));
  out.notes.push_back(final_run.diverged ? final_run.detail
                                         : "WARNING: no longer reproduces");
  return out;
}

// --- campaigns ---------------------------------------------------------

std::string CampaignResult::to_json() const {
  std::ostringstream os;
  os << "{";
  os << "\"seed\":" << seed;
  os << ",\"samples_requested\":" << samples_requested;
  os << ",\"samples_run\":" << samples_run;
  os << ",\"probes_run\":" << probes_run;
  os << ",\"divergences\":" << divergences;
  os << ",\"time_exhausted\":" << (time_exhausted ? "true" : "false");
  os << ",\"seconds\":" << util::json::format_double(seconds);
  os << ",\"verdict_digest\":\"0x" << std::hex << verdict_digest << std::dec
     << "\"";
  os << ",\"failures\":[";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i) os << ",";
    os << "{\"index\":" << failures[i].index << ",\"mode\":\""
       << to_string(failures[i].mode) << "\",\"detail\":\""
       << util::json::escape(failures[i].detail) << "\",\"reproducer\":\""
       << util::json::escape(serialize_repro(failures[i].minimized))
       << "\"}";
  }
  os << "]}";
  return os.str();
}

CampaignResult run_campaign(const spec::Schema& schema,
                            const CampaignOptions& opts) {
  CampaignResult res;
  res.seed = opts.seed;
  res.samples_requested = opts.samples;
  // Digest starts from the seed so two all-pass campaigns with different
  // seeds stay distinguishable.
  res.verdict_digest = util::SplitMix64(opts.seed).next();

  workload::FuzzParams gp = opts.gen;
  gp.seed = opts.seed;
  const workload::GrammarFuzzer fuzzer(schema, gp);

  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  for (std::size_t i = 0; i < opts.samples; ++i) {
    if (opts.time_budget_s > 0 && elapsed() >= opts.time_budget_s) {
      res.time_exhausted = true;
      break;
    }
    const FuzzSample s = fuzzer.sample(i);
    const FuzzCaseResult r = run_case(schema, s, opts.harness);
    ++res.samples_run;
    res.probes_run += r.probes_run;

    // Order-insensitive, timing-independent verdict digest.
    const std::uint64_t verdict =
        r.diverged ? 1 + static_cast<std::uint64_t>(r.mode) : 0;
    util::SplitMix64 h(i * 0x9e3779b97f4a7c15ULL ^
                       verdict * 0xff51afd7ed558ccdULL);
    res.verdict_digest ^= h.next();

    if (r.diverged) {
      ++res.divergences;
      CampaignDivergence d;
      d.index = i;
      d.mode = r.mode;
      d.detail = r.detail;
      if (opts.minimize_failures) {
        d.minimized = minimize(schema, s, r.mode, opts.harness);
      } else {
        d.minimized.seed = s.seed;
        d.minimized.index = s.index;
        d.minimized.mode = r.mode;
        d.minimized.compress = s.compress;
        d.minimized.rules = s.rules;
        d.minimized.probes = s.probes;
        d.minimized.notes.push_back(r.detail);
      }
      res.failures.push_back(std::move(d));
    }
  }
  res.seconds = elapsed();
  return res;
}

}  // namespace camus::verify

