// Umbrella entry point for the static verifier: runs both layers over a
// compilation result — the subscription-set linter on the input rules and
// the artifact checks (pipeline lint + symbolic equivalence against the
// compiled MTBDD) on the output. The camus-lint CLI, camusc --lint, and
// the controller's reject-on-error policy all go through this.
#pragma once

#include "compiler/compile.hpp"
#include "verify/diagnostics.hpp"
#include "verify/equivalence.hpp"
#include "verify/pipeline_lint.hpp"
#include "verify/subscriptions.hpp"

namespace camus::verify {

struct VerifyOptions {
  SubscriptionLintOptions subscriptions;
  PipelineLintOptions pipeline;
  EquivalenceOptions equivalence;
  bool coverage = true;     // S006: whole-set coverage holes
  bool equivalence_check = true;  // P007/P009: pipeline ≡ reference MTBDD
};

struct VerifyResult {
  SubscriptionLintStats subscription_stats;
  PipelineLintStats pipeline_stats;
  EquivalenceResult equivalence;
};

// Appends all diagnostics to `report`. Fails only when the subscription
// analysis itself cannot run (DNF expansion overflow).
util::Result<VerifyResult> verify_compiled(
    const spec::Schema& schema, const std::vector<lang::BoundRule>& rules,
    const compiler::Compiled& compiled, Report& report,
    const VerifyOptions& opts = {});

}  // namespace camus::verify
