#include "verify/fabric.hpp"

#include <utility>

#include "compiler/field_order.hpp"
#include "lang/dnf.hpp"

namespace camus::verify {

namespace {

// Union MTBDD of a bound-rule set in `mgr`, pruned.
util::Result<bdd::NodeRef> build_union(bdd::BddManager& mgr,
                                       const spec::Schema& schema,
                                       const std::vector<lang::BoundRule>& rules) {
  auto flat = lang::flatten_rules(rules, schema);
  if (!flat.ok()) return flat.error();
  std::vector<bdd::NodeRef> roots;
  roots.reserve(flat.value().size());
  for (const auto& fr : flat.value()) roots.push_back(mgr.build_rule(fr));
  if (roots.empty()) return mgr.drop();
  return mgr.prune(mgr.unite_all(std::move(roots)));
}

FabricCheckResult incomplete(std::string detail) {
  FabricCheckResult r;
  r.completed = false;
  r.equivalent = false;
  r.detail = std::move(detail);
  return r;
}

}  // namespace

FabricCheckResult check_fabric_equivalence(
    const spec::Schema& schema, const std::vector<lang::BoundRule>& rules,
    const compiler::FabricPlacement& placement,
    const compiler::FabricProgram& program,
    const FabricCheckOptions& opts) {
  const std::size_t leaves = placement.spec.leaves;
  if (program.leaves.size() != leaves ||
      placement.leaf_rules.size() != leaves ||
      placement.spine_rules.size() != leaves)
    return incomplete("placement/program leaf counts disagree with the spec");

  auto flat_all = lang::flatten_rules(rules, schema);
  if (!flat_all.ok())
    return incomplete("monolithic flatten failed: " +
                      flat_all.error().to_string());
  bdd::BddManager mgr(compiler::choose_order(schema, flat_all.value(),
                                             opts.order),
                      bdd::DomainMap(schema));

  std::vector<bdd::NodeRef> mono_roots;
  mono_roots.reserve(flat_all.value().size());
  for (const auto& fr : flat_all.value()) mono_roots.push_back(mgr.build_rule(fr));
  const bdd::NodeRef mono = mono_roots.empty()
                                ? mgr.drop()
                                : mgr.prune(mgr.unite_all(std::move(mono_roots)));

  std::vector<bdd::NodeRef> leaf_refs(leaves);
  std::vector<bdd::NodeRef> steer_refs(leaves);
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    auto lr = build_union(mgr, schema, placement.leaf_rules[leaf]);
    if (!lr.ok())
      return incomplete("leaf " + std::to_string(leaf) + " flatten failed: " +
                        lr.error().to_string());
    leaf_refs[leaf] = lr.value();
    auto sr = build_union(mgr, schema, {placement.spine_rules[leaf]});
    if (!sr.ok())
      return incomplete("steer " + std::to_string(leaf) + " flatten failed: " +
                        sr.error().to_string());
    steer_refs[leaf] = sr.value();
  }

  FabricCheckResult result;

  // (1) Recombination: the per-leaf restrictions union back to monolithic.
  const bdd::NodeRef combined = mgr.prune(mgr.unite_all(leaf_refs));
  if (!mgr.equivalent(combined, mono)) {
    result.equivalent = false;
    result.failed_check = "recombination";
    result.counterexample = mgr.find_witness(
        combined, mono,
        [](const lang::ActionSet& a, const lang::ActionSet& b) {
          return a != b;
        });
    result.detail =
        "union of per-leaf restrictions diverges from the monolithic MTBDD "
        "(ports lost or duplicated across leaves)";
    return result;
  }

  // (2) Every compiled leaf pipeline computes its restriction exactly.
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    EquivalenceResult eq = check_equivalence(mgr, leaf_refs[leaf],
                                             program.leaves[leaf], schema,
                                             opts.equivalence);
    if (!eq.completed)
      return incomplete("leaf " + std::to_string(leaf) +
                        " equivalence incomplete: " + eq.detail);
    if (!eq.equivalent) {
      result.equivalent = false;
      result.failed_check = "leaf-program";
      result.leaf = leaf;
      result.counterexample = eq.counterexample;
      result.detail = "leaf " + std::to_string(leaf) +
                      " pipeline diverges from its restriction: " + eq.detail;
      return result;
    }
  }

  // (3) No starvation: nothing a leaf forwards escapes its steering rule.
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    auto witness = mgr.find_witness(
        leaf_refs[leaf], steer_refs[leaf],
        [](const lang::ActionSet& fwd, const lang::ActionSet& steer) {
          return !fwd.is_drop() && steer.is_drop();
        });
    if (witness) {
      result.equivalent = false;
      result.failed_check = "starvation";
      result.leaf = leaf;
      result.counterexample = std::move(witness);
      result.detail = "packet forwarded by leaf " + std::to_string(leaf) +
                      " is not steered to it by the spine rules";
      return result;
    }
  }

  // (4) The compiled spine pipeline computes the union of the steering
  // rules, so (3) holds for the program the spines actually run.
  const bdd::NodeRef spine_ref = mgr.prune(mgr.unite_all(steer_refs));
  EquivalenceResult eq = check_equivalence(mgr, spine_ref, program.spine,
                                           schema, opts.equivalence);
  if (!eq.completed)
    return incomplete("spine equivalence incomplete: " + eq.detail);
  if (!eq.equivalent) {
    result.equivalent = false;
    result.failed_check = "spine-program";
    result.counterexample = eq.counterexample;
    result.detail = "spine pipeline diverges from the steering rules: " +
                    eq.detail;
    return result;
  }

  result.detail = "fabric placement proven equivalent to monolithic compile";
  return result;
}

}  // namespace camus::verify
