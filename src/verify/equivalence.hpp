// Symbolic equivalence: proves that a compiled pipeline computes the same
// packet -> ActionSet function as the reference MTBDD it was generated
// from (or fails with the first diverging packet).
//
// Method: region-partition co-traversal. Fields are walked in the BDD
// variable order; at each field the verifier carries a (pipeline state,
// BDD node) pair and splits the field's raw value domain at every
// boundary either side distinguishes — the pair's table entries (or, for
// compressed subjects, the value-map entries, since the main table then
// matches codes that are constant within a map region) united with the
// interval boundaries of every predicate reachable from the BDD node
// within the field's component. Both sides are piecewise constant inside
// a region, so checking one representative value per region is EXACT, not
// sampled. Visited (state, node, field) triples are memoized, which keeps
// the walk polynomial in the artifact size; a pair budget caps adversarial
// blowups (P009) without ever reporting a false "equivalent".
//
// A found divergence is re-validated concretely — the witness environment
// is run through Pipeline::evaluate_actions and BddManager::evaluate —
// before it is reported (P007), so a checker bug cannot produce a bogus
// counterexample.
#pragma once

#include <optional>
#include <string>

#include "bdd/bdd.hpp"
#include "spec/schema.hpp"
#include "table/pipeline.hpp"
#include "verify/diagnostics.hpp"

namespace camus::verify {

struct EquivalenceOptions {
  // Budget of (state, node, field) triples; exhausting it yields
  // completed=false (and P009), never a wrong verdict.
  std::size_t max_pairs = 10'000'000;
};

struct EquivalenceResult {
  bool equivalent = true;  // meaningful only when completed
  bool completed = true;
  std::size_t pairs_visited = 0;
  std::size_t regions_checked = 0;
  // First diverging packet (raw field/state values), when !equivalent.
  std::optional<lang::Env> counterexample;
  std::string detail;  // human-readable divergence / incompleteness cause

  bool proven_equivalent() const noexcept { return completed && equivalent; }
};

EquivalenceResult check_equivalence(const bdd::BddManager& mgr,
                                    bdd::NodeRef root,
                                    const table::Pipeline& pipe,
                                    const spec::Schema& schema,
                                    const EquivalenceOptions& opts = {});

// check_equivalence + P007/P009 diagnostics appended to `report`.
EquivalenceResult verify_equivalence(const bdd::BddManager& mgr,
                                     bdd::NodeRef root,
                                     const table::Pipeline& pipe,
                                     const spec::Schema& schema, Report& report,
                                     const EquivalenceOptions& opts = {});

}  // namespace camus::verify
