#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace camus::util {

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo;  // inclusive span - 1
  if (span == std::numeric_limits<std::uint64_t>::max()) return next();
  const std::uint64_t bound = span + 1;
  // Debiased modulo (Lemire-style rejection on the cheap path).
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return lo + r % bound;
  }
}

double Rng::exponential(double mean) noexcept {
  // Avoid log(0): uniform01() is in [0,1), so 1 - u is in (0,1].
  return -mean * std::log(1.0 - uniform01());
}

double Rng::gaussian(double mean, double stddev) noexcept {
  double u1 = 1.0 - uniform01();
  double u2 = uniform01();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

std::size_t Rng::weighted(const std::vector<double>& weights) noexcept {
  double total = 0;
  for (double w : weights) total += w;
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfDistribution::operator()(Rng& rng) const noexcept {
  double u = rng.uniform01();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const noexcept {
  if (k >= cdf_.size()) return 0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace camus::util
