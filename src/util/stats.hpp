// Online statistics and CDF sampling used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace camus::util {

// Welford's online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

// Stores all samples; supports exact quantiles and CDF dumps. The latency
// experiments collect at most a few million samples, so exact storage is
// simpler and more faithful than a sketch.
class CdfSampler {
 public:
  void add(double x) { samples_.push_back(x); dirty_ = true; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }

  // Quantile q in [0, 1]. Returns 0 for an empty sampler.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  double p99() const { return quantile(0.99); }
  double max() const { return quantile(1.0); }

  // Fraction of samples <= x.
  double fraction_below(double x) const;

  // Raw samples (order unspecified) — lets callers merge samplers.
  const std::vector<double>& samples() const noexcept { return samples_; }

  // Evenly spaced (in probability) CDF points: {value, cumulative_prob}.
  std::vector<std::pair<double, double>> cdf_points(std::size_t n_points) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool dirty_ = false;
};

// Fixed-width ASCII table used by the bench binaries to print paper-style
// rows. Columns are sized to fit the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::string to_string() const;

  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::uint64_t v);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace camus::util
