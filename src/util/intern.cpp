#include "util/intern.hpp"

namespace camus::util {

std::uint64_t Interner::intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  std::uint64_t id = names_.size();
  names_.emplace_back(s);
  ids_.emplace(std::string(s), id);
  return id;
}

std::optional<std::uint64_t> Interner::lookup(std::string_view s) const {
  auto it = ids_.find(std::string(s));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t encode_symbol(std::string_view sym) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const unsigned char c = i < sym.size() ? static_cast<unsigned char>(sym[i])
                                           : static_cast<unsigned char>(' ');
    v = (v << 8) | c;
  }
  return v;
}

std::string decode_symbol(std::uint64_t value) {
  std::string s(8, ' ');
  for (std::size_t i = 0; i < 8; ++i) {
    s[7 - i] = static_cast<char>(value & 0xff);
    value >>= 8;
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

}  // namespace camus::util
