#include "util/journal.hpp"

#include <array>
#include <cstdio>
#include <cstring>

namespace camus::util {

namespace {

constexpr std::uint8_t kMagic = 0xA6;
// Header: magic(1) type(1) len(4) crc(4), little-endian fixed.
constexpr std::size_t kHeaderBytes = 10;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> t = make_crc_table();
  return t;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes)
    c = crc_table()[(c ^ b) & 0xff] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  return crc32(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()),
      seed);
}

// --- MemStorage -----------------------------------------------------------

Result<bool> MemStorage::append(std::string_view bytes) {
  buf_.append(bytes);
  return true;
}

Result<bool> MemStorage::sync() {
  synced_ = buf_.size();
  ++syncs_;
  return true;
}

Result<std::string> MemStorage::load() const { return buf_; }

Result<bool> MemStorage::replace(std::string_view contents) {
  buf_.assign(contents);
  synced_ = buf_.size();
  ++syncs_;
  return true;
}

void MemStorage::crash(std::size_t torn_tail_bytes) {
  const std::size_t keep =
      std::min(buf_.size(), synced_ + torn_tail_bytes);
  buf_.resize(keep);
  synced_ = std::min(synced_, keep);
}

// --- FileStorage ----------------------------------------------------------

FileStorage::FileStorage(std::string path) : path_(std::move(path)) {}

Result<bool> FileStorage::append(std::string_view bytes) {
  pending_.append(bytes);
  return true;
}

Result<bool> FileStorage::sync() {
  if (pending_.empty()) return true;
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (!f)
    return Error{"journal open failed: " + path_, 0, 0, "J003"};
  const std::size_t n =
      std::fwrite(pending_.data(), 1, pending_.size(), f);
  const bool ok = n == pending_.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) return Error{"journal write failed: " + path_, 0, 0, "J003"};
  pending_.clear();
  return true;
}

Result<std::string> FileStorage::load() const {
  std::string out;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f) {
    std::array<char, 1 << 16> chunk;
    std::size_t n;
    while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0)
      out.append(chunk.data(), n);
    std::fclose(f);
  }
  out.append(pending_);
  return out;
}

Result<bool> FileStorage::replace(std::string_view contents) {
  pending_.clear();
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return Error{"journal open failed: " + tmp, 0, 0, "J003"};
  const std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = n == contents.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), path_.c_str()) != 0)
    return Error{"journal replace failed: " + path_, 0, 0, "J003"};
  return true;
}

// --- Journal --------------------------------------------------------------

std::string Journal::frame(RecordType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  // CRC covers the type byte and the payload, so a record of the right
  // length with the wrong type still fails.
  std::uint32_t c = crc32(std::string_view(&out[1], 1));
  c = crc32(payload, c);
  put_u32(out, c);
  out.append(payload);
  return out;
}

Result<bool> Journal::append(RecordType type, std::string_view payload) {
  if (auto a = storage_.append(frame(type, payload)); !a.ok())
    return a.error();
  if (auto s = storage_.sync(); !s.ok()) return s.error();
  ++appended_;
  return true;
}

Result<ReplayResult> Journal::replay_bytes(std::string_view bytes) {
  ReplayResult out;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::size_t remaining = bytes.size() - off;
    // Header truncated at EOF: torn tail.
    if (remaining < kHeaderBytes) {
      out.torn_bytes = remaining;
      break;
    }
    const char* p = bytes.data() + off;
    if (static_cast<std::uint8_t>(p[0]) != kMagic)
      return Error{"journal: bad record magic at byte " + std::to_string(off),
                   0, 0, "J001"};
    const std::uint8_t type = static_cast<std::uint8_t>(p[1]);
    const std::uint32_t len = get_u32(p + 2);
    const std::uint32_t want_crc = get_u32(p + 6);
    if (remaining < kHeaderBytes + len) {
      // Payload truncated at EOF: torn tail (the append never synced).
      out.torn_bytes = remaining;
      break;
    }
    const std::string_view payload(p + kHeaderBytes, len);
    std::uint32_t c = crc32(std::string_view(p + 1, 1));
    c = crc32(payload, c);
    if (c != want_crc) {
      // A bad CRC on the final record is a torn write; earlier it is
      // corruption the storage should never produce.
      if (off + kHeaderBytes + len == bytes.size()) {
        out.torn_bytes = remaining;
        break;
      }
      return Error{"journal: record CRC mismatch at byte " +
                       std::to_string(off),
                   0, 0, "J002"};
    }
    Record r;
    r.type = static_cast<RecordType>(type);
    r.payload.assign(payload);
    out.records.push_back(std::move(r));
    off += kHeaderBytes + len;
    out.record_ends.push_back(off);
  }
  out.bytes_replayed = off;
  return out;
}

Result<ReplayResult> Journal::replay() const {
  auto loaded = storage_.load();
  if (!loaded.ok()) return loaded.error();
  return replay_bytes(loaded.value());
}

Result<bool> Journal::compact(std::span<const Record> records) {
  std::string image;
  for (const Record& r : records) image += frame(r.type, r.payload);
  if (auto rep = storage_.replace(image); !rep.ok()) return rep.error();
  return true;
}

}  // namespace camus::util
