#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace camus::util::json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double Value::num_or(double fallback) const {
  return kind == Kind::kNumber ? number : fallback;
}

std::uint64_t Value::u64_or(std::uint64_t fallback) const {
  if (kind != Kind::kNumber || number < 0) return fallback;
  return static_cast<std::uint64_t>(number);
}

double Value::member_num(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v ? v->num_or(fallback) : fallback;
}

std::uint64_t Value::member_u64(std::string_view key,
                                std::uint64_t fallback) const {
  const Value* v = find(key);
  return v ? v->u64_or(fallback) : fallback;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  util::Error err(const std::string& msg) const {
    return util::Error{msg, 1, static_cast<int>(pos) + 1};
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  util::Result<Value> parse_value() {
    skip_ws();
    if (pos >= text.size()) return err("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return s.error();
      Value v;
      v.kind = Value::Kind::kString;
      v.string = std::move(s).take();
      return v;
    }
    if (literal("true")) {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      Value v;
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (literal("null")) return Value{};
    return parse_number();
  }

  util::Result<Value> parse_number() {
    const std::size_t start = pos;
    if (eat('-')) {
    }
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    if (pos == start) return err("invalid number");
    const std::string tok(text.substr(start, pos - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return err("invalid number");
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = d;
    return v;
  }

  util::Result<std::string> parse_string() {
    if (!eat('"')) return err("expected '\"'");
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return err("bad \\u escape");
          }
          // Telemetry strings are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: return err("bad escape");
      }
    }
    return err("unterminated string");
  }

  util::Result<Value> parse_array() {
    eat('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (eat(']')) return v;
    while (true) {
      auto item = parse_value();
      if (!item.ok()) return item.error();
      v.array.push_back(std::move(item).take());
      skip_ws();
      if (eat(']')) return v;
      if (!eat(',')) return err("expected ',' or ']'");
    }
  }

  util::Result<Value> parse_object() {
    eat('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (eat('}')) return v;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!eat(':')) return err("expected ':'");
      auto item = parse_value();
      if (!item.ok()) return item.error();
      v.object.emplace_back(std::move(key).take(), std::move(item).take());
      skip_ws();
      if (eat('}')) return v;
      if (!eat(',')) return err("expected ',' or '}'");
    }
  }
};

}  // namespace

util::Result<Value> parse(std::string_view text) {
  Parser p{text};
  auto v = p.parse_value();
  if (!v.ok()) return v;
  p.skip_ws();
  if (p.pos != text.size()) return p.err("trailing characters");
  return v;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  // %.17g always round-trips; try shorter forms first for readability.
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace camus::util::json
