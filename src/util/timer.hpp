// Wall-clock timing for the compile-time experiments (Figure 5c).
#pragma once

#include <chrono>

namespace camus::util {

class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }
  double micros() const noexcept { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace camus::util
