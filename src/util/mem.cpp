#include "util/mem.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <cstdio>
#include <cstring>
#endif

namespace camus::util {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%llu", reinterpret_cast<unsigned long long*>(&kib));
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return peak_rss_bytes();
#endif
}

}  // namespace camus::util
