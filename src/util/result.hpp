// Minimal Result<T> used by parsers and the compiler front-end where a
// malformed input is an expected outcome, not a programming error.
// Exceptions remain in use for violated preconditions.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace camus::util {

// Error with a human-readable message, optional source location, and an
// optional stable diagnostic code ("E101", "F003", ...) in the style of
// the verify:: lint codes — machine-checkable provenance for expected
// failures (malformed specs, rejected frames) that must degrade instead
// of aborting.
struct Error {
  std::string message;
  int line = 0;    // 1-based; 0 when not applicable
  int column = 0;  // 1-based; 0 when not applicable
  std::string code;  // stable diagnostic code; empty when unclassified

  Error() = default;
  Error(std::string msg, int l = 0, int c = 0, std::string cd = {})  // NOLINT
      : message(std::move(msg)), line(l), column(c), code(std::move(cd)) {}

  std::string to_string() const {
    std::string prefix;
    if (!code.empty()) prefix = code + ": ";
    if (line > 0)
      return prefix + "line " + std::to_string(line) + ":" +
             std::to_string(column) + ": " + message;
    return prefix + message;
  }
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                 // NOLINT
  Result(Error error) : error_(std::move(error)) {}             // NOLINT

  bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    if (!ok()) throw std::runtime_error("Result has no value: " + error_->message);
    return *value_;
  }
  T& value() & {
    if (!ok()) throw std::runtime_error("Result has no value: " + error_->message);
    return *value_;
  }
  T&& take() && {
    if (!ok()) throw std::runtime_error("Result has no value: " + error_->message);
    return std::move(*value_);
  }

  const Error& error() const {
    if (ok()) throw std::runtime_error("Result has no error");
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace camus::util
