#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace camus::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void CdfSampler::ensure_sorted() const {
  if (dirty_) {
    std::sort(samples_.begin(), samples_.end());
    dirty_ = false;
  }
}

double CdfSampler::quantile(double q) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double CdfSampler::fraction_below(double x) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> CdfSampler::cdf_points(
    std::size_t n_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n_points == 0) return out;
  ensure_sorted();
  out.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    const double q =
        static_cast<double>(i + 1) / static_cast<double>(n_points);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size())
        os << std::string(widths[i] - row[i].size() + 2, ' ');
    }
    os << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < widths.size(); ++i)
        total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
      os << std::string(total, '-') << '\n';
    }
  }
  return os.str();
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt(std::uint64_t v) { return std::to_string(v); }

}  // namespace camus::util
