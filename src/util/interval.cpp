#include "util/interval.hpp"

#include <algorithm>
#include <sstream>

namespace camus::util {

IntervalSet IntervalSet::range(std::uint64_t lo, std::uint64_t hi) {
  IntervalSet s;
  if (lo <= hi) s.ivs_.push_back({lo, hi});
  return s;
}

IntervalSet IntervalSet::less_than(std::uint64_t v) {
  if (v == 0) return empty();
  return range(0, v - 1);
}

IntervalSet IntervalSet::greater_than(std::uint64_t v, std::uint64_t umax) {
  if (v >= umax) return empty();
  return range(v + 1, umax);
}

bool IntervalSet::contains(std::uint64_t v) const noexcept {
  // Binary search over the sorted intervals.
  auto it = std::upper_bound(
      ivs_.begin(), ivs_.end(), v,
      [](std::uint64_t x, const Interval& iv) { return x < iv.lo; });
  if (it == ivs_.begin()) return false;
  --it;
  return v >= it->lo && v <= it->hi;
}

std::uint64_t IntervalSet::cardinality() const noexcept {
  std::uint64_t total = 0;
  for (const auto& iv : ivs_) {
    const std::uint64_t span = iv.hi - iv.lo;
    if (span == kMax || total > kMax - span - 1) return kMax;
    total += span + 1;
  }
  return total;
}

std::uint64_t IntervalSet::min() const { return ivs_.front().lo; }
std::uint64_t IntervalSet::max() const { return ivs_.back().hi; }

void IntervalSet::normalize() {
  if (ivs_.empty()) return;
  std::sort(ivs_.begin(), ivs_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> out;
  out.push_back(ivs_[0]);
  for (std::size_t i = 1; i < ivs_.size(); ++i) {
    Interval& last = out.back();
    const Interval& cur = ivs_[i];
    // Merge overlapping or adjacent intervals ([0,4] + [5,9] -> [0,9]).
    const bool adjacent = last.hi != kMax && cur.lo == last.hi + 1;
    if (cur.lo <= last.hi || adjacent) {
      last.hi = std::max(last.hi, cur.hi);
    } else {
      out.push_back(cur);
    }
  }
  ivs_ = std::move(out);
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet out;
  std::size_t i = 0, j = 0;
  while (i < ivs_.size() && j < other.ivs_.size()) {
    const Interval& a = ivs_[i];
    const Interval& b = other.ivs_[j];
    const std::uint64_t lo = std::max(a.lo, b.lo);
    const std::uint64_t hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.ivs_.push_back({lo, hi});
    if (a.hi < b.hi)
      ++i;
    else
      ++j;
  }
  return out;  // already sorted and disjoint
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  IntervalSet out;
  out.ivs_ = ivs_;
  out.ivs_.insert(out.ivs_.end(), other.ivs_.begin(), other.ivs_.end());
  out.normalize();
  return out;
}

IntervalSet IntervalSet::complement(std::uint64_t umax) const {
  IntervalSet out;
  std::uint64_t next = 0;
  bool open = true;  // whether [next, ...] is still to be emitted
  for (const auto& iv : ivs_) {
    if (iv.lo > umax) break;
    if (iv.lo > next) out.ivs_.push_back({next, iv.lo - 1});
    if (iv.hi >= umax) {
      open = false;
      break;
    }
    next = iv.hi + 1;
  }
  if (open && next <= umax) out.ivs_.push_back({next, umax});
  return out;
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  // x \ y == x ∩ complement(y). Use the full uint64 universe for the
  // complement; the intersection clips it back to this set's extent.
  return intersect(other.complement(kMax));
}

bool IntervalSet::is_subset_of(const IntervalSet& other) const {
  return intersect(other) == *this;
}

std::string IntervalSet::to_string() const {
  if (is_empty()) return "{}";
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < ivs_.size(); ++i) {
    if (i) os << ", ";
    if (ivs_[i].lo == ivs_[i].hi)
      os << ivs_[i].lo;
    else
      os << "[" << ivs_[i].lo << "," << ivs_[i].hi << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace camus::util
