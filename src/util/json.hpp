// Minimal JSON reader/writer used by the compile-telemetry machinery.
//
// The writer side is a handful of formatting helpers (escaping, doubles
// that round-trip); producers assemble documents with an ostream. The
// reader is a small recursive-descent parser over the JSON subset the
// telemetry emits (objects, arrays, strings, numbers, booleans, null) —
// enough for tests and tools to load a CompileStats profile back without
// an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace camus::util::json {

struct Value {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  // Insertion order preserved: telemetry diffs compare profiles textually.
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  // Typed accessors with defaults (missing/mistyped -> fallback).
  double num_or(double fallback = 0) const;
  std::uint64_t u64_or(std::uint64_t fallback = 0) const;

  // Member shorthand: object()["a"]["b"] style chains via find().
  double member_num(std::string_view key, double fallback = 0) const;
  std::uint64_t member_u64(std::string_view key,
                           std::uint64_t fallback = 0) const;
};

// Parses one JSON document (surrounding whitespace allowed). Errors carry
// the byte offset in Error::column.
util::Result<Value> parse(std::string_view text);

// String escaping for emitters ("\"" framing not included).
std::string escape(std::string_view s);

// Shortest representation that round-trips a double (printf %.17g trimmed).
std::string format_double(double v);

}  // namespace camus::util::json
