// Durable write-ahead journal for control-plane state (the crash-safety
// substrate of pubsub::DurableController). A Journal frames typed records
// over a StableStorage byte log with per-record CRCs; replay() walks the
// log back into records, tolerating a *torn tail* — the suffix a crash cut
// mid-write — while still distinguishing it from mid-log corruption.
//
// Crash model (what the nemesis harness injects): append() buffers bytes
// and sync() makes everything appended so far durable. A crash discards
// any bytes appended after the last sync, possibly leaving a prefix of
// them (the torn tail) — exactly the contract of a POSIX file behind
// write()+fsync(). Journal::append syncs after every record, so a record
// whose append() returned ok survives any later crash (write-ahead: callers
// journal an operation before acting on it).
//
// Diagnostics (stable J-codes, util::Result convention):
//   J001  record header malformed mid-log (bad magic)
//   J002  record payload CRC mismatch mid-log
//   J003  journal byte stream rejected by storage
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace camus::util {

// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the chunk-channel and
// journal framing checksum. Stronger mixing than FNV for short inputs and
// a stable wire constant.
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 0);
std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0);

// Abstract append-only byte log with explicit durability. Implementations
// define what survives a crash; the Journal only ever appends, syncs,
// loads, and (for snapshot compaction) atomically replaces the contents.
class StableStorage {
 public:
  virtual ~StableStorage() = default;

  virtual Result<bool> append(std::string_view bytes) = 0;
  // Makes every byte appended so far durable.
  virtual Result<bool> sync() = 0;
  // The current contents (durable prefix + not-yet-synced suffix). After a
  // crash only the durable prefix (plus any torn tail) remains.
  virtual Result<std::string> load() const = 0;
  // Atomically replaces the contents (snapshot compaction). Durable on
  // return, like rename(2) over a synced temp file.
  virtual Result<bool> replace(std::string_view contents) = 0;
};

// In-memory storage with an explicit crash lever — the unit-test and
// nemesis-harness backend. crash(torn) truncates to the synced prefix
// plus up to `torn` additional bytes (the torn tail a mid-write crash
// leaves), after which load() observes exactly what a restarted process
// would read off disk.
class MemStorage final : public StableStorage {
 public:
  Result<bool> append(std::string_view bytes) override;
  Result<bool> sync() override;
  Result<std::string> load() const override;
  Result<bool> replace(std::string_view contents) override;

  // Simulates a process/host crash: unsynced bytes are lost except for a
  // torn tail of at most `torn_tail_bytes`.
  void crash(std::size_t torn_tail_bytes = 0);

  std::size_t size() const noexcept { return buf_.size(); }
  std::size_t synced_size() const noexcept { return synced_; }
  std::uint64_t syncs() const noexcept { return syncs_; }

 private:
  std::string buf_;
  std::size_t synced_ = 0;
  std::uint64_t syncs_ = 0;
};

// File-backed storage (bench/CLI realism): append+fsync on sync(),
// write-temp+rename on replace(). Not crash-injected in tests — the
// simulated MemStorage is — but lets the recovery bench measure replay
// against a real filesystem.
class FileStorage final : public StableStorage {
 public:
  explicit FileStorage(std::string path);

  Result<bool> append(std::string_view bytes) override;
  Result<bool> sync() override;
  Result<std::string> load() const override;
  Result<bool> replace(std::string_view contents) override;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::string pending_;  // appended since last sync
};

// One journal record. Payloads are opaque bytes to the journal; the
// controller layers its own line formats on top.
enum class RecordType : std::uint8_t {
  kEpoch = 1,          // controller took a new epoch
  kSubscribe = 2,      // intended-state mutation
  kUnsubscribe = 3,    // intended-state mutation
  kCommit = 4,         // compiler commit boundary (digest payload)
  kInstallBegin = 5,   // two-phase install entered flight
  kInstallCommit = 6,  // install landed on the switch
  kInstallAbort = 7,   // install failed; switch kept last-good
  kSnapshot = 8,       // checkpoint: full intended state, compacted
};

struct Record {
  RecordType type = RecordType::kEpoch;
  std::string payload;

  friend bool operator==(const Record&, const Record&) = default;
};

struct ReplayResult {
  std::vector<Record> records;
  // Byte offset just past each replayed record — the crash-point sweep
  // truncates the log at every one of these boundaries.
  std::vector<std::size_t> record_ends;
  std::size_t bytes_replayed = 0;
  // Bytes past the last whole record (a torn tail, discarded silently —
  // the write they belonged to never returned ok to its caller).
  std::size_t torn_bytes = 0;
};

class Journal {
 public:
  explicit Journal(StableStorage& storage) : storage_(storage) {}

  // Frames, appends, and syncs one record: when this returns ok the
  // record survives any later crash.
  Result<bool> append(RecordType type, std::string_view payload);

  // Parses a raw journal byte stream. A truncated/corrupt record at the
  // very end is a torn tail (reported, not fatal); anything invalid with
  // valid-looking bytes after it is corruption (J001/J002).
  static Result<ReplayResult> replay_bytes(std::string_view bytes);

  // load() + replay_bytes().
  Result<ReplayResult> replay() const;

  // Atomically replaces the log with `records` (snapshot compaction).
  Result<bool> compact(std::span<const Record> records);

  // Frames a record exactly as append() writes it (exposed so tests and
  // the crash sweep can compute boundaries without a storage).
  static std::string frame(RecordType type, std::string_view payload);

  std::uint64_t appended() const noexcept { return appended_; }
  StableStorage& storage() noexcept { return storage_; }

 private:
  StableStorage& storage_;
  std::uint64_t appended_ = 0;
};

}  // namespace camus::util
