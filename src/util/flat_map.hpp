// Insert-only open-addressing hash map used for the BDD operation caches.
// The compiler's hot loops are dominated by memo-table lookups; linear
// probing over a flat array is several times faster than
// std::unordered_map's chained buckets and avoids per-node allocation.
// No erase support (the caches only grow, then clear wholesale).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace camus::util {

template <typename K, typename V, typename Hash>
class FlatMap {
 public:
  explicit FlatMap(std::size_t initial_capacity_log2 = 10)
      : mask_((1ull << initial_capacity_log2) - 1),
        slots_(mask_ + 1),
        used_(mask_ + 1, 0) {}

  // Returns the value for key, or nullptr. The pointer is invalidated by
  // the next insert.
  const V* find(const K& key) const {
    ++probes_;
    std::size_t i = Hash{}(key)&mask_;
    while (used_[i]) {
      if (slots_[i].first == key) {
        ++hits_;
        return &slots_[i].second;
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  // Inserts; key must not be present (memo-table discipline).
  void insert(const K& key, V value) {
    if ((size_ + 1) * 10 > (mask_ + 1) * 7) grow();
    std::size_t i = Hash{}(key)&mask_;
    while (used_[i]) i = (i + 1) & mask_;
    used_[i] = 1;
    slots_[i] = {key, std::move(value)};
    ++size_;
  }

  std::size_t size() const noexcept { return size_; }

  // Allocated slot count (memory accounting, not occupancy).
  std::size_t capacity() const noexcept { return mask_ + 1; }

  // Heap footprint of the backing arrays in bytes.
  std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(std::pair<K, V>) +
           used_.capacity() * sizeof(std::uint8_t);
  }

  // Lifetime totals across clear()s — the compile-telemetry memo hit rate.
  std::uint64_t probes() const noexcept { return probes_; }
  std::uint64_t hits() const noexcept { return hits_; }

  void clear() {
    std::fill(used_.begin(), used_.end(), 0);
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = (mask_ + 1) * 2;
    std::vector<std::pair<K, V>> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    mask_ = new_cap - 1;
    slots_.assign(new_cap, {});
    used_.assign(new_cap, 0);
    for (std::size_t j = 0; j < old_slots.size(); ++j) {
      if (!old_used[j]) continue;
      std::size_t i = Hash{}(old_slots[j].first) & mask_;
      while (used_[i]) i = (i + 1) & mask_;
      used_[i] = 1;
      slots_[i] = std::move(old_slots[j]);
    }
  }

  std::size_t mask_;
  std::vector<std::pair<K, V>> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
  mutable std::uint64_t probes_ = 0;
  mutable std::uint64_t hits_ = 0;
};

// 64-bit mixer (splitmix64 finalizer) for composite integer keys.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace camus::util
