// Process-memory telemetry for the compile-at-scale gates: the bench
// memory ceiling only means something if it measures real RSS, not a
// hand-maintained byte count.
#pragma once

#include <cstdint>

namespace camus::util {

// High-water-mark resident set size of this process in bytes (Linux:
// getrusage ru_maxrss). 0 when the platform offers no measurement.
std::uint64_t peak_rss_bytes();

// Current resident set size in bytes (Linux: /proc/self/status VmRSS).
// 0 when unavailable. Cheap enough to snapshot per compile phase.
std::uint64_t current_rss_bytes();

}  // namespace camus::util
