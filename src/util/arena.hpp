// Single-allocation arena for flattened lookup structures. The compiled
// fast-path pipeline packs every per-table array (exact slots, sorted
// ranges, per-state offsets) into one contiguous block so a traversal
// touches a handful of cache lines instead of chasing node pointers.
//
// Two-phase protocol: reserve<T>(n) for every array, then commit(), then
// take<T>(n) in the same order with the same sizes. Element types must be
// trivially destructible (the arena releases raw bytes).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>

namespace camus::util {

class Arena {
 public:
  template <typename T>
  void reserve(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    total_ = aligned(total_, alignof(T)) + n * sizeof(T);
  }

  // Allocates the block (zero-filled) and switches to the take phase.
  void commit() {
    buf_ = std::make_unique<std::byte[]>(total_);
    std::memset(buf_.get(), 0, total_);
    offset_ = 0;
  }

  // Carves the next array. Must mirror the reserve calls exactly.
  template <typename T>
  std::span<T> take(std::size_t n) {
    offset_ = aligned(offset_, alignof(T));
    T* p = reinterpret_cast<T*>(buf_.get() + offset_);
    offset_ += n * sizeof(T);
    return {p, n};
  }

  std::size_t bytes() const noexcept { return total_; }

 private:
  static std::size_t aligned(std::size_t off, std::size_t align) {
    return (off + align - 1) & ~(align - 1);
  }

  std::size_t total_ = 0;
  std::size_t offset_ = 0;
  std::unique_ptr<std::byte[]> buf_;
};

}  // namespace camus::util
