// IntervalSet: a set of uint64 values represented as sorted, disjoint,
// non-adjacent closed intervals. This is the workhorse value-domain
// representation across the compiler:
//   - conjunction simplification reduces per-field constraints to one set,
//   - the BDD's domain-semantic pruning carries the residual set of values
//     still possible for the current field,
//   - Algorithm 1 intersects predicate sets along component paths to derive
//     the match range of each table entry.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace camus::util {

struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  // inclusive

  friend auto operator<=>(const Interval&, const Interval&) = default;
};

class IntervalSet {
 public:
  static constexpr std::uint64_t kMax =
      std::numeric_limits<std::uint64_t>::max();

  IntervalSet() = default;  // empty set

  static IntervalSet empty() { return IntervalSet(); }
  static IntervalSet all(std::uint64_t umax = kMax) {
    return range(0, umax);
  }
  static IntervalSet point(std::uint64_t v) { return range(v, v); }
  // [lo, hi]; returns empty if lo > hi.
  static IntervalSet range(std::uint64_t lo, std::uint64_t hi);
  // {x : x < v} == [0, v-1]; empty when v == 0.
  static IntervalSet less_than(std::uint64_t v);
  // {x : x > v} intersected with [0, umax]; empty when v >= umax.
  static IntervalSet greater_than(std::uint64_t v, std::uint64_t umax = kMax);

  bool is_empty() const noexcept { return ivs_.empty(); }
  bool is_all(std::uint64_t umax = kMax) const noexcept {
    return ivs_.size() == 1 && ivs_[0].lo == 0 && ivs_[0].hi == umax;
  }
  bool contains(std::uint64_t v) const noexcept;
  bool is_single_point() const noexcept {
    return ivs_.size() == 1 && ivs_[0].lo == ivs_[0].hi;
  }

  // Number of values in the set; saturates at kMax.
  std::uint64_t cardinality() const noexcept;

  std::uint64_t min() const;  // precondition: !is_empty()
  std::uint64_t max() const;  // precondition: !is_empty()

  IntervalSet intersect(const IntervalSet& other) const;
  IntervalSet unite(const IntervalSet& other) const;
  IntervalSet complement(std::uint64_t umax = kMax) const;
  // this \ other
  IntervalSet subtract(const IntervalSet& other) const;

  bool is_subset_of(const IntervalSet& other) const;

  const std::vector<Interval>& intervals() const noexcept { return ivs_; }

  std::string to_string() const;

  friend auto operator<=>(const IntervalSet&, const IntervalSet&) = default;

  // FNV-1a over the interval bounds; for hash-based interning.
  std::size_t hash() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& iv : ivs_) {
      h = (h ^ iv.lo) * 0x100000001b3ULL;
      h = (h ^ iv.hi) * 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }

 private:
  void normalize();

  std::vector<Interval> ivs_;
};

}  // namespace camus::util
