// Deterministic pseudo-random number generation for workload generators and
// simulators. Every experiment in this repository takes an explicit 64-bit
// seed; xoshiro256** gives high-quality streams that are reproducible across
// platforms (unlike std::mt19937 + std::uniform_int_distribution, whose
// output is implementation-defined for some distributions).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace camus::util {

// SplitMix64: used to seed xoshiro and as a standalone mixing function.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: the workhorse generator. Satisfies
// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  // Gaussian via Box-Muller (no cached spare; fine for our workloads).
  double gaussian(double mean, double stddev) noexcept;

  // Pick an index according to a discrete weight vector (weights >= 0 and
  // at least one weight > 0).
  std::size_t weighted(const std::vector<double>& weights) noexcept;

  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(uniform(0, v.size() - 1))];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

// Zipf-distributed ranks over {0, ..., n-1} with skew parameter s.
// Rank 0 is the most popular. Uses precomputed CDF; O(log n) sampling.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

  // Probability mass of rank k.
  double pmf(std::size_t k) const noexcept;

 private:
  std::vector<double> cdf_;
};

}  // namespace camus::util
