// String interning: maps symbolic field values (e.g. stock tickers) to dense
// 64-bit ids and back. The compiler matches symbols by id; the protocol
// layer encodes tickers as fixed-width byte strings, so the interner also
// provides the canonical symbol <-> integer encoding used on the wire.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace camus::util {

class Interner {
 public:
  // Returns the id for `s`, creating one if unseen. Ids are dense from 0.
  std::uint64_t intern(std::string_view s);

  // Returns the id if `s` was interned before.
  std::optional<std::uint64_t> lookup(std::string_view s) const;

  // Returns the string for an id previously returned by intern().
  // Precondition: id < size().
  const std::string& name(std::uint64_t id) const { return names_.at(id); }

  std::size_t size() const noexcept { return names_.size(); }

 private:
  std::unordered_map<std::string, std::uint64_t> ids_;
  std::vector<std::string> names_;
};

// Encodes an ASCII ticker symbol (up to 8 chars, right-padded with spaces,
// as in ITCH) into a big-endian uint64. This makes symbol equality on the
// wire identical to integer equality in the pipeline.
std::uint64_t encode_symbol(std::string_view sym);

// Inverse of encode_symbol: strips the space padding.
std::string decode_symbol(std::uint64_t value);

}  // namespace camus::util
