// Full market-data packet assembly: Ethernet / IPv4 / UDP / MoldUDP64 /
// ITCH. This is the wire format the publisher emits, the switch simulator
// parses, and the subscriber consumes.
#pragma once

#include <optional>
#include <vector>

#include "proto/headers.hpp"
#include "proto/itch.hpp"

namespace camus::proto {

inline constexpr std::uint16_t kItchUdpPort = 26400;

struct MarketDataPacket {
  EthernetHeader eth;
  Ipv4Header ip;
  UdpHeader udp;
  ItchPacket itch;
};

// Builds the full frame. IP total length, UDP length, checksums, and the
// MoldUDP message count are computed here.
std::vector<std::uint8_t> encode_market_data_packet(
    const EthernetHeader& eth, std::uint32_t ip_src, std::uint32_t ip_dst,
    const MoldUdp64Header& mold, const std::vector<ItchAddOrder>& messages,
    std::uint16_t udp_dst_port = kItchUdpPort);

// Parses a full frame; returns nullopt for anything that is not a
// well-formed UDP/ITCH packet (wrong ethertype, truncated headers, framing
// errors). Packets on other UDP ports still parse — filtering on port is a
// policy decision left to callers.
std::optional<MarketDataPacket> decode_market_data_packet(
    std::span<const std::uint8_t> frame);

}  // namespace camus::proto
