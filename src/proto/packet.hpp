// Full market-data packet assembly: Ethernet / IPv4 / UDP / MoldUDP64 /
// ITCH. This is the wire format the publisher emits, the switch simulator
// parses, and the subscriber consumes.
#pragma once

#include <optional>
#include <vector>

#include "proto/headers.hpp"
#include "proto/itch.hpp"
#include "util/result.hpp"

namespace camus::proto {

inline constexpr std::uint16_t kItchUdpPort = 26400;
// UDP destination port for MoldUDP64 retransmission requests (upstream).
inline constexpr std::uint16_t kItchRequestUdpPort = 26401;

struct MarketDataPacket {
  EthernetHeader eth;
  Ipv4Header ip;
  UdpHeader udp;
  ItchPacket itch;
};

// Builds the full frame. IP total length, UDP length, checksums, and the
// MoldUDP message count are computed here.
std::vector<std::uint8_t> encode_market_data_packet(
    const EthernetHeader& eth, std::uint32_t ip_src, std::uint32_t ip_dst,
    const MoldUdp64Header& mold, const std::vector<ItchAddOrder>& messages,
    std::uint16_t udp_dst_port = kItchUdpPort);

// Raw-block variant: the message blocks are spliced in pre-encoded, as
// retransmission replies are served straight from a retransmit store
// without a decode/encode round trip. Seals the UDP checksum.
std::vector<std::uint8_t> encode_market_data_packet_raw(
    const EthernetHeader& eth, std::uint32_t ip_src, std::uint32_t ip_dst,
    const MoldUdp64Header& mold,
    const std::vector<std::vector<std::uint8_t>>& blocks,
    std::uint16_t udp_dst_port = kItchUdpPort);

// Parses a full frame; returns nullopt for anything that is not a
// well-formed UDP/ITCH packet (wrong ethertype, truncated headers, framing
// errors). Packets on other UDP ports still parse — filtering on port is a
// policy decision left to callers.
std::optional<MarketDataPacket> decode_market_data_packet(
    std::span<const std::uint8_t> frame);

// decode_market_data_packet with verify-style diagnostics: a reject names
// the layer that failed with a stable code (F001..F012) so feed handlers
// can classify malformed input instead of silently dropping it. Accepts
// exactly the frames decode_market_data_packet accepts.
util::Result<MarketDataPacket> decode_market_data_packet_checked(
    std::span<const std::uint8_t> frame);

// Full frame carrying a MoldUDP64 retransmission request, addressed to
// kItchRequestUdpPort. The UDP checksum is sealed.
std::vector<std::uint8_t> encode_retransmit_request(
    const EthernetHeader& eth, std::uint32_t ip_src, std::uint32_t ip_dst,
    const MoldUdp64Request& req);

// Parses a retransmission-request frame; nullopt when the frame is not a
// well-formed UDP packet on kItchRequestUdpPort carrying a request.
std::optional<MoldUdp64Request> decode_retransmit_request(
    std::span<const std::uint8_t> frame);

// Computes and writes the UDP checksum (RFC 768, IPv4 pseudo-header) of a
// UDP/IPv4 frame in place, so bit-level corruption anywhere in the UDP
// segment is detectable. Returns false (frame untouched) when the frame is
// not UDP/IPv4 or the UDP length is inconsistent.
bool seal_udp_checksum(std::span<std::uint8_t> frame);

// Verifies the UDP checksum of a UDP/IPv4 frame. A zero checksum means
// "not computed" and verifies as true, per RFC 768; a malformed frame
// (not UDP/IPv4, inconsistent lengths) verifies as false so callers treat
// it as loss.
bool verify_udp_checksum(std::span<const std::uint8_t> frame);

// Rewrites the MoldUDP64 sequence field of a market-data frame in place —
// the egress sequencer re-stamps switch output with dense per-port
// sequence numbers. Does NOT reseal the UDP checksum; call
// seal_udp_checksum afterwards. Returns false (frame untouched) when the
// frame is not a UDP/IPv4 packet with a complete MoldUDP64 header.
bool rewrite_mold_sequence(std::span<std::uint8_t> frame,
                           std::uint64_t sequence);

// Zero-copy parse for the batched fast path: header fields needed to
// re-frame per-port output, without materializing the payload or the
// per-message structs.
struct MarketDataView {
  EthernetHeader eth;
  std::uint32_t ip_src = 0;
  std::uint32_t ip_dst = 0;
  std::uint16_t udp_dst_port = 0;
  MoldUdp64Header mold;
};

// Scans a frame in place. Returns true exactly when
// decode_market_data_packet would return a packet, filling `view` and
// appending the frame-relative offset of every well-formed 36-byte
// add-order message (type byte included) to `add_order_offsets` — the same
// messages, in the same order, as MarketDataPacket::itch.add_orders.
// `add_order_offsets` is not cleared (callers batch offsets across
// frames).
bool scan_market_data_packet(std::span<const std::uint8_t> frame,
                             MarketDataView& view,
                             std::vector<std::uint32_t>& add_order_offsets);

// Decodes one add-order message from a frame offset previously produced by
// scan_market_data_packet (bounds already validated by the scan).
ItchAddOrder decode_add_order_at(std::span<const std::uint8_t> frame,
                                 std::uint32_t offset);

// Batched-path re-framing: writes into `out` the exact bytes
// encode_market_data_packet(view.eth, view.ip_src, view.ip_dst, view.mold,
// <decoded messages at msg_offsets>, view.udp_dst_port) would produce, but
// copies the scanned add-order wire blocks straight out of the source
// frame. Decode->encode round-trips every scanned block byte-identically —
// all fields are full-width big-endian, and the trailing-space strip /
// re-pad of the stock and session strings restores the original bytes —
// so no per-message decode or Writer is needed. One exact-size resize of
// `out` is the only allocation.
void build_market_frame_raw(const MarketDataView& view,
                            std::span<const std::uint8_t> src_frame,
                            std::span<const std::uint32_t> msg_offsets,
                            std::vector<std::uint8_t>& out);

}  // namespace camus::proto
