// Minimal libpcap-format trace writer/reader (classic pcap, not pcapng).
// Lets the workload generators export market-data feeds as standard
// capture files for inspection with external tools, and lets tests replay
// captures through the switch simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace camus::proto {

struct PcapPacket {
  std::uint64_t timestamp_us = 0;
  std::vector<std::uint8_t> frame;
};

class PcapWriter {
 public:
  // linktype 1 = LINKTYPE_ETHERNET.
  explicit PcapWriter(std::uint32_t snaplen = 65535);

  void add(std::uint64_t timestamp_us, std::span<const std::uint8_t> frame);

  // The complete file contents (global header + records).
  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }

  // Writes to disk; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  std::size_t packet_count() const noexcept { return count_; }

 private:
  std::uint32_t snaplen_;
  std::vector<std::uint8_t> buf_;
  std::size_t count_ = 0;
};

// Parses a pcap buffer. Returns nullopt for bad magic/truncated headers;
// tolerates both byte orders. Truncated trailing records are dropped.
std::optional<std::vector<PcapPacket>> parse_pcap(
    std::span<const std::uint8_t> data);

std::optional<std::vector<PcapPacket>> read_pcap_file(
    const std::string& path);

}  // namespace camus::proto
