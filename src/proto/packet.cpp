#include "proto/packet.hpp"

#include <algorithm>
#include <cstring>

namespace camus::proto {

std::vector<std::uint8_t> encode_market_data_packet(
    const EthernetHeader& eth, std::uint32_t ip_src, std::uint32_t ip_dst,
    const MoldUdp64Header& mold, const std::vector<ItchAddOrder>& messages,
    std::uint16_t udp_dst_port) {
  const std::vector<std::uint8_t> payload =
      encode_itch_payload(mold, messages);

  Writer w;
  eth.encode(w);

  Ipv4Header ip;
  ip.src = ip_src;
  ip.dst = ip_dst;
  ip.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize +
                                            UdpHeader::kSize + payload.size());
  ip.encode(w);

  UdpHeader udp;
  udp.src_port = kItchUdpPort;
  udp.dst_port = udp_dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.encode(w);

  w.bytes(payload);
  return w.take();
}

std::optional<MarketDataPacket> decode_market_data_packet(
    std::span<const std::uint8_t> frame) {
  Reader r(frame);
  MarketDataPacket pkt;
  if (!pkt.eth.decode(r)) return std::nullopt;
  if (pkt.eth.ether_type != kEtherTypeIpv4) return std::nullopt;
  if (!pkt.ip.decode(r)) return std::nullopt;
  if (pkt.ip.protocol != kIpProtoUdp) return std::nullopt;
  if (!pkt.udp.decode(r)) return std::nullopt;
  if (pkt.udp.length < UdpHeader::kSize) return std::nullopt;
  const std::size_t payload_len = pkt.udp.length - UdpHeader::kSize;
  if (r.remaining() < payload_len) return std::nullopt;

  std::vector<std::uint8_t> payload(payload_len);
  if (!r.bytes(payload)) return std::nullopt;
  auto itch = decode_itch_payload(payload);
  if (!itch) return std::nullopt;
  pkt.itch = std::move(*itch);
  return pkt;
}

namespace {

inline std::uint64_t read_be(const std::uint8_t* p, unsigned n) noexcept {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < n; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

bool scan_market_data_packet(std::span<const std::uint8_t> frame,
                             MarketDataView& view,
                             std::vector<std::uint32_t>& add_order_offsets) {
  // Layer headers: the accept/reject rules below mirror
  // decode_market_data_packet step for step (differential-tested), minus
  // the payload copy and per-message struct construction.
  const std::uint8_t* p = frame.data();
  std::size_t len = frame.size();
  if (len < EthernetHeader::kSize) return false;
  view.eth.dst = read_be(p, 6);
  view.eth.src = read_be(p + 6, 6);
  view.eth.ether_type = static_cast<std::uint16_t>(read_be(p + 12, 2));
  if (view.eth.ether_type != kEtherTypeIpv4) return false;
  std::size_t off = EthernetHeader::kSize;

  if (len - off < Ipv4Header::kSize) return false;
  const std::uint8_t ver_ihl = p[off];
  if ((ver_ihl >> 4) != 4) return false;
  const std::size_t ihl_bytes = static_cast<std::size_t>(ver_ihl & 0xf) * 4;
  if (ihl_bytes < Ipv4Header::kSize) return false;
  if (len - off < ihl_bytes) return false;
  // Checksum mismatches are not rejected, matching Ipv4Header::decode.
  if (p[off + 9] != kIpProtoUdp) return false;
  view.ip_src = static_cast<std::uint32_t>(read_be(p + off + 12, 4));
  view.ip_dst = static_cast<std::uint32_t>(read_be(p + off + 16, 4));
  off += ihl_bytes;

  if (len - off < UdpHeader::kSize) return false;
  view.udp_dst_port = static_cast<std::uint16_t>(read_be(p + off + 2, 2));
  const auto udp_len = static_cast<std::uint16_t>(read_be(p + off + 4, 2));
  off += UdpHeader::kSize;
  if (udp_len < UdpHeader::kSize) return false;
  const std::size_t payload_len = udp_len - UdpHeader::kSize;
  if (len - off < payload_len) return false;
  const std::size_t payload_end = off + payload_len;  // trailing bytes ignored

  // MoldUDP64 header.
  if (payload_end - off < MoldUdp64Header::kSize) return false;
  view.mold.session.assign(reinterpret_cast<const char*>(p + off), 10);
  while (!view.mold.session.empty() && view.mold.session.back() == ' ')
    view.mold.session.pop_back();
  view.mold.sequence = read_be(p + off + 10, 8);
  view.mold.message_count = static_cast<std::uint16_t>(read_be(p + off + 18, 2));
  off += MoldUdp64Header::kSize;

  for (std::uint16_t i = 0; i < view.mold.message_count; ++i) {
    if (payload_end - off < 2) return false;
    const auto msg_len = static_cast<std::uint16_t>(read_be(p + off, 2));
    off += 2;
    if (payload_end - off < msg_len) return false;
    // A well-formed add-order is exactly kSize bytes of type 'A' with a
    // valid side byte; anything else (including an 'A' block with a bad
    // side) is skipped, as in decode_itch_payload.
    if (msg_len == ItchAddOrder::kSize &&
        p[off] == static_cast<std::uint8_t>(kItchAddOrder)) {
      const std::uint8_t side = p[off + 19];
      if (side == 'B' || side == 'S')
        add_order_offsets.push_back(static_cast<std::uint32_t>(off));
    }
    off += msg_len;
  }
  return true;
}

ItchAddOrder decode_add_order_at(std::span<const std::uint8_t> frame,
                                 std::uint32_t offset) {
  Reader r(frame.subspan(offset, ItchAddOrder::kSize));
  ItchAddOrder msg;
  const bool ok = msg.decode(r);
  (void)ok;  // the scan validated the block
  return msg;
}

namespace {

inline void write_be(std::uint8_t* p, std::uint64_t v, unsigned n) noexcept {
  for (unsigned i = 0; i < n; ++i)
    p[i] = static_cast<std::uint8_t>(v >> (8 * (n - 1 - i)));
}

}  // namespace

void build_market_frame_raw(const MarketDataView& view,
                            std::span<const std::uint8_t> src_frame,
                            std::span<const std::uint32_t> msg_offsets,
                            std::vector<std::uint8_t>& out) {
  const std::size_t payload =
      MoldUdp64Header::kSize +
      msg_offsets.size() * (2 + ItchAddOrder::kSize);
  out.resize(EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize +
             payload);
  std::uint8_t* p = out.data();

  write_be(p, view.eth.dst, 6);
  write_be(p + 6, view.eth.src, 6);
  write_be(p + 12, view.eth.ether_type, 2);

  // Canonical IPv4 header, field for field what Ipv4Header::encode emits
  // from a default-constructed header with src/dst/total_len set.
  std::uint8_t* ip = p + EthernetHeader::kSize;
  ip[0] = 0x45;  // version 4, IHL 5
  ip[1] = 0;     // diffserv
  write_be(ip + 2, Ipv4Header::kSize + UdpHeader::kSize + payload, 2);
  write_be(ip + 4, 0, 2);       // identification
  write_be(ip + 6, 0x4000, 2);  // flags: don't fragment
  ip[8] = 64;                   // default ttl
  ip[9] = kIpProtoUdp;
  write_be(ip + 10, 0, 2);  // checksum placeholder
  write_be(ip + 12, view.ip_src, 4);
  write_be(ip + 16, view.ip_dst, 4);
  write_be(ip + 10, internet_checksum({ip, Ipv4Header::kSize}), 2);

  std::uint8_t* udp = ip + Ipv4Header::kSize;
  write_be(udp, kItchUdpPort, 2);
  write_be(udp + 2, view.udp_dst_port, 2);
  write_be(udp + 4, UdpHeader::kSize + payload, 2);
  write_be(udp + 6, 0, 2);  // checksum not computed over IPv4

  std::uint8_t* mold = udp + UdpHeader::kSize;
  std::memset(mold, ' ', 10);
  std::memcpy(mold, view.mold.session.data(),
              std::min<std::size_t>(view.mold.session.size(), 10));
  write_be(mold + 10, view.mold.sequence, 8);
  write_be(mold + 18, msg_offsets.size(), 2);

  std::uint8_t* q = mold + MoldUdp64Header::kSize;
  for (std::uint32_t off : msg_offsets) {
    write_be(q, ItchAddOrder::kSize, 2);
    std::memcpy(q + 2, src_frame.data() + off, ItchAddOrder::kSize);
    q += 2 + ItchAddOrder::kSize;
  }
}

namespace {

// Locates the UDP segment of an IPv4/UDP frame: byte offsets of the IPv4
// header and the UDP header, plus the UDP length (header + payload).
// False for non-UDP/IPv4 frames and frames shorter than their UDP length.
bool locate_udp(std::span<const std::uint8_t> frame, std::size_t* ip_off_out,
                std::size_t* udp_off_out, std::size_t* udp_len_out) {
  if (frame.size() <
      EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize)
    return false;
  const std::uint8_t* p = frame.data();
  if (read_be(p + 12, 2) != kEtherTypeIpv4) return false;
  const std::size_t ip_off = EthernetHeader::kSize;
  const std::uint8_t ver_ihl = p[ip_off];
  if ((ver_ihl >> 4) != 4) return false;
  const std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0xf) * 4;
  if (ihl < Ipv4Header::kSize) return false;
  if (frame.size() < ip_off + ihl + UdpHeader::kSize) return false;
  if (p[ip_off + 9] != kIpProtoUdp) return false;
  const std::size_t udp_off = ip_off + ihl;
  const auto udp_len = static_cast<std::size_t>(read_be(p + udp_off + 4, 2));
  if (udp_len < UdpHeader::kSize) return false;
  if (frame.size() < udp_off + udp_len) return false;
  *ip_off_out = ip_off;
  *udp_off_out = udp_off;
  *udp_len_out = udp_len;
  return true;
}

std::uint32_t ones_acc(const std::uint8_t* p, std::size_t n,
                       std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    acc += (static_cast<std::uint32_t>(p[i]) << 8) | p[i + 1];
  if (i < n) acc += static_cast<std::uint32_t>(p[i]) << 8;
  return acc;
}

// RFC 768 checksum over the IPv4 pseudo-header and the UDP segment, with
// the checksum field itself read as zero. 0x0000 results are mapped to
// 0xffff — zero on the wire means "not computed".
std::uint16_t udp_checksum_value(std::span<const std::uint8_t> frame,
                                 std::size_t ip_off, std::size_t udp_off,
                                 std::size_t udp_len) {
  const std::uint8_t* p = frame.data();
  std::uint32_t acc = 0;
  acc = ones_acc(p + ip_off + 12, 8, acc);  // src + dst addresses
  acc += kIpProtoUdp;
  acc += static_cast<std::uint32_t>(udp_len);
  acc = ones_acc(p + udp_off, 6, acc);  // ports + length, skip checksum
  acc = ones_acc(p + udp_off + UdpHeader::kSize, udp_len - UdpHeader::kSize,
                 acc);
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  const auto sum = static_cast<std::uint16_t>(~acc & 0xffff);
  return sum == 0 ? 0xffff : sum;
}

}  // namespace

bool seal_udp_checksum(std::span<std::uint8_t> frame) {
  std::size_t ip_off = 0, udp_off = 0, udp_len = 0;
  if (!locate_udp(frame, &ip_off, &udp_off, &udp_len)) return false;
  const std::uint16_t sum =
      udp_checksum_value(frame, ip_off, udp_off, udp_len);
  write_be(frame.data() + udp_off + 6, sum, 2);
  return true;
}

bool verify_udp_checksum(std::span<const std::uint8_t> frame) {
  std::size_t ip_off = 0, udp_off = 0, udp_len = 0;
  if (!locate_udp(frame, &ip_off, &udp_off, &udp_len)) return false;
  const auto stored =
      static_cast<std::uint16_t>(read_be(frame.data() + udp_off + 6, 2));
  if (stored == 0) return true;  // unsealed: unverified, accepted
  return udp_checksum_value(frame, ip_off, udp_off, udp_len) == stored;
}

bool rewrite_mold_sequence(std::span<std::uint8_t> frame,
                           std::uint64_t sequence) {
  std::size_t ip_off = 0, udp_off = 0, udp_len = 0;
  if (!locate_udp(frame, &ip_off, &udp_off, &udp_len)) return false;
  if (udp_len < UdpHeader::kSize + MoldUdp64Header::kSize) return false;
  write_be(frame.data() + udp_off + UdpHeader::kSize + 10, sequence, 8);
  return true;
}

std::vector<std::uint8_t> encode_market_data_packet_raw(
    const EthernetHeader& eth, std::uint32_t ip_src, std::uint32_t ip_dst,
    const MoldUdp64Header& mold,
    const std::vector<std::vector<std::uint8_t>>& blocks,
    std::uint16_t udp_dst_port) {
  const std::vector<std::uint8_t> payload =
      encode_itch_payload_raw(mold, blocks);

  Writer w;
  eth.encode(w);

  Ipv4Header ip;
  ip.src = ip_src;
  ip.dst = ip_dst;
  ip.total_len = static_cast<std::uint16_t>(
      Ipv4Header::kSize + UdpHeader::kSize + payload.size());
  ip.encode(w);

  UdpHeader udp;
  udp.src_port = kItchUdpPort;
  udp.dst_port = udp_dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.encode(w);

  w.bytes(payload);
  std::vector<std::uint8_t> frame = w.take();
  seal_udp_checksum(frame);
  return frame;
}

std::vector<std::uint8_t> encode_retransmit_request(
    const EthernetHeader& eth, std::uint32_t ip_src, std::uint32_t ip_dst,
    const MoldUdp64Request& req) {
  Writer pw;
  req.encode(pw);
  const std::vector<std::uint8_t> payload = pw.take();

  Writer w;
  eth.encode(w);

  Ipv4Header ip;
  ip.src = ip_src;
  ip.dst = ip_dst;
  ip.total_len = static_cast<std::uint16_t>(
      Ipv4Header::kSize + UdpHeader::kSize + payload.size());
  ip.encode(w);

  UdpHeader udp;
  udp.src_port = kItchRequestUdpPort;
  udp.dst_port = kItchRequestUdpPort;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.encode(w);

  w.bytes(payload);
  std::vector<std::uint8_t> frame = w.take();
  seal_udp_checksum(frame);
  return frame;
}

std::optional<MoldUdp64Request> decode_retransmit_request(
    std::span<const std::uint8_t> frame) {
  Reader r(frame);
  EthernetHeader eth;
  if (!eth.decode(r) || eth.ether_type != kEtherTypeIpv4) return std::nullopt;
  Ipv4Header ip;
  if (!ip.decode(r) || ip.protocol != kIpProtoUdp) return std::nullopt;
  UdpHeader udp;
  if (!udp.decode(r) || udp.dst_port != kItchRequestUdpPort)
    return std::nullopt;
  if (udp.length < UdpHeader::kSize + MoldUdp64Request::kSize)
    return std::nullopt;
  MoldUdp64Request req;
  if (!req.decode(r)) return std::nullopt;
  return req;
}

util::Result<MarketDataPacket> decode_market_data_packet_checked(
    std::span<const std::uint8_t> frame) {
  const auto fail = [](const char* code, const char* msg) {
    util::Error e;
    e.message = msg;
    e.code = code;
    return e;
  };
  Reader r(frame);
  MarketDataPacket pkt;
  if (!pkt.eth.decode(r)) return fail("F001", "truncated Ethernet header");
  if (pkt.eth.ether_type != kEtherTypeIpv4)
    return fail("F002", "ether_type is not IPv4");
  if (!pkt.ip.decode(r))
    return fail("F003", "truncated or malformed IPv4 header");
  if (pkt.ip.protocol != kIpProtoUdp)
    return fail("F004", "IP protocol is not UDP");
  if (!pkt.udp.decode(r)) return fail("F005", "truncated UDP header");
  if (pkt.udp.length < UdpHeader::kSize)
    return fail("F006", "UDP length shorter than its header");
  const std::size_t payload_len = pkt.udp.length - UdpHeader::kSize;
  if (r.remaining() < payload_len)
    return fail("F007", "UDP payload truncated");

  std::vector<std::uint8_t> payload(payload_len);
  if (!r.bytes(payload)) return fail("F007", "UDP payload truncated");

  // Mirror of decode_itch_payload with per-step diagnostics; accepts and
  // produces exactly what it does (differential-tested in test_fuzz).
  Reader pr(payload);
  ItchPacket itch;
  if (!itch.mold.decode(pr))
    return fail("F008", "truncated MoldUDP64 header");
  for (std::uint16_t i = 0; i < itch.mold.message_count; ++i) {
    std::uint16_t len = 0;
    if (!pr.u16(len))
      return fail("F009", "truncated MoldUDP64 message length");
    if (pr.remaining() < len)
      return fail("F010", "MoldUDP64 message overruns payload");
    const char type =
        len > 0 ? static_cast<char>(payload[pr.position()]) : '\0';
    if (type == kItchAddOrder && len == ItchAddOrder::kSize) {
      ItchAddOrder msg;
      const std::size_t before = pr.position();
      if (msg.decode(pr)) {
        itch.add_orders.push_back(std::move(msg));
        continue;
      }
      const std::size_t consumed = pr.position() - before;
      if (!pr.skip(len - consumed))
        return fail("F010", "MoldUDP64 message overruns payload");
      ++itch.skipped_messages;
    } else {
      if (!pr.skip(len))
        return fail("F010", "MoldUDP64 message overruns payload");
      if (type == kItchOrderExecuted && len == ItchOrderExecuted::kSize)
        ++itch.executed_messages;
      else if (type == kItchTrade && len == ItchTrade::kSize)
        ++itch.trade_messages;
      else if (type == kItchOrderCancel && len == ItchOrderCancel::kSize)
        ++itch.cancel_messages;
      else
        ++itch.skipped_messages;
    }
  }
  pkt.itch = std::move(itch);
  return pkt;
}

}  // namespace camus::proto
