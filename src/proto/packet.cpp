#include "proto/packet.hpp"

namespace camus::proto {

std::vector<std::uint8_t> encode_market_data_packet(
    const EthernetHeader& eth, std::uint32_t ip_src, std::uint32_t ip_dst,
    const MoldUdp64Header& mold, const std::vector<ItchAddOrder>& messages,
    std::uint16_t udp_dst_port) {
  const std::vector<std::uint8_t> payload =
      encode_itch_payload(mold, messages);

  Writer w;
  eth.encode(w);

  Ipv4Header ip;
  ip.src = ip_src;
  ip.dst = ip_dst;
  ip.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize +
                                            UdpHeader::kSize + payload.size());
  ip.encode(w);

  UdpHeader udp;
  udp.src_port = kItchUdpPort;
  udp.dst_port = udp_dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.encode(w);

  w.bytes(payload);
  return w.take();
}

std::optional<MarketDataPacket> decode_market_data_packet(
    std::span<const std::uint8_t> frame) {
  Reader r(frame);
  MarketDataPacket pkt;
  if (!pkt.eth.decode(r)) return std::nullopt;
  if (pkt.eth.ether_type != kEtherTypeIpv4) return std::nullopt;
  if (!pkt.ip.decode(r)) return std::nullopt;
  if (pkt.ip.protocol != kIpProtoUdp) return std::nullopt;
  if (!pkt.udp.decode(r)) return std::nullopt;
  if (pkt.udp.length < UdpHeader::kSize) return std::nullopt;
  const std::size_t payload_len = pkt.udp.length - UdpHeader::kSize;
  if (r.remaining() < payload_len) return std::nullopt;

  std::vector<std::uint8_t> payload(payload_len);
  if (!r.bytes(payload)) return std::nullopt;
  auto itch = decode_itch_payload(payload);
  if (!itch) return std::nullopt;
  pkt.itch = std::move(*itch);
  return pkt;
}

}  // namespace camus::proto
