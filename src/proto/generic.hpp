// Generic application-payload codec: encodes/decodes the fields of any
// schema as a big-endian bit-packed record in header/field declaration
// order. This is what makes "subscriptions over arbitrary, user-defined
// packet formats" concrete for applications without a bespoke protocol
// implementation (the ILA routing and load-balancer examples): the schema
// *is* the wire format.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "spec/schema.hpp"

namespace camus::proto {

// MSB-first bit-level writer (fields are 1..64 bits wide).
class BitWriter {
 public:
  // Appends the low `bits` bits of v, most significant bit first.
  void put(std::uint64_t v, std::uint32_t bits);

  // Pads with zero bits to a byte boundary and returns the buffer.
  std::vector<std::uint8_t> take();

  std::size_t bit_count() const noexcept { return bit_count_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint32_t bit_pos_ = 0;  // bits used in the last byte (0..7)
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  // Reads `bits` bits MSB-first; false when exhausted.
  [[nodiscard]] bool get(std::uint32_t bits, std::uint64_t* out);

  std::size_t bits_remaining() const noexcept {
    return data_.size() * 8 - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;  // bit cursor
};

// Encodes one value per schema field (field-id order), bit-packed.
std::vector<std::uint8_t> encode_app_payload(
    const spec::Schema& schema, const std::vector<std::uint64_t>& fields);

// Inverse; nullopt if the payload is too short. Trailing padding ignored.
std::optional<std::vector<std::uint64_t>> decode_app_payload(
    const spec::Schema& schema, std::span<const std::uint8_t> payload);

// Full frame: Ethernet/IPv4/UDP carrying the bit-packed record on the
// given UDP port (no MoldUDP framing — one record per packet).
std::vector<std::uint8_t> encode_generic_packet(
    const spec::Schema& schema, const std::vector<std::uint64_t>& fields,
    std::uint32_t ip_src = 0x0a000001, std::uint32_t ip_dst = 0x0a0000fe,
    std::uint16_t udp_port = 26401);

std::optional<std::vector<std::uint64_t>> decode_generic_packet(
    const spec::Schema& schema, std::span<const std::uint8_t> frame);

}  // namespace camus::proto
