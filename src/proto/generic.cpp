#include "proto/generic.hpp"

#include "proto/headers.hpp"
#include "proto/wire.hpp"

namespace camus::proto {

void BitWriter::put(std::uint64_t v, std::uint32_t bits) {
  if (bits < 64) v &= (1ULL << bits) - 1;
  for (std::uint32_t i = bits; i > 0; --i) {
    const std::uint8_t bit = static_cast<std::uint8_t>((v >> (i - 1)) & 1);
    if (bit_pos_ == 0) buf_.push_back(0);
    buf_.back() = static_cast<std::uint8_t>(buf_.back() |
                                            (bit << (7 - bit_pos_)));
    bit_pos_ = (bit_pos_ + 1) & 7;
    ++bit_count_;
  }
}

std::vector<std::uint8_t> BitWriter::take() {
  bit_pos_ = 0;
  return std::move(buf_);
}

bool BitReader::get(std::uint32_t bits, std::uint64_t* out) {
  if (bits_remaining() < bits) return false;
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < bits; ++i) {
    const std::size_t byte = pos_ >> 3;
    const std::uint32_t off = pos_ & 7;
    v = (v << 1) | ((data_[byte] >> (7 - off)) & 1);
    ++pos_;
  }
  *out = v;
  return true;
}

std::vector<std::uint8_t> encode_app_payload(
    const spec::Schema& schema, const std::vector<std::uint64_t>& fields) {
  BitWriter w;
  for (const auto& f : schema.fields())
    w.put(f.id < fields.size() ? fields[f.id] : 0, f.width_bits);
  return w.take();
}

std::optional<std::vector<std::uint64_t>> decode_app_payload(
    const spec::Schema& schema, std::span<const std::uint8_t> payload) {
  BitReader r(payload);
  std::vector<std::uint64_t> out(schema.fields().size(), 0);
  for (const auto& f : schema.fields()) {
    if (!r.get(f.width_bits, &out[f.id])) return std::nullopt;
  }
  return out;
}

std::vector<std::uint8_t> encode_generic_packet(
    const spec::Schema& schema, const std::vector<std::uint64_t>& fields,
    std::uint32_t ip_src, std::uint32_t ip_dst, std::uint16_t udp_port) {
  const auto payload = encode_app_payload(schema, fields);

  Writer w;
  EthernetHeader eth;
  eth.dst = 0x02000000fe00ULL;
  eth.src = 0x020000000100ULL;
  eth.encode(w);
  Ipv4Header ip;
  ip.src = ip_src;
  ip.dst = ip_dst;
  ip.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize +
                                            UdpHeader::kSize + payload.size());
  ip.encode(w);
  UdpHeader udp;
  udp.src_port = udp_port;
  udp.dst_port = udp_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.encode(w);
  w.bytes(payload);
  return w.take();
}

std::optional<std::vector<std::uint64_t>> decode_generic_packet(
    const spec::Schema& schema, std::span<const std::uint8_t> frame) {
  Reader r(frame);
  EthernetHeader eth;
  if (!eth.decode(r) || eth.ether_type != kEtherTypeIpv4) return std::nullopt;
  Ipv4Header ip;
  if (!ip.decode(r) || ip.protocol != kIpProtoUdp) return std::nullopt;
  UdpHeader udp;
  if (!udp.decode(r)) return std::nullopt;
  if (udp.length < UdpHeader::kSize) return std::nullopt;
  const std::size_t payload_len = udp.length - UdpHeader::kSize;
  if (r.remaining() < payload_len) return std::nullopt;
  std::vector<std::uint8_t> payload(payload_len);
  if (!r.bytes(payload)) return std::nullopt;
  return decode_app_payload(schema, payload);
}

}  // namespace camus::proto
