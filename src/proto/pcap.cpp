#include "proto/pcap.hpp"

#include <cstring>
#include <fstream>

namespace camus::proto {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;

void put_u16le(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

}  // namespace

PcapWriter::PcapWriter(std::uint32_t snaplen) : snaplen_(snaplen) {
  put_u32le(buf_, kMagic);
  put_u16le(buf_, 2);   // version major
  put_u16le(buf_, 4);   // version minor
  put_u32le(buf_, 0);   // thiszone
  put_u32le(buf_, 0);   // sigfigs
  put_u32le(buf_, snaplen_);
  put_u32le(buf_, 1);   // LINKTYPE_ETHERNET
}

void PcapWriter::add(std::uint64_t timestamp_us,
                     std::span<const std::uint8_t> frame) {
  const std::uint32_t incl =
      static_cast<std::uint32_t>(std::min<std::size_t>(frame.size(), snaplen_));
  put_u32le(buf_, static_cast<std::uint32_t>(timestamp_us / 1000000));
  put_u32le(buf_, static_cast<std::uint32_t>(timestamp_us % 1000000));
  put_u32le(buf_, incl);
  put_u32le(buf_, static_cast<std::uint32_t>(frame.size()));
  buf_.insert(buf_.end(), frame.begin(), frame.begin() + incl);
  ++count_;
}

bool PcapWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(buf_.size()));
  return static_cast<bool>(out);
}

std::optional<std::vector<PcapPacket>> parse_pcap(
    std::span<const std::uint8_t> data) {
  if (data.size() < 24) return std::nullopt;

  auto u32 = [&](std::size_t off, bool swap) -> std::uint32_t {
    std::uint32_t v;
    std::memcpy(&v, data.data() + off, 4);
    if (swap) v = __builtin_bswap32(v);
    return v;
  };

  bool swap = false;
  const std::uint32_t magic_le = u32(0, false);
  if (magic_le == kMagic) {
    swap = false;  // written little-endian on a little-endian host
  } else if (magic_le == 0xd4c3b2a1) {
    swap = true;
  } else {
    return std::nullopt;
  }

  std::vector<PcapPacket> out;
  std::size_t pos = 24;
  while (pos + 16 <= data.size()) {
    const std::uint32_t ts_sec = u32(pos, swap);
    const std::uint32_t ts_usec = u32(pos + 4, swap);
    const std::uint32_t incl = u32(pos + 8, swap);
    pos += 16;
    if (pos + incl > data.size()) break;  // truncated trailing record
    PcapPacket p;
    p.timestamp_us =
        static_cast<std::uint64_t>(ts_sec) * 1000000 + ts_usec;
    p.frame.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                   data.begin() + static_cast<std::ptrdiff_t>(pos + incl));
    out.push_back(std::move(p));
    pos += incl;
  }
  return out;
}

std::optional<std::vector<PcapPacket>> read_pcap_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return parse_pcap(data);
}

}  // namespace camus::proto
