// Ethernet / IPv4 / UDP header structs with encode/decode. These carry the
// ITCH market-data feed in the paper's case study: IP multicast packets,
// each containing a UDP datagram with a MoldUDP64 payload.
#pragma once

#include <cstdint>
#include <optional>

#include "proto/wire.hpp"

namespace camus::proto {

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint8_t kIpProtoUdp = 17;

struct EthernetHeader {
  std::uint64_t dst = 0;  // low 48 bits
  std::uint64_t src = 0;  // low 48 bits
  std::uint16_t ether_type = kEtherTypeIpv4;

  static constexpr std::size_t kSize = 14;
  void encode(Writer& w) const;
  [[nodiscard]] bool decode(Reader& r);
};

struct Ipv4Header {
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t total_len = 0;  // filled by encode callers (or packet.cpp)
  std::uint16_t checksum = 0;   // computed on encode, verified on decode

  static constexpr std::size_t kSize = 20;
  // Encodes with the checksum computed over the final header bytes.
  void encode(Writer& w) const;
  // Returns false on truncation, bad version, or bad IHL. Does not reject
  // checksum mismatches (checksum_ok reports that separately).
  [[nodiscard]] bool decode(Reader& r);

  bool checksum_ok = true;  // set by decode
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload

  static constexpr std::size_t kSize = 8;
  void encode(Writer& w) const;
  [[nodiscard]] bool decode(Reader& r);
};

}  // namespace camus::proto
