// Bounds-checked big-endian wire readers/writers. All multi-byte fields in
// the protocols we implement (Ethernet, IPv4, UDP, MoldUDP64, ITCH) are
// network byte order.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

namespace camus::proto {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { be(v, 2); }
  void u32(std::uint32_t v) { be(v, 4); }
  void u48(std::uint64_t v) { be(v, 6); }
  void u64(std::uint64_t v) { be(v, 8); }
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  // Writes exactly n bytes: s truncated or right-padded with `pad`.
  void fixed_string(std::string_view s, std::size_t n, char pad = ' ');

  std::size_t size() const noexcept { return buf_.size(); }
  // Overwrites a previously written big-endian field (e.g. a length or
  // checksum fixed up after the payload is known).
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }

 private:
  void be(std::uint64_t v, int n) {
    for (int i = n - 1; i >= 0; --i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t> buf_;
};

// Reader over a borrowed buffer. Read methods return false (and leave the
// output untouched) when the buffer is exhausted — malformed packets are
// an expected input, not an error condition.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }

  [[nodiscard]] bool u8(std::uint8_t& v) { return be(v, 1); }
  [[nodiscard]] bool u16(std::uint16_t& v) { return be(v, 2); }
  [[nodiscard]] bool u32(std::uint32_t& v) { return be(v, 4); }
  [[nodiscard]] bool u48(std::uint64_t& v) { return be(v, 6); }
  [[nodiscard]] bool u64(std::uint64_t& v) { return be(v, 8); }
  [[nodiscard]] bool skip(std::size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool bytes(std::span<std::uint8_t> out);

 private:
  template <typename T>
  [[nodiscard]] bool be(T& v, int n) {
    if (remaining() < static_cast<std::size_t>(n)) return false;
    std::uint64_t acc = 0;
    for (int i = 0; i < n; ++i) acc = (acc << 8) | data_[pos_ + i];
    pos_ += static_cast<std::size_t>(n);
    v = static_cast<T>(acc);
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// RFC 1071 internet checksum over a byte range (IPv4 header checksum).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace camus::proto
