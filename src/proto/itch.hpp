// MoldUDP64 framing and Nasdaq TotalView-ITCH 5.0 add-order messages — the
// application protocol of the paper's case study.
//
// MoldUDP64 downstream packet:
//   session (10 ASCII bytes) | sequence number (u64) | message count (u16)
//   then per message: length (u16) | payload
//
// ITCH 5.0 add-order ('A') message, 36 bytes:
//   type 'A' | stock locate u16 | tracking u16 | timestamp u48 (ns since
//   midnight) | order reference u64 | buy/sell 'B'/'S' | shares u32 |
//   stock (8 ASCII, space padded) | price u32 (fixed point, 4 decimals)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proto/wire.hpp"

namespace camus::proto {

inline constexpr char kItchAddOrder = 'A';
inline constexpr char kItchOrderExecuted = 'E';
inline constexpr char kItchTrade = 'P';
inline constexpr char kItchOrderCancel = 'X';

struct MoldUdp64Header {
  std::string session = "CAMUS00001";  // exactly 10 bytes on the wire
  std::uint64_t sequence = 0;
  std::uint16_t message_count = 0;

  static constexpr std::size_t kSize = 20;
  void encode(Writer& w) const;
  [[nodiscard]] bool decode(Reader& r);
};

// MoldUDP64 retransmission request — the upstream packet of the real
// protocol: a receiver that detects a sequence gap asks the sender to
// re-send `count` messages starting at `sequence`.
struct MoldUdp64Request {
  std::string session = "CAMUS00001";  // exactly 10 bytes on the wire
  std::uint64_t sequence = 0;
  std::uint16_t count = 0;

  static constexpr std::size_t kSize = 20;
  void encode(Writer& w) const;
  [[nodiscard]] bool decode(Reader& r);
};

struct ItchAddOrder {
  std::uint16_t stock_locate = 0;
  std::uint16_t tracking = 0;
  std::uint64_t timestamp_ns = 0;  // 48-bit on the wire
  std::uint64_t order_ref = 0;
  char side = 'B';  // 'B' buy / 'S' sell
  std::uint32_t shares = 0;
  std::string stock;      // up to 8 ASCII chars, unpadded
  std::uint32_t price = 0;  // fixed point with 4 implied decimals

  static constexpr std::size_t kSize = 36;

  void encode(Writer& w) const;
  [[nodiscard]] bool decode(Reader& r);  // expects the 'A' byte included

  // The stock symbol as the 64-bit wire encoding the compiler matches on.
  std::uint64_t stock_key() const;
};

// ITCH 5.0 order-executed ('E') message, 31 bytes: an order on the book
// traded against.
struct ItchOrderExecuted {
  std::uint16_t stock_locate = 0;
  std::uint16_t tracking = 0;
  std::uint64_t timestamp_ns = 0;
  std::uint64_t order_ref = 0;
  std::uint32_t executed_shares = 0;
  std::uint64_t match_number = 0;

  static constexpr std::size_t kSize = 31;
  void encode(Writer& w) const;
  [[nodiscard]] bool decode(Reader& r);
};

// ITCH 5.0 non-displayable trade ('P') message, 44 bytes.
struct ItchTrade {
  std::uint16_t stock_locate = 0;
  std::uint16_t tracking = 0;
  std::uint64_t timestamp_ns = 0;
  std::uint64_t order_ref = 0;
  char side = 'B';
  std::uint32_t shares = 0;
  std::string stock;
  std::uint32_t price = 0;
  std::uint64_t match_number = 0;

  static constexpr std::size_t kSize = 44;
  void encode(Writer& w) const;
  [[nodiscard]] bool decode(Reader& r);
};

// ITCH 5.0 order-cancel ('X') message, 23 bytes.
struct ItchOrderCancel {
  std::uint16_t stock_locate = 0;
  std::uint16_t tracking = 0;
  std::uint64_t timestamp_ns = 0;
  std::uint64_t order_ref = 0;
  std::uint32_t cancelled_shares = 0;

  static constexpr std::size_t kSize = 23;
  void encode(Writer& w) const;
  [[nodiscard]] bool decode(Reader& r);
};

// A decoded market-data packet payload: the MoldUDP header plus its
// add-order messages. Other recognized types are tallied; unknown message
// types are counted in skipped_messages. (The subscription pipeline
// classifies add-orders, matching the paper's prototype.)
struct ItchPacket {
  MoldUdp64Header mold;
  std::vector<ItchAddOrder> add_orders;
  std::size_t executed_messages = 0;
  std::size_t trade_messages = 0;
  std::size_t cancel_messages = 0;
  std::size_t skipped_messages = 0;
};

// Wire-encodes any supported message type for mixed-payload packets.
std::vector<std::uint8_t> encode_itch_message(const ItchAddOrder& m);
std::vector<std::uint8_t> encode_itch_message(const ItchOrderExecuted& m);
std::vector<std::uint8_t> encode_itch_message(const ItchTrade& m);
std::vector<std::uint8_t> encode_itch_message(const ItchOrderCancel& m);

// Encodes a MoldUDP64 payload from pre-encoded message blocks.
std::vector<std::uint8_t> encode_itch_payload_raw(
    const MoldUdp64Header& mold,
    const std::vector<std::vector<std::uint8_t>>& messages);

// Encodes a MoldUDP64 datagram payload carrying the given messages.
std::vector<std::uint8_t> encode_itch_payload(
    const MoldUdp64Header& mold, const std::vector<ItchAddOrder>& messages);

// Decodes a MoldUDP64 payload; returns nullopt on framing errors
// (truncated header, message length past the buffer).
std::optional<ItchPacket> decode_itch_payload(
    std::span<const std::uint8_t> payload);

}  // namespace camus::proto
