#include "proto/itch.hpp"

#include <array>

#include "util/intern.hpp"

namespace camus::proto {

void MoldUdp64Header::encode(Writer& w) const {
  w.fixed_string(session, 10);
  w.u64(sequence);
  w.u16(message_count);
}

bool MoldUdp64Header::decode(Reader& r) {
  std::array<std::uint8_t, 10> sess{};
  if (!r.bytes(sess)) return false;
  session.assign(sess.begin(), sess.end());
  // Strip trailing spaces for convenience; encode re-pads.
  while (!session.empty() && session.back() == ' ') session.pop_back();
  return r.u64(sequence) && r.u16(message_count);
}

void MoldUdp64Request::encode(Writer& w) const {
  w.fixed_string(session, 10);
  w.u64(sequence);
  w.u16(count);
}

bool MoldUdp64Request::decode(Reader& r) {
  std::array<std::uint8_t, 10> sess{};
  if (!r.bytes(sess)) return false;
  session.assign(sess.begin(), sess.end());
  while (!session.empty() && session.back() == ' ') session.pop_back();
  return r.u64(sequence) && r.u16(count);
}

void ItchAddOrder::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kItchAddOrder));
  w.u16(stock_locate);
  w.u16(tracking);
  w.u48(timestamp_ns & 0xffffffffffffULL);
  w.u64(order_ref);
  w.u8(static_cast<std::uint8_t>(side));
  w.u32(shares);
  w.fixed_string(stock, 8);
  w.u32(price);
}

bool ItchAddOrder::decode(Reader& r) {
  std::uint8_t type = 0;
  if (!r.u8(type) || type != static_cast<std::uint8_t>(kItchAddOrder))
    return false;
  std::uint8_t side_byte = 0;
  std::array<std::uint8_t, 8> sym{};
  if (!(r.u16(stock_locate) && r.u16(tracking) && r.u48(timestamp_ns) &&
        r.u64(order_ref) && r.u8(side_byte) && r.u32(shares) &&
        r.bytes(sym) && r.u32(price)))
    return false;
  side = static_cast<char>(side_byte);
  if (side != 'B' && side != 'S') return false;
  stock.assign(sym.begin(), sym.end());
  while (!stock.empty() && stock.back() == ' ') stock.pop_back();
  return true;
}

std::uint64_t ItchAddOrder::stock_key() const {
  return util::encode_symbol(stock);
}

void ItchOrderExecuted::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kItchOrderExecuted));
  w.u16(stock_locate);
  w.u16(tracking);
  w.u48(timestamp_ns & 0xffffffffffffULL);
  w.u64(order_ref);
  w.u32(executed_shares);
  w.u64(match_number);
}

bool ItchOrderExecuted::decode(Reader& r) {
  std::uint8_t type = 0;
  if (!r.u8(type) || type != static_cast<std::uint8_t>(kItchOrderExecuted))
    return false;
  return r.u16(stock_locate) && r.u16(tracking) && r.u48(timestamp_ns) &&
         r.u64(order_ref) && r.u32(executed_shares) && r.u64(match_number);
}

void ItchTrade::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kItchTrade));
  w.u16(stock_locate);
  w.u16(tracking);
  w.u48(timestamp_ns & 0xffffffffffffULL);
  w.u64(order_ref);
  w.u8(static_cast<std::uint8_t>(side));
  w.u32(shares);
  w.fixed_string(stock, 8);
  w.u32(price);
  w.u64(match_number);
}

bool ItchTrade::decode(Reader& r) {
  std::uint8_t type = 0;
  if (!r.u8(type) || type != static_cast<std::uint8_t>(kItchTrade))
    return false;
  std::uint8_t side_byte = 0;
  std::array<std::uint8_t, 8> sym{};
  if (!(r.u16(stock_locate) && r.u16(tracking) && r.u48(timestamp_ns) &&
        r.u64(order_ref) && r.u8(side_byte) && r.u32(shares) &&
        r.bytes(sym) && r.u32(price) && r.u64(match_number)))
    return false;
  side = static_cast<char>(side_byte);
  stock.assign(sym.begin(), sym.end());
  while (!stock.empty() && stock.back() == ' ') stock.pop_back();
  return true;
}

void ItchOrderCancel::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kItchOrderCancel));
  w.u16(stock_locate);
  w.u16(tracking);
  w.u48(timestamp_ns & 0xffffffffffffULL);
  w.u64(order_ref);
  w.u32(cancelled_shares);
}

bool ItchOrderCancel::decode(Reader& r) {
  std::uint8_t type = 0;
  if (!r.u8(type) || type != static_cast<std::uint8_t>(kItchOrderCancel))
    return false;
  return r.u16(stock_locate) && r.u16(tracking) && r.u48(timestamp_ns) &&
         r.u64(order_ref) && r.u32(cancelled_shares);
}

namespace {
template <typename Msg>
std::vector<std::uint8_t> encode_one(const Msg& m) {
  Writer w;
  m.encode(w);
  return w.take();
}
}  // namespace

std::vector<std::uint8_t> encode_itch_message(const ItchAddOrder& m) {
  return encode_one(m);
}
std::vector<std::uint8_t> encode_itch_message(const ItchOrderExecuted& m) {
  return encode_one(m);
}
std::vector<std::uint8_t> encode_itch_message(const ItchTrade& m) {
  return encode_one(m);
}
std::vector<std::uint8_t> encode_itch_message(const ItchOrderCancel& m) {
  return encode_one(m);
}

std::vector<std::uint8_t> encode_itch_payload_raw(
    const MoldUdp64Header& mold,
    const std::vector<std::vector<std::uint8_t>>& messages) {
  Writer w;
  MoldUdp64Header hdr = mold;
  hdr.message_count = static_cast<std::uint16_t>(messages.size());
  hdr.encode(w);
  for (const auto& m : messages) {
    w.u16(static_cast<std::uint16_t>(m.size()));
    w.bytes(m);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_itch_payload(
    const MoldUdp64Header& mold, const std::vector<ItchAddOrder>& messages) {
  Writer w;
  MoldUdp64Header hdr = mold;
  hdr.message_count = static_cast<std::uint16_t>(messages.size());
  hdr.encode(w);
  for (const auto& m : messages) {
    w.u16(static_cast<std::uint16_t>(ItchAddOrder::kSize));
    m.encode(w);
  }
  return w.take();
}

std::optional<ItchPacket> decode_itch_payload(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ItchPacket pkt;
  if (!pkt.mold.decode(r)) return std::nullopt;
  for (std::uint16_t i = 0; i < pkt.mold.message_count; ++i) {
    std::uint16_t len = 0;
    if (!r.u16(len)) return std::nullopt;
    if (r.remaining() < len) return std::nullopt;
    const char type =
        len > 0 ? static_cast<char>(payload[r.position()]) : '\0';
    if (type == kItchAddOrder && len == ItchAddOrder::kSize) {
      ItchAddOrder msg;
      const std::size_t before = r.position();
      if (msg.decode(r)) {
        pkt.add_orders.push_back(std::move(msg));
        continue;
      }
      // Malformed body: skip the declared length from where it started.
      const std::size_t consumed = r.position() - before;
      if (!r.skip(len - consumed)) return std::nullopt;
      ++pkt.skipped_messages;
    } else {
      if (!r.skip(len)) return std::nullopt;
      if (type == kItchOrderExecuted && len == ItchOrderExecuted::kSize)
        ++pkt.executed_messages;
      else if (type == kItchTrade && len == ItchTrade::kSize)
        ++pkt.trade_messages;
      else if (type == kItchOrderCancel && len == ItchOrderCancel::kSize)
        ++pkt.cancel_messages;
      else
        ++pkt.skipped_messages;
    }
  }
  return pkt;
}

}  // namespace camus::proto
