#include "proto/wire.hpp"

namespace camus::proto {

void Writer::fixed_string(std::string_view s, std::size_t n, char pad) {
  for (std::size_t i = 0; i < n; ++i)
    buf_.push_back(i < s.size() ? static_cast<std::uint8_t>(s[i])
                                : static_cast<std::uint8_t>(pad));
}

void Writer::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v & 0xff);
}

bool Reader::bytes(std::span<std::uint8_t> out) {
  if (remaining() < out.size()) return false;
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
  return true;
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < data.size(); i += 2)
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  if (data.size() % 2) sum += static_cast<std::uint32_t>(data.back()) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace camus::proto
