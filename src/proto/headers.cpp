#include "proto/headers.hpp"

#include <array>

namespace camus::proto {

void EthernetHeader::encode(Writer& w) const {
  w.u48(dst);
  w.u48(src);
  w.u16(ether_type);
}

bool EthernetHeader::decode(Reader& r) {
  return r.u48(dst) && r.u48(src) && r.u16(ether_type);
}

void Ipv4Header::encode(Writer& w) const {
  Writer h;
  h.u8(0x45);  // version 4, IHL 5
  h.u8(0);     // diffserv
  h.u16(total_len);
  h.u16(0);      // identification
  h.u16(0x4000); // flags: don't fragment
  h.u8(ttl);
  h.u8(protocol);
  h.u16(0);  // checksum placeholder
  h.u32(src);
  h.u32(dst);
  const std::uint16_t sum = internet_checksum(h.data());
  h.patch_u16(10, sum);
  w.bytes(h.data());
}

bool Ipv4Header::decode(Reader& r) {
  if (r.remaining() < kSize) return false;
  std::uint8_t ver_ihl = 0, diffserv = 0;
  std::uint16_t ident = 0, flags_frag = 0;
  std::array<std::uint8_t, kSize> raw{};
  // Capture the raw header bytes for checksum verification.
  {
    Reader peek = r;
    if (!peek.bytes(raw)) return false;
  }
  if (!r.u8(ver_ihl) || !r.u8(diffserv) || !r.u16(total_len) ||
      !r.u16(ident) || !r.u16(flags_frag) || !r.u8(ttl) || !r.u8(protocol) ||
      !r.u16(checksum) || !r.u32(src) || !r.u32(dst))
    return false;
  if ((ver_ihl >> 4) != 4) return false;
  const std::size_t ihl_bytes = static_cast<std::size_t>(ver_ihl & 0xf) * 4;
  if (ihl_bytes < kSize) return false;
  if (ihl_bytes > kSize && !r.skip(ihl_bytes - kSize)) return false;
  checksum_ok = internet_checksum(raw) == 0;
  return true;
}

void UdpHeader::encode(Writer& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(0);  // checksum optional over IPv4; 0 = not computed
}

bool UdpHeader::decode(Reader& r) {
  std::uint16_t checksum = 0;
  return r.u16(src_port) && r.u16(dst_port) && r.u16(length) &&
         r.u16(checksum);
}

}  // namespace camus::proto
