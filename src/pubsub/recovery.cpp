#include "pubsub/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace camus::pubsub {

// ---------------------------------------------------------------------------
// Reassembler

Reassembler::Reassembler(RecoveryParams params, DeliverFn deliver,
                         RequestFn request)
    : params_(params),
      deliver_(std::move(deliver)),
      request_(std::move(request)) {}

void Reassembler::offer(double now_us, std::uint64_t first_seq,
                        std::span<const proto::ItchAddOrder> msgs) {
  ++stats_.frames_accepted;
  // A heartbeat (empty frame) advertises first_seq as one past the highest
  // published sequence — this is what makes tail loss detectable. A
  // heartbeat beyond the admission window is a corrupted sequence field,
  // not evidence of a real gap; the next intact heartbeat covers the tail.
  if (msgs.empty()) {
    if (first_seq > expected_ && first_seq - expected_ > params_.max_seq_jump)
      ++stats_.seq_jump_rejects;
    else
      horizon_ = std::max(horizon_, first_seq);
  }
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const std::uint64_t seq = first_seq + i;
    if (seq < expected_ || pending_.count(seq)) {
      ++stats_.duplicates_dropped;
      continue;
    }
    if (seq - expected_ > params_.max_seq_jump) {
      // Outside the admission window (see RecoveryParams::max_seq_jump):
      // either a corrupted sequence that passed the checksum, or a
      // message so far ahead it would overflow pending anyway. Recovered
      // by retransmission once the window slides.
      ++stats_.seq_jump_rejects;
      continue;
    }
    if (pending_.size() >= params_.max_pending && seq != expected_) {
      ++stats_.overflow_dropped;
      continue;
    }
    pending_.emplace(seq, msgs[i]);
    horizon_ = std::max(horizon_, seq + 1);
  }
  drain(now_us);
  arm(now_us);
}

void Reassembler::drain(double now_us) {
  for (auto it = pending_.find(expected_); it != pending_.end();
       it = pending_.find(expected_)) {
    if (requested_.erase(expected_) > 0) ++stats_.messages_recovered;
    if (deliver_) deliver_(expected_, it->second);
    ++stats_.messages_delivered;
    pending_.erase(it);
    ++expected_;
  }
  if (expected_ >= horizon_ && blocked_since_) {
    // Fully caught up: the head-of-line gap (and everything behind it)
    // resolved.
    stats_.gap_block_us.add(now_us - *blocked_since_);
    blocked_since_.reset();
  }
}

void Reassembler::arm(double now_us) {
  // A gap exists whenever the advertised horizon is ahead of the head —
  // whether the evidence is a buffered out-of-order message (pending_) or
  // a heartbeat (tail loss, pending_ empty).
  if (expected_ >= horizon_) {
    deadline_ = kNever;
    stall_ = 0;
    stall_head_ = 0;
    return;
  }
  if (!blocked_since_) {
    blocked_since_ = now_us;
    ++stats_.gaps_detected;
  }
  if (deadline_ == kNever) deadline_ = now_us + params_.gap_timeout_us;
}

void Reassembler::on_timer(double now_us) {
  // Tiny epsilon tolerates floating-point scheduling jitter in the
  // discrete-event simulator.
  if (now_us + 1e-9 < deadline_) return;
  deadline_ = kNever;
  if (expected_ >= horizon_) {
    stall_ = 0;
    return;
  }

  if (expected_ == stall_head_) {
    ++stall_;
  } else {
    stall_ = 0;
    stall_head_ = expected_;
  }

  if (stall_ > params_.max_retries) {
    // Give up on the oldest contiguous missing range: declare it lost and
    // resume delivery after the hole. requested_ entries below the new
    // head are dead — drop them so they are not miscounted as recovered.
    const std::uint64_t skip_to =
        pending_.empty() ? horizon_ : pending_.begin()->first;
    stats_.messages_lost += skip_to - expected_;
    requested_.erase(requested_.lower_bound(expected_),
                     requested_.lower_bound(skip_to));
    expected_ = skip_to;
    stall_ = 0;
    stall_head_ = 0;
    blocked_since_.reset();  // unresolved episode: no latency sample
    drain(now_us);
    arm(now_us);
    return;
  }

  // Request every missing range in [expected_, horizon_). pending_ holds
  // only keys >= expected_, so the walk below enumerates the holes; the
  // final range covers the tail gap past the highest buffered message.
  const auto request_range = [this](std::uint64_t from, std::uint64_t to) {
    while (from < to) {
      const auto count = static_cast<std::uint16_t>(std::min<std::uint64_t>(
          to - from, params_.max_request_count));
      if (request_) request_(from, count);
      ++stats_.requests_sent;
      if (stall_ > 0) ++stats_.retries;
      for (std::uint64_t s = from; s < from + count; ++s)
        requested_.insert(s);
      from += count;
    }
  };
  std::uint64_t cursor = expected_;
  for (const auto& [seq, msg] : pending_) {
    (void)msg;
    if (seq > cursor) request_range(cursor, seq);
    cursor = seq + 1;
  }
  if (cursor < horizon_) request_range(cursor, horizon_);

  deadline_ = now_us + params_.retry_backoff_us *
                           std::pow(params_.backoff_factor, stall_);
}

// ---------------------------------------------------------------------------
// RetransmitStore

void RetransmitStore::append(std::span<const std::uint8_t> block) {
  blocks_.emplace_back(block.begin(), block.end());
  while (blocks_.size() > capacity_) {
    blocks_.pop_front();
    ++first_;
  }
}

std::vector<std::vector<std::uint8_t>> RetransmitStore::fetch(
    std::uint64_t seq, std::uint16_t count, std::uint64_t* first_out) const {
  std::vector<std::vector<std::uint8_t>> out;
  const std::uint64_t from = std::max(seq, first_);
  const std::uint64_t to = std::min(seq + count, end());
  if (first_out) *first_out = from;
  for (std::uint64_t s = from; s < to; ++s)
    out.push_back(blocks_[static_cast<std::size_t>(s - first_)]);
  return out;
}

// ---------------------------------------------------------------------------
// FeedSequencer

std::uint64_t FeedSequencer::seal(std::uint16_t port,
                                  std::vector<std::uint8_t>& frame) {
  scratch_offsets_.clear();
  proto::MarketDataView view;
  if (!proto::scan_market_data_packet(frame, view, scratch_offsets_))
    return 0;

  auto it = ports_.find(port);
  if (it == ports_.end())
    it = ports_.emplace(port, PortState(capacity_)).first;
  PortState& st = it->second;
  st.last_view = view;

  const std::uint64_t first_seq = st.next_seq;
  for (const std::uint32_t off : scratch_offsets_) {
    st.store.append(
        std::span<const std::uint8_t>(frame.data() + off,
                                      proto::ItchAddOrder::kSize));
    ++st.next_seq;
  }
  proto::rewrite_mold_sequence(frame, first_seq);
  proto::seal_udp_checksum(frame);
  return first_seq;
}

std::vector<std::vector<std::uint8_t>> FeedSequencer::retransmit(
    std::uint16_t port, std::uint64_t seq, std::uint16_t count,
    std::size_t max_msgs) const {
  std::vector<std::vector<std::uint8_t>> frames;
  const auto it = ports_.find(port);
  if (it == ports_.end()) return frames;
  const PortState& st = it->second;

  std::uint64_t first = 0;
  const auto blocks = st.store.fetch(seq, count, &first);
  for (std::size_t i = 0; i < blocks.size(); i += max_msgs) {
    const std::size_t n = std::min(max_msgs, blocks.size() - i);
    std::vector<std::vector<std::uint8_t>> chunk(blocks.begin() + i,
                                                 blocks.begin() + i + n);
    proto::MoldUdp64Header mold;
    mold.session = st.last_view.mold.session;
    mold.sequence = first + i;
    frames.push_back(proto::encode_market_data_packet_raw(
        st.last_view.eth, st.last_view.ip_src, st.last_view.ip_dst, mold,
        chunk, st.last_view.udp_dst_port));
  }
  return frames;
}

std::uint64_t FeedSequencer::next_sequence(std::uint16_t port) const {
  const auto it = ports_.find(port);
  return it == ports_.end() ? 1 : it->second.next_seq;
}

std::vector<std::uint8_t> FeedSequencer::heartbeat(std::uint16_t port) const {
  const auto it = ports_.find(port);
  if (it == ports_.end()) return {};
  const PortState& st = it->second;
  proto::MoldUdp64Header mold;
  mold.session = st.last_view.mold.session;
  mold.sequence = st.next_seq;
  return proto::encode_market_data_packet_raw(
      st.last_view.eth, st.last_view.ip_src, st.last_view.ip_dst, mold, {},
      st.last_view.udp_dst_port);
}

// ---------------------------------------------------------------------------
// RecoveringSubscriber

RecoveringSubscriber::RecoveringSubscriber(std::uint16_t port,
                                           RecoveryParams params,
                                           AppFn on_message,
                                           RequestFn on_request)
    : port_(port),
      app_(std::move(on_message)),
      request_(std::move(on_request)),
      reasm_(
          params,
          [this](std::uint64_t seq, const proto::ItchAddOrder& msg) {
            ++received_;
            ++per_symbol_[msg.stock];
            if (app_) app_(seq, msg);
          },
          [this](std::uint64_t seq, std::uint16_t count) {
            if (!request_) return;
            proto::MoldUdp64Request req;
            req.session = session_;
            req.sequence = seq;
            req.count = count;
            request_(req);
          }) {}

bool RecoveringSubscriber::deliver(double now_us,
                                   std::span<const std::uint8_t> frame) {
  if (!proto::verify_udp_checksum(frame)) {
    ++checksum_rejects_;
    return false;
  }
  const auto pkt = proto::decode_market_data_packet(frame);
  if (!pkt) {
    ++malformed_;
    return false;
  }
  session_ = pkt->itch.mold.session;
  reasm_.offer(now_us, pkt->itch.mold.sequence, pkt->itch.add_orders);
  return true;
}

void RecoveringSubscriber::on_timer(double now_us) { reasm_.on_timer(now_us); }

// ---------------------------------------------------------------------------
// FeedHandler

FeedHandler::FeedHandler(RecoveryParams params, FrameFn on_frame,
                         RequestFn on_request, std::size_t group_msgs)
    : frame_fn_(std::move(on_frame)),
      request_(std::move(on_request)),
      group_msgs_(std::max<std::size_t>(group_msgs, 1)),
      reasm_(
          params,
          [this](std::uint64_t seq, const proto::ItchAddOrder& msg) {
            if (run_.empty()) run_first_ = seq;
            run_.push_back(msg);
          },
          [this](std::uint64_t seq, std::uint16_t count) {
            if (!request_) return;
            proto::MoldUdp64Request req;
            req.session = session_;
            req.sequence = seq;
            req.count = count;
            request_(req);
          }) {}

void FeedHandler::emit(std::uint64_t first_seq, std::size_t n) {
  if (!have_view_ || !frame_fn_) {
    run_.erase(run_.begin(), run_.begin() + static_cast<std::ptrdiff_t>(n));
    run_first_ += n;
    return;
  }
  proto::MoldUdp64Header mold;
  mold.session = last_view_.mold.session;
  mold.sequence = first_seq;
  const std::vector<proto::ItchAddOrder> group(
      run_.begin(), run_.begin() + static_cast<std::ptrdiff_t>(n));
  std::vector<std::uint8_t> frame = proto::encode_market_data_packet(
      last_view_.eth, last_view_.ip_src, last_view_.ip_dst, mold, group,
      last_view_.udp_dst_port);
  proto::seal_udp_checksum(frame);
  run_.erase(run_.begin(), run_.begin() + static_cast<std::ptrdiff_t>(n));
  run_first_ += n;
  frame_fn_(first_seq, std::move(frame));
}

void FeedHandler::flush() {
  // Emit complete boundary-aligned groups; hold any trailing partial group
  // until later messages complete it (or flush_residual at end of
  // session). Alignment makes the re-framed stream reproduce the
  // publisher's batching exactly.
  while (!run_.empty()) {
    const std::uint64_t boundary =
        run_first_ + (group_msgs_ - (run_first_ - 1) % group_msgs_);
    const std::size_t n = static_cast<std::size_t>(boundary - run_first_);
    if (run_.size() < n) break;
    emit(run_first_, n);
  }
}

bool FeedHandler::flush_residual() {
  if (run_.empty()) return false;
  emit(run_first_, run_.size());
  return true;
}

bool FeedHandler::deliver(double now_us, std::span<const std::uint8_t> frame) {
  if (!proto::verify_udp_checksum(frame)) {
    ++checksum_rejects_;
    return false;
  }
  const auto pkt = proto::decode_market_data_packet(frame);
  if (!pkt) {
    ++malformed_;
    return false;
  }
  session_ = pkt->itch.mold.session;
  // Keep the feed headers for re-framing released runs. The scan cannot
  // fail here: decode_market_data_packet accepted the frame.
  if (!have_view_) {
    std::vector<std::uint32_t> offsets;
    have_view_ = proto::scan_market_data_packet(frame, last_view_, offsets);
  }
  reasm_.offer(now_us, pkt->itch.mold.sequence, pkt->itch.add_orders);
  flush();
  return true;
}

void FeedHandler::on_timer(double now_us) {
  reasm_.on_timer(now_us);
  flush();
}

}  // namespace camus::pubsub
