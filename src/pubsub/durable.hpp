// Crash-safe control plane: a controller whose every externally visible
// decision is write-ahead journaled (util::Journal), so a crash at ANY
// point — mid-subscribe, mid-commit, mid-install — recovers to the exact
// intended state by replay, and a restarted controller resumes programming
// its switch safely behind a fenced epoch.
//
// Protocol (journal record per step, WAL discipline: journal first, act
// second):
//
//   open()        replay journal -> re-apply subscribe/unsubscribe ->
//                 re-run commits at recorded boundaries (digests checked,
//                 J010 on divergence) -> adopt epoch = last + 1 -> journal
//                 kEpoch. A half-staged install (kInstallBegin without a
//                 matching commit/abort) is resolved by journaling
//                 kInstallAbort: the switch either has the install (commit
//                 landed) or kept last-good (it didn't) — either way
//                 reconcile() computes the exact repair from digests, so
//                 the resolution is deterministic without knowing which.
//   subscribe     journal kSubscribe "port prio text" -> bind -> inc.add
//   unsubscribe   journal kUnsubscribe "port" -> inc.remove (same
//                 single-port filter as Controller::unsubscribe)
//   commit        inc.commit() (pure in-memory; crash before journaling
//                 simply loses the uncommitted compile) -> journal kCommit
//                 "seq digest" with the intended pipeline's digest
//   install       journal kInstallBegin "seq kind crc" -> epoch-fenced
//                 TwoPhaseInstaller ship -> journal kInstallCommit/kAbort
//   checkpoint    compact the journal to one kSnapshot record (full
//                 intended state). Replay from a snapshot re-adds the
//                 surviving subscriptions and recompiles once: recovery is
//                 then O(live state), not O(history), but state numbering
//                 is fresh — semantically equivalent (the nemesis verifies
//                 with camus::verify), digest-different. Exact replay (no
//                 checkpoint) reproduces the pre-crash pipeline
//                 bit-identically, because the compiler is deterministic
//                 given the same operation history. The recovery bench
//                 measures both modes; kCommit digests recorded after a
//                 checkpoint are therefore only enforced on exact replay.
//
// The fencing half: each open() adopts a strictly larger epoch and stamps
// it on every switch write, so a deposed controller's stragglers are
// rejected by the switch (E140) instead of clobbering its successor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/incremental.hpp"
#include "fault/plan.hpp"
#include "pubsub/install.hpp"
#include "spec/schema.hpp"
#include "switchsim/switch.hpp"
#include "table/delta.hpp"
#include "util/journal.hpp"
#include "util/result.hpp"

namespace camus::pubsub {

// What open() found in the journal.
struct RecoveryInfo {
  bool recovered = false;         // journal held prior state
  bool from_snapshot = false;     // replay started at a kSnapshot
  std::uint64_t epoch = 0;        // epoch adopted by THIS controller
  std::size_t records_replayed = 0;
  std::size_t torn_bytes = 0;     // discarded torn tail
  std::size_t subscriptions = 0;  // live after replay
  std::uint64_t commits_replayed = 0;
  // Replayed commits whose recomputed digest diverged from the recorded
  // one. Fatal (J010) on exact replay; expected and merely counted after
  // a snapshot (fresh state numbering — see file comment).
  std::uint64_t digest_mismatches = 0;
  // A kInstallBegin had no matching commit/abort: the crash hit mid
  // install. open() journals the abort; reconcile() repairs the switch.
  bool install_in_flight = false;
  std::uint64_t in_flight_install = 0;  // its seq (valid when in_flight)
};

// Automatic checkpointing: compact the journal whenever the estimated
// cost of replaying the accumulated history exceeds max_replay_seconds.
// The estimate is records * per_record_seconds plus, for each replayed
// commit, an EWMA of this controller's own measured compile times — so a
// controller with expensive commits checkpoints sooner than one with
// cheap ones, bounding worst-case recovery time rather than journal
// length. Disabled by default (max_replay_seconds <= 0): checkpointing
// trades exact-replay fidelity for recovery speed (see the protocol
// comment above), so it is opt-in.
struct CheckpointPolicy {
  double max_replay_seconds = 0;  // <= 0 disables auto-checkpointing
  std::size_t min_records = 16;   // never compact a near-empty journal
  // Cost charged per non-commit journal record (parse + bind on replay).
  double per_record_seconds = 2e-6;
};

// Outcome of one warm-boot anti-entropy pass.
struct ReconcileReport {
  bool in_sync = false;       // digests matched; nothing shipped
  bool repaired = false;      // a repair landed on the switch
  bool full_reprogram = false;  // repair had to re-image (no entry delta)
  std::size_t diverged_stages = 0;  // stages whose digests differed
  std::size_t repair_ops = 0;       // entry ops shipped (delta repair)
  std::size_t reused_entries = 0;   // intended entries already in place
  std::size_t total_entries = 0;    // intended entries
  InstallReport install;            // the shipping report, when not in_sync

  double reuse_fraction() const noexcept {
    return total_entries == 0 ? 1.0
                              : static_cast<double>(reused_entries) /
                                    static_cast<double>(total_entries);
  }
};

// Diagnostics:
//   E142  operation before a successful open()
//   J010  replayed commit digest mismatch (journal corruption or broken
//         compiler determinism) on exact replay
//   J011  malformed journal payload for its record type
class DurableController {
 public:
  using Delta = compiler::IncrementalCompiler::Delta;

  // The storage outlives the controller (it IS the durable identity: a
  // restarted controller is a new DurableController on the same storage).
  DurableController(spec::Schema schema, util::StableStorage& storage,
                    compiler::CompileOptions opts = {});

  // Replays the journal into this controller and adopts a fresh epoch.
  // Must be called (once) before any mutation.
  util::Result<RecoveryInfo> open();
  bool is_open() const noexcept { return opened_; }
  const RecoveryInfo& recovery() const noexcept { return recovery_; }

  // This controller's fenced epoch (0 before open()).
  std::uint64_t epoch() const noexcept { return epoch_; }
  std::uint64_t commit_seq() const noexcept { return commit_seq_; }
  std::size_t subscription_count() const noexcept { return subs_.size(); }

  // WAL-first mutations (same text handling as Controller::subscribe —
  // interest-only rules get " : fwd(port)" appended; unsubscribe removes
  // rules forwarding ONLY to the port).
  util::Result<bool> subscribe(std::uint16_t port,
                               std::string_view rule_text, int priority = 0);
  util::Result<std::size_t> unsubscribe(std::uint16_t port);

  // Recompiles and journals the commit boundary with the intended
  // pipeline's digest. The returned delta is what install() ships.
  util::Result<Delta> commit();

  // The intended pipeline: what the last journaled commit compiled (E122
  // before the first commit). Deliberately NOT the incremental compiler's
  // diff base — an aborted install rolls the diff base back to what the
  // switch still runs, but the journaled commit remains the intent, and
  // reconcile() keeps driving the switch toward it.
  util::Result<const table::Pipeline*> intended() const;

  // Ships a commit's delta (or the full image when the delta demands a
  // reprogram) through the installer, epoch-fenced and journaled:
  // kInstallBegin before the first byte, kInstallCommit/kInstallAbort
  // after. On abort the incremental diff base is rolled back to what the
  // installer still serves, so the next commit diffs against reality.
  util::Result<InstallReport> install(TwoPhaseInstaller& installer,
                                      const Delta& delta,
                                      const fault::Plan* faults = nullptr,
                                      std::size_t chunk_bytes = 512,
                                      int max_attempts = 3,
                                      int chunk_retries = 8);

  // Warm-boot anti-entropy: fences the switch to this epoch, diffs the
  // switch's reported per-stage digests against the intended pipeline's,
  // and ships the minimal repair (entry ops when possible, re-image when
  // not — same table::diff_pipelines currency as live churn deltas).
  // In-sync switches are left untouched. Also re-seeds the installer's
  // last-good and the incremental diff base from the repaired program.
  util::Result<ReconcileReport> reconcile(TwoPhaseInstaller& installer,
                                          const fault::Plan* faults = nullptr,
                                          std::size_t chunk_bytes = 512,
                                          int max_attempts = 3,
                                          int chunk_retries = 8);

  // Compacts the journal to a single snapshot of the intended state (see
  // file comment for the recovery-fidelity trade-off).
  util::Result<bool> checkpoint();

  // Arms automatic checkpointing: commit() compacts the journal once the
  // estimated replay cost crosses policy.max_replay_seconds.
  void set_checkpoint_policy(CheckpointPolicy policy) noexcept {
    policy_ = policy;
  }
  const CheckpointPolicy& checkpoint_policy() const noexcept {
    return policy_;
  }
  // Checkpoints taken automatically by the policy (manual ones excluded).
  std::uint64_t auto_checkpoints() const noexcept { return auto_checkpoints_; }
  // The policy's current replay-cost estimate for this journal.
  double estimated_replay_seconds() const noexcept;

  util::Journal& journal() noexcept { return journal_; }
  const spec::Schema& schema() const noexcept { return schema_; }

 private:
  struct Sub {
    compiler::IncrementalCompiler::SubscriptionId id = 0;
    std::uint16_t port = 0;
    int priority = 0;
    std::string text;  // full rule text incl. action (replay + snapshot)
    std::vector<std::uint16_t> ports;  // bound action ports (unsub filter)
  };

  // Parses+binds and registers one subscription (shared by the live path
  // and replay). `text` must already include the action.
  util::Result<bool> apply_subscribe(std::uint16_t port, int priority,
                                     const std::string& text);
  std::size_t apply_unsubscribe(std::uint16_t port);
  // Runs inc_.commit() and returns the intended pipeline's digest.
  util::Result<std::uint64_t> apply_commit(Delta* out);
  std::string snapshot_payload() const;
  util::Result<bool> replay_snapshot(const std::string& payload);
  // Runs the CheckpointPolicy at a commit boundary; no-op when disarmed
  // or below threshold.
  util::Result<bool> maybe_auto_checkpoint();

  spec::Schema schema_;
  compiler::CompileOptions opts_;
  util::Journal journal_;
  compiler::IncrementalCompiler inc_;
  // Last committed pipeline — the controller's intent. Kept separate from
  // inc_'s diff base, which install() rolls back on abort.
  std::optional<table::Pipeline> intended_;
  std::vector<Sub> subs_;
  bool opened_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t commit_seq_ = 0;
  std::uint64_t install_seq_ = 0;
  RecoveryInfo recovery_;
  // CheckpointPolicy state: what a replay of the current journal would
  // have to redo, and what this controller's commits actually cost.
  CheckpointPolicy policy_;
  std::size_t records_since_checkpoint_ = 0;
  std::uint64_t commits_since_checkpoint_ = 0;
  double commit_seconds_ewma_ = 0;
  std::uint64_t auto_checkpoints_ = 0;
};

}  // namespace camus::pubsub
