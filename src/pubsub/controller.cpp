#include "pubsub/controller.hpp"

#include <algorithm>
#include <numeric>

#include "lang/dnf.hpp"
#include "lang/parser.hpp"

namespace camus::pubsub {

using util::Error;
using util::Result;

Controller::Controller(spec::Schema schema, compiler::CompileOptions opts)
    : schema_(std::move(schema)), opts_(opts), inc_(schema_, opts_) {}

void Controller::clear() {
  rules_.clear();
  priorities_.clear();
  sub_ids_.clear();
  compiled_.reset();
  // Drop the persistent compilation state with the subscriptions: a
  // cleared controller should not keep a stale diff base or rule cache.
  inc_ = compiler::IncrementalCompiler(schema_, opts_);
  dirty_ = false;
}

Result<bool> Controller::subscribe(std::uint16_t port,
                                   std::string_view rule_text, int priority) {
  std::string text(rule_text);
  // Interest-only form: append the subscriber's forwarding action.
  if (text.find(':') == std::string::npos)
    text += " : fwd(" + std::to_string(port) + ")";
  auto parsed = lang::parse_rule(text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rule(parsed.value(), schema_);
  if (!bound.ok()) return bound.error();
  subscribe(std::move(bound).take(), priority);
  return true;
}

void Controller::subscribe(lang::BoundRule rule, int priority) {
  sub_ids_.push_back(inc_.add(rule));
  rules_.push_back(std::move(rule));
  priorities_.push_back(priority);
  dirty_ = true;
}

std::size_t Controller::unsubscribe(std::uint16_t port) {
  const auto before = rules_.size();
  std::size_t w = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const auto& r = rules_[i];
    const bool drop =
        r.actions.ports.size() == 1 && r.actions.ports[0] == port;
    if (drop) {
      inc_.remove(sub_ids_[i]);
      continue;
    }
    if (w != i) {
      rules_[w] = std::move(rules_[i]);
      priorities_[w] = priorities_[i];
      sub_ids_[w] = sub_ids_[i];
    }
    ++w;
  }
  rules_.resize(w);
  priorities_.resize(w);
  sub_ids_.resize(w);
  if (rules_.size() != before) dirty_ = true;
  return before - rules_.size();
}

// Runs the static-verification gate on a candidate artifact. Error on
// kReject with error-severity findings (the caller keeps the previous
// good pipeline installed and discards the candidate).
Result<bool> Controller::lint_gate(const compiler::Compiled& candidate) {
  if (lint_policy_ == LintPolicy::kOff) return true;
  lint_report_ = verify::Report{};
  auto verified = verify::verify_compiled(schema_, rules_, candidate,
                                          lint_report_, lint_opts_);
  if (!verified.ok()) return verified.error();
  if (lint_policy_ == LintPolicy::kReject && lint_report_.has_errors())
    return Error{"verifier rejected the compiled pipeline:\n" +
                 lint_report_.to_text()};
  return true;
}

Result<Controller::Delta> Controller::commit() {
  auto d = inc_.commit();
  if (!d.ok()) {
    // A failed recompile leaves the incremental diff base advanced past
    // what the switch runs only on success paths; commit() itself failed
    // before producing a pipeline, so the base is untouched.
    return d.error();
  }

  compiler::Compiled candidate;
  auto pipe = inc_.pipeline();
  if (!pipe.ok()) return pipe.error();  // unreachable after ok commit()
  candidate.pipeline = *pipe.value();   // copy; inc_ keeps the diff base
  candidate.stats = d.value().stats;
  candidate.manager = inc_.manager();
  candidate.root = inc_.root();

  if (auto gate = lint_gate(candidate); !gate.ok()) {
    // Roll the diff base back to the last-good pipeline (or the empty
    // pipeline when nothing was ever accepted) so the next successful
    // commit's delta is computed against what the switch actually runs.
    inc_.restore_installed(compiled_ ? compiled_->pipeline
                                     : table::Pipeline{});
    inc_.note_partitioned_base(compiled_ &&
                               compiled_->stats.partition_groups > 0);
    return gate.error();
  }

  compiled_ = std::move(candidate);
  // Finalize eagerly at install time. Table::finalize is lazily invoked
  // from lookup otherwise, and that lazy build mutates shared state under
  // a const API — a data race the moment two threads evaluate the same
  // freshly-installed pipeline concurrently (tsan-exercised in
  // tests/test_concurrent_lookup.cpp).
  compiled_->pipeline.finalize();
  dirty_ = false;
  return std::move(d).take();
}

Result<bool> Controller::compile() {
  if (compiled_ && !dirty_) return true;
  auto c = compiler::compile_rules(schema_, rules_, opts_);
  if (!c.ok()) return c.error();
  if (auto gate = lint_gate(c.value()); !gate.ok()) return gate.error();

  compiled_ = std::move(c).take();
  // See commit() for why finalization is eager.
  compiled_->pipeline.finalize();
  // Re-seed the incremental diff base: a later commit() must diff against
  // the pipeline the switch was actually programmed with, not a stale
  // incremental snapshot.
  inc_.restore_installed(compiled_->pipeline);
  // A partition-compiled base makes the next incremental commit a silent
  // monolithic fallback — let it surface the I130 diagnostic.
  inc_.note_partitioned_base(compiled_->stats.partition_groups > 0);
  dirty_ = false;
  return true;
}

Result<Split> Controller::compile_with_budget(
    const table::ResourceBudget& budget) const {
  // Rank: priority desc, insertion order asc (stable for equal priority).
  std::vector<std::size_t> order(rules_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return priorities_[a] > priorities_[b];
                   });

  Split split;

  // Compiles the top-k prefix; returns whether it fits, leaving the
  // artifact of the last successful compile in `split.hardware`.
  auto try_prefix = [&](std::size_t k,
                        compiler::Compiled* out) -> Result<bool> {
    std::vector<lang::BoundRule> prefix;
    prefix.reserve(k);
    for (std::size_t i = 0; i < k; ++i) prefix.push_back(rules_[order[i]]);
    auto c = compiler::compile_rules(schema_, prefix, opts_);
    ++split.compile_probes;
    if (!c.ok()) return c.error();
    const bool fits = budget.fits(c.value().pipeline.resources());
    if (fits) *out = std::move(c).take();
    return fits;
  };

  // Fast path: everything fits (the common, non-degraded case).
  auto all = try_prefix(rules_.size(), &split.hardware);
  if (!all.ok()) return all.error();
  std::size_t cut = rules_.size();
  if (!all.value()) {
    // Binary search the largest prefix that fits. Resource usage is
    // monotone in the rule set for this compiler (more rules never free
    // entries), so the predicate is monotone in k. lo is known-good (the
    // empty pipeline always fits), hi is known-bad.
    std::size_t lo = 0, hi = rules_.size();
    auto empty = try_prefix(0, &split.hardware);
    if (!empty.ok()) return empty.error();
    if (!empty.value())
      return Error{"even the empty pipeline exceeds the resource budget"};
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      compiler::Compiled probe;
      auto fits = try_prefix(mid, &probe);
      if (!fits.ok()) return fits.error();
      if (fits.value()) {
        split.hardware = std::move(probe);
        lo = mid;
      } else {
        hi = mid;
      }
    }
    cut = lo;
  }

  split.hardware.pipeline.finalize();
  split.usage = split.hardware.pipeline.resources();
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (i < cut)
      split.hw_rules.push_back(rules_[order[i]]);
    else
      split.spilled.push_back(rules_[order[i]]);
  }
  auto flat = lang::flatten_rules(split.spilled, schema_);
  if (!flat.ok()) return flat.error();
  split.spilled_flat = std::move(flat).take();
  return split;
}

Result<const compiler::Compiled*> Controller::compiled() const {
  if (!compiled_)
    return Error{"Controller::compiled() before a successful "
                 "compile()/commit()",
                 0, 0, "E120"};
  return &*compiled_;
}

Result<switchsim::Switch> Controller::build_switch() {
  auto ok = compile();
  if (!ok.ok()) return ok.error();
  // The switch takes its own pipeline copy so the controller can keep
  // recompiling while programmed switches run.
  return switchsim::Switch(schema_, compiled_->pipeline);
}

std::string Controller::p4_program(const compiler::P4Options& opts) const {
  return compiler::generate_p4(schema_, compiled_ ? &compiled_->pipeline
                                                  : nullptr,
                               opts);
}

Result<std::string> Controller::control_plane_rules() const {
  if (!compiled_)
    return Error{"Controller::control_plane_rules() before a successful "
                 "compile()/commit()",
                 0, 0, "E121"};
  return compiler::generate_control_plane_rules(compiled_->pipeline);
}

}  // namespace camus::pubsub
