#include "pubsub/controller.hpp"

#include <stdexcept>

#include "lang/parser.hpp"

namespace camus::pubsub {

using util::Error;
using util::Result;

Controller::Controller(spec::Schema schema, compiler::CompileOptions opts)
    : schema_(std::move(schema)), opts_(opts) {}

Result<bool> Controller::subscribe(std::uint16_t port,
                                   std::string_view rule_text) {
  std::string text(rule_text);
  // Interest-only form: append the subscriber's forwarding action.
  if (text.find(':') == std::string::npos)
    text += " : fwd(" + std::to_string(port) + ")";
  auto parsed = lang::parse_rule(text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rule(parsed.value(), schema_);
  if (!bound.ok()) return bound.error();
  subscribe(std::move(bound).take());
  return true;
}

void Controller::subscribe(lang::BoundRule rule) {
  rules_.push_back(std::move(rule));
  dirty_ = true;
}

std::size_t Controller::unsubscribe(std::uint16_t port) {
  const auto before = rules_.size();
  std::erase_if(rules_, [port](const lang::BoundRule& r) {
    return r.actions.ports.size() == 1 && r.actions.ports[0] == port;
  });
  if (rules_.size() != before) dirty_ = true;
  return before - rules_.size();
}

Result<bool> Controller::compile() {
  if (compiled_ && !dirty_) return true;
  auto c = compiler::compile_rules(schema_, rules_, opts_);
  if (!c.ok()) return c.error();

  if (lint_policy_ != LintPolicy::kOff) {
    lint_report_ = verify::Report{};
    auto verified = verify::verify_compiled(schema_, rules_, c.value(),
                                            lint_report_, lint_opts_);
    if (!verified.ok()) return verified.error();
    if (lint_policy_ == LintPolicy::kReject && lint_report_.has_errors()) {
      // Keep the previous good pipeline installed; the rejected artifact
      // is discarded.
      return Error{"verifier rejected the compiled pipeline:\n" +
                   lint_report_.to_text()};
    }
  }

  compiled_ = std::move(c).take();
  // Finalize eagerly at install time. Table::finalize is lazily invoked
  // from lookup otherwise, and that lazy build mutates shared state under
  // a const API — a data race the moment two threads evaluate the same
  // freshly-installed pipeline concurrently (tsan-exercised in
  // tests/test_concurrent_lookup.cpp).
  compiled_->pipeline.finalize();
  dirty_ = false;
  return true;
}

const compiler::Compiled& Controller::compiled() const {
  if (!compiled_)
    throw std::logic_error("Controller::compiled() before compile()");
  return *compiled_;
}

Result<switchsim::Switch> Controller::build_switch() {
  auto ok = compile();
  if (!ok.ok()) return ok.error();
  // The switch takes its own pipeline copy so the controller can keep
  // recompiling while programmed switches run.
  return switchsim::Switch(schema_, compiled_->pipeline);
}

std::string Controller::p4_program(const compiler::P4Options& opts) const {
  return compiler::generate_p4(schema_, compiled_ ? &compiled_->pipeline
                                                  : nullptr,
                               opts);
}

std::string Controller::control_plane_rules() const {
  if (!compiled_)
    throw std::logic_error("control_plane_rules() before compile()");
  return compiler::generate_control_plane_rules(compiled_->pipeline);
}

}  // namespace camus::pubsub
