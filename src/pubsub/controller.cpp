#include "pubsub/controller.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "lang/dnf.hpp"
#include "lang/parser.hpp"

namespace camus::pubsub {

using util::Error;
using util::Result;

Controller::Controller(spec::Schema schema, compiler::CompileOptions opts)
    : schema_(std::move(schema)), opts_(opts) {}

Result<bool> Controller::subscribe(std::uint16_t port,
                                   std::string_view rule_text, int priority) {
  std::string text(rule_text);
  // Interest-only form: append the subscriber's forwarding action.
  if (text.find(':') == std::string::npos)
    text += " : fwd(" + std::to_string(port) + ")";
  auto parsed = lang::parse_rule(text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rule(parsed.value(), schema_);
  if (!bound.ok()) return bound.error();
  subscribe(std::move(bound).take(), priority);
  return true;
}

void Controller::subscribe(lang::BoundRule rule, int priority) {
  rules_.push_back(std::move(rule));
  priorities_.push_back(priority);
  dirty_ = true;
}

std::size_t Controller::unsubscribe(std::uint16_t port) {
  const auto before = rules_.size();
  std::size_t w = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const auto& r = rules_[i];
    const bool drop =
        r.actions.ports.size() == 1 && r.actions.ports[0] == port;
    if (drop) continue;
    if (w != i) {
      rules_[w] = std::move(rules_[i]);
      priorities_[w] = priorities_[i];
    }
    ++w;
  }
  rules_.resize(w);
  priorities_.resize(w);
  if (rules_.size() != before) dirty_ = true;
  return before - rules_.size();
}

Result<bool> Controller::compile() {
  if (compiled_ && !dirty_) return true;
  auto c = compiler::compile_rules(schema_, rules_, opts_);
  if (!c.ok()) return c.error();

  if (lint_policy_ != LintPolicy::kOff) {
    lint_report_ = verify::Report{};
    auto verified = verify::verify_compiled(schema_, rules_, c.value(),
                                            lint_report_, lint_opts_);
    if (!verified.ok()) return verified.error();
    if (lint_policy_ == LintPolicy::kReject && lint_report_.has_errors()) {
      // Keep the previous good pipeline installed; the rejected artifact
      // is discarded.
      return Error{"verifier rejected the compiled pipeline:\n" +
                   lint_report_.to_text()};
    }
  }

  compiled_ = std::move(c).take();
  // Finalize eagerly at install time. Table::finalize is lazily invoked
  // from lookup otherwise, and that lazy build mutates shared state under
  // a const API — a data race the moment two threads evaluate the same
  // freshly-installed pipeline concurrently (tsan-exercised in
  // tests/test_concurrent_lookup.cpp).
  compiled_->pipeline.finalize();
  dirty_ = false;
  return true;
}

Result<Split> Controller::compile_with_budget(
    const table::ResourceBudget& budget) const {
  // Rank: priority desc, insertion order asc (stable for equal priority).
  std::vector<std::size_t> order(rules_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return priorities_[a] > priorities_[b];
                   });

  Split split;

  // Compiles the top-k prefix; returns whether it fits, leaving the
  // artifact of the last successful compile in `split.hardware`.
  auto try_prefix = [&](std::size_t k,
                        compiler::Compiled* out) -> Result<bool> {
    std::vector<lang::BoundRule> prefix;
    prefix.reserve(k);
    for (std::size_t i = 0; i < k; ++i) prefix.push_back(rules_[order[i]]);
    auto c = compiler::compile_rules(schema_, prefix, opts_);
    ++split.compile_probes;
    if (!c.ok()) return c.error();
    const bool fits = budget.fits(c.value().pipeline.resources());
    if (fits) *out = std::move(c).take();
    return fits;
  };

  // Fast path: everything fits (the common, non-degraded case).
  auto all = try_prefix(rules_.size(), &split.hardware);
  if (!all.ok()) return all.error();
  std::size_t cut = rules_.size();
  if (!all.value()) {
    // Binary search the largest prefix that fits. Resource usage is
    // monotone in the rule set for this compiler (more rules never free
    // entries), so the predicate is monotone in k. lo is known-good (the
    // empty pipeline always fits), hi is known-bad.
    std::size_t lo = 0, hi = rules_.size();
    auto empty = try_prefix(0, &split.hardware);
    if (!empty.ok()) return empty.error();
    if (!empty.value())
      return Error{"even the empty pipeline exceeds the resource budget"};
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      compiler::Compiled probe;
      auto fits = try_prefix(mid, &probe);
      if (!fits.ok()) return fits.error();
      if (fits.value()) {
        split.hardware = std::move(probe);
        lo = mid;
      } else {
        hi = mid;
      }
    }
    cut = lo;
  }

  split.hardware.pipeline.finalize();
  split.usage = split.hardware.pipeline.resources();
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (i < cut)
      split.hw_rules.push_back(rules_[order[i]]);
    else
      split.spilled.push_back(rules_[order[i]]);
  }
  auto flat = lang::flatten_rules(split.spilled, schema_);
  if (!flat.ok()) return flat.error();
  split.spilled_flat = std::move(flat).take();
  return split;
}

const compiler::Compiled& Controller::compiled() const {
  if (!compiled_)
    throw std::logic_error("Controller::compiled() before compile()");
  return *compiled_;
}

Result<switchsim::Switch> Controller::build_switch() {
  auto ok = compile();
  if (!ok.ok()) return ok.error();
  // The switch takes its own pipeline copy so the controller can keep
  // recompiling while programmed switches run.
  return switchsim::Switch(schema_, compiled_->pipeline);
}

std::string Controller::p4_program(const compiler::P4Options& opts) const {
  return compiler::generate_p4(schema_, compiled_ ? &compiled_->pipeline
                                                  : nullptr,
                               opts);
}

std::string Controller::control_plane_rules() const {
  if (!compiled_)
    throw std::logic_error("control_plane_rules() before compile()");
  return compiler::generate_control_plane_rules(compiled_->pipeline);
}

}  // namespace camus::pubsub
