#include "pubsub/endpoints.hpp"

namespace camus::pubsub {

namespace {
proto::EthernetHeader feed_eth() {
  proto::EthernetHeader eth;
  eth.dst = 0x01005e000001ULL;  // IP multicast group MAC
  eth.src = 0x0200c0ffee01ULL;
  return eth;
}
constexpr std::uint32_t kPublisherIp = 0x0a000001;  // 10.0.0.1
constexpr std::uint32_t kFeedGroupIp = 0xe8010101;  // 232.1.1.1
}  // namespace

Publisher::Publisher(std::string session, std::size_t retransmit_capacity)
    : store_(retransmit_capacity) {
  mold_.session = std::move(session);
}

std::vector<std::uint8_t> Publisher::publish(const proto::ItchAddOrder& msg) {
  return publish_batch({msg});
}

std::vector<std::uint8_t> Publisher::publish_batch(
    const std::vector<proto::ItchAddOrder>& msgs) {
  mold_.sequence = sequence_;
  sequence_ += msgs.size();
  for (const auto& m : msgs) store_.append(proto::encode_itch_message(m));
  std::vector<std::uint8_t> frame = proto::encode_market_data_packet(
      feed_eth(), kPublisherIp, kFeedGroupIp, mold_, msgs);
  proto::seal_udp_checksum(frame);
  return frame;
}

std::vector<std::vector<std::uint8_t>> Publisher::retransmit(
    const proto::MoldUdp64Request& req, std::size_t max_msgs) const {
  std::vector<std::vector<std::uint8_t>> frames;
  std::uint64_t first = 0;
  const auto blocks = store_.fetch(req.sequence, req.count, &first);
  for (std::size_t i = 0; i < blocks.size(); i += max_msgs) {
    const std::size_t n = std::min(max_msgs, blocks.size() - i);
    std::vector<std::vector<std::uint8_t>> chunk(blocks.begin() + i,
                                                 blocks.begin() + i + n);
    proto::MoldUdp64Header mold = mold_;
    mold.sequence = first + i;
    frames.push_back(proto::encode_market_data_packet_raw(
        feed_eth(), kPublisherIp, kFeedGroupIp, mold, chunk));
  }
  return frames;
}

std::vector<std::uint8_t> Publisher::heartbeat() const {
  proto::MoldUdp64Header mold = mold_;
  mold.sequence = sequence_;
  std::vector<std::uint8_t> frame = proto::encode_market_data_packet(
      feed_eth(), kPublisherIp, kFeedGroupIp, mold, {});
  proto::seal_udp_checksum(frame);
  return frame;
}

bool Subscriber::deliver(std::span<const std::uint8_t> frame) {
  auto pkt = proto::decode_market_data_packet(frame);
  if (!pkt) {
    ++malformed_;
    return false;
  }
  const std::uint64_t seq = pkt->itch.mold.sequence;
  if (last_seq_ != 0 && seq > last_seq_ + 1) ++gaps_;
  if (seq > last_seq_) last_seq_ = seq;
  for (const auto& m : pkt->itch.add_orders) {
    ++received_;
    ++per_symbol_[m.stock];
  }
  return true;
}

}  // namespace camus::pubsub
