// Fabric control plane: one subscription set, many switches, one journal.
//
// A FabricController owns the subscription set for a whole spine–leaf
// fabric and drives one TwoPhaseInstaller per switch. It layers three
// guarantees on top of the single-switch DurableController protocol:
//
//   placement   — every commit derives a compiler::FabricPlacement and
//                 compiles per-switch programs (compile_fabric); the
//                 journaled commit digest is the fabric digest, which
//                 folds every per-switch digest, so exact replay proves
//                 the whole fabric's intent, not one pipeline's.
//   all-or-nothing install — install() stages the verified image on EVERY
//                 switch first (stage phase cannot touch a switch), then
//                 commits switch by switch; any stage failure aborts with
//                 zero switches modified, and a commit-phase failure
//                 (fencing) rolls back every switch already committed.
//                 The window where the fabric is mixed is therefore only
//                 a crash *between* commits — which the journal's
//                 kInstallBegin-without-outcome records, and reconcile()
//                 repairs deterministically: the journaled commit is the
//                 intent, and every switch is driven to its per-switch
//                 program from digests, whether the crash left it old,
//                 new, or the fabric half-and-half.
//   fabric-wide fencing — one epoch covers every switch. open() adopts
//                 max(replayed)+1 and reconcile()/install() stamp it on
//                 all installers, so a deposed controller cannot program
//                 ANY switch of the fabric (E140 per switch).
//
// Journal records (same WAL discipline and RecordTypes as the single-
// switch controller; payload formats documented per method):
//   kEpoch "e" · kSubscribe "port prio text" · kUnsubscribe "port" ·
//   kCommit "seq fabric_digest" · kInstallBegin "seq fabric crc" ·
//   kInstallCommit/kInstallAbort "seq" · kSnapshot (checkpoint()).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/fabric.hpp"
#include "fault/plan.hpp"
#include "pubsub/durable.hpp"  // RecoveryInfo
#include "pubsub/install.hpp"
#include "spec/schema.hpp"
#include "util/journal.hpp"
#include "util/result.hpp"

namespace camus::pubsub {

// The per-switch installers the controller drives, in topology order:
// spines first, then leaves. Defined here (not in netsim) so the control
// plane stays independent of the simulator; netsim::Fabric::targets()
// produces one.
struct FabricTargets {
  std::vector<TwoPhaseInstaller*> spines;
  std::vector<TwoPhaseInstaller*> leaves;

  std::size_t size() const noexcept { return spines.size() + leaves.size(); }
  // Flat index: 0..spines-1 are spines, then leaves.
  TwoPhaseInstaller& at(std::size_t i) const {
    return i < spines.size() ? *spines[i] : *leaves[i - spines.size()];
  }
};

// Outcome of one all-or-nothing fabric install.
struct FabricInstallReport {
  bool committed = false;            // every switch committed
  bool all_or_nothing_abort = false; // a stage failed; NO switch modified
  bool crashed_mid_commit = false;   // crash hook fired between commits
  std::size_t switches = 0;          // targets driven
  std::size_t staged = 0;            // switches that staged successfully
  std::size_t committed_switches = 0;
  std::size_t rolled_back = 0;       // undone after a commit-phase failure
  std::uint64_t epoch = 0;
  std::string error;                 // empty when committed
  // Per-switch reports in flat (spines-then-leaves) order. On an abort
  // the reports of never-staged switches are default-initialized.
  std::vector<InstallReport> reports;
};

// Outcome of one fabric-wide anti-entropy pass.
struct FabricReconcileReport {
  std::size_t switches = 0;
  std::size_t in_sync = 0;          // digest-matched, untouched
  std::size_t repaired = 0;         // a repair landed
  std::size_t full_reprograms = 0;  // repairs that had to re-image
  std::size_t repair_ops = 0;       // entry ops shipped across all deltas
  bool converged = false;  // every switch digest == its intended digest
  std::string error;
};

// Diagnostics: E142 (op before open), E122 (intended before commit), J010
// (exact-replay digest mismatch), J011 (malformed payload) — shared with
// DurableController — plus F150 (stateful rule rejected at subscribe).
class FabricController {
 public:
  FabricController(spec::Schema schema, util::StableStorage& storage,
                   compiler::FabricSpec fabric,
                   compiler::CompileOptions opts = {});

  // Replays the journal and adopts a fresh fabric-wide epoch. Must be
  // called (once) before any mutation.
  util::Result<RecoveryInfo> open();
  bool is_open() const noexcept { return opened_; }
  const RecoveryInfo& recovery() const noexcept { return recovery_; }

  std::uint64_t epoch() const noexcept { return epoch_; }
  std::uint64_t commit_seq() const noexcept { return commit_seq_; }
  std::size_t subscription_count() const noexcept { return subs_.size(); }
  const compiler::FabricSpec& fabric() const noexcept { return fabric_; }

  // WAL-first mutations; same text contract as DurableController (an
  // interest-only rule gets " : fwd(port)" appended). Stateful rules are
  // rejected (F150) before journaling — the fabric cannot place them.
  util::Result<bool> subscribe(std::uint16_t port, std::string_view rule_text,
                               int priority = 0);
  util::Result<std::size_t> unsubscribe(std::uint16_t port);

  // Places and compiles the whole fabric (partition_for_fabric +
  // compile_fabric), journals the commit with the fabric digest, and
  // returns that digest. The compiled program becomes intended().
  util::Result<std::uint64_t> commit();

  // The intended fabric program of the last journaled commit (E122 before
  // the first). reconcile() drives every switch toward it.
  util::Result<const compiler::FabricProgram*> intended() const;
  util::Result<const compiler::FabricPlacement*> placement() const;

  // All-or-nothing cross-switch install of intended(): stage+verify on
  // every switch of `targets` (spines then leaves), then commit each.
  // `faults` models the control channel of the switch at flat index
  // `fault_switch` (-1 = every switch shares the plan). Journaled as one
  // kInstallBegin / kInstallCommit-or-Abort pair around the whole
  // transaction.
  util::Result<FabricInstallReport> install(const FabricTargets& targets,
                                            const fault::Plan* faults = nullptr,
                                            int fault_switch = -1,
                                            std::size_t chunk_bytes = 512,
                                            int max_attempts = 3,
                                            int chunk_retries = 8);

  // Fabric-wide anti-entropy: fences every switch to this epoch, then
  // drives each toward its per-switch intended program (digest
  // short-circuit, entry-delta repair when possible, re-image when not —
  // the single-switch reconcile loop per node).
  util::Result<FabricReconcileReport> reconcile(
      const FabricTargets& targets, const fault::Plan* faults = nullptr,
      std::size_t chunk_bytes = 512, int max_attempts = 3,
      int chunk_retries = 8);

  // Compacts the journal to one snapshot of the live subscription set.
  util::Result<bool> checkpoint();

  // Crash-injection hook for the nemesis: the next install() stops dead
  // after committing `n` switches — no outcome record is journaled, as if
  // the controller process died mid-transaction. One-shot; -1 disables.
  void set_crash_after_commits(int n) noexcept { crash_after_commits_ = n; }

  util::Journal& journal() noexcept { return journal_; }
  const spec::Schema& schema() const noexcept { return schema_; }

 private:
  struct Sub {
    std::uint16_t port = 0;
    int priority = 0;
    std::string text;
    lang::BoundRule rule;
  };

  util::Result<bool> apply_subscribe(std::uint16_t port, int priority,
                                     const std::string& text);
  std::size_t apply_unsubscribe(std::uint16_t port);
  // Recompiles placement+program from the live set; returns fabric digest.
  util::Result<std::uint64_t> apply_commit();
  std::string snapshot_payload() const;
  util::Result<bool> replay_snapshot(const std::string& payload);
  // The intended pipeline of flat switch index i (spines share one).
  const table::Pipeline& program_for(std::size_t i) const;

  spec::Schema schema_;
  compiler::FabricSpec fabric_;
  compiler::CompileOptions opts_;
  util::Journal journal_;
  std::vector<Sub> subs_;
  std::optional<compiler::FabricPlacement> placement_;
  std::optional<compiler::FabricProgram> intended_;
  bool opened_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t commit_seq_ = 0;
  std::uint64_t install_seq_ = 0;
  int crash_after_commits_ = -1;
  RecoveryInfo recovery_;
};

}  // namespace camus::pubsub
