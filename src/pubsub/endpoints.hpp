// Publisher and subscriber endpoints for the in-network pub/sub system —
// thin, testable wrappers over the wire protocol that the examples and
// integration tests drive against a switchsim::Switch.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "proto/packet.hpp"
#include "pubsub/recovery.hpp"

namespace camus::pubsub {

// Encodes feed messages into market-data frames with MoldUDP sequencing.
// Published frames carry a sealed UDP checksum, and every encoded message
// block is retained in a bounded store so sequence gaps reported by a
// downstream FeedHandler or subscriber can be re-served.
class Publisher {
 public:
  explicit Publisher(std::string session = "CAMUS00001",
                     std::size_t retransmit_capacity = 65536);

  std::vector<std::uint8_t> publish(const proto::ItchAddOrder& msg);
  std::vector<std::uint8_t> publish_batch(
      const std::vector<proto::ItchAddOrder>& msgs);

  // Serves a MoldUDP64 retransmission request from the bounded store:
  // ready-to-send frames of at most max_msgs messages each. Requests
  // reaching past retention are clamped; fully-evicted requests yield no
  // frames.
  std::vector<std::vector<std::uint8_t>> retransmit(
      const proto::MoldUdp64Request& req, std::size_t max_msgs = 16) const;

  // MoldUDP64 heartbeat: zero-message frame advertising the next sequence,
  // so receivers can detect loss of the tail of the feed.
  std::vector<std::uint8_t> heartbeat() const;

  std::uint64_t next_sequence() const noexcept { return sequence_; }

 private:
  proto::MoldUdp64Header mold_;
  std::uint64_t sequence_ = 1;
  RetransmitStore store_;
};

// Decodes delivered frames and keeps per-symbol receive statistics; used
// to verify that the switch delivers exactly the subscribed subset.
class Subscriber {
 public:
  explicit Subscriber(std::uint16_t port) : port_(port) {}

  std::uint16_t port() const noexcept { return port_; }

  // Feeds one delivered frame. Returns false for frames that fail to
  // parse (counted in malformed()).
  bool deliver(std::span<const std::uint8_t> frame);

  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t malformed() const noexcept { return malformed_; }
  // MoldUDP sequence gaps observed (lost/filtered upstream messages are
  // expected in this design; the count is informational).
  std::uint64_t sequence_gaps() const noexcept { return gaps_; }

  const std::map<std::string, std::uint64_t>& per_symbol() const noexcept {
    return per_symbol_;
  }

 private:
  std::uint16_t port_;
  std::uint64_t received_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t gaps_ = 0;
  std::uint64_t last_seq_ = 0;
  std::map<std::string, std::uint64_t> per_symbol_;
};

}  // namespace camus::pubsub
