#include "pubsub/durable.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "lang/parser.hpp"
#include "table/serialize.hpp"

namespace camus::pubsub {

using util::Error;
using util::RecordType;
using util::Result;

namespace {

Error not_open() {
  return Error{"DurableController used before a successful open()", 0, 0,
               "E142"};
}

Error bad_payload(RecordType type, const std::string& payload) {
  return Error{"malformed journal payload for record type " +
                   std::to_string(static_cast<int>(type)) + ": '" + payload +
                   "'",
               0, 0, "J011"};
}

// Parses leading unsigned fields off an istringstream; false on failure.
bool read_u64(std::istringstream& is, std::uint64_t& out) {
  return static_cast<bool>(is >> out);
}

}  // namespace

DurableController::DurableController(spec::Schema schema,
                                     util::StableStorage& storage,
                                     compiler::CompileOptions opts)
    : schema_(std::move(schema)),
      opts_(opts),
      journal_(storage),
      inc_(schema_, opts_) {}

Result<bool> DurableController::apply_subscribe(std::uint16_t port,
                                                int priority,
                                                const std::string& text) {
  auto parsed = lang::parse_rule(text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rule(parsed.value(), schema_);
  if (!bound.ok()) return bound.error();
  Sub sub;
  sub.port = port;
  sub.priority = priority;
  sub.text = text;
  sub.ports = bound.value().actions.ports;
  sub.id = inc_.add(std::move(bound).take());
  subs_.push_back(std::move(sub));
  return true;
}

std::size_t DurableController::apply_unsubscribe(std::uint16_t port) {
  const std::size_t before = subs_.size();
  std::size_t w = 0;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const bool drop =
        subs_[i].ports.size() == 1 && subs_[i].ports[0] == port;
    if (drop) {
      inc_.remove(subs_[i].id);
      continue;
    }
    if (w != i) subs_[w] = std::move(subs_[i]);
    ++w;
  }
  subs_.resize(w);
  return before - subs_.size();
}

Result<std::uint64_t> DurableController::apply_commit(Delta* out) {
  const auto t0 = std::chrono::steady_clock::now();
  auto d = inc_.commit();
  if (!d.ok()) return d.error();
  if (out) *out = std::move(d).take();
  auto p = inc_.pipeline();
  if (!p.ok()) return p.error();
  // Snapshot the commit as the controller's intent: install-abort rollback
  // only rewinds inc_'s diff base, never this.
  intended_ = *p.value();
  // Feed the CheckpointPolicy's cost model: replaying a kCommit reruns
  // this exact work, so its measured cost is the best replay estimate.
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  commit_seconds_ewma_ = commit_seconds_ewma_ == 0
                             ? secs
                             : 0.75 * commit_seconds_ewma_ + 0.25 * secs;
  return table::pipeline_digest(*p.value());
}

Result<const table::Pipeline*> DurableController::intended() const {
  if (!intended_)
    return Error{"DurableController::intended() before a successful commit()",
                 0, 0, "E122"};
  return &*intended_;
}

std::string DurableController::snapshot_payload() const {
  std::ostringstream os;
  os << "epoch " << epoch_ << "\n"
     << "commits " << commit_seq_ << "\n"
     << "installs " << install_seq_ << "\n";
  for (const Sub& s : subs_)
    os << "sub " << s.port << " " << s.priority << " " << s.text << "\n";
  return os.str();
}

Result<bool> DurableController::replay_snapshot(const std::string& payload) {
  std::istringstream lines(payload);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "epoch" || tag == "commits" || tag == "installs") {
      std::uint64_t v = 0;
      if (!read_u64(is, v))
        return bad_payload(RecordType::kSnapshot, line);
      if (tag == "epoch") epoch_ = v;
      if (tag == "commits") commit_seq_ = v;
      if (tag == "installs") install_seq_ = v;
    } else if (tag == "sub") {
      std::uint64_t port = 0, prio_raw = 0;
      long long prio = 0;
      if (!(is >> port >> prio))
        return bad_payload(RecordType::kSnapshot, line);
      (void)prio_raw;
      std::string text;
      std::getline(is, text);
      if (!text.empty() && text.front() == ' ') text.erase(0, 1);
      auto applied = apply_subscribe(static_cast<std::uint16_t>(port),
                                     static_cast<int>(prio), text);
      if (!applied.ok()) return applied.error();
    } else {
      return bad_payload(RecordType::kSnapshot, line);
    }
  }
  // The snapshot captured committed state: rebuild the intended pipeline
  // (fresh state numbering — see the header's recovery-fidelity note).
  if (commit_seq_ > 0) {
    auto committed = apply_commit(nullptr);
    if (!committed.ok()) return committed.error();
  }
  return true;
}

Result<RecoveryInfo> DurableController::open() {
  if (opened_)
    return Error{"DurableController::open() called twice", 0, 0, "E142"};
  auto replayed = journal_.replay();
  if (!replayed.ok()) return replayed.error();
  const util::ReplayResult& rep = replayed.value();

  recovery_ = RecoveryInfo{};
  recovery_.torn_bytes = rep.torn_bytes;
  recovery_.recovered = !rep.records.empty();

  std::uint64_t max_epoch = 0;
  std::optional<std::uint64_t> in_flight;

  for (const util::Record& rec : rep.records) {
    ++recovery_.records_replayed;
    std::istringstream is(rec.payload);
    switch (rec.type) {
      case RecordType::kSnapshot: {
        recovery_.from_snapshot = true;
        auto ok = replay_snapshot(rec.payload);
        if (!ok.ok()) return ok.error();
        max_epoch = std::max(max_epoch, epoch_);
        break;
      }
      case RecordType::kEpoch: {
        std::uint64_t e = 0;
        if (!read_u64(is, e)) return bad_payload(rec.type, rec.payload);
        max_epoch = std::max(max_epoch, e);
        break;
      }
      case RecordType::kSubscribe: {
        std::uint64_t port = 0;
        long long prio = 0;
        if (!(is >> port >> prio)) return bad_payload(rec.type, rec.payload);
        std::string text;
        std::getline(is, text);
        if (!text.empty() && text.front() == ' ') text.erase(0, 1);
        auto applied = apply_subscribe(static_cast<std::uint16_t>(port),
                                       static_cast<int>(prio), text);
        if (!applied.ok()) return applied.error();
        break;
      }
      case RecordType::kUnsubscribe: {
        std::uint64_t port = 0;
        if (!read_u64(is, port)) return bad_payload(rec.type, rec.payload);
        apply_unsubscribe(static_cast<std::uint16_t>(port));
        break;
      }
      case RecordType::kCommit: {
        std::uint64_t seq = 0, digest = 0;
        if (!read_u64(is, seq) || !read_u64(is, digest))
          return bad_payload(rec.type, rec.payload);
        auto got = apply_commit(nullptr);
        if (!got.ok()) return got.error();
        commit_seq_ = seq;
        ++recovery_.commits_replayed;
        if (got.value() != digest) {
          ++recovery_.digest_mismatches;
          // Exact replay is deterministic: a divergence means the journal
          // or the compiler lied. After a snapshot, state numbering is
          // legitimately fresh and digests shift — count, don't fail.
          if (!recovery_.from_snapshot)
            return Error{"replayed commit " + std::to_string(seq) +
                             " digest mismatch (journal corruption or "
                             "non-deterministic compiler)",
                         0, 0, "J010"};
        }
        break;
      }
      case RecordType::kInstallBegin: {
        std::uint64_t seq = 0;
        if (!read_u64(is, seq)) return bad_payload(rec.type, rec.payload);
        install_seq_ = std::max(install_seq_, seq);
        in_flight = seq;
        break;
      }
      case RecordType::kInstallCommit:
      case RecordType::kInstallAbort: {
        in_flight.reset();
        break;
      }
    }
  }

  epoch_ = max_epoch + 1;
  recovery_.epoch = epoch_;
  recovery_.subscriptions = subs_.size();
  auto journaled = journal_.append(RecordType::kEpoch,
                                   std::to_string(epoch_));
  if (!journaled.ok()) return journaled.error();

  if (in_flight) {
    // The crash hit between kInstallBegin and its outcome. Resolve by
    // journaling the abort — whether the commit landed or not, the next
    // reconcile() computes the exact repair from switch digests, so the
    // recovery is deterministic either way.
    recovery_.install_in_flight = true;
    recovery_.in_flight_install = *in_flight;
    auto aborted = journal_.append(RecordType::kInstallAbort,
                                   std::to_string(*in_flight));
    if (!aborted.ok()) return aborted.error();
  }

  // Seed the CheckpointPolicy with what a successor would have to replay:
  // everything we just replayed, plus the kEpoch (and possible abort) we
  // appended.
  records_since_checkpoint_ =
      recovery_.records_replayed + 1 + (in_flight ? 1 : 0);
  commits_since_checkpoint_ = recovery_.commits_replayed;

  opened_ = true;
  return recovery_;
}

Result<bool> DurableController::subscribe(std::uint16_t port,
                                          std::string_view rule_text,
                                          int priority) {
  if (!opened_) return not_open();
  std::string text(rule_text);
  // Interest-only form: append the subscriber's forwarding action (same
  // contract as Controller::subscribe).
  if (text.find(':') == std::string::npos)
    text += " : fwd(" + std::to_string(port) + ")";
  // Validate BEFORE journaling — a rejected rule must not pollute the log
  // (replay re-binds every journaled rule and treats failure as fatal).
  auto parsed = lang::parse_rule(text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rule(parsed.value(), schema_);
  if (!bound.ok()) return bound.error();
  // WAL: journal, sync, then mutate memory.
  std::ostringstream payload;
  payload << port << " " << priority << " " << text;
  auto journaled = journal_.append(RecordType::kSubscribe, payload.str());
  if (!journaled.ok()) return journaled.error();
  ++records_since_checkpoint_;
  return apply_subscribe(port, priority, text);
}

Result<std::size_t> DurableController::unsubscribe(std::uint16_t port) {
  if (!opened_) return not_open();
  // Pure query first: a no-op unsubscribe journals nothing.
  const std::size_t matching = static_cast<std::size_t>(std::count_if(
      subs_.begin(), subs_.end(), [port](const Sub& s) {
        return s.ports.size() == 1 && s.ports[0] == port;
      }));
  if (matching == 0) return std::size_t{0};
  auto journaled = journal_.append(RecordType::kUnsubscribe,
                                   std::to_string(port));
  if (!journaled.ok()) return journaled.error();
  ++records_since_checkpoint_;
  return apply_unsubscribe(port);
}

Result<DurableController::Delta> DurableController::commit() {
  if (!opened_) return not_open();
  // The compile is pure in-memory: a crash before the journal append just
  // loses an uncommitted compile, which replay correctly omits.
  Delta delta;
  auto digest = apply_commit(&delta);
  if (!digest.ok()) return digest.error();
  ++commit_seq_;
  std::ostringstream payload;
  payload << commit_seq_ << " " << digest.value();
  auto journaled = journal_.append(RecordType::kCommit, payload.str());
  if (!journaled.ok()) return journaled.error();
  ++records_since_checkpoint_;
  ++commits_since_checkpoint_;
  auto compacted = maybe_auto_checkpoint();
  if (!compacted.ok()) return compacted.error();
  return delta;
}

Result<InstallReport> DurableController::install(TwoPhaseInstaller& installer,
                                                 const Delta& delta,
                                                 const fault::Plan* faults,
                                                 std::size_t chunk_bytes,
                                                 int max_attempts,
                                                 int chunk_retries) {
  if (!opened_) return not_open();
  auto intended_pipe = intended();
  if (!intended_pipe.ok()) return intended_pipe.error();

  const bool full = delta.requires_reprogram;
  const std::string image = full ? table::serialize_pipeline(
                                       *intended_pipe.value())
                                 : table::serialize_ops(delta.ops);
  ++install_seq_;
  std::ostringstream begin;
  begin << install_seq_ << " " << (full ? "full" : "ops") << " "
        << util::crc32(image);
  auto journaled = journal_.append(RecordType::kInstallBegin, begin.str());
  if (!journaled.ok()) return journaled.error();

  installer.set_epoch(epoch_);
  InstallReport report =
      full ? installer.install(*intended_pipe.value(), faults, chunk_bytes,
                               max_attempts, chunk_retries)
           : installer.apply_delta(delta.ops, faults, chunk_bytes,
                                   max_attempts, chunk_retries);

  const RecordType outcome = report.committed ? RecordType::kInstallCommit
                                              : RecordType::kInstallAbort;
  auto recorded =
      journal_.append(outcome, std::to_string(install_seq_));
  if (!recorded.ok()) return recorded.error();
  records_since_checkpoint_ += 2;  // kInstallBegin + outcome

  if (!report.committed) {
    // The switch kept last-good: roll the incremental diff base back to
    // what the installer still serves so the next commit's delta lands on
    // reality instead of on the phantom install.
    inc_.restore_installed(table::Pipeline(*installer.active()));
  }
  return report;
}

Result<ReconcileReport> DurableController::reconcile(
    TwoPhaseInstaller& installer, const fault::Plan* faults,
    std::size_t chunk_bytes, int max_attempts, int chunk_retries) {
  if (!opened_) return not_open();
  switchsim::Switch& sw = installer.target();

  // Fence first: from here on the predecessor's stragglers bounce (E140).
  auto fenced = sw.fence(epoch_);
  if (!fenced.ok()) return fenced.error();
  installer.set_epoch(epoch_);

  // The intended program = the last journaled commit (NOT inc_'s diff
  // base, which an aborted install rewinds to the switch's last-good).
  // Before any commit it is the empty pipeline — a fresh controller
  // reconciling a previously programmed switch must clear it, not skip it.
  table::Pipeline intended;
  if (intended_) intended = *intended_;
  intended.finalize();

  ReconcileReport report;
  report.total_entries = intended.total_entries();

  // Anti-entropy handshake: the switch reports per-stage digests; only
  // diverged stages matter. Digest equality short-circuits the whole
  // pass — an in-sync switch costs one digest exchange, zero entries.
  const auto have_digests = sw.stage_digests();
  const auto want_digests = table::stage_digests(intended);
  for (const table::StageDigest& w : want_digests) {
    const auto it = std::find_if(
        have_digests.begin(), have_digests.end(),
        [&](const table::StageDigest& h) { return h.table == w.table; });
    if (it == have_digests.end() || it->digest != w.digest)
      ++report.diverged_stages;
  }
  for (const table::StageDigest& h : have_digests) {
    const auto it = std::find_if(
        want_digests.begin(), want_digests.end(),
        [&](const table::StageDigest& w) { return w.table == h.table; });
    if (it == want_digests.end()) ++report.diverged_stages;
  }

  if (sw.program_digest() == table::pipeline_digest(intended)) {
    report.in_sync = true;
    report.reused_entries = report.total_entries;
    installer.resync_from_switch();
    return report;
  }

  // Minimal repair: the same diff currency as live churn deltas
  // (table::diff_pipelines), so reconciliation and the incremental
  // compiler can never disagree about what an update is.
  const table::Pipeline have = sw.pipeline_snapshot();
  table::PipelineDiff diff = table::diff_pipelines(&have, intended);
  report.reused_entries = diff.reused_entries;
  report.total_entries = diff.total_entries;

  if (diff.requires_reprogram) {
    report.full_reprogram = true;
    report.install = installer.install(intended, faults, chunk_bytes,
                                       max_attempts, chunk_retries);
  } else {
    // Re-seed the installer's dry-run base from the switch's actual
    // program so the repair ops apply against reality.
    installer.resync_from_switch();
    report.repair_ops = diff.ops.size();
    report.install = installer.apply_delta(diff.ops, faults, chunk_bytes,
                                           max_attempts, chunk_retries);
  }
  report.repaired = report.install.committed;
  if (report.repaired) {
    // The switch now runs the intended program; make it the diff base.
    inc_.restore_installed(std::move(intended));
  }
  return report;
}

Result<bool> DurableController::checkpoint() {
  if (!opened_) return not_open();
  const util::Record rec{RecordType::kSnapshot, snapshot_payload()};
  auto compacted = journal_.compact(std::span<const util::Record>(&rec, 1));
  if (!compacted.ok()) return compacted;
  // Replay now starts at the snapshot: one record, and one recompile when
  // committed state exists.
  records_since_checkpoint_ = 1;
  commits_since_checkpoint_ = commit_seq_ > 0 ? 1 : 0;
  return compacted;
}

double DurableController::estimated_replay_seconds() const noexcept {
  // Commit records rerun a full incremental compile on replay; charge
  // them the measured EWMA (or the generic record cost until the first
  // measurement lands). Everything else is a parse + bind.
  const double per_commit = commit_seconds_ewma_ > 0
                                ? commit_seconds_ewma_
                                : policy_.per_record_seconds;
  return static_cast<double>(records_since_checkpoint_) *
             policy_.per_record_seconds +
         static_cast<double>(commits_since_checkpoint_) * per_commit;
}

Result<bool> DurableController::maybe_auto_checkpoint() {
  if (policy_.max_replay_seconds <= 0) return false;
  if (records_since_checkpoint_ < policy_.min_records) return false;
  if (estimated_replay_seconds() <= policy_.max_replay_seconds) return false;
  auto cp = checkpoint();
  if (!cp.ok()) return cp.error();
  ++auto_checkpoints_;
  return true;
}

}  // namespace camus::pubsub
