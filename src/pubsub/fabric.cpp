#include "pubsub/fabric.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "lang/parser.hpp"
#include "table/serialize.hpp"

namespace camus::pubsub {

using util::Error;
using util::RecordType;
using util::Result;

namespace {

Error not_open() {
  return Error{"FabricController used before a successful open()", 0, 0,
               "E142"};
}

Error bad_payload(RecordType type, const std::string& payload) {
  return Error{"malformed journal payload for record type " +
                   std::to_string(static_cast<int>(type)) + ": '" + payload +
                   "'",
               0, 0, "J011"};
}

bool read_u64(std::istringstream& is, std::uint64_t& out) {
  return static_cast<bool>(is >> out);
}

}  // namespace

FabricController::FabricController(spec::Schema schema,
                                   util::StableStorage& storage,
                                   compiler::FabricSpec fabric,
                                   compiler::CompileOptions opts)
    : schema_(std::move(schema)),
      fabric_(fabric),
      opts_(opts),
      journal_(storage) {}

Result<bool> FabricController::apply_subscribe(std::uint16_t port,
                                               int priority,
                                               const std::string& text) {
  auto parsed = lang::parse_rule(text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rule(parsed.value(), schema_);
  if (!bound.ok()) return bound.error();
  auto placeable = compiler::fabric_rule_ok(bound.value(), schema_);
  if (!placeable.ok()) return placeable.error();
  Sub sub;
  sub.port = port;
  sub.priority = priority;
  sub.text = text;
  sub.rule = std::move(bound).take();
  subs_.push_back(std::move(sub));
  return true;
}

std::size_t FabricController::apply_unsubscribe(std::uint16_t port) {
  const std::size_t before = subs_.size();
  std::erase_if(subs_, [port](const Sub& s) {
    return s.rule.actions.ports.size() == 1 && s.rule.actions.ports[0] == port;
  });
  return before - subs_.size();
}

Result<std::uint64_t> FabricController::apply_commit() {
  std::vector<lang::BoundRule> rules;
  rules.reserve(subs_.size());
  for (const Sub& s : subs_) rules.push_back(s.rule);
  auto placed = compiler::partition_for_fabric(schema_, rules, fabric_, opts_);
  if (!placed.ok()) return placed.error();
  auto compiled = compiler::compile_fabric(schema_, placed.value(), opts_);
  if (!compiled.ok()) return compiled.error();
  placement_ = std::move(placed).take();
  intended_ = std::move(compiled).take();
  return intended_->fabric_digest;
}

Result<const compiler::FabricProgram*> FabricController::intended() const {
  if (!intended_)
    return Error{"FabricController::intended() before a successful commit()",
                 0, 0, "E122"};
  return &*intended_;
}

Result<const compiler::FabricPlacement*> FabricController::placement() const {
  if (!placement_)
    return Error{"FabricController::placement() before a successful commit()",
                 0, 0, "E122"};
  return &*placement_;
}

const table::Pipeline& FabricController::program_for(std::size_t i) const {
  return i < fabric_.spines ? intended_->spine
                            : intended_->leaves[i - fabric_.spines];
}

std::string FabricController::snapshot_payload() const {
  std::ostringstream os;
  os << "epoch " << epoch_ << "\n"
     << "commits " << commit_seq_ << "\n"
     << "installs " << install_seq_ << "\n";
  for (const Sub& s : subs_)
    os << "sub " << s.port << " " << s.priority << " " << s.text << "\n";
  return os.str();
}

Result<bool> FabricController::replay_snapshot(const std::string& payload) {
  std::istringstream lines(payload);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "epoch" || tag == "commits" || tag == "installs") {
      std::uint64_t v = 0;
      if (!read_u64(is, v)) return bad_payload(RecordType::kSnapshot, line);
      if (tag == "epoch") epoch_ = v;
      if (tag == "commits") commit_seq_ = v;
      if (tag == "installs") install_seq_ = v;
    } else if (tag == "sub") {
      std::uint64_t port = 0;
      long long prio = 0;
      if (!(is >> port >> prio))
        return bad_payload(RecordType::kSnapshot, line);
      std::string text;
      std::getline(is, text);
      if (!text.empty() && text.front() == ' ') text.erase(0, 1);
      auto applied = apply_subscribe(static_cast<std::uint16_t>(port),
                                     static_cast<int>(prio), text);
      if (!applied.ok()) return applied.error();
    } else {
      return bad_payload(RecordType::kSnapshot, line);
    }
  }
  // Snapshot captured committed state: rebuild the intended program (fresh
  // compile — fabric digests are deterministic per rule set, but kCommit
  // digests recorded after a checkpoint are only enforced on exact replay,
  // mirroring the single-switch controller).
  if (commit_seq_ > 0) {
    auto committed = apply_commit();
    if (!committed.ok()) return committed.error();
  }
  return true;
}

Result<RecoveryInfo> FabricController::open() {
  if (opened_)
    return Error{"FabricController::open() called twice", 0, 0, "E142"};
  auto replayed = journal_.replay();
  if (!replayed.ok()) return replayed.error();
  const util::ReplayResult& rep = replayed.value();

  recovery_ = RecoveryInfo{};
  recovery_.torn_bytes = rep.torn_bytes;
  recovery_.recovered = !rep.records.empty();

  std::uint64_t max_epoch = 0;
  std::optional<std::uint64_t> in_flight;

  for (const util::Record& rec : rep.records) {
    ++recovery_.records_replayed;
    std::istringstream is(rec.payload);
    switch (rec.type) {
      case RecordType::kSnapshot: {
        recovery_.from_snapshot = true;
        auto ok = replay_snapshot(rec.payload);
        if (!ok.ok()) return ok.error();
        max_epoch = std::max(max_epoch, epoch_);
        break;
      }
      case RecordType::kEpoch: {
        std::uint64_t e = 0;
        if (!read_u64(is, e)) return bad_payload(rec.type, rec.payload);
        max_epoch = std::max(max_epoch, e);
        break;
      }
      case RecordType::kSubscribe: {
        std::uint64_t port = 0;
        long long prio = 0;
        if (!(is >> port >> prio)) return bad_payload(rec.type, rec.payload);
        std::string text;
        std::getline(is, text);
        if (!text.empty() && text.front() == ' ') text.erase(0, 1);
        auto applied = apply_subscribe(static_cast<std::uint16_t>(port),
                                       static_cast<int>(prio), text);
        if (!applied.ok()) return applied.error();
        break;
      }
      case RecordType::kUnsubscribe: {
        std::uint64_t port = 0;
        if (!read_u64(is, port)) return bad_payload(rec.type, rec.payload);
        apply_unsubscribe(static_cast<std::uint16_t>(port));
        break;
      }
      case RecordType::kCommit: {
        std::uint64_t seq = 0, digest = 0;
        if (!read_u64(is, seq) || !read_u64(is, digest))
          return bad_payload(rec.type, rec.payload);
        auto got = apply_commit();
        if (!got.ok()) return got.error();
        commit_seq_ = seq;
        ++recovery_.commits_replayed;
        if (got.value() != digest) {
          ++recovery_.digest_mismatches;
          if (!recovery_.from_snapshot)
            return Error{"replayed fabric commit " + std::to_string(seq) +
                             " digest mismatch (journal corruption or "
                             "non-deterministic compiler)",
                         0, 0, "J010"};
        }
        break;
      }
      case RecordType::kInstallBegin: {
        std::uint64_t seq = 0;
        if (!read_u64(is, seq)) return bad_payload(rec.type, rec.payload);
        install_seq_ = std::max(install_seq_, seq);
        in_flight = seq;
        break;
      }
      case RecordType::kInstallCommit:
      case RecordType::kInstallAbort: {
        in_flight.reset();
        break;
      }
    }
  }

  epoch_ = max_epoch + 1;
  recovery_.epoch = epoch_;
  recovery_.subscriptions = subs_.size();
  auto journaled = journal_.append(RecordType::kEpoch, std::to_string(epoch_));
  if (!journaled.ok()) return journaled.error();

  if (in_flight) {
    // The crash hit the install window — possibly BETWEEN per-switch
    // commits, leaving the fabric mixed old/new. Journal the abort; the
    // journaled commit is still the intent, and reconcile() drives every
    // switch (old, new, or anything staged-and-lost) to its per-switch
    // program from digests, so the resolution is deterministic without
    // knowing how far the transaction got.
    recovery_.install_in_flight = true;
    recovery_.in_flight_install = *in_flight;
    auto aborted = journal_.append(RecordType::kInstallAbort,
                                   std::to_string(*in_flight));
    if (!aborted.ok()) return aborted.error();
  }

  opened_ = true;
  return recovery_;
}

Result<bool> FabricController::subscribe(std::uint16_t port,
                                         std::string_view rule_text,
                                         int priority) {
  if (!opened_) return not_open();
  std::string text(rule_text);
  if (text.find(':') == std::string::npos)
    text += " : fwd(" + std::to_string(port) + ")";
  // Validate BEFORE journaling: parse, bind, and fabric placeability
  // (F150) — replay re-applies every journaled rule and treats failure as
  // fatal, so nothing unplaceable may enter the log.
  auto parsed = lang::parse_rule(text);
  if (!parsed.ok()) return parsed.error();
  auto bound = lang::bind_rule(parsed.value(), schema_);
  if (!bound.ok()) return bound.error();
  auto placeable = compiler::fabric_rule_ok(bound.value(), schema_);
  if (!placeable.ok()) return placeable.error();
  std::ostringstream payload;
  payload << port << " " << priority << " " << text;
  auto journaled = journal_.append(RecordType::kSubscribe, payload.str());
  if (!journaled.ok()) return journaled.error();
  return apply_subscribe(port, priority, text);
}

Result<std::size_t> FabricController::unsubscribe(std::uint16_t port) {
  if (!opened_) return not_open();
  const std::size_t matching = static_cast<std::size_t>(std::count_if(
      subs_.begin(), subs_.end(), [port](const Sub& s) {
        return s.rule.actions.ports.size() == 1 &&
               s.rule.actions.ports[0] == port;
      }));
  if (matching == 0) return std::size_t{0};
  auto journaled =
      journal_.append(RecordType::kUnsubscribe, std::to_string(port));
  if (!journaled.ok()) return journaled.error();
  return apply_unsubscribe(port);
}

Result<std::uint64_t> FabricController::commit() {
  if (!opened_) return not_open();
  auto digest = apply_commit();
  if (!digest.ok()) return digest.error();
  ++commit_seq_;
  std::ostringstream payload;
  payload << commit_seq_ << " " << digest.value();
  auto journaled = journal_.append(RecordType::kCommit, payload.str());
  if (!journaled.ok()) return journaled.error();
  return digest.value();
}

Result<FabricInstallReport> FabricController::install(
    const FabricTargets& targets, const fault::Plan* faults, int fault_switch,
    std::size_t chunk_bytes, int max_attempts, int chunk_retries) {
  if (!opened_) return not_open();
  auto program = intended();
  if (!program.ok()) return program.error();
  if (targets.spines.size() != fabric_.spines ||
      targets.leaves.size() != fabric_.leaves)
    return Error{"FabricTargets shape disagrees with the fabric spec", 0, 0,
                 "F151"};

  FabricInstallReport report;
  report.switches = targets.size();
  report.epoch = epoch_;
  report.reports.resize(targets.size());

  // The whole transaction is one journaled install; the begin record
  // carries the fabric digest so a post-crash reader knows what was being
  // attempted.
  ++install_seq_;
  std::ostringstream begin;
  begin << install_seq_ << " fabric " << intended_->fabric_digest;
  auto journaled = journal_.append(RecordType::kInstallBegin, begin.str());
  if (!journaled.ok()) return journaled.error();

  // --- Phase 1: stage everywhere. No switch is touched; a failure on any
  // switch aborts the transaction with the fabric exactly as it was.
  std::vector<StagedInstall> staged(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    TwoPhaseInstaller& installer = targets.at(i);
    installer.set_epoch(epoch_);
    const fault::Plan* plan =
        (fault_switch < 0 || static_cast<std::size_t>(fault_switch) == i)
            ? faults
            : nullptr;
    staged[i] = installer.stage(program_for(i), plan, chunk_bytes,
                                max_attempts, chunk_retries);
    report.reports[i] = staged[i].report;
    if (!staged[i].staged) {
      report.all_or_nothing_abort = true;
      report.error = "stage failed on switch " + std::to_string(i) + ": " +
                     staged[i].report.error;
      auto aborted = journal_.append(RecordType::kInstallAbort,
                                     std::to_string(install_seq_));
      if (!aborted.ok()) return aborted.error();
      return report;
    }
    ++report.staged;
  }

  // --- Phase 2: commit switch by switch. Every image already passed
  // digest+parse verification, so the only failure left is fencing (a
  // newer controller took the fabric) — which rolls back the switches
  // this transaction already flipped.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (crash_after_commits_ >= 0 &&
        static_cast<std::size_t>(crash_after_commits_) ==
            report.committed_switches) {
      // Simulated controller death between per-switch commits: no outcome
      // record, fabric left mixed. open()+reconcile() must repair.
      crash_after_commits_ = -1;
      report.crashed_mid_commit = true;
      report.error = "controller crashed mid-commit (injected)";
      return report;
    }
    TwoPhaseInstaller& installer = targets.at(i);
    if (!installer.commit_staged(staged[i])) {
      report.reports[i] = staged[i].report;
      report.error = "commit failed on switch " + std::to_string(i) + ": " +
                     staged[i].report.error;
      // Roll back every switch this transaction already committed.
      for (std::size_t j = 0; j < i; ++j)
        if (targets.at(j).rollback()) ++report.rolled_back;
      auto aborted = journal_.append(RecordType::kInstallAbort,
                                     std::to_string(install_seq_));
      if (!aborted.ok()) return aborted.error();
      return report;
    }
    report.reports[i] = staged[i].report;
    ++report.committed_switches;
  }

  auto recorded = journal_.append(RecordType::kInstallCommit,
                                  std::to_string(install_seq_));
  if (!recorded.ok()) return recorded.error();
  report.committed = true;
  return report;
}

Result<FabricReconcileReport> FabricController::reconcile(
    const FabricTargets& targets, const fault::Plan* faults,
    std::size_t chunk_bytes, int max_attempts, int chunk_retries) {
  if (!opened_) return not_open();
  if (targets.spines.size() != fabric_.spines ||
      targets.leaves.size() != fabric_.leaves)
    return Error{"FabricTargets shape disagrees with the fabric spec", 0, 0,
                 "F151"};

  FabricReconcileReport report;
  report.switches = targets.size();

  // Fence the whole fabric first: after this loop a deposed controller's
  // stragglers bounce on every switch, so repairs cannot interleave with
  // a predecessor's writes on any node.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    TwoPhaseInstaller& installer = targets.at(i);
    auto fenced = installer.target().fence(epoch_);
    if (!fenced.ok()) return fenced.error();
    installer.set_epoch(epoch_);
  }

  // Per-switch intended program: last journaled commit, or the empty
  // pipeline before any commit (a fresh controller must clear previously
  // programmed switches, not skip them).
  report.converged = true;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    TwoPhaseInstaller& installer = targets.at(i);
    switchsim::Switch& sw = installer.target();
    table::Pipeline want;
    if (intended_) want = program_for(i);
    want.finalize();
    const std::uint64_t want_digest = table::pipeline_digest(want);

    if (sw.program_digest() == want_digest) {
      ++report.in_sync;
      installer.resync_from_switch();
      continue;
    }
    const table::Pipeline have = sw.pipeline_snapshot();
    table::PipelineDiff diff = table::diff_pipelines(&have, want);
    InstallReport install;
    if (diff.requires_reprogram) {
      ++report.full_reprograms;
      install = installer.install(want, faults, chunk_bytes, max_attempts,
                                  chunk_retries);
    } else {
      installer.resync_from_switch();
      report.repair_ops += diff.ops.size();
      install = installer.apply_delta(diff.ops, faults, chunk_bytes,
                                      max_attempts, chunk_retries);
    }
    if (install.committed && sw.program_digest() == want_digest) {
      ++report.repaired;
    } else {
      report.converged = false;
      if (report.error.empty())
        report.error = "repair failed on switch " + std::to_string(i) + ": " +
                       install.error;
    }
  }
  return report;
}

Result<bool> FabricController::checkpoint() {
  if (!opened_) return not_open();
  const util::Record rec{RecordType::kSnapshot, snapshot_payload()};
  return journal_.compact(std::span<const util::Record>(&rec, 1));
}

}  // namespace camus::pubsub
