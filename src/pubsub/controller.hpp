// The Camus controller (paper Figure 6): collects subscription filters,
// runs the two-step compiler, and programs the switch. This is the
// top-level API an application deploying in-network pub/sub uses:
//
//   pubsub::Controller ctl(spec::make_itch_schema());
//   ctl.subscribe(1, "stock == GOOGL : fwd(1)");
//   ctl.subscribe(2, "stock == MSFT and price > 500000 : fwd(2)");
//   auto sw = ctl.build_switch();          // compiled + programmed switch
//   auto p4 = ctl.p4_program();            // static step output
//   auto rules = ctl.control_plane_rules();// dynamic step output
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/compile.hpp"
#include "compiler/p4gen.hpp"
#include "lang/dnf.hpp"
#include "spec/schema.hpp"
#include "switchsim/switch.hpp"
#include "util/result.hpp"
#include "verify/verify.hpp"

namespace camus::pubsub {

// How much static verification compile() runs before accepting a new
// pipeline (paper Figure 6: the controller gates what reaches the switch).
enum class LintPolicy : std::uint8_t {
  kOff,     // no verification (default; matches previous behaviour)
  kWarn,    // verify, keep diagnostics in last_lint(), never reject
  kReject,  // verify; error-severity findings fail compile() and the
            // previous compiled pipeline stays installed
};

// A hardware/software split of the subscription set (graceful
// degradation): the highest-priority rules that fit the switch's resource
// budget are compiled into the hardware pipeline; the remainder spill to
// end-host software filtering (baseline::NaiveMatcher over spilled_flat).
// The two halves partition the rule set, and ActionSets merge by union,
// so switch-delivered ∪ host-filtered equals the unsplit semantics —
// differential-tested against the full BDD in tests/test_spill.cpp.
struct Split {
  compiler::Compiled hardware;            // compiled top-priority prefix
  std::vector<lang::BoundRule> hw_rules;  // rules in the hardware pipeline
  std::vector<lang::BoundRule> spilled;   // rules left to the host
  std::vector<lang::FlatRule> spilled_flat;  // DNF of spilled (host matcher)
  table::ResourceUsage usage;             // of the hardware pipeline
  std::size_t compile_probes = 0;         // binary-search compilations

  bool degraded() const noexcept { return !spilled.empty(); }
};

class Controller {
 public:
  explicit Controller(spec::Schema schema,
                      compiler::CompileOptions opts = {});

  const spec::Schema& schema() const noexcept { return schema_; }

  // Registers a subscription. The rule text may omit the forwarding
  // action, in which case "fwd(port)" is appended — subscribers typically
  // express interest ("stock == GOOGL") and the controller knows their
  // port. Higher priority = more important = last to spill under resource
  // pressure. Returns an error for unparsable/unbindable rules.
  util::Result<bool> subscribe(std::uint16_t port, std::string_view rule_text,
                               int priority = 0);

  // Registers an already-bound rule.
  void subscribe(lang::BoundRule rule, int priority = 0);

  // Removes every subscription whose actions forward (only) to this port —
  // the subscriber disconnected. Rules that also forward elsewhere (shared
  // multicast subscriptions registered as one rule) are kept. Returns the
  // number of rules removed.
  std::size_t unsubscribe(std::uint16_t port);

  std::size_t subscription_count() const noexcept { return rules_.size(); }
  void clear() {
    rules_.clear();
    priorities_.clear();
    compiled_.reset();
  }

  // Static-verification gate for compile(). With kReject, a compilation
  // whose verifier report contains error-severity diagnostics (shadowed
  // entries, budget violations, non-equivalence, ...) is rejected: the
  // error lists the findings and compiled() keeps serving the previous
  // good pipeline.
  void set_lint_policy(LintPolicy policy,
                       verify::VerifyOptions opts = {}) {
    lint_policy_ = policy;
    lint_opts_ = std::move(opts);
  }
  LintPolicy lint_policy() const noexcept { return lint_policy_; }

  // Diagnostics from the most recent verified compile() (empty when the
  // policy is kOff or nothing was compiled since it was set).
  const verify::Report& last_lint() const noexcept { return lint_report_; }

  // Dynamic compilation step. Recompiles if subscriptions changed.
  util::Result<bool> compile();

  // Graceful degradation: compiles the largest highest-priority subset of
  // the subscriptions whose pipeline fits `budget`, spilling the rest to
  // software. Rules are ranked by (priority desc, insertion order asc) and
  // the cut is found by binary search over prefix compilations, so an
  // over-budget set costs O(log n) compiles. When everything fits the
  // Split has no spilled rules. Fails only when even the empty prefix
  // cannot be compiled or a spilled rule fails DNF flattening. Does not
  // disturb the compile()/compiled() state.
  util::Result<Split> compile_with_budget(
      const table::ResourceBudget& budget) const;

  // Access to the compiled artifacts (compile() must have succeeded).
  const compiler::Compiled& compiled() const;

  // Builds a switch simulator programmed with the compiled pipeline.
  util::Result<switchsim::Switch> build_switch();

  // Static step: the P4 program for this application.
  std::string p4_program(const compiler::P4Options& opts = {}) const;
  // Dynamic step: the control-plane entry dump.
  std::string control_plane_rules() const;

 private:
  spec::Schema schema_;
  compiler::CompileOptions opts_;
  std::vector<lang::BoundRule> rules_;
  std::vector<int> priorities_;  // parallel to rules_
  std::optional<compiler::Compiled> compiled_;
  bool dirty_ = false;

  LintPolicy lint_policy_ = LintPolicy::kOff;
  verify::VerifyOptions lint_opts_;
  verify::Report lint_report_;
};

}  // namespace camus::pubsub
